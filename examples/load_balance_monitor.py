#!/usr/bin/env python3
"""The Figure 2 scenario: verifying data-center load balancing.

Deploys the uplink load-balance checker on a leaf whose forwarding
ECMP-hashes flows across two spine uplinks, then:

* sends a healthy flow mix — the per-port byte counters stay within the
  threshold and Hydra stays quiet;
* breaks ECMP (a controller bug pins every flow to one uplink) — the
  imbalance crosses the threshold and Hydra reports it, per packet, in
  the data plane;
* shows the threshold being retuned on the fly through the control
  variable, without recompiling anything (the property the paper
  highlights for control variables).
"""

from repro.experiments.fig12 import install_fabric_routes
from repro.aether.upf import upf_program
from repro.net.packet import make_udp
from repro.net.topology import leaf_spine
from repro.properties import compile_property, load_source
from repro.runtime.deployment import HydraDeployment


def build():
    topology = leaf_spine(2, 2, 2)
    compiled = compile_property("load_balance")
    forwarding = {name: upf_program(f"upf_{name}")
                  for name in topology.switches}
    deployment = HydraDeployment(topology, compiled, forwarding)
    install_fabric_routes(topology, deployment.switches)
    # leaf1's uplinks are ports 3 and 4.
    deployment.set_control("left_port", 3, switch="leaf1")
    deployment.set_control("right_port", 4, switch="leaf1")
    deployment.dict_put("is_uplink", 3, True, switch="leaf1")
    deployment.dict_put("is_uplink", 4, True, switch="leaf1")
    deployment.set_control("thresh", 4000)
    return topology, deployment


def send_flows(topology, deployment, flows, payload=400):
    """Send one packet per (sport, dport) flow from h1 to h3."""
    network = deployment.network
    src = topology.hosts["h1"].ipv4
    dst = topology.hosts["h3"].ipv4
    for sport, dport in flows:
        network.host("h1").send(make_udp(src, dst, sport, dport,
                                         payload_len=payload))
    network.run()


def uplink_loads(deployment):
    sw = deployment.switches["leaf1"]
    regs = [r.name for r in deployment.compiled.registers]
    return {name: sw.register_read(name, 0) for name in regs}


def main():
    print("Load-balance verification (Figure 2, streamlined form)")
    print("=" * 64)
    print(load_source("load_balance"))
    topology, deployment = build()

    print("--- Healthy ECMP: 24 flows hash across both uplinks ---")
    send_flows(topology, deployment, [(10_000 + i, 80) for i in range(24)])
    print(f"  uplink byte counters: {uplink_loads(deployment)}")
    print(f"  reports: {len(deployment.reports)} (expected 0)\n")
    assert not deployment.reports

    print("--- Controller bug: every flow pinned to one uplink ---")
    leaf1 = deployment.switches["leaf1"]
    for entry in list(leaf1.entries["upf_ecmp_table"]):
        leaf1.delete_entry("upf_ecmp_table", entry)
    leaf1.insert_entry("upf_ecmp_table", [0], "upf_ecmp_port", [3])
    leaf1.insert_entry("upf_ecmp_table", [1], "upf_ecmp_port", [3])
    send_flows(topology, deployment, [(20_000 + i, 80) for i in range(24)])
    print(f"  uplink byte counters: {uplink_loads(deployment)}")
    print(f"  reports: {len(deployment.reports)} "
          "(every packet past the threshold reports)\n")
    assert deployment.reports

    print("--- Retuning the threshold on the fly ---")
    deployment.clear_reports()
    deployment.set_control("thresh", 1 << 30)
    send_flows(topology, deployment, [(30_000 + i, 80) for i in range(8)])
    print(f"  after thresh = 2^30: reports = {len(deployment.reports)} "
          "(expected 0 — no recompilation needed)")
    assert not deployment.reports


if __name__ == "__main__":
    main()
