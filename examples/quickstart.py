#!/usr/bin/env python3
"""Quickstart: write an Indus property, check it, run it two ways.

This walks the full Hydra pipeline on the simplest useful property —
loop freedom ("a packet must not visit the same switch twice"):

1. parse + type-check the Indus source;
2. run it on the reference interpreter over a hand-made path;
3. compile it to P4 (``repro.compile_indus``), print the generated code;
4. deploy it on a simulated network (``repro.deploy``) and watch a
   looping packet die;
5. spot-check the whole toolchain with the differential oracle
   (``repro.run_scenario``).

Steps 3-5 go through :mod:`repro.api`, the stable facade — the same
five verbs the CLI and the experiment harnesses use (``repro.api.
difftest(seed=..., iters=..., workers=N)`` scales step 5 into a
sharded campaign).  The lower-level imports in steps 1-2 show the
layers underneath.
"""

import repro
from repro.indus import HopContext, Monitor, check, parse
from repro.net.packet import make_udp
from repro.net.topology import single_switch
from repro.p4 import count_loc, render
from repro.p4.programs import l2_port_forwarding

LOOP_FREEDOM = """
/* Packets must not visit the same switch twice. */
tele bit<32>[8] path;
tele bool looped = false;

{ }
{
  if (switch_id in path) {
    looped = true;
  }
  path.push(switch_id);
}
{
  if (looped) {
    reject;
    report;
  }
}
"""


def step1_check():
    print("=== 1. Parse and type-check ===")
    checked = check(parse(LOOP_FREEDOM))
    tele_vars = [d.name for d in checked.program.decls]
    print(f"declared variables: {tele_vars}")
    print(f"builtins used: {sorted(checked.used_builtins)}\n")
    return checked


def step2_interpret(checked):
    print("=== 2. Reference interpreter ===")
    monitor = Monitor(checked)

    def verdict(switch_ids):
        contexts = [
            HopContext(first_hop=(i == 0),
                       last_hop=(i == len(switch_ids) - 1),
                       switch_id=sid)
            for i, sid in enumerate(switch_ids)
        ]
        state = monitor.run_path(contexts)
        return "REJECTED" if state.rejected else "forwarded"

    print(f"path 1 -> 2 -> 3: {verdict([1, 2, 3])}")
    print(f"path 1 -> 2 -> 1 -> 3: {verdict([1, 2, 1, 3])}\n")


def step3_compile(checked):
    print("=== 3. Compile to P4 ===")
    compiled = repro.compile_indus(LOOP_FREEDOM, name="loop_freedom")
    program = repro.standalone_program(compiled)
    text = render(program)
    header = compiled.hydra_header
    print(f"telemetry header: {header.width_bits} bits "
          f"({header.width_bytes} bytes) across {len(header.fields)} fields")
    print(f"generated program: {count_loc(text)} lines of P4")
    print("--- generated checker tables ---")
    for name in compiled.tables:
        print(f"  table {name}")
    print()
    return compiled


def step4_deploy(compiled):
    print("=== 4. Deploy on a simulated network ===")
    topology = single_switch(2)
    deployment = repro.deploy(
        compiled, topology=topology,
        forwarding={"s1": l2_port_forwarding()},
    )
    sw = deployment.switches["s1"]
    sw.insert_entry("fwd_table", [1], "fwd_set_egress", [2])
    network = deployment.network
    packet = make_udp(topology.hosts["h1"].ipv4, topology.hosts["h2"].ipv4,
                      1234, 80)
    network.host("h1").send(packet)
    network.run()
    print(f"h2 received {network.host('h2').rx_count} packet(s); "
          f"reports: {len(deployment.reports)}")
    print("(single hop -> no loop possible; try the valley-free example "
          "for a multi-switch fabric)\n")


def step5_oracle():
    print("=== 5. Differential oracle spot-check ===")
    result = repro.run_scenario(seed=7)
    print(f"seed 7: {result.packets_run} packets through both engines "
          f"+ the reference monitor -> "
          f"{'all agree' if result.ok else result.failure}")
    print("(scale this up: repro.api.difftest(seed=0, iters=200, "
          "workers=4), or `python -m repro difftest --workers 4`)")


def main():
    checked = step1_check()
    step2_interpret(checked)
    compiled = step3_compile(checked)
    step4_deploy(compiled)
    step5_oracle()


if __name__ == "__main__":
    main()
