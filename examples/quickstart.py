#!/usr/bin/env python3
"""Quickstart: write an Indus property, check it, run it two ways.

This walks the full Hydra pipeline on the simplest useful property —
loop freedom ("a packet must not visit the same switch twice"):

1. parse + type-check the Indus source;
2. run it on the reference interpreter over a hand-made path;
3. compile it to P4, print the generated code;
4. deploy it on a simulated network and watch a looping packet die.
"""

from repro.compiler import compile_program, standalone_program
from repro.indus import HopContext, Monitor, check, parse
from repro.net.packet import ip, make_udp
from repro.net.topology import single_switch
from repro.p4 import count_loc, render
from repro.p4.programs import l2_port_forwarding
from repro.runtime import HydraDeployment

LOOP_FREEDOM = """
/* Packets must not visit the same switch twice. */
tele bit<32>[8] path;
tele bool looped = false;

{ }
{
  if (switch_id in path) {
    looped = true;
  }
  path.push(switch_id);
}
{
  if (looped) {
    reject;
    report;
  }
}
"""


def step1_check():
    print("=== 1. Parse and type-check ===")
    checked = check(parse(LOOP_FREEDOM))
    tele_vars = [d.name for d in checked.program.decls]
    print(f"declared variables: {tele_vars}")
    print(f"builtins used: {sorted(checked.used_builtins)}\n")
    return checked


def step2_interpret(checked):
    print("=== 2. Reference interpreter ===")
    monitor = Monitor(checked)

    def verdict(switch_ids):
        contexts = [
            HopContext(first_hop=(i == 0),
                       last_hop=(i == len(switch_ids) - 1),
                       switch_id=sid)
            for i, sid in enumerate(switch_ids)
        ]
        state = monitor.run_path(contexts)
        return "REJECTED" if state.rejected else "forwarded"

    print(f"path 1 -> 2 -> 3: {verdict([1, 2, 3])}")
    print(f"path 1 -> 2 -> 1 -> 3: {verdict([1, 2, 1, 3])}\n")


def step3_compile(checked):
    print("=== 3. Compile to P4 ===")
    compiled = compile_program(checked, name="loop_freedom")
    program = standalone_program(compiled)
    text = render(program)
    header = compiled.hydra_header
    print(f"telemetry header: {header.width_bits} bits "
          f"({header.width_bytes} bytes) across {len(header.fields)} fields")
    print(f"generated program: {count_loc(text)} lines of P4")
    print("--- generated checker tables ---")
    for name in compiled.tables:
        print(f"  table {name}")
    print()
    return compiled


def step4_deploy(compiled):
    print("=== 4. Deploy on a simulated network ===")
    topology = single_switch(2)
    deployment = HydraDeployment(
        topology, compiled,
        {"s1": l2_port_forwarding()},
    )
    sw = deployment.switches["s1"]
    sw.insert_entry("fwd_table", [1], "fwd_set_egress", [2])
    network = deployment.network
    packet = make_udp(topology.hosts["h1"].ipv4, topology.hosts["h2"].ipv4,
                      1234, 80)
    network.host("h1").send(packet)
    network.run()
    print(f"h2 received {network.host('h2').rx_count} packet(s); "
          f"reports: {len(deployment.reports)}")
    print("(single hop -> no loop possible; try the valley-free example "
          "for a multi-switch fabric)")


def main():
    checked = step1_check()
    step2_interpret(checked)
    compiled = step3_compile(checked)
    step4_deploy(compiled)


if __name__ == "__main__":
    main()
