#!/usr/bin/env python3
"""Case study 1 (Section 5.1): valley-free source routing.

Builds the Figure 8 leaf-spine network (leaf1/leaf2 below the spines,
two hosts per leaf), runs the P4-tutorial source routing program on
every switch, links in the Figure 7 valley-free checker, and then:

* sends packets along every valley-free path — all delivered;
* replays the paper's injected sender bug (a script that appends extra
  invalid hops to the source route) — dropped at the edge;
* sweeps all errant valley paths — every one dropped.
"""

from repro.properties import indus_loc, load_source
from repro.runtime.scenarios import SourceRoutingTestbed


def main():
    print("Valley-free source routing on the Figure 8 leaf-spine fabric")
    print("=" * 64)
    print("\nThe Indus checker (Figure 7):")
    print(load_source("valley_free"))
    print(f"({indus_loc('valley_free')} lines of Indus; two bits of "
          "telemetry per packet)\n")

    testbed = SourceRoutingTestbed()

    print("--- All valley-free paths between h1 and h3 ---")
    for path in testbed.valley_free_node_paths("h1", "h3"):
        ports = testbed.route_for(path, "h3")
        result = testbed.send("h1", "h3", ports)
        status = "delivered" if result.delivered else "DROPPED"
        print(f"  {' -> '.join(path):34s} ports={ports}  {status}")

    print("\n--- The buggy sender (extra invalid hops appended) ---")
    base = testbed.valley_free_node_paths("h1", "h3")[0]
    buggy_ports = testbed.buggy_sender_route(base, "h3")
    result = testbed.send("h1", "h3", buggy_ports)
    status = "delivered" if result.delivered else "DROPPED by Hydra"
    print(f"  intended {' -> '.join(base)}, sender emitted "
          f"ports={buggy_ports}")
    print(f"  outcome: {status}")

    print("\n--- Sweep of errant valley paths (spine visited twice) ---")
    leaked = 0
    paths = testbed.valley_node_paths("h1", "h3")
    for path in paths:
        ports = testbed.route_for(path, "h3")
        if testbed.send("h1", "h3", ports).delivered:
            leaked += 1
            print(f"  LEAKED: {path}")
    print(f"  {len(paths) - leaked}/{len(paths)} errant paths dropped")

    assert leaked == 0
    print("\nResult: every valley-free path passes; every errant path "
          "is rejected at the network edge.")


if __name__ == "__main__":
    main()
