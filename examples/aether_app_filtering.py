#!/usr/bin/env python3
"""Case study 2 (Section 5.2): the Aether application-filtering bug.

Recreates the full Figure 10/11 scenario:

* a leaf-spine Aether fabric whose switches run the UPF P4 program
  (GTP-U tunnels, Applications/Terminations tables);
* the operator portal holding the camera slice's filtering rules;
* the mobile core delivering per-client rules (PFCP-style) on attach;
* the ONOS-like controller sharing Applications entries across clients;
* the Figure 9 Hydra checker deployed on every switch.

The scripted sequence reproduces the known Aether bug: after the
operator edits the allow rule and a second client attaches, the first
client's previously-allowed traffic is silently dropped — and Hydra
reports exactly which flow was wronged, from the switch that did it.
"""

from repro.aether import ALLOW, AetherTestbed, DENY, FilterRule
from repro.net.packet import IP_PROTO_UDP, format_ip


def show(step, result):
    verdict = "delivered" if result.delivered else "DROPPED"
    print(f"  {step:58s} {verdict}")
    for report in result.new_reports:
        ue, proto, app, port, action = report.payload
        intent = {1: "deny", 2: "allow"}.get(action, "?")
        print(f"    !! HYDRA REPORT from {report.switch_name}: "
              f"ue={format_ip(ue)} proto={proto} app={format_ip(app)} "
              f"port={port} policy={intent} — data plane disagreed")


def main():
    print("Aether application filtering under Hydra (Section 5.2)")
    print("=" * 64)
    testbed = AetherTestbed()
    server = testbed.topology.hosts["h2"].ipv4
    print(f"edge app server: {format_ip(server)} (h2 on leaf1)")

    print("\n[portal] camera-slice rules: "
          "10:deny-all, 20:allow UDP port 81")
    testbed.provision_slice("camera", [
        FilterRule(priority=10, action=DENY),
        FilterRule(priority=20, proto=IP_PROTO_UDP, l4_port=(81, 81),
                   action=ALLOW),
    ])
    testbed.portal.add_member("camera", "imsi-001")
    testbed.portal.add_member("camera", "imsi-002")

    print("[core]   client imsi-001 attaches")
    testbed.attach("imsi-001", 1)
    print(f"[onos]   Applications entries installed: "
          f"{testbed.onos.applications_entries()}")

    print("\n--- Before the policy edit ---")
    show("imsi-001 -> app server, UDP:81 (allowed)",
         testbed.send_uplink("imsi-001", server, 81))
    show("imsi-001 -> app server, UDP:9999 (denied)",
         testbed.send_uplink("imsi-001", server, 9999))

    print("\n[portal] operator edits the allow rule: "
          "ports 81-82, priority 25")
    testbed.portal.update_rules("camera", [
        FilterRule(priority=10, action=DENY),
        FilterRule(priority=25, proto=IP_PROTO_UDP, l4_port=(81, 82),
                   action=ALLOW),
    ])

    print("[core]   client imsi-002 attaches (gets the edited rules)")
    testbed.attach("imsi-002", 2)
    print(f"[onos]   Applications entries now: "
          f"{testbed.onos.applications_entries()} "
          "(a new higher-priority shared entry appeared)")

    print("\n--- After the edit: the bug ---")
    show("imsi-002 -> app server, UDP:81 (new policy)",
         testbed.send_uplink("imsi-002", server, 81))
    result = testbed.send_uplink("imsi-001", server, 81)
    show("imsi-001 -> app server, UDP:81 (STILL allowed by policy)",
         result)

    assert not result.delivered and result.new_reports
    print("\nRoot cause: imsi-001's packets now classify to the new "
          "app id (higher priority),\nfor which imsi-001 has no "
          "Terminations entry — default drop. Hydra caught the\n"
          "policy/data-plane disagreement on the very first packet.")


if __name__ == "__main__":
    main()
