#!/usr/bin/env python3
"""The paper's compiler interface (Section 4.1): Indus program +
topology file -> switch-specific P4 code.

This example writes a topology file for the Figure 8 fabric, runs the
compiler driver to produce one P4 source per switch (edge switches get
init/telemetry/checker, core switches telemetry only), and prints the
deployment manifest the control plane consumes (edge ports for the
inject/strip tables, control-variable tables, report layout).

Equivalent CLI:

    python -m repro codegen valley_free \\
        --topology topo.json -o out --forwarding srcroute
"""

import json
import os
import tempfile

from repro.compiler import compile_program
from repro.compiler.driver import write_deployment
from repro.net.topofile import load_topology, save_topology
from repro.net.topology import leaf_spine
from repro.properties import load_source


def main():
    workdir = tempfile.mkdtemp(prefix="hydra_codegen_")
    topo_path = os.path.join(workdir, "topology.json")
    out_dir = os.path.join(workdir, "p4")

    print("1. Write the topology file (Figure 8 leaf-spine)")
    save_topology(leaf_spine(2, 2, 2), topo_path)
    print(f"   {topo_path}")
    topology = load_topology(topo_path)
    for name, spec in topology.switches.items():
        print(f"   {name:8s} role={spec.role:4s} "
              f"edge_ports={spec.edge_ports}")

    print("\n2. Compile the valley-free checker and link per switch")
    compiled = compile_program(load_source("valley_free"),
                               name="valley_free")
    written = write_deployment(compiled, topology, out_dir,
                               forwarding="srcroute")
    manifest_path = written.pop("__manifest__")
    for switch, path in sorted(written.items()):
        lines = sum(1 for _ in open(path))
        print(f"   {switch:8s} -> {path} ({lines} lines)")

    print("\n3. The deployment manifest (what the control plane installs)")
    manifest = json.load(open(manifest_path))
    print(f"   telemetry header: {manifest['telemetry_header']['bits']} "
          f"bits, EtherType 0x{manifest['telemetry_header']['eth_type']:X}")
    for switch, entry in manifest["edge_entries"].items():
        print(f"   {switch}: inject/strip entries on ports "
              f"{entry['ports']}")
    print(f"   control tables: {manifest['control_tables']}")

    print("\n4. A core switch's program differs from an edge switch's:")
    edge_text = open(written["leaf1"]).read()
    core_text = open(written["spine1"]).read()
    print(f"   leaf1.p4:  {len(edge_text.splitlines()):4d} lines "
          "(init + telemetry + checker + strip)")
    print(f"   spine1.p4: {len(core_text.splitlines()):4d} lines "
          "(telemetry only)")
    assert "mark_to_drop" in edge_text
    print(f"\nOutput left in {workdir}")


if __name__ == "__main__":
    main()
