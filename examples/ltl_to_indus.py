#!/usr/bin/env python3
"""Theorem 3.1 in action: compile LTLf formulas to Indus monitors.

Takes the paper's loop-freedom formula (Section 3.1) —

    G !(a & X (F a))          "a is never followed by another a"

— translates it to first-order logic (Figure 5), compiles it to an
Indus program (the Section 3.3 construction), prints the generated
source, and checks all three semantics agree on sample traces.
"""

from repro.ltl import (fo_holds, holds, ltl_to_indus_source,
                       monitor_accepts, parse_formula, to_first_order)

FORMULAS = [
    ("G !(a & X (F a))", "no topological loop through switch a"),
    ("a U b", "stay at a until b happens"),
    ("G (a -> F b)", "every a is eventually followed by b"),
]

TRACES = [
    [{"a"}, set(), set()],
    [{"a"}, set(), {"a"}],
    [{"a"}, {"a"}, {"b"}],
    [set(), {"b"}, {"a"}],
    [{"a", "b"}],
]


def trace_str(trace):
    return "[" + ", ".join("{" + ",".join(sorted(e)) + "}"
                           for e in trace) + "]"


def main():
    for text, meaning in FORMULAS:
        formula = parse_formula(text)
        print("=" * 64)
        print(f"LTLf:  {text}    ({meaning})")
        print(f"FO:    {to_first_order(formula, 'x').__class__.__name__}"
              " at the top level")
        print("\nGenerated Indus monitor:")
        print(ltl_to_indus_source(formula, max_trace=4))
        print(f"{'trace':34s} {'LTLf':>6s} {'FO':>6s} {'Indus':>6s}")
        for trace in TRACES:
            if len(trace) > 4:
                continue
            a = holds(formula, trace)
            b = fo_holds(formula, trace)
            c = monitor_accepts(formula, trace, max_trace=4)
            assert a == b == c
            print(f"{trace_str(trace):34s} {str(a):>6s} {str(b):>6s} "
                  f"{str(c):>6s}")
        print()


if __name__ == "__main__":
    main()
