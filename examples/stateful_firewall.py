#!/usr/bin/env python3
"""The Figure 3 stateful firewall, with a closed control loop.

Deploys the stateful-firewall checker on a single edge switch and wires
a tiny control-plane app to its reports: when inside->out traffic is
seen without the reverse entry, the report tells the controller which
(dst, src) pair to admit — after which the reply traffic flows.

This demonstrates the report -> control-plane -> table-update loop the
paper describes for keeping the `allowed` dictionary current.
"""

from repro.net.packet import format_ip, ip, make_udp
from repro.net.topology import single_switch
from repro.p4.programs import l2_port_forwarding
from repro.properties import compile_property, load_source
from repro.runtime import HydraDeployment

INSIDE = ip(10, 0, 1, 1)    # h1: the protected network
OUTSIDE = ip(10, 0, 1, 2)   # h2: the Internet side


def build():
    topology = single_switch(2)
    compiled = compile_property("stateful_firewall")
    deployment = HydraDeployment(topology, compiled,
                                 {"s1": l2_port_forwarding()})
    sw = deployment.switches["s1"]
    sw.insert_entry("fwd_table", [1], "fwd_set_egress", [2])
    sw.insert_entry("fwd_table", [2], "fwd_set_egress", [1])
    return topology, deployment


def controller_react(deployment):
    """The control-plane app: install reverse rules named by reports."""
    installed = []
    for report in deployment.reports:
        if report.payload is None:
            continue
        dst, src = report.payload
        deployment.dict_put("allowed", (dst, src), True)
        installed.append((dst, src))
    deployment.clear_reports()
    return installed


def send(deployment, src_ip, dst_ip, src_host):
    network = deployment.network
    packet = make_udp(src_ip, dst_ip, 5555, 6666)
    dst_host = "h1" if dst_ip == INSIDE else "h2"
    before = network.host(dst_host).rx_count
    network.host(src_host).send(packet)
    network.run()
    return network.host(dst_host).rx_count > before


def main():
    print("Stateful firewall (Figure 3) with a reacting control plane")
    print("=" * 64)
    print(load_source("stateful_firewall"))
    topology, deployment = build()

    # The operator pre-authorizes inside-initiated flows.
    deployment.dict_put("allowed", (INSIDE, OUTSIDE), True)

    print("1. Unsolicited outside -> inside traffic:")
    delivered = send(deployment, OUTSIDE, INSIDE, "h2")
    print(f"   delivered: {delivered} (expected False — no device inside "
          "initiated this)\n")
    deployment.clear_reports()

    print("2. Inside -> outside traffic (authorized):")
    delivered = send(deployment, INSIDE, OUTSIDE, "h1")
    print(f"   delivered: {delivered}")
    print(f"   reports raised: {len(deployment.reports)} "
          "(reverse entry missing)")

    installed = controller_react(deployment)
    for dst, src in installed:
        print(f"   controller installed allowed[({format_ip(dst)}, "
              f"{format_ip(src)})]")

    print("\n3. The reply, outside -> inside, now that the flow is known:")
    delivered = send(deployment, OUTSIDE, INSIDE, "h2")
    print(f"   delivered: {delivered} (expected True)")


if __name__ == "__main__":
    main()
