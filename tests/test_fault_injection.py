"""Fault-injection tests: the paper's motivating claim is that runtime
verification catches what static checking cannot — control-plane bugs
that install wrong entries, data-plane/hardware faults that corrupt
state, and forwarding-code bugs.  Each test injects such a fault into
an otherwise healthy deployment and asserts the relevant Hydra checker
catches it (while a healthy control run stays quiet)."""

import pytest

from repro.compiler import compile_program
from repro.net.packet import ip, make_udp
from repro.net.topology import leaf_spine, single_switch
from repro.p4 import ir
from repro.p4.bmv2 import Bmv2Switch
from repro.p4.programs import l2_port_forwarding
from repro.properties import compile_property
from repro.runtime.deployment import HydraDeployment


def l2_map(topology):
    return {name: l2_port_forwarding(f"l2_{name}") for name in topology.switches}


def build_line_fabric(compiled):
    """h1 - leaf1 - spine1 - leaf2 - h3 static path, plus the reverse."""
    topology = leaf_spine(2, 2, 2)
    deployment = HydraDeployment(topology, compiled, l2_map(topology))
    switches = deployment.switches
    switches["leaf1"].insert_entry("fwd_table", [1], "fwd_set_egress", [3])
    switches["spine1"].insert_entry("fwd_table", [1], "fwd_set_egress", [2])
    switches["leaf2"].insert_entry("fwd_table", [3], "fwd_set_egress", [1])
    return topology, deployment


def send_h1_h3(topology, deployment):
    network = deployment.network
    packet = make_udp(topology.hosts["h1"].ipv4, topology.hosts["h3"].ipv4,
                      1000, 2000)
    dest = network.host("h3")
    before = dest.rx_count
    network.host("h1").send(packet)
    network.run()
    return dest.rx_count > before


def test_misdelivery_caught_by_egress_port_validity():
    """A bit-flipped forwarding entry sends traffic out the wrong port;
    the egress-port-validity checker rejects it at the edge."""
    compiled = compile_property("egress_port_validity")
    topology, deployment = build_line_fabric(compiled)
    for switch in topology.switches:
        for port in topology.ports_of(switch):
            deployment.set_add("allowed_ports", port, switch=switch)
    assert send_h1_h3(topology, deployment)  # healthy

    # Hardware fault: the installed egress port flips 1 -> 2 on leaf2
    # (delivering h3's traffic to h4's port, a tenant violation).
    leaf2 = deployment.switches["leaf2"]
    entry = leaf2.entries["fwd_table"][0]
    leaf2.delete_entry("fwd_table", entry)
    leaf2.insert_entry("fwd_table", [3], "fwd_set_egress", [2])
    # Narrow leaf2's allowed set to the correct port only.
    deployment.set_remove("allowed_ports", 2, switch="leaf2")
    delivered = send_h1_h3(topology, deployment)
    assert not delivered or deployment.reports
    assert any(r.checker == "egress_port_validity"
               for r in deployment.reports)


def test_forwarding_loop_killed_by_per_hop_loop_checker():
    """A control-plane bug installs a route that bounces the packet
    between leaf1 and spine1 forever.  This is exactly the case where
    Section 4.3's per-hop checking matters: a looping packet never
    egresses an edge port, so a last-hop checker can never enforce its
    verdict — but a per-hop checker drops it on the second visit."""
    compiled = compile_property("loops")
    topology = leaf_spine(2, 2, 2)
    deployment = HydraDeployment(topology, compiled, l2_map(topology),
                                 check_mode="per_hop")
    switches = deployment.switches
    switches["leaf1"].insert_entry("fwd_table", [1], "fwd_set_egress", [3])
    # BUG: spine1 reflects traffic back down to leaf1...
    switches["spine1"].insert_entry("fwd_table", [1], "fwd_set_egress", [1])
    # ...and leaf1 sends it up again.
    switches["leaf1"].insert_entry("fwd_table", [3], "fwd_set_egress", [3])
    network = deployment.network
    packet = make_udp(topology.hosts["h1"].ipv4, topology.hosts["h3"].ipv4,
                      1, 2)
    network.host("h1").send(packet)
    network.run(until=0.05)
    # Dropped on leaf1's second visit: never delivered, the network
    # quiesced (no infinite circulation), and the report names leaf1.
    assert network.packets_delivered == 0
    assert network.sim.pending == 0
    assert network.packets_lost == 1
    assert deployment.reports
    assert deployment.reports[0].switch_name == "leaf1"


def test_vlan_rewrite_fault_caught():
    """A buggy switch action rewrites the VLAN id mid-path; the VLAN
    isolation checker rejects the packet and reports both tags."""
    from repro.net.packet import ETH_TYPE_VLAN, ETH_TYPE_IPV4, VLAN
    from repro.p4.programs import vlan_l2_forwarding

    compiled = compile_property("vlan_isolation")
    topology = leaf_spine(2, 2, 2)
    forwarding = {name: vlan_l2_forwarding(f"v_{name}")
                  for name in topology.switches}
    # Inject the fault into spine1's forwarding action: it clobbers the
    # VLAN id (e.g. a bad rewrite rule or a bit flip on the bus).
    forwarding["spine1"].actions["fwd_set_egress"].body.append(
        ir.AssignStmt("hdr.vlan.vid", ir.Const(999, 12)))
    deployment = HydraDeployment(topology, compiled, forwarding)
    deployment.dict_put("vlan_configured", 10, True)
    deployment.dict_put("vlan_configured", 999, True)
    switches = deployment.switches
    switches["leaf1"].insert_entry("fwd_table", [1], "fwd_set_egress", [3])
    switches["spine1"].insert_entry("fwd_table", [1], "fwd_set_egress", [2])
    switches["leaf2"].insert_entry("fwd_table", [3], "fwd_set_egress", [1])

    packet = make_udp(topology.hosts["h1"].ipv4, topology.hosts["h3"].ipv4,
                      1, 2)
    ether = packet.find("ethernet")
    packet.insert_after("ethernet", VLAN(vid=10, eth_type=ETH_TYPE_IPV4))
    ether.eth_type = ETH_TYPE_VLAN
    network = deployment.network
    network.host("h1").send(packet)
    network.run()
    assert network.host("h3").rx_count == 0  # rejected at the edge
    assert deployment.reports
    assert deployment.reports[0].payload == (10, 999)


def test_waypoint_bypass_caught():
    """A 'fast path' bug skips the firewall waypoint: leaf1 delivers
    cross-leaf traffic directly via spine2 which is not the designated
    waypoint; the waypointing checker rejects at the edge."""
    compiled = compile_property("waypointing")
    topology = leaf_spine(2, 2, 2)
    deployment = HydraDeployment(topology, compiled, l2_map(topology))
    # spine1 is the security waypoint.
    for name, spec in topology.switches.items():
        deployment.set_control("is_waypoint", name == "spine1", switch=name)
    switches = deployment.switches
    # Correct path via spine1:
    switches["leaf1"].insert_entry("fwd_table", [1], "fwd_set_egress", [3])
    switches["spine1"].insert_entry("fwd_table", [1], "fwd_set_egress", [2])
    switches["leaf2"].insert_entry("fwd_table", [3], "fwd_set_egress", [1])
    topo_hosts = topology.hosts
    assert send_h1_h3(topology, deployment)

    # BUG: reroute around the waypoint via spine2.
    leaf1 = switches["leaf1"]
    leaf1.clear_table("fwd_table")
    leaf1.insert_entry("fwd_table", [1], "fwd_set_egress", [4])
    switches["spine2"].insert_entry("fwd_table", [1], "fwd_set_egress", [2])
    switches["leaf2"].insert_entry("fwd_table", [4], "fwd_set_egress", [1])
    assert not send_h1_h3(topology, deployment)
    assert any(r.checker == "waypointing" for r in deployment.reports)


def test_control_plane_install_error_caught_by_multi_tenancy():
    """The control plane fat-fingers a tenant binding (port mapped to
    the wrong tenant); the very first cross-port packet is rejected."""
    compiled = compile_property("multi_tenancy")
    topology = single_switch(2)
    deployment = HydraDeployment(topology, compiled, l2_map(topology))
    sw = deployment.switches["s1"]
    sw.insert_entry("fwd_table", [1], "fwd_set_egress", [2])
    deployment.dict_put("tenants", 1, 7)
    deployment.dict_put("tenants", 2, 7)
    assert send_h1_h3_single(topology, deployment)

    # Fat-finger: port 2 rebound to tenant 9.
    deployment.dict_put("tenants", 2, 9)
    assert not send_h1_h3_single(topology, deployment)


def send_h1_h3_single(topology, deployment):
    network = deployment.network
    packet = make_udp(topology.hosts["h1"].ipv4, topology.hosts["h2"].ipv4,
                      1, 2)
    dest = network.host("h2")
    before = dest.rx_count
    network.host("h1").send(packet)
    network.run()
    return dest.rx_count > before


def test_checker_independence_from_forwarding_bug():
    """The independence argument (Section 2): a bug in the forwarding
    code does not disable the checker, because the checker's state and
    tables are disjoint.  Here the forwarding action scribbles over its
    own metadata; the checker still fires."""
    source = ("header bit<16> dport @ udp.dst_port;\n"
              "{ } { } { if (dport == 81) { reject; } }")
    compiled = compile_program(source, name="guard")
    base = l2_port_forwarding()
    # Forwarding bug: clobber its own egress choice after the table.
    base.ingress.append(ir.AssignStmt("standard_metadata.egress_spec",
                                      ir.Const(2, 9)))
    from repro.compiler import link

    program = link(base, compiled, role="edge")
    sw = Bmv2Switch(program, name="s1")
    sw.insert_entry("fwd_table", [1], "fwd_set_egress", [7])
    sw.insert_entry(compiled.inject_table, [1], compiled.mark_first_action)
    sw.insert_entry(compiled.strip_table, [2], compiled.mark_last_action)
    ok = make_udp(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 80)
    bad = make_udp(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 81)
    assert len(sw.process(ok, 1)) == 1
    assert sw.process(bad, 1) == []
