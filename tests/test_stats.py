"""Statistics helper tests, cross-checked against scipy."""

import random

import pytest
from scipy import stats as scipy_stats

from repro.stats import (cdf_points, mean, percentile, student_t_test,
                         variance, welch_t_test)


def test_mean_and_variance():
    xs = [1.0, 2.0, 3.0, 4.0]
    assert mean(xs) == 2.5
    assert variance(xs) == pytest.approx(5.0 / 3.0)
    assert variance([1.0]) == 0.0


def test_welch_matches_scipy():
    rng = random.Random(1)
    a = [rng.gauss(10, 2) for _ in range(50)]
    b = [rng.gauss(11, 3) for _ in range(40)]
    ours = welch_t_test(a, b)
    ref = scipy_stats.ttest_ind(a, b, equal_var=False)
    assert ours.statistic == pytest.approx(ref.statistic, rel=1e-9)
    assert ours.p_value == pytest.approx(ref.pvalue, rel=1e-6)


def test_student_matches_scipy():
    rng = random.Random(2)
    a = [rng.gauss(5, 1) for _ in range(30)]
    b = [rng.gauss(5.2, 1) for _ in range(30)]
    ours = student_t_test(a, b)
    ref = scipy_stats.ttest_ind(a, b, equal_var=True)
    assert ours.statistic == pytest.approx(ref.statistic, rel=1e-9)
    assert ours.p_value == pytest.approx(ref.pvalue, rel=1e-6)


def test_identical_samples_not_significant():
    a = [1.0, 2.0, 3.0] * 10
    result = welch_t_test(a, list(a))
    assert result.p_value > 0.99
    assert not result.significant()


def test_clearly_different_samples_significant():
    a = [random.Random(3).gauss(0, 1) for _ in range(100)]
    b = [x + 5 for x in a]
    assert welch_t_test(a, b).significant()


def test_constant_samples_handled():
    result = welch_t_test([5.0] * 10, [5.0] * 10)
    assert result.p_value == 1.0


def test_too_few_observations_rejected():
    with pytest.raises(ValueError):
        welch_t_test([1.0], [1.0, 2.0])


def test_cdf_points_properties():
    samples = [3.0, 1.0, 2.0]
    points = cdf_points(samples)
    values = [v for v, _ in points]
    probs = [p for _, p in points]
    assert values == sorted(values)
    assert probs[-1] == 1.0
    assert all(0 < p <= 1 for p in probs)


def test_cdf_points_downsampling():
    samples = list(range(1000))
    points = cdf_points([float(x) for x in samples], num_points=50)
    assert len(points) <= 52
    assert points[-1][1] == 1.0


def test_cdf_empty():
    assert cdf_points([]) == []


def test_percentile():
    xs = [float(x) for x in range(101)]
    assert percentile(xs, 0) == 0
    assert percentile(xs, 50) == 50
    assert percentile(xs, 100) == 100
    assert percentile([7.0], 99) == 7.0
    with pytest.raises(ValueError):
        percentile([], 50)
