"""Case study 2 (Section 5.2): the Aether application-filtering bug.

Reproduces Figure 11's scenario end to end: a slice denies all traffic
by default but allows UDP port 81; the operator later widens the allow
rule to ports 81-82 at a higher priority; when a second client attaches,
ONOS installs a new shared Applications entry whose higher priority
re-classifies the first client's traffic to an app id that has no
Terminations entry — silently dropping traffic the policy allows.
Hydra's checker reports the inconsistency from the switch where it is
detected."""

import pytest

from repro.aether import (ALLOW, AetherTestbed, DENY, FilterRule)
from repro.aether.core import ALLOW_ACTION
from repro.net.packet import IP_PROTO_UDP


@pytest.fixture()
def testbed():
    tb = AetherTestbed()
    tb.provision_slice("camera", [
        FilterRule(priority=10, action=DENY),
        FilterRule(priority=20, proto=IP_PROTO_UDP, l4_port=(81, 81),
                   action=ALLOW),
    ])
    tb.portal.add_member("camera", "imsi-001")
    tb.portal.add_member("camera", "imsi-002")
    return tb


def server_ip(tb):
    return tb.topology.hosts["h2"].ipv4


def updated_rules():
    return [
        FilterRule(priority=10, action=DENY),
        FilterRule(priority=25, proto=IP_PROTO_UDP, l4_port=(81, 82),
                   action=ALLOW),
    ]


def test_allowed_traffic_flows_before_update(testbed):
    testbed.attach("imsi-001", 1)
    result = testbed.send_uplink("imsi-001", server_ip(testbed), 81)
    assert result.delivered
    assert not result.new_reports


def test_denied_traffic_dropped_consistently(testbed):
    testbed.attach("imsi-001", 1)
    result = testbed.send_uplink("imsi-001", server_ip(testbed), 9999)
    assert not result.delivered
    # Deny + dropped is *consistent*: no report.
    assert not result.new_reports


def test_the_figure_11_bug_detected(testbed):
    testbed.attach("imsi-001", 1)
    assert testbed.send_uplink("imsi-001", server_ip(testbed), 81).delivered

    testbed.portal.update_rules("camera", updated_rules())
    testbed.attach("imsi-002", 2)
    # The new client works under the updated policy...
    assert testbed.send_uplink("imsi-002", server_ip(testbed), 81).delivered

    # ...but client 1's previously allowed traffic is now silently
    # dropped by the data plane — and Hydra reports it.
    result = testbed.send_uplink("imsi-001", server_ip(testbed), 81)
    assert not result.delivered
    assert len(result.new_reports) == 1
    report = result.new_reports[0]
    assert report.block == "checker"
    assert report.switch_name == "leaf1"  # where the inconsistency is
    ue, proto, app, port, action = report.payload
    assert proto == IP_PROTO_UDP
    assert port == 81
    assert action == ALLOW_ACTION  # policy said allow; data plane dropped


def test_bug_mechanism_shared_app_entries(testbed):
    """White-box check of the root cause: the second attach under the
    edited policy allocates a new app id and a new higher-priority
    Applications entry, while client 1's Terminations stay stale."""
    testbed.attach("imsi-001", 1)
    apps_before = testbed.onos.applications_entries()
    testbed.portal.update_rules("camera", updated_rules())
    testbed.attach("imsi-002", 2)
    apps_after = testbed.onos.applications_entries()
    assert apps_after > apps_before  # new shared entry, not reused
    client1 = testbed.onos.client("imsi-001")
    client2 = testbed.onos.client("imsi-002")
    assert set(client1.app_ids) != set(client2.app_ids)


def test_no_bug_when_policy_not_edited(testbed):
    """Control experiment: without the portal edit, the second attach
    reuses the shared Applications entries and nothing breaks."""
    testbed.attach("imsi-001", 1)
    apps_before = testbed.onos.applications_entries()
    testbed.attach("imsi-002", 2)
    assert testbed.onos.applications_entries() == apps_before
    assert testbed.send_uplink("imsi-001", server_ip(testbed), 81).delivered
    assert testbed.send_uplink("imsi-002", server_ip(testbed), 81).delivered


def test_port_82_allowed_only_under_new_policy(testbed):
    testbed.attach("imsi-001", 1)
    assert not testbed.send_uplink("imsi-001", server_ip(testbed),
                                   82).delivered
    testbed.portal.update_rules("camera", updated_rules())
    testbed.attach("imsi-002", 2)
    assert testbed.send_uplink("imsi-002", server_ip(testbed), 82).delivered


def test_downlink_traffic_reaches_ue(testbed):
    testbed.attach("imsi-001", 1)
    # Downlink from the app server toward the UE, source port 81.
    result = testbed.send_downlink(server_ip(testbed), "imsi-001", 81)
    assert result.delivered
    # The delivered packet is GTP-U encapsulated toward the cell.
    cell = testbed.network.host("h1")
    assert cell.received, "cell host should hold the delivered packet"
    _, packet = cell.received[-1]
    assert packet.find("gtpu") is not None


def test_tcp_application_denied_when_rule_is_udp(testbed):
    testbed.attach("imsi-001", 1)
    result = testbed.send_uplink("imsi-001", server_ip(testbed), 81,
                                 proto="tcp")
    assert not result.delivered
    assert not result.new_reports  # deny + drop is consistent
