"""Linker tests: parser extension, declaration merging, role pruning,
EtherType write redirection, and multi-checker chaining."""

import pytest

from repro.compiler import compile_program, link, standalone_program
from repro.indus.errors import CompileError
from repro.net.packet import (ETH_TYPE_HYDRA, ETH_TYPE_IPV4, ip,
                              make_source_routed, make_udp)
from repro.net.topology import CORE, EDGE
from repro.p4 import ir
from repro.p4.bmv2 import Bmv2Switch
from repro.p4.programs import l2_port_forwarding, source_routing

SIMPLE = "tele bit<8> x = 1;\n{ } { } { }"


def test_linked_parser_recognizes_hydra_ethertype():
    compiled = compile_program(SIMPLE)
    program = link(l2_port_forwarding(), compiled, role=EDGE)
    start = program.parser.state("start")
    first = start.transitions[0]
    assert first.value == ETH_TYPE_HYDRA
    hydra_state = program.parser.state(first.next_state)
    assert hydra_state.extracts[0].bind == "hydra"


def test_hydra_state_re_dispatches_on_next_eth_type():
    compiled = compile_program(SIMPLE)
    program = link(l2_port_forwarding(), compiled, role=EDGE)
    hydra_state = program.parser.state(
        program.parser.state("start").transitions[0].next_state)
    values = {t.value for t in hydra_state.transitions
              if t.field_path is not None}
    assert ETH_TYPE_IPV4 in values
    assert all(t.field_path == "hdr.hydra.next_eth_type"
               for t in hydra_state.transitions if t.field_path)


def test_emit_order_places_hydra_after_ethernet():
    compiled = compile_program(SIMPLE)
    program = link(l2_port_forwarding(), compiled, role=EDGE)
    order = program.emit_order
    assert order.index("hydra") == order.index("ethernet") + 1


def test_inputs_not_mutated():
    forwarding = l2_port_forwarding()
    tables_before = set(forwarding.tables)
    parser_states_before = len(forwarding.parser.states)
    compiled = compile_program(SIMPLE)
    link(forwarding, compiled, role=EDGE)
    assert set(forwarding.tables) == tables_before
    assert len(forwarding.parser.states) == parser_states_before


def test_core_role_has_no_init_or_checker():
    compiled = compile_program("{ } { } { reject; }")
    edge = link(l2_port_forwarding(), compiled, role=EDGE)
    core = link(l2_port_forwarding(), compiled, role=CORE)
    assert len(core.ingress) < len(edge.ingress)
    # Core switches never evaluate the reject verdict.
    edge_text = repr(edge.egress)
    core_text = repr(core.egress)
    assert compiled.reject_meta in edge_text
    assert compiled.reject_meta not in core_text


def test_unknown_role_rejected():
    compiled = compile_program(SIMPLE)
    with pytest.raises(CompileError):
        link(l2_port_forwarding(), compiled, role="weird")


def test_metadata_collision_detected():
    compiled = compile_program(SIMPLE)
    forwarding = l2_port_forwarding()
    forwarding.metadata.append((compiled.first_hop_meta, 1))
    with pytest.raises(CompileError):
        link(forwarding, compiled, role=EDGE)


def test_forwarding_without_ethernet_rejected():
    compiled = compile_program(SIMPLE)
    program = ir.P4Program(name="weird")
    with pytest.raises(CompileError):
        link(program, compiled, role=EDGE)


def test_ethertype_write_redirected_through_hydra():
    """Source routing's final pop rewrites the EtherType; with telemetry
    on the packet, the write must land in hydra.next_eth_type so the
    strip at the last hop restores IPv4 (not the stale saved type)."""
    compiled = compile_program(SIMPLE)
    program = link(source_routing(), compiled, role=EDGE)
    sw = Bmv2Switch(program, name="s1")
    sw.insert_entry(compiled.inject_table, [1], compiled.mark_first_action)
    sw.insert_entry(compiled.strip_table, [4], compiled.mark_last_action)
    inner = make_udp(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2)
    packet = make_source_routed([4], inner)
    port, out = sw.process(packet, 1)[0]
    assert port == 4
    assert out.find("ethernet").eth_type == ETH_TYPE_IPV4
    assert out.find("hydra") is None


def test_multi_checker_requires_distinct_namespaces():
    a = compile_program(SIMPLE, name="a")
    b = compile_program(SIMPLE, name="b")
    with pytest.raises(CompileError):
        link(l2_port_forwarding(), [a, b], role=EDGE)


def test_multi_checker_requires_distinct_ethertypes():
    a = compile_program(SIMPLE, name="a", namespace="a")
    b = compile_program(SIMPLE, name="b", namespace="b")  # same 0x88B5
    with pytest.raises(CompileError):
        link(l2_port_forwarding(), [a, b], role=EDGE)


def test_multi_checker_chain_round_trip():
    a = compile_program("tele bit<8> x = 1;\n{ } { } { }",
                        name="a", namespace="a", eth_type=0x88B5)
    b = compile_program("tele bit<8> y = 2;\n{ } { } { }",
                        name="b", namespace="b", eth_type=0x88B6)
    program = link(l2_port_forwarding(), [a, b], role=EDGE)
    sw = Bmv2Switch(program, name="s1")
    sw.insert_entry("fwd_table", [1], "fwd_set_egress", [2])
    for c in (a, b):
        sw.insert_entry(c.inject_table, [1], c.mark_first_action)
        sw.insert_entry(c.strip_table, [2], c.mark_last_action)
    packet = make_udp(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2)
    out = sw.process(packet, 1)
    names = [h.name for h in out[0][1].headers]
    assert names == ["ethernet", "ipv4", "udp"]
    assert out[0][1].find("ethernet").eth_type == ETH_TYPE_IPV4


def test_multi_checker_reject_from_either_drops():
    a = compile_program("{ } { } { }", name="a", namespace="a",
                        eth_type=0x88B5)
    b = compile_program("{ } { } { reject; }", name="b", namespace="b",
                        eth_type=0x88B6)
    program = link(l2_port_forwarding(), [a, b], role=EDGE)
    sw = Bmv2Switch(program, name="s1")
    sw.insert_entry("fwd_table", [1], "fwd_set_egress", [2])
    for c in (a, b):
        sw.insert_entry(c.inject_table, [1], c.mark_first_action)
        sw.insert_entry(c.strip_table, [2], c.mark_last_action)
    packet = make_udp(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2)
    assert sw.process(packet, 1) == []


def test_standalone_program_is_runnable():
    compiled = compile_program(SIMPLE)
    program = standalone_program(compiled)
    sw = Bmv2Switch(program)
    sw.insert_entry("fwd_table", [1], "fwd_set_egress", [2])
    packet = make_udp(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2)
    # Without inject entries the packet passes through unmonitored.
    assert len(sw.process(packet, 1)) == 1
