"""Functional tests for the Table-1 property library: each checker is
exercised with satisfying and violating traffic, mostly through the
reference interpreter (the compiled path is covered by the differential
and case-study tests)."""

import pytest

from repro.indus import HopContext, Monitor
from repro.properties import (PROPERTIES, TABLE1_ORDER, compile_property,
                              indus_loc, load_checked, load_monitor,
                              load_source, property_names)


def run_trace(monitor, contexts):
    return monitor.run_path(contexts)


# ---------------------------------------------------------------------------
# Library plumbing
# ---------------------------------------------------------------------------

def test_catalog_contains_all_table1_rows():
    assert len(TABLE1_ORDER) == 11
    for name in TABLE1_ORDER:
        assert PROPERTIES[name].in_table1


def test_unknown_property_raises():
    with pytest.raises(KeyError):
        load_source("nonexistent")


def test_all_properties_compile_to_p4():
    for name in property_names():
        compiled = compile_property(name)
        assert compiled.hydra_header.width_bits >= 16


def test_indus_loc_is_close_to_paper():
    """Conciseness claim: our programs stay within 2x of the paper's
    line counts and an order of magnitude under the generated P4."""
    for name in TABLE1_ORDER:
        info = PROPERTIES[name]
        measured = indus_loc(name)
        assert measured <= 2 * info.paper_indus_loc
        assert measured >= info.paper_indus_loc // 3


# ---------------------------------------------------------------------------
# Multi-tenancy (Figure 1)
# ---------------------------------------------------------------------------

def tenancy_monitor():
    monitor = load_monitor("multi_tenancy")
    controls = monitor.new_controls()
    controls.dict_put("tenants", 1, 10)
    controls.dict_put("tenants", 2, 10)
    controls.dict_put("tenants", 3, 20)
    return monitor, controls


def test_multi_tenancy_same_tenant_passes():
    monitor, controls = tenancy_monitor()
    state = run_trace(monitor, [
        HopContext(headers={"in_port": 1, "eg_port": 0}, controls=controls,
                   first_hop=True),
        HopContext(headers={"in_port": 0, "eg_port": 2}, controls=controls,
                   last_hop=True),
    ])
    assert not state.rejected


def test_multi_tenancy_cross_tenant_rejected():
    monitor, controls = tenancy_monitor()
    state = run_trace(monitor, [
        HopContext(headers={"in_port": 1, "eg_port": 0}, controls=controls,
                   first_hop=True),
        HopContext(headers={"in_port": 0, "eg_port": 3}, controls=controls,
                   last_hop=True),
    ])
    assert state.rejected


# ---------------------------------------------------------------------------
# Load balance (streamlined + literal Figure 2)
# ---------------------------------------------------------------------------

def load_balance_setup(name):
    monitor = load_monitor(name)
    controls = monitor.new_controls()
    controls.set_value("left_port", 1)
    controls.set_value("right_port", 2)
    controls.set_value("thresh", 100)
    controls.dict_put("is_uplink", 1, True)
    controls.dict_put("is_uplink", 2, True)
    return monitor, controls, monitor.new_sensors()


@pytest.mark.parametrize("name", ["load_balance", "load_balance_arrays"])
def test_load_balance_reports_imbalance(name):
    monitor, controls, sensors = load_balance_setup(name)
    ctx = HopContext(headers={"eg_port": 1}, controls=controls,
                     sensors=sensors, first_hop=True, last_hop=True,
                     packet_length=500)
    state = run_trace(monitor, [ctx])
    assert len(state.reports) >= 1  # 500 vs 0 exceeds thresh 100


@pytest.mark.parametrize("name", ["load_balance", "load_balance_arrays"])
def test_load_balance_balanced_is_quiet(name):
    monitor, controls, sensors = load_balance_setup(name)
    for port in (1, 2):
        ctx = HopContext(headers={"eg_port": port}, controls=controls,
                         sensors=sensors, first_hop=True, last_hop=True,
                         packet_length=50)
        state = run_trace(monitor, [ctx])
    assert not state.reports  # |50 - 50| = 0


def test_load_balance_ignores_non_uplink_ports():
    monitor, controls, sensors = load_balance_setup("load_balance")
    ctx = HopContext(headers={"eg_port": 9}, controls=controls,
                     sensors=sensors, first_hop=True, last_hop=True,
                     packet_length=5000)
    state = run_trace(monitor, [ctx])
    assert not state.reports


# ---------------------------------------------------------------------------
# Stateful firewall (Figure 3)
# ---------------------------------------------------------------------------

def firewall_monitor():
    monitor = load_monitor("stateful_firewall")
    controls = monitor.new_controls()
    controls.dict_put("allowed", (100, 200), True)
    return monitor, controls


def test_firewall_allowed_flow_passes():
    monitor, controls = firewall_monitor()
    headers = {"ipv4_src": 100, "ipv4_dst": 200}
    state = run_trace(monitor, [HopContext(headers=headers, controls=controls,
                                           first_hop=True, last_hop=True)])
    assert not state.rejected


def test_firewall_unknown_flow_rejected_and_reported():
    monitor, controls = firewall_monitor()
    headers = {"ipv4_src": 300, "ipv4_dst": 400}
    state = run_trace(monitor, [HopContext(headers=headers, controls=controls,
                                           first_hop=True, last_hop=True)])
    assert state.rejected
    assert state.reports[0].payload == (400, 300)


def test_firewall_reverse_report_enables_return_traffic():
    monitor, controls = firewall_monitor()
    # Forward direction missing the reverse entry: report names it.
    headers = {"ipv4_src": 100, "ipv4_dst": 200}
    state = run_trace(monitor, [HopContext(headers=headers, controls=controls,
                                           first_hop=True, last_hop=True)])
    reverse = state.reports[0].payload
    controls.dict_put("allowed", reverse, True)
    # Return traffic is now admitted.
    back = {"ipv4_src": 200, "ipv4_dst": 100}
    state = run_trace(monitor, [HopContext(headers=back, controls=controls,
                                           first_hop=True, last_hop=True)])
    assert not state.rejected


# ---------------------------------------------------------------------------
# VLAN isolation
# ---------------------------------------------------------------------------

def vlan_monitor():
    monitor = load_monitor("vlan_isolation")
    controls = monitor.new_controls()
    controls.dict_put("vlan_configured", 10, True)
    return monitor, controls


def test_vlan_consistent_path_passes():
    monitor, controls = vlan_monitor()
    contexts = [HopContext(headers={"vlan_id": 10}, controls=controls,
                           first_hop=(i == 0), last_hop=(i == 2))
                for i in range(3)]
    assert not run_trace(monitor, contexts).rejected


def test_vlan_change_mid_path_rejected():
    monitor, controls = vlan_monitor()
    controls.dict_put("vlan_configured", 20, True)
    contexts = [
        HopContext(headers={"vlan_id": 10}, controls=controls,
                   first_hop=True),
        HopContext(headers={"vlan_id": 20}, controls=controls,
                   last_hop=True),
    ]
    state = run_trace(monitor, contexts)
    assert state.rejected
    assert state.reports[0].payload == (10, 20)


def test_vlan_unprovisioned_switch_rejected():
    monitor, controls = vlan_monitor()
    # Second switch has no entry for VLAN 10 in its control store.
    bare = monitor.new_controls()
    contexts = [
        HopContext(headers={"vlan_id": 10}, controls=controls,
                   first_hop=True),
        HopContext(headers={"vlan_id": 10}, controls=bare, last_hop=True),
    ]
    assert run_trace(monitor, contexts).rejected


# ---------------------------------------------------------------------------
# Egress port validity
# ---------------------------------------------------------------------------

def test_egress_port_validity():
    monitor = load_monitor("egress_port_validity")
    controls = monitor.new_controls()
    controls.set_add("allowed_ports", 1)
    controls.set_add("allowed_ports", 2)
    good = HopContext(headers={"eg_port": 2}, controls=controls,
                      first_hop=True, last_hop=True)
    assert not run_trace(monitor, [good]).rejected
    bad = HopContext(headers={"eg_port": 7}, controls=controls,
                     first_hop=True, last_hop=True)
    state = run_trace(monitor, [bad])
    assert state.rejected and state.reports


# ---------------------------------------------------------------------------
# Routing validity
# ---------------------------------------------------------------------------

def routing_contexts(monitor, roles):
    """roles: list of (is_leaf, is_spine) per hop."""
    contexts = []
    for i, (leaf, spine) in enumerate(roles):
        controls = monitor.new_controls()
        controls.set_value("is_leaf", leaf)
        controls.set_value("is_spine", spine)
        contexts.append(HopContext(controls=controls, first_hop=(i == 0),
                                   last_hop=(i == len(roles) - 1)))
    return contexts


def test_routing_validity_leaf_spine_leaf_passes():
    monitor = load_monitor("routing_validity")
    contexts = routing_contexts(
        monitor, [(True, False), (False, True), (True, False)])
    assert not run_trace(monitor, contexts).rejected


def test_routing_validity_interior_leaf_rejected():
    monitor = load_monitor("routing_validity")
    contexts = routing_contexts(
        monitor, [(True, False), (True, False), (True, False)])
    assert run_trace(monitor, contexts).rejected


def test_routing_validity_spine_first_hop_rejected():
    monitor = load_monitor("routing_validity")
    contexts = routing_contexts(monitor, [(False, True), (True, False)])
    assert run_trace(monitor, contexts).rejected


# ---------------------------------------------------------------------------
# Loops
# ---------------------------------------------------------------------------

def test_loops_simple_path_passes():
    monitor = load_monitor("loops")
    contexts = [HopContext(first_hop=(i == 0), last_hop=(i == 2),
                           switch_id=sid)
                for i, sid in enumerate([1, 2, 3])]
    assert not run_trace(monitor, contexts).rejected


def test_loops_revisit_rejected():
    monitor = load_monitor("loops")
    path = [1, 2, 1, 3]
    contexts = [HopContext(first_hop=(i == 0),
                           last_hop=(i == len(path) - 1), switch_id=sid)
                for i, sid in enumerate(path)]
    state = run_trace(monitor, contexts)
    assert state.rejected and state.reports


# ---------------------------------------------------------------------------
# Waypointing
# ---------------------------------------------------------------------------

def waypoint_contexts(monitor, flags):
    contexts = []
    for i, is_waypoint in enumerate(flags):
        controls = monitor.new_controls()
        controls.set_value("is_waypoint", is_waypoint)
        contexts.append(HopContext(controls=controls, first_hop=(i == 0),
                                   last_hop=(i == len(flags) - 1)))
    return contexts


def test_waypointing_pass_through_waypoint():
    monitor = load_monitor("waypointing")
    assert not run_trace(
        monitor, waypoint_contexts(monitor, [False, True, False])).rejected


def test_waypointing_bypass_rejected():
    monitor = load_monitor("waypointing")
    state = run_trace(monitor,
                      waypoint_contexts(monitor, [False, False, False]))
    assert state.rejected and state.reports


# ---------------------------------------------------------------------------
# Service chains
# ---------------------------------------------------------------------------

def chain_contexts(monitor, positions, chain_len):
    contexts = []
    for i, pos in enumerate(positions):
        controls = monitor.new_controls()
        controls.set_value("chain_pos", pos)
        controls.set_value("chain_len", chain_len)
        contexts.append(HopContext(controls=controls, first_hop=(i == 0),
                                   last_hop=(i == len(positions) - 1)))
    return contexts


def test_service_chain_in_order_passes():
    monitor = load_monitor("service_chain")
    contexts = chain_contexts(monitor, [0, 1, 2, 0], chain_len=2)
    assert not run_trace(monitor, contexts).rejected


def test_service_chain_out_of_order_rejected():
    monitor = load_monitor("service_chain")
    contexts = chain_contexts(monitor, [0, 2, 1, 0], chain_len=2)
    assert run_trace(monitor, contexts).rejected


def test_service_chain_skipped_waypoint_rejected():
    monitor = load_monitor("service_chain")
    contexts = chain_contexts(monitor, [0, 1, 0], chain_len=2)
    assert run_trace(monitor, contexts).rejected


# ---------------------------------------------------------------------------
# Source routing with path validation
# ---------------------------------------------------------------------------

def path_validation_contexts(monitor, controls, path):
    return [HopContext(controls=controls, first_hop=(i == 0),
                       last_hop=(i == len(path) - 1), switch_id=sid)
            for i, sid in enumerate(path)]


def test_path_validation_allowed_edges_pass():
    monitor = load_monitor("source_routing_validation")
    controls = monitor.new_controls()
    for a, b in ((1, 2), (2, 3)):
        controls.dict_put("allowed_edge", (a, b), True)
    state = run_trace(monitor, path_validation_contexts(
        monitor, controls, [1, 2, 3]))
    assert not state.rejected
    assert state.tele["visited"].valid_items() == [1, 2, 3]


def test_path_validation_forbidden_edge_rejected():
    monitor = load_monitor("source_routing_validation")
    controls = monitor.new_controls()
    controls.dict_put("allowed_edge", (1, 2), True)
    state = run_trace(monitor, path_validation_contexts(
        monitor, controls, [1, 2, 9]))
    assert state.rejected
    assert state.reports


# ---------------------------------------------------------------------------
# Valley-free (Figure 7)
# ---------------------------------------------------------------------------

def valley_contexts(monitor, spine_flags):
    contexts = []
    for i, is_spine in enumerate(spine_flags):
        controls = monitor.new_controls()
        controls.set_value("is_spine_switch", is_spine)
        contexts.append(HopContext(controls=controls, first_hop=(i == 0),
                                   last_hop=(i == len(spine_flags) - 1)))
    return contexts


def test_valley_free_single_spine_passes():
    monitor = load_monitor("valley_free")
    assert not run_trace(
        monitor, valley_contexts(monitor, [False, True, False])).rejected


def test_valley_free_double_spine_rejected():
    monitor = load_monitor("valley_free")
    assert run_trace(
        monitor,
        valley_contexts(monitor, [False, True, False, True, False])
    ).rejected
