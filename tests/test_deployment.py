"""HydraDeployment tests: wiring, control-plane API, report decoding."""

import pytest

from repro.compiler import compile_program
from repro.net.packet import ip, make_udp
from repro.net.topology import leaf_spine, single_switch
from repro.p4.programs import l2_port_forwarding
from repro.properties import compile_suite
from repro.runtime.deployment import HydraDeployment


def l2_forwarding_map(topology):
    return {name: l2_port_forwarding(f"l2_{name}")
            for name in topology.switches}


def single_switch_deployment(source, num_hosts=2):
    topology = single_switch(num_hosts)
    compiled = compile_program(source, name="t")
    deployment = HydraDeployment(topology, compiled,
                                 l2_forwarding_map(topology))
    sw = deployment.switches["s1"]
    sw.insert_entry("fwd_table", [1], "fwd_set_egress", [2])
    sw.insert_entry("fwd_table", [2], "fwd_set_egress", [1])
    return topology, deployment


def send_and_run(deployment, topology, dst_host="h2"):
    network = deployment.network
    packet = make_udp(topology.hosts["h1"].ipv4,
                      topology.hosts[dst_host].ipv4, 1000, 2000)
    dest = network.host(dst_host)
    before = dest.rx_count
    network.host("h1").send(packet)
    network.run()
    return dest.rx_count > before


def test_edge_entries_installed_automatically():
    topology, deployment = single_switch_deployment("{ } { } { }")
    sw = deployment.switches["s1"]
    compiled = deployment.compiled
    inject_ports = sorted(e.match[0] for e in sw.entries[compiled.inject_table])
    assert inject_ports == [1, 2]
    strip_ports = sorted(e.match[0] for e in sw.entries[compiled.strip_table])
    assert strip_ports == [1, 2]


def test_core_switches_get_no_edge_entries():
    topology = leaf_spine(2, 2, 2)
    compiled = compile_program("{ } { } { }", name="t")
    deployment = HydraDeployment(topology, compiled,
                                 l2_forwarding_map(topology))
    spine = deployment.switches["spine1"]
    assert spine.entries[compiled.inject_table] == []


def test_missing_forwarding_program_rejected():
    topology = single_switch(2)
    compiled = compile_program("{ } { } { }", name="t")
    with pytest.raises(ValueError):
        HydraDeployment(topology, compiled, {})


def test_set_control_per_switch_and_global():
    src = ("control bit<8> knob;\ntele bit<8> x = 0;\n"
           "{ x = knob; } { } { if (x == 5) { reject; } }")
    topology, deployment = single_switch_deployment(src)
    deployment.set_control("knob", 4)
    assert send_and_run(deployment, topology)
    deployment.set_control("knob", 5, switch="s1")
    assert not send_and_run(deployment, topology)


def test_set_control_rejects_dicts():
    src = "control dict<bit<8>,bool> d;\ntele bool b;\n{ b = d[1]; } { } { }"
    topology, deployment = single_switch_deployment(src)
    with pytest.raises(ValueError):
        deployment.set_control("d", 1)


def test_dict_put_get_remove_cycle():
    src = ("control dict<bit<16>,bool> blocked;\n"
           "header bit<16> dport @ udp.dst_port;\ntele bool b = false;\n"
           "{ b = blocked[dport]; } { } { if (b) { reject; } }")
    topology, deployment = single_switch_deployment(src)
    assert send_and_run(deployment, topology)
    deployment.dict_put("blocked", 2000, True)
    assert not send_and_run(deployment, topology)
    deployment.dict_put("blocked", 2000, False)  # update, not duplicate
    assert send_and_run(deployment, topology)
    deployment.dict_put("blocked", 2000, True)
    deployment.dict_remove("blocked", 2000)
    assert send_and_run(deployment, topology)


def test_dict_put_ranges_wildcards():
    src = ("control dict<(bit<16>,bit<16>),bit<8>> acts;\n"
           "header bit<16> sport @ udp.src_port;\n"
           "header bit<16> dport @ udp.dst_port;\ntele bit<8> a = 0;\n"
           "{ a = acts[(sport, dport)]; } { } { if (a == 1) { reject; } }")
    topology, deployment = single_switch_deployment(src)
    # any sport, dports 2000-2010 -> deny (1)
    deployment.dict_put_ranges("acts", [(0, 0xFFFF), (2000, 2010)], 1,
                               priority=10)
    assert not send_and_run(deployment, topology)
    # higher-priority exact entry wins for this 5-tuple
    deployment.dict_put("acts", (1000, 2000), 2)
    assert send_and_run(deployment, topology)


def test_dict_clear():
    src = ("control dict<bit<16>,bool> blocked;\n"
           "header bit<16> dport @ udp.dst_port;\ntele bool b = false;\n"
           "{ b = blocked[dport]; } { } { if (b) { reject; } }")
    topology, deployment = single_switch_deployment(src)
    deployment.dict_put("blocked", 2000, True)
    deployment.dict_clear("blocked")
    assert send_and_run(deployment, topology)


def test_set_add_remove():
    src = ("control set<bit<16>> vip;\n"
           "header bit<16> dport @ udp.dst_port;\n"
           "{ } { } { if (!(dport in vip)) { reject; } }")
    topology, deployment = single_switch_deployment(src)
    assert not send_and_run(deployment, topology)
    deployment.set_add("vip", 2000)
    assert send_and_run(deployment, topology)
    deployment.set_remove("vip", 2000)
    assert not send_and_run(deployment, topology)


def test_unknown_control_rejected():
    topology, deployment = single_switch_deployment("{ } { } { }")
    with pytest.raises(ValueError):
        deployment.set_control("ghost", 1)


def test_reports_decoded_with_payload_and_switch():
    src = ("header bit<16> dport @ udp.dst_port;\n"
           "{ } { } { report((dport, dport)); }")
    topology, deployment = single_switch_deployment(src)
    send_and_run(deployment, topology)
    assert len(deployment.reports) == 1
    report = deployment.reports[0]
    assert report.payload == (2000, 2000)
    assert report.switch_name == "s1"
    assert report.block == "checker"
    deployment.clear_reports()
    assert deployment.reports == []


def test_multi_checker_deployment_and_qualified_controls():
    topology = single_switch(2)
    suite = compile_suite(["waypointing", "routing_validity"])
    deployment = HydraDeployment(topology, suite,
                                 l2_forwarding_map(topology))
    sw = deployment.switches["s1"]
    sw.insert_entry("fwd_table", [1], "fwd_set_egress", [2])
    # waypointing's is_waypoint is unambiguous; routing_validity's
    # is_leaf/is_spine are unique too.
    deployment.set_control("is_waypoint", True)
    deployment.set_control("routing_validity:is_leaf", True)
    deployment.set_control("is_spine", False)
    assert send_and_run(deployment, topology)


def test_ambiguous_control_requires_qualification():
    topology = single_switch(2)
    suite = compile_suite(["valley_free", "loops"])
    deployment = HydraDeployment(topology, suite,
                                 l2_forwarding_map(topology))
    # Both compile fine; now ask for a name owned by exactly one checker.
    deployment.set_control("valley_free:is_spine_switch", False)
    with pytest.raises(ValueError):
        deployment.set_control("nonexistent_thing", 1)


def test_stats_counters():
    src = ("header bit<16> dport @ udp.dst_port;\n"
           "{ } { } { if (dport == 81) { reject; report; } }")
    topology, deployment = single_switch_deployment(src)
    network = deployment.network
    h1_ip = topology.hosts["h1"].ipv4
    h2_ip = topology.hosts["h2"].ipv4
    network.host("h1").send(make_udp(h1_ip, h2_ip, 1, 80))
    network.host("h1").send(make_udp(h1_ip, h2_ip, 1, 81))
    network.run()
    stats = deployment.stats()
    assert stats["switches"]["s1"]["processed"] == 2
    assert stats["switches"]["s1"]["dropped"] == 1
    assert stats["reports_total"] == 1
    assert stats["reports_by_checker"] == {"t": 1}
    assert stats["reports_by_switch"] == {"s1": 1}
    assert stats["check_mode"] == "last_hop"
