"""Runtime value representation tests, including pack/unpack round-trips
for the telemetry wire format (property-based)."""

import pytest
from hypothesis import given, strategies as st

from repro.indus.types import (ArrayType, BitType, BoolType, DictType,
                               SetType, TupleType)
from repro.indus.values import (ArrayValue, DictValue, SetValue, coerce,
                                mask, pack_value, unpack_value, zero_value)


# ---------------------------------------------------------------------------
# Scalars
# ---------------------------------------------------------------------------

def test_mask_truncates():
    assert mask(0x1FF, 8) == 0xFF
    assert mask(-1, 4) == 0xF


def test_zero_values():
    assert zero_value(BitType(8)) == 0
    assert zero_value(BoolType()) is False
    assert len(zero_value(ArrayType(BitType(8), 4))) == 0
    assert len(zero_value(SetType(BitType(8)))) == 0
    assert len(zero_value(DictType(BitType(8), BitType(8)))) == 0
    assert zero_value(TupleType((BitType(8), BoolType()))) == (0, False)


def test_coerce_masks_bit_values():
    assert coerce(BitType(8), 300) == 300 & 0xFF
    assert coerce(BoolType(), 2) is True
    assert coerce(TupleType((BitType(4), BoolType())), (20, 0)) == (4, False)


def test_coerce_tuple_arity_mismatch():
    with pytest.raises(ValueError):
        coerce(TupleType((BitType(4),)), (1, 2))


# ---------------------------------------------------------------------------
# Arrays
# ---------------------------------------------------------------------------

def test_array_push_and_capacity():
    arr = ArrayValue(ArrayType(BitType(8), 3))
    assert arr.push(1) and arr.push(2) and arr.push(3)
    assert not arr.push(4)  # saturates
    assert arr.valid_items() == [1, 2, 3]


def test_array_get_out_of_range_is_zero():
    arr = ArrayValue(ArrayType(BitType(8), 3), [5])
    assert arr.get(0) == 5
    assert arr.get(2) == 0   # unset slot
    assert arr.get(99) == 0  # out of range


def test_array_set_extends_count():
    arr = ArrayValue(ArrayType(BitType(8), 4))
    arr.set(2, 7)
    assert len(arr) == 3
    assert arr.get(2) == 7


def test_array_set_out_of_range_is_dropped():
    arr = ArrayValue(ArrayType(BitType(8), 2))
    arr.set(5, 1)
    assert len(arr) == 0


def test_array_contains_checks_valid_prefix_only():
    arr = ArrayValue(ArrayType(BitType(8), 4), [1])
    assert 1 in arr
    assert 0 not in arr  # slot 1..3 are zero but invalid


def test_array_copy_is_independent():
    arr = ArrayValue(ArrayType(BitType(8), 4), [1, 2])
    clone = arr.copy()
    clone.push(3)
    assert len(arr) == 2 and len(clone) == 3


# ---------------------------------------------------------------------------
# Sets and dicts
# ---------------------------------------------------------------------------

def test_set_capacity_bound():
    s = SetValue(SetType(BitType(8), 2))
    assert s.add(1) and s.add(2)
    assert not s.add(3)
    assert s.add(1)  # re-adding an existing element is fine


def test_dict_miss_yields_zero_value():
    d = DictValue(DictType(BitType(8), BoolType()))
    assert d.get(42) is False
    d.put(42, True)
    assert d.get(42) is True


def test_dict_key_coercion():
    d = DictValue(DictType(BitType(8), BitType(8)))
    d.put(0x1FF, 7)
    assert d.get(0xFF) == 7  # masked key collides deliberately


def test_dict_remove():
    d = DictValue(DictType(BitType(8), BitType(8)), {1: 2})
    d.remove(1)
    assert d.get(1) == 0
    d.remove(1)  # idempotent


# ---------------------------------------------------------------------------
# Wire format round-trips
# ---------------------------------------------------------------------------

@given(st.integers(min_value=0, max_value=2**16 - 1))
def test_pack_unpack_bits(value):
    ty = BitType(16)
    bits, width = pack_value(ty, value)
    assert width == 16
    assert unpack_value(ty, bits, width) == value


@given(st.booleans())
def test_pack_unpack_bool(value):
    ty = BoolType()
    bits, width = pack_value(ty, value)
    assert unpack_value(ty, bits, width) == value


@given(st.lists(st.integers(min_value=0, max_value=255), max_size=5))
def test_pack_unpack_array(items):
    ty = ArrayType(BitType(8), 5)
    arr = ArrayValue(ty, items)
    bits, width = pack_value(ty, arr)
    assert width == ty.width_bits()
    restored = unpack_value(ty, bits, width)
    assert restored.valid_items() == arr.valid_items()


@given(st.tuples(st.integers(min_value=0, max_value=255), st.booleans()))
def test_pack_unpack_tuple(value):
    ty = TupleType((BitType(8), BoolType()))
    bits, width = pack_value(ty, value)
    assert unpack_value(ty, bits, width) == value


@given(st.sets(st.integers(min_value=0, max_value=255), max_size=6))
def test_pack_unpack_set(items):
    ty = SetType(BitType(8), 8)
    s = SetValue(ty, items)
    bits, width = pack_value(ty, s)
    restored = unpack_value(ty, bits, width)
    assert restored.valid_items() == s.valid_items()


def test_dict_is_not_packable():
    with pytest.raises(ValueError):
        pack_value(DictType(BitType(8), BitType(8)), DictValue(
            DictType(BitType(8), BitType(8))))
