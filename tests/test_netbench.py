"""Net-plane benchmark tests (``repro.experiments.netbench``).

Everything runs at a tiny rate/duration — these validate the report
structure, the equivalence stamp, the history mechanics, and the CLI /
API plumbing, not the paper-rate throughput target (that is what
``python -m repro bench --net`` and ``BENCH_net.json`` are for).
"""

import json

import pytest

from repro import api
from repro.cli import main
from repro.experiments.netbench import (
    NET_TARGET_PPS,
    check_equivalence,
    format_net_bench,
    measure_replay,
    run_net_bench,
)

RATE = 20_000.0
DURATION = 0.01


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_measure_replay_arm_structure():
    arm = measure_replay("batched", RATE, DURATION)
    assert arm["mode"] == "batched"
    assert arm["engine"] == "codegen"
    assert arm["offered_packets"] > 0
    assert arm["delivered_packets"] == arm["offered_packets"]
    assert arm["delivered_bytes"] > 0
    assert arm["wall_s"] > 0
    assert arm["replay_pps"] > 0
    assert arm["sim_duration_s"] >= DURATION


def test_measure_replay_modes_agree_on_outputs():
    batched = measure_replay("batched", RATE, DURATION)
    event = measure_replay("event", RATE, DURATION)
    for key in ("offered_packets", "delivered_packets", "delivered_bytes",
                "sim_duration_s"):
        assert batched[key] == event[key], key


def test_check_equivalence_ok():
    checks = check_equivalence(rate_pps=RATE, duration_s=DURATION)
    assert checks["ok"]
    assert checks["delivered_packets_equal"]
    assert checks["delivered_bytes_equal"]
    assert checks["last_arrival_equal"]
    assert checks["offered_packets_equal"]


@pytest.mark.parametrize("engine", ["fast", "codegen"])
def test_check_equivalence_across_engines(engine):
    assert check_equivalence(rate_pps=RATE, duration_s=DURATION,
                             engine=engine)["ok"]


def test_run_net_bench_report_and_history(tmp_path):
    out = tmp_path / "BENCH_net.json"
    result = run_net_bench(rate_pps=RATE, duration_s=DURATION,
                           event_duration_s=DURATION, out_path=str(out))
    assert result["benchmark"] == "net_replay"
    assert result["target_pps"] == NET_TARGET_PPS
    assert set(result["modes"]) == {"batched", "event"}
    assert result["equivalence"]["ok"]
    assert isinstance(result["sustained"], bool)
    # Both profiled phases of each arm land in phase_seconds.
    for phase in ("prepare_batched", "replay_batched",
                  "prepare_event", "replay_event", "equivalence"):
        assert phase in result["phase_seconds"], phase
        assert result["phase_seconds"][phase] >= 0

    on_disk = json.loads(out.read_text())
    assert len(on_disk["history"]) == 1
    # A second run appends to the history rather than replacing it.
    again = run_net_bench(rate_pps=RATE, duration_s=DURATION,
                          event_duration_s=DURATION, out_path=str(out))
    assert len(again["history"]) == 2
    entry = again["history"][-1]
    assert entry["batched_pps"] == again["modes"]["batched"]["replay_pps"]
    assert "sustained" in entry


def test_format_net_bench_renders():
    result = run_net_bench(rate_pps=RATE, duration_s=DURATION,
                           event_duration_s=DURATION)
    text = format_net_bench(result)
    assert "net-plane replay benchmark" in text
    assert "batched" in text and "event" in text
    assert "equivalence" in text


def test_api_bench_net(tmp_path):
    out = tmp_path / "BENCH_net.json"
    result = api.bench(kind="net", rate_pps=RATE, duration_s=DURATION,
                       out=str(out))
    assert result["benchmark"] == "net_replay"
    assert result["equivalence"]["ok"]
    assert out.exists()


def test_cli_bench_net(tmp_path, capsys):
    out = tmp_path / "BENCH_net.json"
    code, stdout, _ = run_cli(capsys, "bench", "--net",
                              "--rate", str(RATE),
                              "--duration", str(DURATION),
                              "--out", str(out))
    assert "net-plane replay benchmark" in stdout
    assert out.exists()
    report = json.loads(out.read_text())
    assert report["equivalence"]["ok"]
    # Exit code reflects the 350K pps target; at this toy rate either
    # verdict is legitimate, but it must match the report.
    assert code == (0 if report["sustained"] else 1)


def test_bench_guard_net_smoke(capsys):
    import sys
    sys.path.insert(0, "benchmarks")
    try:
        from bench_guard import main as guard_main
    finally:
        sys.path.pop(0)
    code = guard_main(["--net", "--net-rate", str(RATE),
                       "--net-duration", str(DURATION)])
    out = capsys.readouterr().out
    assert "bench guard (net)" in out
    assert code in (0, 1)  # relative speed on a toy slice may flap
    assert "equivalence ok" in out
