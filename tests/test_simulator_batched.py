"""Batched-mode network tests: timing-wheel semantics, batched-vs-event
exactness (delivery counts, timestamps, and the final clock must be
byte-identical), and the accounting regressions fixed alongside the
batch hot loop (NIC drop counting, ``last_rx_time``, wire-roundtrip
fidelity, lazy trace generation)."""

import random
from itertools import islice

import pytest

from repro.experiments.fig12 import Fig12Config, run_rtt_experiment
from repro.net.packet import ip, make_udp
from repro.net.simulator import Network, Simulator
from repro.net.topology import single_switch
from repro.p4.bmv2 import Bmv2Switch
from repro.p4.programs import l2_port_forwarding
from repro.workloads.campus import CampusTraceGenerator


# ---------------------------------------------------------------------------
# Timing wheel
# ---------------------------------------------------------------------------

def test_wheel_orders_events_across_slots():
    sim = Simulator(slot_width_s=1e-6, wheel_slots=8)
    order = []
    for label, t in (("d", 7.5e-6), ("a", 0.2e-6), ("c", 3.1e-6),
                     ("b", 0.9e-6)):
        sim.schedule_at(t, lambda l=label: order.append(l))
    sim.run()
    assert order == ["a", "b", "c", "d"]


def test_wheel_ties_fire_in_schedule_order():
    sim = Simulator(slot_width_s=1e-6, wheel_slots=8)
    order = []
    for label in "abc":
        sim.schedule_at(2.5e-6, lambda l=label: order.append(l))
    sim.run()
    assert order == ["a", "b", "c"]


def test_far_future_events_fall_back_and_migrate():
    """Events beyond the wheel's span park in the far heap and still
    fire in exact order once the clock reaches them."""
    sim = Simulator(slot_width_s=1e-3, wheel_slots=4)  # span: 4 ms
    order = []
    for label, t in (("far2", 0.1), ("near", 2e-3), ("far1", 0.05),
                     ("mid", 3.9e-3)):
        sim.schedule_at(t, lambda l=label: order.append(l))
    sim.run()
    assert order == ["near", "mid", "far1", "far2"]
    assert sim.now == 0.1


def test_wheel_handles_events_scheduled_while_running():
    """Handlers scheduling both nearby and far-future follow-ups keep
    exact order even after the wheel's base has advanced."""
    sim = Simulator(slot_width_s=1e-6, wheel_slots=4)
    order = []

    def first():
        order.append("first")
        sim.schedule_at(sim.now + 0.5e-6, lambda: order.append("near"))
        sim.schedule_at(sim.now + 1.0, lambda: order.append("far"))

    sim.schedule_at(3e-6, first)
    sim.schedule_at(2.0e-6, lambda: order.append("earlier"))
    sim.run()
    assert order == ["earlier", "first", "near", "far"]


def test_wheel_run_until_is_exact():
    sim = Simulator(slot_width_s=1e-3, wheel_slots=4)
    fired = []
    sim.schedule_at(0.25, lambda: fired.append(1))
    sim.run(until=0.1)
    assert not fired
    assert sim.now == 0.1
    assert sim.pending == 1
    sim.run()
    assert fired and sim.now == 0.25


def test_wheel_matches_reference_order_property():
    """Random schedules (slot-local, cross-slot, far-future, exact
    ties) execute in the same (time, insertion) order a plain sorted
    heap would produce."""
    rng = random.Random(7)
    for _ in range(20):
        sim = Simulator(slot_width_s=1e-6, wheel_slots=8)
        times = []
        for _ in range(60):
            kind = rng.randrange(4)
            if kind == 0:
                times.append(rng.uniform(0, 8e-6))       # inside wheel
            elif kind == 1:
                times.append(rng.uniform(0, 1e-3))       # beyond span
            elif kind == 2:
                times.append(rng.uniform(0, 5.0))        # far future
            else:
                times.append(1e-6 * rng.randrange(6))    # slot edges/ties
        fired = []
        for i, t in enumerate(times):
            sim.schedule_at(t, lambda i=i: fired.append(i))
        sim.run()
        expected = [i for _, i in sorted((t, i)
                                         for i, t in enumerate(times))]
        assert fired == expected


# ---------------------------------------------------------------------------
# Batched vs event exactness
# ---------------------------------------------------------------------------

def _make_network(batched, hosts=2, **kwargs):
    topo = single_switch(hosts)
    bmv2 = Bmv2Switch(l2_port_forwarding(), name="s1")
    entries = []
    for port in range(1, hosts + 1):
        out = 2 if port == 1 else 1
        if hosts > 2:
            out = hosts if port != hosts else 1
        entries.append(bmv2.insert_entry("fwd_table", [port],
                                         "fwd_set_egress", [out]))
    network = Network(topo, {"s1": bmv2}, batched=batched, **kwargs)
    return topo, network, bmv2, entries


def _snapshot(network):
    # packet_ids come from a process-global counter, so two networks
    # never see the same absolute ids; remap them by first appearance
    # so the comparison checks identity *structure* (which deliveries
    # share an emission) rather than counter offsets.
    id_map = {}

    def rel(packet_id):
        return id_map.setdefault(packet_id, len(id_map))

    return {
        "delivered": network.packets_delivered,
        "lost": network.packets_lost,
        "now": network.sim.now,
        "hosts": {
            name: {
                "tx": host.tx_count,
                "rx": host.rx_count,
                "rx_bytes": host.rx_bytes,
                "last_rx": host.last_rx_time,
                "nic_drops": host.nic_drops,
                "received": [(t, rel(p.packet_id), p.length)
                             for t, p in host.received],
            }
            for name, host in network.hosts.items()
        },
    }


def _run_both(attach, hosts=2, until=None, **kwargs):
    """Run the same emission schedule in event and batched mode and
    demand identical observable outcomes (including timestamps and the
    final simulator clock)."""
    snaps = []
    for batched in (False, True):
        topo, network, bmv2, entries = _make_network(batched, hosts,
                                                     **kwargs)
        attach(topo, network, bmv2, entries)
        if until is not None:
            network.run(until=until)
        network.run()
        snaps.append(_snapshot(network))
    assert snaps[0] == snaps[1]
    return snaps[1]


def _template_stream(topo, count, gap_s, payload_len=100, start=0.0):
    packet = make_udp(topo.hosts["h1"].ipv4, topo.hosts["h2"].ipv4,
                      1111, 2222, payload_len=payload_len)
    return [(start + i * gap_s, packet) for i in range(count)]


def test_batched_replay_matches_event_mode_exactly():
    snap = _run_both(lambda topo, network, bmv2, entries:
                     network.attach_source(
                         "h1", iter(_template_stream(topo, 200, 2e-6))))
    assert snap["hosts"]["h2"]["rx"] == 200
    assert snap["delivered"] == 200


def test_batched_distinct_packets_match_event_mode():
    def attach(topo, network, bmv2, entries):
        emissions = [
            (i * 3e-6,
             make_udp(topo.hosts["h1"].ipv4, topo.hosts["h2"].ipv4,
                      1000 + (i % 7), 2222, payload_len=64 + (i % 3) * 400))
            for i in range(120)
        ]
        network.attach_source("h1", iter(emissions))

    snap = _run_both(attach)
    assert snap["hosts"]["h2"]["rx"] == 120


def test_batched_contention_and_queue_full_match_event_mode():
    """Two sources racing for one output port: FIFO queueing and
    queue_full drops must land identically in both modes."""
    def attach(topo, network, bmv2, entries):
        big_1 = make_udp(topo.hosts["h1"].ipv4, topo.hosts["h3"].ipv4,
                         1, 2, payload_len=1400)
        big_2 = make_udp(topo.hosts["h2"].ipv4, topo.hosts["h3"].ipv4,
                         3, 4, payload_len=1400)
        network.attach_source(
            "h1", iter([(i * 1e-6, big_1) for i in range(150)]))
        network.attach_source(
            "h2", iter([(0.5e-6 + i * 1e-6, big_2) for i in range(150)]))

    snap = _run_both(attach, hosts=3, max_queue_delay_s=2e-5)
    assert snap["lost"] > 0, "scenario must actually overflow the FIFO"
    assert snap["hosts"]["h3"]["rx"] + snap["lost"] == 300


def test_batched_rx_callbacks_match_event_mode():
    """A consuming rx callback disables inline fused delivery; the
    fallback must stay exact."""
    def attach(topo, network, bmv2, entries):
        network.host("h2").add_rx_callback(lambda t, p: None)
        network.attach_source(
            "h1", iter(_template_stream(topo, 100, 2e-6)))

    snap = _run_both(attach)
    assert snap["hosts"]["h2"]["rx"] == 100
    assert snap["hosts"]["h2"]["received"] == []  # consumed


def test_batched_mid_run_config_change_matches_event_mode():
    """A control-plane change mid-replay invalidates cached transit
    records; deliveries before and after must match event mode."""
    def attach(topo, network, bmv2, entries):
        def reroute():
            bmv2.delete_entry("fwd_table", entries[0])
            bmv2.insert_entry("fwd_table", [1], "fwd_set_egress", [3])

        network.sim.schedule_at(1.5e-4, reroute)
        network.attach_source(
            "h1", iter(_template_stream(topo, 100, 3e-6)))

    snap = _run_both(attach, hosts=3)
    # Before the reroute packets reach h3 (3-host wiring sends 1->3);
    # the reroute is a no-op route-wise but must still bump the cache
    # generation without perturbing timing.
    assert snap["hosts"]["h3"]["rx"] == 100


def test_batched_run_until_flushes_and_resumes_exactly():
    snap = _run_both(
        lambda topo, network, bmv2, entries: network.attach_source(
            "h1", iter(_template_stream(topo, 100, 2e-6))),
        until=1e-4)
    assert snap["hosts"]["h2"]["rx"] == 100


def test_same_template_from_two_hosts_replays_each_hosts_path():
    """A memoized transit record is keyed to the emitting host: the
    same template object sent from h1 and h2 must replay h1's and h2's
    distinct paths, not whichever was recorded first."""
    def attach(topo, network, bmv2, entries):
        shared = make_udp(topo.hosts["h1"].ipv4, topo.hosts["h3"].ipv4,
                          1, 2, payload_len=200)
        network.attach_source(
            "h1", iter([(i * 4e-6, shared) for i in range(50)]))
        network.attach_source(
            "h2", iter([(2e-6 + i * 4e-6, shared) for i in range(50)]))

    snap = _run_both(attach, hosts=3)
    assert snap["hosts"]["h3"]["rx"] == 100
    assert snap["hosts"]["h1"]["tx"] == 50
    assert snap["hosts"]["h2"]["tx"] == 50


def test_fig12_rtt_series_bit_identical_under_batched_mode():
    """The paper experiment itself: RTT series with a checker deployed
    must be bit-identical between the two network modes."""
    runs = []
    for batched in (False, True):
        config = Fig12Config(duration_s=0.05, batched=batched)
        runs.append(run_rtt_experiment(["loops"], "arm", config=config))
    assert runs[0].series == runs[1].series
    assert runs[0].rtts_ms == runs[1].rtts_ms
    assert runs[0].packets_lost == runs[1].packets_lost


# ---------------------------------------------------------------------------
# Accounting regressions
# ---------------------------------------------------------------------------

def test_tx_count_counts_wire_transmissions_not_sends():
    """``Host.send`` with a delay queues the packet; tx_count moves
    only when serialization onto the wire actually starts."""
    topo, network, _, _ = _make_network(batched=False)
    h1 = network.host("h1")
    packet = make_udp(topo.hosts["h1"].ipv4, topo.hosts["h2"].ipv4, 1, 2)
    h1.send(packet, delay=0.5)
    assert h1.tx_count == 0
    network.run(until=0.1)
    assert h1.tx_count == 0
    network.run()
    assert h1.tx_count == 1


def test_nic_drops_counted_separately_from_transmissions():
    topo, network, _, _ = _make_network(batched=False,
                                        max_queue_delay_s=1e-9)
    h1, h2 = network.host("h1"), network.host("h2")
    for _ in range(10):
        h1.send(make_udp(topo.hosts["h1"].ipv4, topo.hosts["h2"].ipv4,
                         1, 2, payload_len=1400))
    network.run()
    assert h1.nic_drops > 0
    assert h1.tx_count + h1.nic_drops == 10
    assert network.packets_lost == h1.nic_drops
    assert h2.rx_count == h1.tx_count


def test_last_rx_time_survives_consuming_callbacks():
    topo, network, _, _ = _make_network(batched=False)
    seen = []
    network.host("h2").add_rx_callback(lambda t, p: seen.append(t))
    network.host("h1").send(
        make_udp(topo.hosts["h1"].ipv4, topo.hosts["h2"].ipv4, 1, 2))
    network.run()
    h2 = network.host("h2")
    assert h2.received == []
    assert h2.last_rx_time == seen[-1]


def test_wire_roundtrip_preserves_invalid_header_bits():
    packet = make_udp(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 7, 8,
                      payload_len=33)
    victim = packet.headers[1]
    victim.valid = False
    before = [(h.name, h.valid, h.to_bits()) for h in packet.headers]
    out = Network._wire_roundtrip(packet)
    after = [(h.name, h.valid, h.to_bits()) for h in out.headers]
    assert after == before
    assert out.packet_id == packet.packet_id
    assert out.payload_len == packet.payload_len


def test_campus_trace_generates_lazily_at_paper_rate():
    """An hour of 400K pps trace must hand out its first packets
    instantly — nothing is pre-sized or materialized."""
    generator = CampusTraceGenerator(seed=1, reuse_packets=True)
    stream = generator.timed_packets(rate_pps=400_000, duration_s=3600.0)
    first = list(islice(stream, 100))
    assert len(first) == 100
    assert first[0][0] < first[99][0]


def test_campus_trace_covers_full_duration():
    """Unlucky inter-arrival tails may not end the trace early: the
    stream covers the whole window and stays inside it."""
    generator = CampusTraceGenerator(seed=3)
    events = list(generator.timed_packets(rate_pps=2000, duration_s=0.5))
    assert all(t <= 0.5 for t, _ in events)
    assert events[-1][0] > 0.45
    assert len(events) == pytest.approx(1000, rel=0.25)


def test_high_rate_replay_accounts_every_packet():
    """At rates that overflow the NIC FIFO, offered packets must be
    conserved across delivered + drops in both modes."""
    def attach(topo, network, bmv2, entries):
        packet = make_udp(topo.hosts["h1"].ipv4, topo.hosts["h2"].ipv4,
                          1, 2, payload_len=1400)
        network.attach_source(
            "h1", iter([(i * 1e-7, packet) for i in range(400)]))

    snap = _run_both(attach, max_queue_delay_s=1e-5)
    h1, h2 = snap["hosts"]["h1"], snap["hosts"]["h2"]
    assert h1["nic_drops"] > 0
    assert h1["tx"] + h1["nic_drops"] == 400
    assert h2["rx"] == h1["tx"]
    assert snap["lost"] == h1["nic_drops"]
