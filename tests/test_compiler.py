"""Compiler tests: layout, per-construct code generation, and behaviour
of compiled checkers executed on the behavioral model.

The helper :func:`deploy_standalone` builds a single edge switch running
a compiled checker linked with L2 port forwarding (ports 1 and 2 are the
edge ports), so checker semantics can be observed packet by packet.
"""

import pytest

from repro.compiler import build_layout, compile_program, standalone_program
from repro.compiler.codegen import CompiledChecker
from repro.indus import check, parse
from repro.indus.errors import CompileError
from repro.net.packet import ETH_TYPE_IPV4, ip, make_udp
from repro.p4.bmv2 import Bmv2Switch


def deploy_standalone(source_or_compiled, controls=None):
    if isinstance(source_or_compiled, CompiledChecker):
        compiled = source_or_compiled
    else:
        compiled = compile_program(source_or_compiled, name="t")
    program = standalone_program(compiled)
    sw = Bmv2Switch(program, name="s1")
    sw.insert_entry("fwd_table", [1], "fwd_set_egress", [2])
    sw.insert_entry("fwd_table", [2], "fwd_set_egress", [1])
    for port in (1, 2):
        sw.insert_entry(compiled.inject_table, [port],
                        compiled.mark_first_action)
        sw.insert_entry(compiled.strip_table, [port],
                        compiled.mark_last_action)
    for name, value in (controls or {}).items():
        for table in compiled.control_tables[name]:
            if isinstance(value, dict):
                for key, entry_value in value.items():
                    match = [(k, k) for k in
                             (key if isinstance(key, tuple) else (key,))]
                    sw.insert_entry(
                        table, match,
                        compiled.dict_hit_action(name, table),
                        [int(entry_value)], priority=1000)
            else:
                sw.set_default_action(
                    table, compiled.scalar_load_action(name, table),
                    [int(value)])
    return compiled, sw


def send(sw, sport=1000, dport=2000, in_port=1, payload=64):
    packet = make_udp(ip(10, 0, 0, 1), ip(10, 0, 0, 2), sport, dport,
                      payload_len=payload)
    return sw.process(packet, in_port)


# ---------------------------------------------------------------------------
# Layout
# ---------------------------------------------------------------------------

def test_layout_scalar_fields():
    checked = check(parse("tele bit<8> a;\ntele bool b;\n{ } { } { }"))
    layout = build_layout(checked)
    assert layout.header.field("a").width == 8
    assert layout.header.field("b").width == 1
    assert layout.header.fields[0].name == "next_eth_type"


def test_layout_array_fields():
    checked = check(parse("tele bit<16>[3] xs;\n{ } { } { }"))
    layout = build_layout(checked)
    names = [f.name for f in layout.header.fields]
    assert "xs_count" in names
    for i in range(3):
        assert f"xs_{i}" in names and f"xs_{i}_valid" in names
    assert layout.array("xs").elem_width == 16


def test_layout_hop_count_only_when_used():
    without = build_layout(check(parse("{ } { } { }")))
    with_hc = build_layout(check(parse(
        "tele bit<8> h;\n{ } { h = hop_count; } { }")))
    names_without = [f.name for f in without.header.fields]
    names_with = [f.name for f in with_hc.header.fields]
    assert "hop_count" not in names_without
    assert "hop_count" in names_with


def test_namespaced_layout_header_name():
    checked = check(parse("{ } { } { }"))
    compiled = compile_program(checked, name="x", namespace="x")
    assert compiled.hydra_name == "hydra_x"
    assert compiled.meta_prefix == "ih_x_"


# ---------------------------------------------------------------------------
# End-to-end checker behaviour through the compiled pipeline
# ---------------------------------------------------------------------------

def test_telemetry_header_injected_and_stripped():
    src = "tele bit<8> x = 3;\n{ } { } { }"
    compiled, sw = deploy_standalone(src)
    out = send(sw)
    names = [h.name for h in out[0][1].headers]
    assert "hydra" not in names
    assert out[0][1].find("ethernet").eth_type == ETH_TYPE_IPV4


def test_reject_drops_at_last_hop():
    src = "{ } { } { reject; }"
    compiled, sw = deploy_standalone(src)
    assert send(sw) == []


def test_reject_only_when_condition_holds():
    src = ("header bit<16> dport @ udp.dst_port;\n"
           "{ } { } { if (dport == 81) { reject; } }")
    compiled, sw = deploy_standalone(src)
    assert send(sw, dport=81) == []
    assert len(send(sw, dport=80)) == 1


def test_report_emits_digest_with_payload():
    src = ("header bit<16> dport @ udp.dst_port;\n"
           "{ } { } { report((dport, dport)); }")
    compiled, sw = deploy_standalone(src)
    send(sw, dport=77)
    assert len(sw.digests) == 1
    site_id, a, b = sw.digests[0].values
    assert (a, b) == (77, 77)
    assert compiled.report_sites[site_id].block == "checker"


def test_tele_scalar_initializer_applied_at_inject():
    src = ("tele bit<8> x = 9;\ntele bit<8> y = 0;\n"
           "{ y = x; } { } { if (y != 9) { reject; } }")
    compiled, sw = deploy_standalone(src)
    assert len(send(sw)) == 1


def test_sensor_register_read_modify_write():
    src = ("sensor bit<32> count = 0;\n"
           "{ } { count += 1; } { if (count > 2) { reject; } }")
    compiled, sw = deploy_standalone(src)
    assert len(send(sw)) == 1
    assert len(send(sw)) == 1
    assert send(sw) == []  # third packet: count becomes 3 -> reject
    reg = compiled.registers[0].name
    assert sw.register_read(reg, 0) == 3


def test_control_scalar_via_default_action():
    src = ("control bit<16> limit;\nheader bit<16> dport @ udp.dst_port;\n"
           "{ } { } { if (dport > limit) { reject; } }")
    compiled, sw = deploy_standalone(src, controls={"limit": 100})
    assert len(send(sw, dport=50)) == 1
    assert send(sw, dport=200) == []


def test_control_dict_lookup_and_miss_default():
    src = ("control dict<bit<16>,bool> blocked;\n"
           "header bit<16> dport @ udp.dst_port;\n"
           "{ } { } { if (blocked[dport]) { reject; } }")
    compiled, sw = deploy_standalone(src, controls={"blocked": {81: 1}})
    assert send(sw, dport=81) == []
    assert len(send(sw, dport=80)) == 1  # miss -> false


def test_dict_lookup_with_tuple_key():
    src = ("control dict<(bit<16>,bit<16>),bool> pairs;\n"
           "header bit<16> sport @ udp.src_port;\n"
           "header bit<16> dport @ udp.dst_port;\n"
           "{ } { } { if (pairs[(sport, dport)]) { reject; } }")
    compiled, sw = deploy_standalone(src, controls={"pairs": {(5, 6): 1}})
    assert send(sw, sport=5, dport=6) == []
    assert len(send(sw, sport=6, dport=5)) == 1


def test_push_and_in_over_array():
    src = ("tele bit<16>[4] seen;\nheader bit<16> dport @ udp.dst_port;\n"
           "{ } { seen.push(dport); } { if (81 in seen) { reject; } }")
    compiled, sw = deploy_standalone(src)
    assert send(sw, dport=81) == []
    assert len(send(sw, dport=80)) == 1


def test_push_saturates_at_capacity():
    src = ("tele bit<8>[2] xs;\ntele bit<32> n = 0;\n"
           "{ xs.push(1); xs.push(2); xs.push(3); n = length(xs); }"
           " { } { if (n != 2) { reject; } }")
    compiled, sw = deploy_standalone(src)
    assert len(send(sw)) == 1


def test_for_loop_unrolled_sums():
    src = ("tele bit<8>[4] xs;\ntele bit<8> total = 0;\n"
           "{ xs.push(1); xs.push(2); }\n{ }\n"
           "{ for (v in xs) { total = total + v; }\n"
           "  if (total != 3) { reject; } }")
    compiled, sw = deploy_standalone(src)
    assert len(send(sw)) == 1


def test_multi_array_for_loop():
    src = ("tele bit<8>[4] a;\ntele bit<8>[4] b;\ntele bit<8> dot = 0;\n"
           "{ a.push(2); a.push(3); b.push(10); b.push(100); }\n{ }\n"
           "{ for (u, v in a, b) { dot = dot + u * v; }\n"
           "  if (dot != 64) { reject; } }")
    # 2*10 + 3*100 = 320 & 0xFF = 64
    compiled, sw = deploy_standalone(src)
    assert len(send(sw)) == 1


def test_dynamic_array_index_read():
    src = ("tele bit<8>[4] xs;\ntele bit<8> i = 1;\ntele bit<8> r = 0;\n"
           "{ xs.push(7); xs.push(9); r = xs[i]; }\n{ }\n"
           "{ if (r != 9) { reject; } }")
    compiled, sw = deploy_standalone(src)
    assert len(send(sw)) == 1


def test_const_array_index_assignment():
    src = ("tele bit<8>[4] xs;\n"
           "{ xs[2] = 5; }\n{ }\n"
           "{ if (xs[2] != 5 || length(xs) != 3) { reject; } }")
    compiled, sw = deploy_standalone(src)
    assert len(send(sw)) == 1


def test_absdiff_translation():
    src = ("tele bit<32> a = 3;\ntele bit<32> b = 10;\n"
           "{ } { } { if (abs(a - b) != 7) { reject; } }")
    compiled, sw = deploy_standalone(src)
    assert len(send(sw)) == 1


def test_packet_length_builtin_reads_standard_metadata():
    src = ("tele bit<32> len = 0;\n"
           "{ len = packet_length; } { } "
           "{ if (len < 100) { reject; } }")
    compiled, sw = deploy_standalone(src)
    # 64B payload + 42B headers + telemetry: well over 100 once the
    # hydra header is counted, so the packet passes.
    assert len(send(sw, payload=100)) == 1
    assert send(sw, payload=0) == []


def test_hop_count_increments_per_hop():
    src = ("tele bit<8> h = 0;\n"
           "{ } { h = hop_count; } { if (h != 1) { reject; } }")
    compiled, sw = deploy_standalone(src)
    assert len(send(sw)) == 1  # single hop -> one telemetry execution


def test_report_in_init_block_marked():
    src = "{ report; } { } { }"
    compiled, sw = deploy_standalone(src)
    send(sw)
    site_id = sw.digests[0].values[0]
    assert compiled.report_sites[site_id].block == "init"


# ---------------------------------------------------------------------------
# Compiler restrictions
# ---------------------------------------------------------------------------

def test_sensor_array_maps_to_register_bank():
    source = "sensor bit<8>[4] s;\n{ } { s.push(1); } { }"
    compiled = compile_program(source)
    regs = {r.name: r for r in compiled.registers}
    bank = regs[f"{compiled.meta_prefix}reg_s"]
    cursor = regs[f"{compiled.meta_prefix}reg_s_cnt"]
    assert bank.size == 4 and bank.width == 8
    assert cursor.size == 1


def test_sensor_dict_unsupported_by_backend():
    source = "sensor set<bit<8>> s;\n{ } { } { }"
    with pytest.raises(Exception):
        compile_program(source)


def test_tele_set_unsupported_by_backend():
    source = "tele set<bit<8>> s;\n{ } { } { }"
    with pytest.raises(CompileError):
        compile_program(source)


def test_unbound_header_variable_is_an_error():
    source = "header bit<8> mystery_field;\n{ } { } { }"
    compiled = compile_program(source)  # declaration alone is fine
    source = ("header bit<8> mystery_field;\ntele bit<8> x;\n"
              "{ x = mystery_field; } { } { }")
    with pytest.raises(CompileError):
        compile_program(source)


def test_default_bindings_cover_paper_names():
    source = ("header bit<8> in_port;\nheader bit<8> eg_port;\n"
              "tele bit<8> a;\n{ a = in_port; } { a = eg_port; } { }")
    compile_program(source)  # must not raise


def test_metadata_list_reported():
    compiled = compile_program("tele bit<8> x;\n{ } { } { }")
    names = [n for n, _ in compiled.metadata]
    assert compiled.first_hop_meta in names
    assert compiled.reject_meta in names
