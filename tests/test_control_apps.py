"""Control-plane app tests: report subscription and closed loops."""

import pytest

from repro.compiler import compile_program
from repro.net.packet import ip, make_udp
from repro.net.topology import single_switch
from repro.p4.programs import l2_port_forwarding
from repro.properties import compile_property
from repro.runtime.apps import (ControlApp, LoadImbalanceAlarm,
                                StatefulFirewallApp, ViolationLogger)
from repro.runtime.deployment import HydraDeployment

INSIDE = ip(10, 0, 1, 1)
OUTSIDE = ip(10, 0, 1, 2)


def firewall_deployment():
    topology = single_switch(2)
    compiled = compile_property("stateful_firewall")
    deployment = HydraDeployment(topology, compiled,
                                 {"s1": l2_port_forwarding()})
    sw = deployment.switches["s1"]
    sw.insert_entry("fwd_table", [1], "fwd_set_egress", [2])
    sw.insert_entry("fwd_table", [2], "fwd_set_egress", [1])
    return topology, deployment


def send(deployment, src_ip, dst_ip, src_host, dst_host):
    network = deployment.network
    packet = make_udp(src_ip, dst_ip, 1111, 2222)
    dest = network.host(dst_host)
    before = dest.rx_count
    network.host(src_host).send(packet)
    network.run()
    return dest.rx_count > before


def test_firewall_app_closes_the_loop():
    topology, deployment = firewall_deployment()
    app = StatefulFirewallApp(deployment)
    deployment.dict_put("allowed", (INSIDE, OUTSIDE), True)

    # Outbound traffic triggers the reverse-entry report...
    assert send(deployment, INSIDE, OUTSIDE, "h1", "h2")
    assert app.installed == [(OUTSIDE, INSIDE)]
    # ...and the reply now flows without operator involvement.
    assert send(deployment, OUTSIDE, INSIDE, "h2", "h1")


def test_firewall_app_deduplicates_installs():
    topology, deployment = firewall_deployment()
    app = StatefulFirewallApp(deployment)
    deployment.dict_put("allowed", (INSIDE, OUTSIDE), True)
    for _ in range(3):
        send(deployment, INSIDE, OUTSIDE, "h1", "h2")
    assert len(app.installed) == 1


def test_checker_filter_ignores_other_reports():
    topology, deployment = firewall_deployment()
    alarm = LoadImbalanceAlarm(deployment, threshold=1)
    send(deployment, INSIDE, OUTSIDE, "h1", "h2")
    # The firewall emits reports, but none belong to load_balance.
    assert not alarm.alarmed
    assert alarm.handled == 0


def test_load_imbalance_alarm():
    topology = single_switch(2)
    compiled = compile_property("load_balance")
    deployment = HydraDeployment(topology, compiled,
                                 {"s1": l2_port_forwarding()})
    sw = deployment.switches["s1"]
    sw.insert_entry("fwd_table", [1], "fwd_set_egress", [2])
    deployment.set_control("left_port", 2)
    deployment.set_control("right_port", 3)
    deployment.dict_put("is_uplink", 2, True)
    deployment.dict_put("is_uplink", 3, True)
    deployment.set_control("thresh", 10)
    alarm = LoadImbalanceAlarm(deployment, threshold=3)
    network = deployment.network
    for _ in range(4):  # all load on the left port
        network.host("h1").send(make_udp(INSIDE, OUTSIDE, 1, 2,
                                         payload_len=200))
    network.run()
    assert alarm.alarmed
    assert alarm.alarms == ["s1"]
    assert alarm.counts["s1"] >= 3


def test_violation_logger_groups_by_switch():
    topology, deployment = firewall_deployment()
    logger = ViolationLogger(deployment)
    send(deployment, OUTSIDE, INSIDE, "h2", "h1")  # unsolicited: report
    assert logger.summary() == {"s1": 1}
    assert logger.by_switch["s1"][0].checker == "stateful_firewall"


def test_base_class_requires_on_report():
    topology, deployment = firewall_deployment()
    app = ControlApp(deployment)
    with pytest.raises(NotImplementedError):
        send(deployment, OUTSIDE, INSIDE, "h2", "h1")
