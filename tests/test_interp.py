"""Reference interpreter tests: expression semantics, statement
execution, verdict accumulation, and state separation."""

import pytest

from repro.indus import (EvalError, HopContext, Monitor, check, parse)


def run_once(source, headers=None, controls=None, sensors=None,
             packet_length=0, hop_count=0, switch_id=0):
    """Run one single-hop packet through a program."""
    monitor = Monitor.from_source(source)
    ctrl = monitor.new_controls()
    for name, value in (controls or {}).items():
        if isinstance(value, dict):
            for k, v in value.items():
                ctrl.dict_put(name, k, v)
        else:
            ctrl.set_value(name, value)
    ctx = HopContext(headers=headers or {}, controls=ctrl,
                     sensors=sensors or monitor.new_sensors(),
                     first_hop=True, last_hop=True,
                     packet_length=packet_length, hop_count=hop_count,
                     switch_id=switch_id)
    state = monitor.run_path([ctx])
    return state


def final_tele(source, var, **kwargs):
    return run_once(source, **kwargs).tele[var]


# ---------------------------------------------------------------------------
# Expression semantics
# ---------------------------------------------------------------------------

def test_arithmetic_wraps_at_declared_width():
    src = "tele bit<8> x = 250;\n{ x = x + 10; } { } { }"
    assert final_tele(src, "x") == (250 + 10) % 256


def test_subtraction_wraps():
    src = "tele bit<8> x = 3;\n{ x = x - 5; } { } { }"
    assert final_tele(src, "x") == (3 - 5) % 256


def test_division_by_zero_is_zero():
    src = "tele bit<8> x = 10;\ntele bit<8> z = 0;\n{ x = x / z; } { } { }"
    assert final_tele(src, "x") == 0


def test_modulo_by_zero_is_zero():
    src = "tele bit<8> x = 10;\ntele bit<8> z = 0;\n{ x = x % z; } { } { }"
    assert final_tele(src, "x") == 0


def test_bitwise_operations():
    src = ("tele bit<8> x = 0;\n"
           "{ x = (12 & 10) | (1 << 6) ^ 3; } { } { }")
    assert final_tele(src, "x") == (12 & 10) | (1 << 6) ^ 3


def test_abs_is_absolute_difference():
    src = ("tele bit<32> x = 0;\ntele bit<32> a = 3;\ntele bit<32> b = 10;\n"
           "{ x = abs(a - b); } { } { }")
    assert final_tele(src, "x") == 7


def test_abs_symmetric():
    src = ("tele bit<32> x = 0;\ntele bit<32> a = 10;\ntele bit<32> b = 3;\n"
           "{ x = abs(a - b); } { } { }")
    assert final_tele(src, "x") == 7


def test_min_max():
    src = ("tele bit<8> lo = 0;\ntele bit<8> hi = 0;\n"
           "{ lo = min(3, 9); hi = max(3, 9); } { } { }")
    state = run_once(src)
    assert state.tele["lo"] == 3 and state.tele["hi"] == 9


def test_comparisons():
    src = ("tele bool r = false;\ntele bit<8> a = 5;\n"
           "{ r = a > 4 && a >= 5 && a < 6 && a <= 5 && a == 5 && a != 4; }"
           " { } { }")
    assert final_tele(src, "r") is True


def test_logical_short_circuit_and_dict_default():
    # The right side of || is a dict miss that would be false anyway,
    # but short-circuit means it is never consulted.
    src = ("control dict<bit<8>,bool> d;\ntele bool r = false;\n"
           "{ r = true || d[9]; } { } { }")
    assert final_tele(src, "r") is True


def test_bool_and_bit_equality_normalizes():
    src = ("tele bool b = true;\ntele bool r = false;\n"
           "control dict<bit<8>,bool> d;\n"
           "{ r = d[1] == false; } { } { }")
    assert final_tele(src, "r") is True


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

def test_if_elsif_else_choose_first_match():
    src = ("tele bit<8> x = 2;\ntele bit<8> r = 0;\n"
           "{ if (x == 1) { r = 10; } elsif (x == 2) { r = 20; }"
           " else { r = 30; } } { } { }")
    assert final_tele(src, "r") == 20


def test_else_branch():
    src = ("tele bit<8> x = 9;\ntele bit<8> r = 0;\n"
           "{ if (x == 1) { r = 10; } else { r = 30; } } { } { }")
    assert final_tele(src, "r") == 30


def test_push_and_for_iteration():
    src = ("tele bit<8>[4] xs;\ntele bit<8> total = 0;\n"
           "{ xs.push(1); xs.push(2); xs.push(3); }\n"
           "{ }\n"
           "{ for (v in xs) { total = total + v; } }")
    assert final_tele(src, "total") == 6


def test_for_over_empty_array_does_nothing():
    src = ("tele bit<8>[4] xs;\ntele bit<8> total = 0;\n"
           "{ } { } { for (v in xs) { total = total + 1; } }")
    assert final_tele(src, "total") == 0


def test_multi_variable_for_zips():
    src = ("tele bit<8>[4] a;\ntele bit<8>[4] b;\ntele bit<8> dot = 0;\n"
           "{ a.push(1); a.push(2); b.push(10); b.push(20); }\n"
           "{ } { for (u, v in a, b) { dot = dot + u * v; } }")
    assert final_tele(src, "dot") == 1 * 10 + 2 * 20


def test_indexed_assignment():
    src = ("tele bit<8>[4] xs;\ntele bit<8> r = 0;\n"
           "{ xs[2] = 9; } { } { r = xs[2]; }")
    assert final_tele(src, "r") == 9


def test_in_operator_over_array():
    src = ("tele bit<8>[4] xs;\ntele bool hit = false;\n"
           "{ xs.push(7); } { } { if (7 in xs) { hit = true; } }")
    assert final_tele(src, "hit") is True


def test_augmented_assignment_with_packet_length():
    src = ("sensor bit<32> load = 0;\ntele bit<32> seen = 0;\n"
           "{ } { load += packet_length; seen = load; } { }")
    assert final_tele(src, "seen", packet_length=123) == 123


# ---------------------------------------------------------------------------
# Verdicts: reject / report accumulate (Figure 9 runs both)
# ---------------------------------------------------------------------------

def test_reject_then_report_both_take_effect():
    src = ("{ } { } { reject; report(1); }")
    state = run_once(src)
    assert state.rejected
    assert len(state.reports) == 1


def test_report_payload_tuple():
    src = ("header bit<8> a;\nheader bit<8> b;\n"
           "{ } { } { report((b, a)); }")
    state = run_once(src, headers={"a": 1, "b": 2})
    assert state.reports[0].payload == (2, 1)


def test_report_records_block_and_switch():
    src = "{ report; } { } { }"
    state = run_once(src, switch_id=42)
    assert state.reports[0].block == "init"
    assert state.reports[0].switch_id == 42


def test_execution_continues_after_reject():
    src = ("tele bit<8> x = 0;\n{ } { } { reject; x = 5; }")
    state = run_once(src)
    assert state.rejected and state.tele["x"] == 5


# ---------------------------------------------------------------------------
# State separation
# ---------------------------------------------------------------------------

def test_sensors_persist_across_packets():
    src = "sensor bit<32> count = 0;\n{ } { count += 1; } { }"
    monitor = Monitor.from_source(src)
    sensors = monitor.new_sensors()
    for _ in range(3):
        ctx = HopContext(sensors=sensors, first_hop=True, last_hop=True)
        monitor.run_path([ctx])
    assert sensors.get("count") == 3


def test_tele_state_is_per_packet():
    src = "tele bit<8> x = 0;\n{ x = x + 1; } { } { }"
    monitor = Monitor.from_source(src)
    for _ in range(3):
        ctx = HopContext(first_hop=True, last_hop=True)
        state = monitor.run_path([ctx])
        assert state.tele["x"] == 1  # never accumulates across packets


def test_sensor_initializer_applied_once():
    src = "sensor bit<8> s = 7;\ntele bit<8> r = 0;\n{ } { r = s; } { }"
    monitor = Monitor.from_source(src)
    sensors = monitor.new_sensors()
    ctx = HopContext(sensors=sensors, first_hop=True, last_hop=True)
    assert monitor.run_path([ctx]).tele["r"] == 7


def test_missing_header_raises():
    src = "header bit<8> p;\ntele bit<8> r = 0;\n{ r = p; } { } { }"
    monitor = Monitor.from_source(src)
    ctx = HopContext(first_hop=True, last_hop=True)  # no headers provided
    with pytest.raises(EvalError):
        monitor.run_path([ctx])


def test_control_scalar_update_between_packets():
    src = ("control bit<8> limit;\ntele bool over = false;\n"
           "{ if (packet_length > limit) { over = true; } } { } { }")
    monitor = Monitor.from_source(src)
    controls = monitor.new_controls()
    controls.set_value("limit", 100)
    ctx = HopContext(controls=controls, first_hop=True, last_hop=True,
                     packet_length=150)
    assert monitor.run_path([ctx]).tele["over"] is True
    controls.set_value("limit", 200)
    ctx = HopContext(controls=controls, first_hop=True, last_hop=True,
                     packet_length=150)
    assert monitor.run_path([ctx]).tele["over"] is False


def test_control_set_membership():
    src = ("control set<bit<8>> allowed;\ntele bool ok = false;\n"
           "header bit<8> p;\n{ if (p in allowed) { ok = true; } } { } { }")
    monitor = Monitor.from_source(src)
    controls = monitor.new_controls()
    controls.set_add("allowed", 5)
    ctx = HopContext(headers={"p": 5}, controls=controls,
                     first_hop=True, last_hop=True)
    assert monitor.run_path([ctx]).tele["ok"] is True


# ---------------------------------------------------------------------------
# Multi-hop behaviour
# ---------------------------------------------------------------------------

def test_blocks_run_at_correct_hops():
    src = ("tele bit<8> inits = 0;\ntele bit<8> teles = 0;\n"
           "tele bit<8> checks = 0;\n"
           "{ inits = inits + 1; }\n"
           "{ teles = teles + 1; }\n"
           "{ checks = checks + 1; }")
    monitor = Monitor.from_source(src)
    contexts = [
        HopContext(first_hop=True),
        HopContext(),
        HopContext(last_hop=True),
    ]
    state = monitor.run_path(contexts)
    assert state.tele["inits"] == 1
    assert state.tele["teles"] == 3
    assert state.tele["checks"] == 1


def test_single_hop_runs_all_blocks():
    src = ("tele bit<8> n = 0;\n{ n = n + 1; } { n = n + 1; }"
           " { n = n + 1; }")
    monitor = Monitor.from_source(src)
    state = monitor.run_path([HopContext(first_hop=True, last_hop=True)])
    assert state.tele["n"] == 3
