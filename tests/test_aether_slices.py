"""The paper's two-slice Aether scenario (Section 5.2's motivating
setup): camera-slice clients may reach the video-analysis edge app but
not the Internet; phone-slice clients have the opposite permissions.
Both the enforcement and Hydra's verdict-consistency are checked."""

import pytest

from repro.aether import ALLOW, AetherTestbed, DENY, FilterRule
from repro.net.packet import IP_PROTO_UDP

VIDEO_PORT = 81


@pytest.fixture()
def testbed():
    tb = AetherTestbed()
    server = tb.topology.hosts["h2"].ipv4       # edge app (on leaf1)
    internet = tb.topology.hosts["h3"].ipv4     # "the Internet" (leaf2)
    # Camera slice: deny-all, allow the video app.
    tb.provision_slice("camera", [
        FilterRule(priority=10, action=DENY),
        FilterRule(priority=20, ip_prefix=(server, 32),
                   proto=IP_PROTO_UDP, l4_port=(VIDEO_PORT, VIDEO_PORT),
                   action=ALLOW),
    ])
    # Phone slice: deny the video app, allow everything else (Internet).
    tb.provision_slice("phone", [
        FilterRule(priority=10, action=ALLOW),
        FilterRule(priority=20, ip_prefix=(server, 32),
                   proto=IP_PROTO_UDP, l4_port=(VIDEO_PORT, VIDEO_PORT),
                   action=DENY),
    ])
    tb.portal.add_member("camera", "cam-1")
    tb.portal.add_member("phone", "phone-1")
    tb.attach("cam-1", 1)
    tb.attach("phone-1", 2)
    return tb, server, internet


def test_camera_reaches_video_app(testbed):
    tb, server, internet = testbed
    result = tb.send_uplink("cam-1", server, VIDEO_PORT)
    assert result.delivered
    assert not result.new_reports


def test_camera_cannot_reach_internet(testbed):
    tb, server, internet = testbed
    result = tb.send_uplink("cam-1", internet, 443)
    assert not result.delivered
    assert not result.new_reports  # deny + drop: consistent, silent


def test_phone_reaches_internet(testbed):
    tb, server, internet = testbed
    result = tb.send_uplink("phone-1", internet, 443)
    assert result.delivered
    assert not result.new_reports


def test_phone_cannot_reach_video_app(testbed):
    tb, server, internet = testbed
    result = tb.send_uplink("phone-1", server, VIDEO_PORT)
    assert not result.delivered
    assert not result.new_reports


def test_slices_share_nothing_but_apps_table_space(testbed):
    """Each slice allocates its own app ids — entries are shared within
    a slice, never across slices."""
    tb, _, _ = testbed
    cam = tb.onos.client("cam-1")
    phone = tb.onos.client("phone-1")
    assert not set(cam.app_ids) & set(phone.app_ids)


def test_hydra_catches_wrong_slice_enforcement(testbed):
    """Inject a controller bug: the phone client's deny termination for
    the video app is flipped to forward.  The data plane now lets phone
    traffic into the video slice — and Hydra reports the deny/forwarded
    inconsistency (the exfiltration case of the paper's conclusion)."""
    tb, server, internet = testbed
    phone = tb.onos.client("phone-1")
    deny_app = phone.app_ids[1]  # the video-app deny rule
    for bmv2 in tb.onos.upf_switches.values():
        for entry in list(bmv2.entries["terminations"]):
            if entry.match == [phone.client_id, deny_app]:
                bmv2.delete_entry("terminations", entry)
        bmv2.insert_entry("terminations", [phone.client_id, deny_app],
                          "term_forward")
    result = tb.send_uplink("phone-1", server, VIDEO_PORT)
    # Hydra rejects the packet that policy says to deny...
    assert not result.delivered
    # ...and reports the violation with the flow identity.
    assert result.new_reports
    ue, proto, app, port, action = result.new_reports[0].payload
    assert port == VIDEO_PORT
    assert action == 1  # policy: deny
