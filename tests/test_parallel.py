"""The sharded fleet runner: determinism, fault recovery, aggregation.

Everything here runs real worker processes (small seed ranges keep it
quick).  The load-bearing guarantees:

* shard partitioning is an exact, deterministic partition;
* for a fixed seed the per-seed verdict map is identical for any
  worker count (the fleet determinism contract);
* a worker SIGKILLed mid-scenario is respawned and the killing seed is
  quarantined with a reproducer bundle after bounded retry;
* a hung scenario trips the per-scenario timeout, is killed, and only
  that seed is quarantined;
* worker-side metrics merge into the caller's registry with the same
  deterministic content as a serial run;
* per-shard traces concatenate into one globally-sequenced stream.
"""

import json
import os

import pytest

from repro.difftest import run_difftest
from repro.obs import MetricsRegistry, Observability
from repro.parallel import (FLEET_TRACE_NAME, FaultPlan, FleetOptions,
                            Shard, partition_seeds, run_fleet)

pytestmark = pytest.mark.difftest


# -- partitioning (pure, no processes) -------------------------------------

def test_partition_is_exact_and_deterministic():
    shards = partition_seeds(100, 10, 3)
    assert [s.index for s in shards] == [0, 1, 2]
    assert shards[0].seeds == (100, 103, 106, 109)
    assert shards[1].seeds == (101, 104, 107)
    assert shards[2].seeds == (102, 105, 108)
    all_seeds = [seed for s in shards for seed in s.seeds]
    assert sorted(all_seeds) == list(range(100, 110))
    assert partition_seeds(100, 10, 3) == shards


def test_partition_drops_empty_shards():
    shards = partition_seeds(0, 2, 4)
    assert len(shards) == 2
    assert all(len(s) == 1 for s in shards)


def test_partition_validates_arguments():
    with pytest.raises(ValueError):
        partition_seeds(0, -1, 2)
    with pytest.raises(ValueError):
        partition_seeds(0, 10, 0)
    assert partition_seeds(0, 0, 4) == []


def test_shard_len():
    assert len(Shard(index=0, seeds=(1, 2, 3))) == 3


# -- determinism across worker counts --------------------------------------

def test_verdicts_identical_for_any_worker_count(tmp_path):
    serial = run_difftest(seed=7, iters=6, stop_on_failure=False)
    for workers in (1, 2, 4):
        fleet = run_fleet(7, 6, options=FleetOptions(
            workers=workers, quarantine_dir=str(tmp_path)))
        assert fleet.verdicts == serial.verdicts, f"workers={workers}"
        assert fleet.quarantined == []
        assert fleet.respawns == 0
        assert fleet.workers == workers
        assert fleet.packets_run == serial.packets_run
        assert fleet.hops_checked == serial.hops_checked
        assert fleet.reports_checked == serial.reports_checked


def test_run_difftest_dispatches_to_fleet(tmp_path):
    serial = run_difftest(seed=7, iters=4, stop_on_failure=False)
    fleet = run_difftest(seed=7, iters=4, workers=2,
                         quarantine_dir=str(tmp_path))
    assert fleet.workers == 2
    assert fleet.verdicts == serial.verdicts


def test_run_fleet_rejects_bad_worker_count():
    with pytest.raises(ValueError):
        run_fleet(0, 4, options=FleetOptions(workers=0))


# -- fault recovery --------------------------------------------------------

def test_crash_injection_quarantines_only_killing_seed(tmp_path):
    options = FleetOptions(workers=2, quarantine_dir=str(tmp_path),
                           fault=FaultPlan(crash_seeds=frozenset({9})))
    summary = run_fleet(7, 6, options=options)
    # Every seed is accounted for; only the killer is quarantined.
    assert sorted(summary.verdicts) == list(range(7, 13))
    assert summary.verdicts[9] == "quarantined:worker_crash"
    for seed in (7, 8, 10, 11, 12):
        assert summary.verdicts[seed] == "ok"
    assert [q["seed"] for q in summary.quarantined] == [9]
    # One retry plus the post-quarantine respawn.
    assert summary.respawns >= 2
    assert not summary.ok
    bundle = summary.quarantined[0]["bundle"]
    assert os.path.exists(bundle)
    with open(bundle) as handle:
        repro_doc = json.loads(handle.read())
    assert repro_doc["failure"]["kind"] == "worker_crash"


def test_hang_injection_times_out_only_hung_seed(tmp_path):
    options = FleetOptions(workers=2, timeout_s=1.0,
                           quarantine_dir=str(tmp_path),
                           fault=FaultPlan(hang_seeds=frozenset({8}),
                                           hang_sleep_s=3600.0))
    summary = run_fleet(7, 6, options=options)
    assert sorted(summary.verdicts) == list(range(7, 13))
    assert summary.verdicts[8] == "quarantined:timeout"
    for seed in (7, 9, 10, 11, 12):
        assert summary.verdicts[seed] == "ok"
    assert [q["reason"] for q in summary.quarantined] == ["timeout"]


# -- metrics aggregation ---------------------------------------------------

def _deterministic_content(dump):
    """Project a registry dump onto its run-deterministic content:
    counter/gauge values and histogram *observation counts* — timing
    sums and bucket spreads are wall-clock and vary run to run."""
    out = {}
    for name, entry in dump.items():
        series = []
        for s in entry["series"]:
            if "value" in s:
                series.append((tuple(sorted(s["labels"].items())),
                               s["value"]))
            else:
                series.append((tuple(sorted(s["labels"].items())),
                               s["count"]))
        out[name] = (entry["kind"], sorted(series))
    return out


def test_fleet_metrics_match_serial(tmp_path):
    obs_serial = Observability(registry=MetricsRegistry())
    obs_fleet = Observability(registry=MetricsRegistry())
    run_difftest(seed=7, iters=4, stop_on_failure=False, obs=obs_serial)
    run_fleet(7, 4, options=FleetOptions(workers=2,
                                         quarantine_dir=str(tmp_path)),
              obs=obs_fleet)
    assert (_deterministic_content(obs_fleet.registry.to_dict())
            == _deterministic_content(obs_serial.registry.to_dict()))


def test_fleet_without_obs_runs_metrics_free(tmp_path):
    summary = run_fleet(7, 2, options=FleetOptions(
        workers=2, quarantine_dir=str(tmp_path)))
    assert summary.iterations == 2


# -- trace shard concat ----------------------------------------------------

def test_fleet_trace_concat(tmp_path):
    trace_dir = tmp_path / "traces"
    run_fleet(7, 4, options=FleetOptions(workers=2,
                                         quarantine_dir=str(tmp_path),
                                         trace_dir=str(trace_dir)))
    merged = trace_dir / FLEET_TRACE_NAME
    assert merged.exists()
    records = [json.loads(line)
               for line in merged.read_text().splitlines()]
    scenarios = [r for r in records if r["kind"] == "scenario"]
    assert sorted(r["packet_id"] for r in scenarios) == [7, 8, 9, 10]
    assert all(r["verdict"] == "ok" for r in scenarios)
    assert [r["seq"] for r in records] == list(range(len(records)))
    assert {r["shard"] for r in records} == {0, 1}
