"""Trace-driven property checking tests (the `repro run` debugger)."""

import json

import pytest

from repro.cli import main
from repro.properties import load_checked
from repro.runtime.tracecheck import (TraceFormatError, run_trace,
                                      run_trace_file)


def test_valley_free_trace_verdicts():
    checked = load_checked("valley_free")
    spine = {"controls": {"is_spine_switch": True}}
    leaf = {"controls": {"is_spine_switch": False}}
    good = run_trace(checked, {"hops": [dict(leaf), dict(spine),
                                        dict(leaf)]})
    assert good.accepted
    bad = run_trace(checked, {"hops": [dict(leaf), dict(spine), dict(leaf),
                                       dict(spine), dict(leaf)]})
    assert not bad.accepted
    assert bad.tele_values()["to_reject"] is True


def test_global_dict_controls():
    checked = load_checked("multi_tenancy")
    trace = {
        "controls": {"tenants": {"dict": [[1, 10], [2, 20]]}},
        "hops": [
            {"headers": {"in_port": 1, "eg_port": 0}},
            {"headers": {"in_port": 0, "eg_port": 2}},
        ],
    }
    result = run_trace(checked, trace)
    assert not result.accepted  # tenants 10 vs 20


def test_set_controls_and_reports():
    checked = load_checked("egress_port_validity")
    trace = {
        "controls": {"allowed_ports": {"set": [1, 2]}},
        "hops": [{"headers": {"eg_port": 9}}],
    }
    result = run_trace(checked, trace)
    assert not result.accepted
    assert result.reports


def test_hop_defaults_and_overrides():
    checked = load_checked("loops")
    # Default switch_id is the hop index + 1 -> no loop.
    assert run_trace(checked, {"hops": [{}, {}, {}]}).accepted
    # Explicit ids form a loop.
    trace = {"hops": [{"switch_id": 7}, {"switch_id": 8},
                      {"switch_id": 7}]}
    assert not run_trace(checked, trace).accepted


def test_sensor_state_spans_hops():
    checked = load_checked("load_balance")
    trace = {
        "controls": {"left_port": 1, "right_port": 2, "thresh": 100,
                     "is_uplink": {"dict": [[1, True], [2, True]]}},
        "hops": [{"headers": {"eg_port": 1}, "packet_length": 500}],
    }
    result = run_trace(checked, trace)
    assert result.reports  # |500 - 0| > 100


@pytest.mark.parametrize("document, fragment", [
    ({}, "hops"),
    ({"hops": []}, "non-empty"),
    ({"hops": [3]}, "object"),
    ({"controls": {"x": {"weird": 1}},
      "hops": [{}]}, "aggregate"),
])
def test_malformed_traces_rejected(document, fragment):
    checked = load_checked("loops")
    if "controls" in document:
        # Need a program with a control named x for this case.
        from repro.indus import check, parse

        checked = check(parse("control bit<8> x;\n{ } { } { }"))
    with pytest.raises(TraceFormatError) as excinfo:
        run_trace(checked, document)
    assert fragment in str(excinfo.value)


def test_cli_run_exit_codes(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    trace.write_text(json.dumps({
        "hops": [{"switch_id": 1}, {"switch_id": 1}],
    }))
    code = main(["run", "loops", "--trace", str(trace)])
    out = capsys.readouterr().out
    assert code == 2
    assert "REJECTED" in out
    trace.write_text(json.dumps({"hops": [{"switch_id": 1}]}))
    assert main(["run", "loops", "--trace", str(trace)]) == 0


def test_cli_run_bad_trace(tmp_path, capsys):
    trace = tmp_path / "bad.json"
    trace.write_text("{nope")
    code = main(["run", "loops", "--trace", str(trace)])
    assert code == 1
    assert "error" in capsys.readouterr().err


def test_run_trace_file(tmp_path):
    trace = tmp_path / "t.json"
    trace.write_text(json.dumps({"hops": [{}]}))
    result = run_trace_file(load_checked("waypointing"), str(trace))
    # No waypoint on the path -> rejected.
    assert not result.accepted


def test_run_trace_file_invalid_json(tmp_path):
    trace = tmp_path / "broken.json"
    trace.write_text('{"hops": [')
    with pytest.raises(TraceFormatError) as excinfo:
        run_trace_file(load_checked("loops"), str(trace))
    assert "invalid JSON" in str(excinfo.value)
    assert "broken.json" in str(excinfo.value)


def test_trace_must_be_an_object():
    with pytest.raises(TraceFormatError, match="hops"):
        run_trace(load_checked("loops"), ["not", "a", "dict"])


def test_hops_must_be_a_list():
    with pytest.raises(TraceFormatError, match="non-empty"):
        run_trace(load_checked("loops"), {"hops": {"0": {}}})


def test_non_dict_hop_reports_its_index():
    with pytest.raises(TraceFormatError, match="hop 1"):
        run_trace(load_checked("loops"), {"hops": [{}, "oops"]})


def test_malformed_per_hop_controls_rejected():
    from repro.indus import check, parse

    checked = check(parse("control bit<8> x;\n{ } { } { }"))
    trace = {"hops": [{"controls": {"x": {"neither": []}}}]}
    with pytest.raises(TraceFormatError, match="aggregate"):
        run_trace(checked, trace)


def test_monitor_hop_events_see_intermediate_state():
    from repro.indus import check, parse
    from repro.obs import Observability, Tracer

    checked = check(parse(
        "tele bit<16> n = 0;\n{ } { n = n + 1; } { }"))
    seen = []
    tracer = Tracer()
    tracer.subscribe(lambda ev: seen.append(
        (ev.detail["hop"], ev.detail["state"].tele["n"]))
        if ev.kind == "monitor_hop" else None)
    run_trace(checked, {"hops": [{}, {}, {}]},
              obs=Observability(tracer=tracer))
    assert seen == [(0, 1), (1, 2), (2, 3)]
    assert [ev.node for ev in tracer.events(kind="monitor_hop")] == \
        ["monitor"] * 3
