"""Observability plane: registry semantics, trace events, profiling.

Covers the contract the rest of the runtime relies on: label handling
and cardinality bounds, cumulative histogram buckets, the null
registry's zero-cost no-op behavior, trace-event ordering across a
3-hop path, drop accounting (queue_full / no_route / pipeline), and
that turning observability on changes no verdicts anywhere.
"""

import json

import pytest

from repro.obs import (NULL_OBS, NULL_REGISTRY, NULL_TRACER,
                       MetricsRegistry, NullRegistry, Observability,
                       Tracer, profiled)
from repro.obs.metrics import MAX_LABEL_SETS, MetricError
from repro.obs.trace import LIFECYCLE_ORDER


# ---------------------------------------------------------------------------
# Registry semantics
# ---------------------------------------------------------------------------

def test_counter_inc_and_value_reader():
    reg = MetricsRegistry()
    c = reg.counter("packets_total", "help!", labels=("switch",))
    c.labels("s1").inc()
    c.labels("s1").inc(4)
    c.labels("s2").inc()
    assert reg.value("packets_total", "s1") == 5
    assert reg.value("packets_total", "s2") == 1
    assert reg.value("packets_total", "s3") == 0      # never touched
    assert reg.value("no_such_metric") == 0


def test_instruments_are_idempotent():
    reg = MetricsRegistry()
    a = reg.counter("c", labels=("x",))
    b = reg.counter("c", labels=("x",))
    assert a is b
    assert a.labels("1") is b.labels("1")


def test_label_count_mismatch_raises():
    reg = MetricsRegistry()
    c = reg.counter("c", labels=("a", "b"))
    with pytest.raises(MetricError, match="takes 2 label"):
        c.labels("only-one")
    g = reg.gauge("g")           # unlabelled
    with pytest.raises(MetricError, match="takes 0 label"):
        g.labels("extra")


def test_kind_and_label_conflicts_raise():
    reg = MetricsRegistry()
    reg.counter("m", labels=("a",))
    with pytest.raises(MetricError, match="already registered as"):
        reg.gauge("m", labels=("a",))
    with pytest.raises(MetricError, match="already registered with labels"):
        reg.counter("m", labels=("b",))


def test_label_cardinality_limit():
    reg = MetricsRegistry()
    c = reg.counter("c", labels=("id",))
    for i in range(MAX_LABEL_SETS):
        c.labels(i).inc()
    with pytest.raises(MetricError, match="label sets"):
        c.labels("one-too-many")


def test_labelled_instrument_rejects_direct_use():
    reg = MetricsRegistry()
    with pytest.raises(MetricError, match="use .labels"):
        reg.counter("c", labels=("a",)).inc()
    with pytest.raises(MetricError, match="use .labels"):
        reg.histogram("h", labels=("a",)).observe(1)


def test_histogram_buckets_are_cumulative():
    reg = MetricsRegistry()
    h = reg.histogram("lat", buckets=(1.0, 5.0, 10.0))
    for v in (0.5, 0.7, 3.0, 7.0, 100.0):
        h.observe(v)
    child = h._unlabelled()
    assert child.counts == [2, 3, 4]     # le=1, le=5, le=10
    assert child.count == 5              # the +Inf bucket
    assert child.sum == pytest.approx(111.2)
    assert child.mean == pytest.approx(111.2 / 5)


def test_histogram_buckets_must_be_sorted():
    reg = MetricsRegistry()
    with pytest.raises(MetricError, match="sorted"):
        reg.histogram("h", buckets=(5.0, 1.0))
    with pytest.raises(MetricError, match="sorted"):
        reg.histogram("h2", buckets=())


def test_prometheus_rendering():
    reg = MetricsRegistry()
    reg.counter("hits_total", "hit count", labels=("sw",)).labels("s1").inc(3)
    reg.gauge("depth", "queue depth").set(7)
    reg.histogram("lat", "latency", buckets=(1.0, 10.0)).observe(0.5)
    text = reg.render_prometheus()
    assert "# HELP hits_total hit count" in text
    assert "# TYPE hits_total counter" in text
    assert 'hits_total{sw="s1"} 3' in text
    assert "depth 7" in text
    assert 'lat_bucket{le="1.0"} 1' in text
    assert 'lat_bucket{le="+Inf"} 1' in text
    assert "lat_sum 0.5" in text
    assert "lat_count 1" in text


def test_json_dump_round_trips():
    reg = MetricsRegistry()
    reg.counter("c", labels=("a",)).labels("x").inc(2)
    reg.histogram("h", buckets=(1.0,)).observe(0.5)
    dump = json.loads(reg.render_json())
    assert dump["c"]["series"] == [{"labels": {"a": "x"}, "value": 2}]
    assert dump["h"]["series"][0]["count"] == 1


def test_null_registry_is_shared_noop():
    reg = NullRegistry()
    assert reg.live is False
    c = reg.counter("anything", labels=("a", "b", "c"))
    assert c is reg.histogram("other") is reg.gauge("third")
    c.labels("way", "too", "many", "labels").inc()     # all no-ops
    c.observe(1.0)
    c.set(5)
    assert reg.value("anything", "x") == 0
    assert reg.render_prometheus() == ""
    assert reg.to_dict() == {}
    assert NULL_REGISTRY.counter("x") is NULL_REGISTRY.counter("y")


def test_observability_handle_liveness():
    assert NULL_OBS.live is False
    assert Observability().live is False
    assert Observability(registry=MetricsRegistry()).live is True
    assert Observability(tracer=Tracer()).live is True
    full = Observability.enabled()
    assert full.registry.live and full.tracer.live


# ---------------------------------------------------------------------------
# Profiling hooks
# ---------------------------------------------------------------------------

def test_profiled_records_phase_histogram():
    reg = MetricsRegistry()
    with profiled(reg, "compile") as timer:
        pass
    assert timer.elapsed_s >= 0.0
    child = reg.value("phase_seconds", "compile")
    assert child.count == 1
    assert child.sum == pytest.approx(timer.elapsed_s)


def test_profiled_null_paths_share_one_timer():
    a = profiled(None, "x")
    b = profiled(NULL_REGISTRY, "y")
    assert a is b                 # the shared no-op timer
    with a as timer:
        pass
    assert timer.elapsed_s == 0.0  # never read the clock


# ---------------------------------------------------------------------------
# Tracer ring
# ---------------------------------------------------------------------------

def test_tracer_ring_bounds_and_accounting():
    tracer = Tracer(capacity=3)
    for i in range(5):
        tracer.emit("parse", "s1", packet_id=i)
    assert len(tracer) == 3
    assert tracer.total == 5
    assert tracer.dropped == 2
    assert [e.packet_id for e in tracer] == [2, 3, 4]
    with pytest.raises(ValueError):
        Tracer(capacity=0)


def test_tracer_subscribe_and_filters():
    tracer = Tracer()
    seen = []
    tracer.subscribe(seen.append)
    tracer.emit("parse", "s1", packet_id=1, port=2)
    tracer.emit("drop", "s1", packet_id=1, reason="ttl")
    tracer.emit("parse", "s2", packet_id=2)
    assert len(seen) == 3
    assert [e.node for e in tracer.events(kind="parse")] == ["s1", "s2"]
    assert [e.kind for e in tracer.events(packet_id=1)] == ["parse", "drop"]
    assert tracer.packet_ids() == [1, 2]
    assert tracer.events(kind="drop")[0].detail["reason"] == "ttl"


def test_tracer_clock_fills_timestamps():
    tracer = Tracer()
    tracer.clock = lambda: 42.5
    assert tracer.emit("parse", "s1", packet_id=0).ts == 42.5
    assert tracer.emit("parse", "s1", packet_id=0, ts=1.0).ts == 1.0


def test_tracer_jsonl_export(tmp_path):
    tracer = Tracer()
    tracer.emit("parse", "s1", packet_id=7, port=1, packet=object(),
                nested={"a": (1, 2)}, odd=object())
    path = tmp_path / "trace.jsonl"
    assert tracer.export_jsonl(str(path)) == 1
    line = json.loads(path.read_text().splitlines()[0])
    assert line["kind"] == "parse" and line["packet_id"] == 7
    assert line["nested"] == {"a": [1, 2]}
    assert isinstance(line["odd"], str)         # repr fallback
    assert "packet" not in line                 # live refs not serialized


def test_null_tracer_is_inert():
    assert NULL_TRACER.live is False
    assert NULL_TRACER.emit("parse", "s1", packet_id=0) is None
    assert len(NULL_TRACER) == 0
    assert NULL_TRACER.events() == []
    assert NULL_TRACER.to_jsonl_lines() == []
