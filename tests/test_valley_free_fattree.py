"""The generalized (tier-based) valley-free checker on a k=4 fat tree
with source routing — the generalization Section 5.1 alludes to."""

import pytest

from repro.net.packet import make_source_routed, make_udp
from repro.net.topology import fat_tree
from repro.p4.programs import source_routing
from repro.properties import compile_property, load_monitor
from repro.indus import HopContext
from repro.runtime.deployment import HydraDeployment


def tier_of(switch_name):
    if switch_name.startswith("edge"):
        return 0
    if switch_name.startswith("agg"):
        return 1
    return 2


@pytest.fixture(scope="module")
def deployment():
    topology = fat_tree(4)
    compiled = compile_property("valley_free_fattree")
    forwarding = {name: source_routing(f"sr_{name}")
                  for name in topology.switches}
    dep = HydraDeployment(topology, compiled, forwarding)
    for name in topology.switches:
        dep.set_control("tier", tier_of(name), switch=name)
    return topology, dep


def send_along(topology, dep, node_path, src_host, dst_host):
    ports = topology.ports_path(list(node_path) + [dst_host])
    src_ip = topology.hosts[src_host].ipv4
    dst_ip = topology.hosts[dst_host].ipv4
    packet = make_source_routed(ports, make_udp(src_ip, dst_ip, 1, 2))
    network = dep.network
    dest = network.host(dst_host)
    before = dest.rx_count
    network.host(src_host).send(packet)
    network.run()
    return dest.rx_count > before


def test_intra_pod_path_passes(deployment):
    topology, dep = deployment
    # h1 (edge1_1) to h3 (edge1_2) via an aggregation switch: up, down.
    assert send_along(topology, dep,
                      ["edge1_1", "agg1_1", "edge1_2"], "h1", "h3")


def test_inter_pod_path_via_core_passes(deployment):
    topology, dep = deployment
    # Pod 1 to pod 2 through agg -> core -> agg: strictly up then down.
    assert send_along(
        topology, dep,
        ["edge1_1", "agg1_1", "core1", "agg2_1", "edge2_1"], "h1", "h5")


def test_same_edge_path_passes(deployment):
    topology, dep = deployment
    assert send_along(topology, dep, ["edge1_1"], "h1", "h2")


def test_valley_within_pod_rejected(deployment):
    topology, dep = deployment
    # Down to an edge, then up again: edge -> agg -> edge -> agg -> edge.
    assert not send_along(
        topology, dep,
        ["edge1_1", "agg1_1", "edge1_2", "agg1_2", "edge1_1"], "h1", "h2")


def test_core_valley_rejected(deployment):
    topology, dep = deployment
    # Up to core, down to an agg, back up to core: a core-level valley.
    # (core1 and core2 both attach to agg*_1 switches.)
    assert not send_along(
        topology, dep,
        ["edge1_1", "agg1_1", "core1", "agg2_1", "core2", "agg2_1",
         "edge2_1"],
        "h1", "h5")


def test_interpreter_semantics_match(deployment):
    """Cross-check the tier logic on the reference interpreter."""
    monitor = load_monitor("valley_free_fattree")

    def verdict(tiers):
        contexts = []
        for i, tier in enumerate(tiers):
            controls = monitor.new_controls()
            controls.set_value("tier", tier)
            contexts.append(HopContext(controls=controls,
                                       first_hop=(i == 0),
                                       last_hop=(i == len(tiers) - 1)))
        return not monitor.run_path(contexts).rejected

    assert verdict([0, 1, 0])              # up, down
    assert verdict([0, 1, 2, 1, 0])        # up to core and down
    assert verdict([0])                    # single hop
    assert not verdict([0, 1, 0, 1, 0])    # pod-level valley
    assert not verdict([0, 1, 2, 1, 2, 1, 0])  # core-level valley
