"""The verbatim paper-figure programs, end to end through the COMPILED
pipeline (the interpreter-level checks live in test_properties.py).

Notably includes the literal Figure 2 program, whose two 15-slot
bit<32> arrays produce a 1022-bit telemetry header and deeply unrolled
loops — the heaviest program the compiler faces."""

import pytest

from repro.net.packet import make_udp
from repro.net.topology import single_switch, leaf_spine
from repro.p4.fabric import install_leaf_spine_routes
from repro.p4.programs import ecmp_fabric, l2_port_forwarding
from repro.p4.bmv2 import Bmv2Switch
from repro.net.simulator import Network
from repro.properties import compile_property
from repro.runtime.deployment import HydraDeployment


def test_figure2_arrays_compile_and_report_imbalance():
    topology = single_switch(2)
    compiled = compile_property("load_balance_arrays")
    assert compiled.hydra_header.width_bits >= 1000  # the heavy header
    deployment = HydraDeployment(topology, compiled,
                                 {"s1": l2_port_forwarding()})
    sw = deployment.switches["s1"]
    sw.insert_entry("fwd_table", [1], "fwd_set_egress", [2])
    deployment.set_control("left_port", 2)
    deployment.set_control("right_port", 3)
    deployment.dict_put("is_uplink", 2, True)
    deployment.dict_put("is_uplink", 3, True)
    deployment.set_control("thresh", 100)
    network = deployment.network
    h1, h2 = topology.hosts["h1"].ipv4, topology.hosts["h2"].ipv4
    # One 500-byte packet out the left uplink: |500 - 0| > 100.
    network.host("h1").send(make_udp(h1, h2, 1, 2, payload_len=500))
    network.run()
    assert deployment.reports, "imbalance must be reported at the edge"
    # The report came from the checker block iterating the arrays.
    assert deployment.reports[0].block == "checker"


def test_figure2_arrays_balanced_traffic_is_quiet():
    topology = single_switch(2)
    compiled = compile_property("load_balance_arrays")
    deployment = HydraDeployment(topology, compiled,
                                 {"s1": l2_port_forwarding()})
    sw = deployment.switches["s1"]
    sw.insert_entry("fwd_table", [1], "fwd_set_egress", [2])
    sw.insert_entry("fwd_table", [2], "fwd_set_egress", [1])
    deployment.set_control("left_port", 1)
    deployment.set_control("right_port", 2)
    deployment.dict_put("is_uplink", 1, True)
    deployment.dict_put("is_uplink", 2, True)
    deployment.set_control("thresh", 1000)
    network = deployment.network
    h1, h2 = topology.hosts["h1"].ipv4, topology.hosts["h2"].ipv4
    # Alternate directions: the two uplink counters track each other.
    for i in range(4):
        src_host = "h1" if i % 2 == 0 else "h2"
        src, dst = (h1, h2) if i % 2 == 0 else (h2, h1)
        network.host(src_host).send(make_udp(src, dst, 1, 2,
                                             payload_len=200))
        network.run()
    assert not deployment.reports


def test_figure1_multitenancy_compiled_end_to_end():
    topology = single_switch(3)
    compiled = compile_property("multi_tenancy")
    deployment = HydraDeployment(topology, compiled,
                                 {"s1": l2_port_forwarding()})
    sw = deployment.switches["s1"]
    sw.insert_entry("fwd_table", [1], "fwd_set_egress", [2])
    deployment.dict_put("tenants", 1, 7)
    deployment.dict_put("tenants", 2, 7)
    deployment.dict_put("tenants", 3, 8)
    network = deployment.network
    h = topology.hosts
    network.host("h1").send(make_udp(h["h1"].ipv4, h["h2"].ipv4, 1, 2))
    network.run()
    assert network.host("h2").rx_count == 1  # same tenant
    sw.clear_table("fwd_table")
    sw.insert_entry("fwd_table", [1], "fwd_set_egress", [3])
    network.host("h1").send(make_udp(h["h1"].ipv4, h["h3"].ipv4, 1, 2))
    network.run()
    assert network.host("h3").rx_count == 0  # cross-tenant rejected


def test_ecmp_fabric_with_route_installer():
    """The generic leaf-spine route installer drives the ecmp_fabric
    forwarding program across the whole topology (no checker)."""
    topology = leaf_spine(2, 2, 2)
    switches = {name: Bmv2Switch(ecmp_fabric(f"f_{name}"), name=name)
                for name in topology.switches}
    install_leaf_spine_routes(topology, switches)
    network = Network(topology, switches)
    h = topology.hosts
    # Cross-fabric flows spread over both spines but all deliver.
    for sport in range(12):
        network.host("h1").send(make_udp(h["h1"].ipv4, h["h3"].ipv4,
                                         20000 + sport, 80))
    network.run()
    assert network.host("h3").rx_count == 12
    spine_bytes = [network.switch(s).bytes_forwarded
                   for s in ("spine1", "spine2")]
    assert all(b > 0 for b in spine_bytes)  # ECMP used both spines


def test_ecmp_fabric_ttl_decrements_along_path():
    topology = leaf_spine(2, 2, 2)
    switches = {name: Bmv2Switch(ecmp_fabric(f"f_{name}"), name=name)
                for name in topology.switches}
    install_leaf_spine_routes(topology, switches)
    network = Network(topology, switches)
    h = topology.hosts
    received = []
    network.host("h3").add_rx_callback(lambda t, p: received.append(p))
    network.host("h1").send(make_udp(h["h1"].ipv4, h["h3"].ipv4, 1, 2,
                                     ttl=64))
    network.run()
    assert received[0].find("ipv4").ttl == 61  # three routed hops
