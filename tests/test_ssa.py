"""SSA construction tests: phi placement, def-use integrity, proposals.

The codegen engine and the SSA optimizer rounds both stand on
:mod:`repro.p4.ssa` getting renaming right: exactly one phi per
rejoining variable, def-use chains that point at real statements, the
constant lattice merged per incoming version, and rewrite proposals
(copy propagation / CSE / dead-branch pruning) that are sound per the
width rules.  These tests drive the lift on hand-built IR where the
expected SSA shape is known exactly.
"""

from repro.p4 import ir
from repro.p4.ssa import (CopyOp, EntryOp, ExprOp, PhiOp, SSAFunction,
                          SSAInfo, TableOp, apply_proposals,
                          merge_proposals, optimize_pipeline, propose)

IP = "standard_metadata.ingress_port"


def info_for(tables=None, actions=None, defaults=None, **meta):
    """An SSAInfo over ``meta.<name>`` fields with the given widths."""
    return SSAInfo(
        meta_width={f"meta.{name}": width for name, width in meta.items()},
        tables=dict(tables or {}), actions=dict(actions or {}),
        defaults=dict(defaults or {}))


def assign(dest, value):
    if isinstance(value, int):
        value = ir.Const(value, 32)
    return ir.AssignStmt(dest, value)


def node_of(fn, stmt):
    for node in fn.cfg.nodes:
        if node.stmt is stmt:
            return node
    raise AssertionError(f"statement not in CFG: {stmt}")


def all_phis(fn, var=None):
    out = []
    for phis in fn.phis.values():
        for name, value in phis.items():
            if var is None or name == var:
                out.append(value)
    return out


# ---------------------------------------------------------------------------
# Renaming and entry state
# ---------------------------------------------------------------------------

def test_straightline_versions_and_reaching_defs():
    read = assign("meta.y", ir.FieldRef("meta.x"))
    body = [assign("meta.x", 1), assign("meta.x", 2), read]
    fn = SSAFunction.lift(body, info_for(x=32, y=32))

    versions = [v for v in fn.values if v.var == "meta.x"]
    assert [v.version for v in versions] == [0, 1, 2]
    assert isinstance(versions[0].op, EntryOp) and versions[0].const == 0
    assert versions[1].const == 1 and versions[2].const == 2

    reaching = fn.envs[node_of(fn, read).index]["meta.x"]
    assert reaching is versions[2]
    assert any(consumer is read for consumer, _ in reaching.uses)
    assert not versions[1].uses  # the overwritten definition is unused


def test_entry_constants():
    read = assign("meta.y", ir.FieldRef("meta.x"))
    fn = SSAFunction.lift([read], info_for(x=8, y=8))
    env = fn.envs[node_of(fn, read).index]
    assert env["meta.x"].const == 0
    assert env["standard_metadata.egress_spec"].const == 0
    assert env[IP].const is None  # harness-supplied, unknown at entry


def test_write_mask_applied_to_constants():
    stmt = assign("meta.x", 0x1FF)  # meta.x is 8 bits wide
    fn = SSAFunction.lift([stmt], info_for(x=8))
    value = [v for v in fn.values if v.var == "meta.x" and v.version == 1][0]
    assert value.const == 0xFF


# ---------------------------------------------------------------------------
# Phi placement
# ---------------------------------------------------------------------------

def branch(then_stmts, else_stmts, cond=None):
    return ir.IfStmt(cond or ir.BinExpr("==", ir.FieldRef(IP),
                                        ir.Const(1, 32), 1),
                     list(then_stmts), list(else_stmts))


def test_phi_only_for_diverging_variables():
    read = assign("meta.y", ir.FieldRef("meta.x"))
    body = [branch([assign("meta.x", 1)], [assign("meta.x", 2)]), read]
    fn = SSAFunction.lift(body, info_for(x=32, y=32, z=32))

    phis = all_phis(fn)
    assert len(phis) == 1 and phis[0].var == "meta.x"
    phi = phis[0]
    assert isinstance(phi.op, PhiOp)
    assert phi.const is None  # 1 vs 2: no agreed constant
    incoming = [value for _, value in phi.op.incoming]
    assert len(incoming) == 2 and incoming[0] is not incoming[1]
    assert {v.const for v in incoming} == {1, 2}
    # The read after the join observes the phi, and the phi records the
    # use of both incoming definitions.
    assert fn.envs[node_of(fn, read).index]["meta.x"] is phi
    assert any(consumer is read for consumer, _ in phi.uses)
    for value in incoming:
        assert any(consumer is phi.op for consumer, _ in value.uses)


def test_phi_constant_when_arms_agree():
    body = [branch([assign("meta.x", 7)], [assign("meta.x", 7)]),
            assign("meta.y", ir.FieldRef("meta.x"))]
    fn = SSAFunction.lift(body, info_for(x=32, y=32))
    (phi,) = all_phis(fn, "meta.x")
    assert phi.const == 7


def test_one_sided_write_merges_with_entry():
    body = [branch([assign("meta.x", 5)], []),
            assign("meta.y", ir.FieldRef("meta.x"))]
    fn = SSAFunction.lift(body, info_for(x=32, y=32))
    (phi,) = all_phis(fn, "meta.x")
    assert phi.const is None  # entry 0 vs 5
    incoming = [value for _, value in phi.op.incoming]
    assert any(isinstance(v.op, EntryOp) for v in incoming)


def test_phi_at_apply_rejoin():
    """hit/miss bodies are branch arms: a variable they write
    differently needs a phi at the post-apply join."""
    table = ir.Table(name="t", keys=[ir.TableKey(IP)], actions=[])
    apply_stmt = ir.ApplyTable("t", hit_body=[assign("meta.x", 1)],
                               miss_body=[assign("meta.x", 2)])
    read = assign("meta.y", ir.FieldRef("meta.x"))
    fn = SSAFunction.lift([apply_stmt, read],
                          info_for(tables={"t": table}, x=32, y=32))
    (phi,) = all_phis(fn, "meta.x")
    assert fn.envs[node_of(fn, read).index]["meta.x"] is phi


def test_apply_transfer_uses_action_contracts():
    """An action that may write meta.x invalidates its constant; a
    variable no action touches flows through the apply untouched."""
    set_x = ir.Action("set_x", params=[("v", 32)],
                      body=[assign("meta.x", ir.FieldRef("param.v"))])
    table = ir.Table(name="t", keys=[ir.TableKey(IP)], actions=["set_x"])
    apply_stmt = ir.ApplyTable("t")
    read_x = assign("meta.a", ir.FieldRef("meta.x"))
    read_z = assign("meta.b", ir.FieldRef("meta.z"))
    fn = SSAFunction.lift(
        [assign("meta.x", 5), assign("meta.z", 9), apply_stmt,
         read_x, read_z],
        info_for(tables={"t": table}, actions={"set_x": set_x},
                 x=32, z=32, a=32, b=32))
    env = fn.envs[node_of(fn, read_x).index]
    assert isinstance(env["meta.x"].op, TableOp)
    assert env["meta.x"].const is None  # hit args vary per entry
    assert env["meta.z"].const == 9    # no action writes meta.z


def test_apply_transfer_constant_when_every_action_agrees():
    """A table whose every possible action (and known default) leaves
    meta.x at the same constant keeps the constant across the apply."""
    set3 = ir.Action("set3", body=[assign("meta.x", 3)])
    table = ir.Table(name="t", keys=[ir.TableKey(IP)], actions=["set3"])
    read = assign("meta.y", ir.FieldRef("meta.x"))
    fn = SSAFunction.lift(
        [ir.ApplyTable("t"), read],
        info_for(tables={"t": table}, actions={"set3": set3},
                 defaults={"t": ("set3", [])}, x=32, y=32))
    env = fn.envs[node_of(fn, read).index]
    assert env["meta.x"].const == 3
    props = propose(fn)
    assert props.subst[(id(read), "meta.x")] == ("const", 3)


# ---------------------------------------------------------------------------
# Def-use integrity
# ---------------------------------------------------------------------------

def test_def_use_integrity():
    """Every recorded use points at a statement that exists at that CFG
    node, or at a phi registered at that node."""
    table = ir.Table(name="t", keys=[ir.TableKey(IP)], actions=[])
    body = [
        assign("meta.x", ir.BinExpr("+", ir.FieldRef(IP),
                                    ir.Const(3, 32), 32)),
        branch([assign("meta.y", ir.FieldRef("meta.x"))],
               [assign("meta.y", 2)]),
        ir.ApplyTable("t", hit_body=[assign("meta.x", 0)]),
        ir.Digest("d", [ir.FieldRef("meta.y")]),
    ]
    fn = SSAFunction.lift(body, info_for(tables={"t": table}, x=32, y=32))
    for value in fn.values:
        assert 0 <= value.def_node < len(fn.cfg.nodes) or \
            value.def_node == -1
        for consumer, idx in value.uses:
            if isinstance(consumer, PhiOp):
                registered = fn.phis.get(idx, {})
                assert any(phi.op is consumer
                           for phi in registered.values())
            else:
                assert fn.cfg.nodes[idx].stmt is consumer


# ---------------------------------------------------------------------------
# Copies and proposals
# ---------------------------------------------------------------------------

def test_copy_detection_respects_widths():
    narrowing = assign("meta.narrow", ir.FieldRef("meta.wide"))
    widening = assign("meta.wide", ir.FieldRef("meta.narrow"))
    fn = SSAFunction.lift([narrowing, widening],
                          info_for(narrow=8, wide=16))
    by_stmt = {id(v.def_stmt): v for v in fn.values
               if v.def_stmt is not None}
    # 16 -> 8 truncates: not a copy; 8 -> 16 preserves bits: a copy.
    assert isinstance(by_stmt[id(narrowing)].op, ExprOp)
    assert isinstance(by_stmt[id(widening)].op, CopyOp)


def test_copy_and_constant_propagation_proposals():
    read = assign("meta.c", ir.FieldRef("meta.b"))
    body = [assign("meta.a", 5),
            assign("meta.b", ir.FieldRef("meta.a")), read]
    props = propose(SSAFunction.lift(body, info_for(a=32, b=32, c=32)))
    assert props.subst[(id(read), "meta.b")] == ("const", 5)
    assert props.subst[(id(body[1]), "meta.a")] == ("const", 5)


def test_cse_rewrites_recomputation_to_copy():
    expr = lambda: ir.BinExpr("+", ir.FieldRef(IP), ir.Const(3, 32), 32)
    first = assign("meta.a", expr())
    second = assign("meta.b", expr())
    props = propose(SSAFunction.lift([first, second],
                                     info_for(a=32, b=32)))
    assert props.cse == {id(second): "meta.a"}


def test_cse_blocked_by_narrower_source():
    """meta.a holds the sum masked to 8 bits; meta.b needs 16 — copying
    from a would drop bits, so the recomputation must stay."""
    expr = lambda: ir.BinExpr("+", ir.FieldRef(IP), ir.Const(3, 32), 32)
    first = assign("meta.a", expr())
    second = assign("meta.b", expr())
    props = propose(SSAFunction.lift([first, second],
                                     info_for(a=8, b=16)))
    assert id(second) not in props.cse


def test_cse_blocked_when_source_overwritten():
    expr = lambda: ir.BinExpr("+", ir.FieldRef(IP), ir.Const(3, 32), 32)
    first = assign("meta.a", expr())
    clobber = assign("meta.a", 0)
    second = assign("meta.b", expr())
    props = propose(SSAFunction.lift([first, clobber, second],
                                     info_for(a=32, b=32)))
    assert id(second) not in props.cse


def test_dead_branch_pruning_from_entry_constant():
    cond = ir.BinExpr("==", ir.FieldRef("meta.x"), ir.Const(0, 32), 1)
    dead_if = branch([assign("meta.y", 1)], [assign("meta.y", 2)],
                     cond=cond)
    props = propose(SSAFunction.lift([dead_if], info_for(x=32, y=32)))
    assert props.branches == {id(dead_if): True}


def test_merge_proposals_requires_agreement():
    stmt = assign("meta.c", ir.FieldRef("meta.b"))
    agreed = propose(SSAFunction.lift(
        [assign("meta.b", 4), stmt], info_for(b=32, c=32)))
    assert agreed.subst[(id(stmt), "meta.b")] == ("const", 4)
    # A second linearization that saw the statement but could not prove
    # the substitution vetoes it ...
    from repro.p4.ssa import Proposals
    silent = Proposals(visited={id(stmt)})
    merged = merge_proposals([agreed, silent])
    assert (id(stmt), "meta.b") not in merged.subst
    # ... but one that never contained the statement has no say.
    unrelated = Proposals()
    merged = merge_proposals([agreed, unrelated])
    assert merged.subst[(id(stmt), "meta.b")] == ("const", 4)


def test_apply_proposals_fixpoint_collapses_copy_chain():
    program = ir.P4Program(
        name="tiny", metadata=[("a", 32), ("b", 32)],
        ingress=[assign("meta.a", 5),
                 assign("meta.b", ir.FieldRef("meta.a")),
                 ir.Digest("d", [ir.FieldRef("meta.b")])])
    totals = optimize_pipeline(program)
    assert totals["copyprop"] >= 1 and totals["dce"] >= 2
    (digest,) = program.ingress  # both assignments died
    assert isinstance(digest, ir.Digest)
    (field,) = digest.fields
    assert isinstance(field, ir.Const) and field.value == 5


def test_apply_proposals_prunes_decided_branch():
    taken = assign("meta.y", 1)
    dead_if = branch([taken], [assign("meta.y", 2)],
                     cond=ir.BinExpr("==", ir.FieldRef("meta.x"),
                                     ir.Const(0, 32), 1))
    body = [dead_if, ir.Digest("d", [ir.FieldRef("meta.y")])]
    fn = SSAFunction.lift(body, info_for(x=32, y=32))
    counts = apply_proposals([body], propose(fn))
    assert counts["branch"] == 1
    assert dead_if not in body and taken in body
