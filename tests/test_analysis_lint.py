"""The lint side of the dataflow-analysis framework.

Covers every rule category with a crafted fixture (asserting the rule
fires *and* points at the right source line), the structured-diagnostic
plumbing (ordering, JSON, severity thresholds), the ``repro.api.lint``
facade, the CLI, and the lint-visible difftest mutations
(``kill_register_write`` / ``orphan_table``): the linter must flag what
the mutations break.
"""

import json
import random

import pytest

from repro import api
from repro.analysis import (Diagnostic, Severity, lint_compiled,
                            max_severity, render_json, run_passes,
                            sort_diagnostics)
from repro.cli import main
from repro.difftest import inject_mutation, kill_register_write, orphan_table
from repro.p4 import ir
from repro.properties import PROPERTIES


def rules(diags):
    return {d.rule for d in diags}


def by_rule(diags, rule):
    return [d for d in diags if d.rule == rule]


# ---------------------------------------------------------------------------
# Rule fixtures: each crafted program triggers exactly the rule under test
# (other fragments stay clean) and the span points at the offending line.
# ---------------------------------------------------------------------------

def test_ih001_read_of_never_parsed_header():
    diags = api.lint("""
tele bit<12> entry = 0;
header bit<12> vlan_id;
{ entry = vlan_id; }
{ }
{ }
""", name="f_ih001")
    found = by_rule(diags, "IH001")
    assert found, diags
    assert found[0].severity is Severity.WARNING
    assert found[0].path == "hdr.vlan.vid"
    assert found[0].span.line == 4
    assert "never parsed" in found[0].message
    assert found[0].hint


def test_ih002_register_written_never_read():
    diags = api.lint("""
sensor bit<32> cnt = 0;
tele bool seen = false;
{ }
{ cnt = packet_length; seen = true; }
{ if (seen) { report; } }
""", name="f_ih002_wnr")
    found = by_rule(diags, "IH002")
    assert len(found) == 1
    assert found[0].path == "ih_reg_cnt"
    assert found[0].span.line == 5
    assert "never read" in found[0].message


def test_ih002_register_read_never_written():
    diags = api.lint("""
control thresh;
sensor bit<32> cnt = 0;
tele bool big = false;
{ }
{ if (cnt > thresh) { big = true; } }
{ if (big) { reject; } }
""", name="f_ih002_rnw")
    found = by_rule(diags, "IH002")
    assert len(found) == 1
    assert found[0].path == "ih_reg_cnt"
    assert found[0].span.line == 6
    assert "never written" in found[0].message


def test_ih002_register_never_referenced():
    diags = api.lint("""
sensor bit<32> unused = 0;
tele bool seen = false;
{ }
{ seen = true; }
{ if (seen) { report; } }
""", name="f_ih002_dead")
    found = by_rule(diags, "IH002")
    assert len(found) == 1
    assert found[0].path == "ih_reg_unused"
    assert "never read or written" in found[0].message


def test_ih003_statements_after_mark_to_drop():
    compiled = api.compile_indus("loops")
    assert not by_rule(lint_compiled(compiled), "IH003")
    compiled.check_stmts.append(ir.MarkToDrop())
    compiled.check_stmts.append(
        ir.AssignStmt("meta.ih_looped", ir.Const(1, 1)))
    found = by_rule(lint_compiled(compiled), "IH003")
    assert len(found) == 1
    assert found[0].block == "checker"
    assert found[0].severity is Severity.WARNING


def test_ih004_register_written_in_two_fragments():
    diags = api.lint("""
sensor bit<32> cnt = 0;
control thresh;
tele bool big = false;
{ }
{ cnt += packet_length; if (cnt > thresh) { big = true; } }
{ cnt += 1; if (big) { reject; } }
""", name="f_ih004")
    found = by_rule(diags, "IH004")
    assert len(found) == 1
    assert found[0].path == "ih_reg_cnt"
    assert found[0].span.line == 7
    assert "telemetry" in found[0].message and "checker" in found[0].message


def test_ih005_table_key_on_possibly_invalid_header():
    compiled = api.compile_indus("loops")
    assert not by_rule(lint_compiled(compiled), "IH005")
    compiled.tables["ih_bad_tbl"] = ir.Table(
        name="ih_bad_tbl", keys=[ir.TableKey("hdr.tcp.src_port")],
        actions=[compiled.mark_first_action])
    compiled.tele_stmts.append(ir.ApplyTable("ih_bad_tbl"))
    found = by_rule(lint_compiled(compiled), "IH005")
    assert found
    assert found[0].path == "hdr.tcp.src_port"
    assert "tcp" in found[0].hint


def test_ih005_validity_guard_suppresses_the_finding():
    compiled = api.compile_indus("loops")
    compiled.tables["ih_bad_tbl"] = ir.Table(
        name="ih_bad_tbl", keys=[ir.TableKey("hdr.tcp.src_port")],
        actions=[compiled.mark_first_action])
    compiled.tele_stmts.append(ir.IfStmt(
        cond=ir.ValidRef("tcp"),
        then_body=[ir.ApplyTable("ih_bad_tbl")]))
    assert not by_rule(lint_compiled(compiled), "IH005")


def test_ih006_width_truncation_on_scratch_copy():
    # The 9-bit standard_metadata.egress_port lands in an 8-bit dict-key
    # scratch field: a real (and intentional) compiler narrowing that
    # the linter must surface.
    diags = api.lint("""
control dict<bit<8>, bool> is_uplink;
header bit<8> eg_port;
tele bool up = false;
{ }
{ if (is_uplink[eg_port]) { up = true; } }
{ if (up) { report; } }
""", name="f_ih006")
    found = by_rule(diags, "IH006")
    assert found
    assert found[0].span.line == 6
    assert "9" in found[0].message and "8" in found[0].message


def test_ih007_dead_table():
    compiled = api.compile_indus("loops")
    assert not by_rule(lint_compiled(compiled), "IH007")
    compiled.tables["ih_orphan_tbl"] = ir.Table(
        name="ih_orphan_tbl", keys=[ir.TableKey("meta.ih_x")],
        actions=[compiled.mark_first_action])
    found = by_rule(lint_compiled(compiled), "IH007")
    assert len(found) == 1
    assert found[0].path == "ih_orphan_tbl"


# ---------------------------------------------------------------------------
# Diagnostic plumbing
# ---------------------------------------------------------------------------

def test_diagnostics_order_and_severity_helpers():
    a = Diagnostic(rule="IH009", severity=Severity.WARNING, message="w")
    b = Diagnostic(rule="IH001", severity=Severity.ERROR, message="e")
    c = Diagnostic(rule="IH004", severity=Severity.INFO, message="i")
    ordered = sort_diagnostics([a, b, c])
    assert [d.rule for d in ordered] == ["IH001", "IH009", "IH004"]
    assert max_severity([a, c]) is Severity.WARNING
    assert max_severity([]) is None
    assert Severity.parse("warn") is Severity.WARNING
    with pytest.raises(ValueError):
        Severity.parse("fatal")


def test_render_json_is_valid_and_complete():
    diags = api.lint("vlan_isolation")
    blob = json.loads(render_json(diags, name="vlan_isolation"))
    assert blob["program"] == "vlan_isolation"
    assert len(blob["diagnostics"]) == len(diags)
    for entry in blob["diagnostics"]:
        assert entry["rule"].startswith("IH")
        assert entry["severity"] in ("info", "warning", "error")


def test_lint_is_deterministic():
    for name in ("vlan_isolation", "load_balance", "stateful_firewall"):
        first = [d.format(name=name) for d in api.lint(name)]
        second = [d.format(name=name) for d in api.lint(name)]
        assert first == second


def test_only_filter_restricts_rules():
    compiled = api.compile_indus("loops")
    compiled.check_stmts.append(ir.MarkToDrop())
    compiled.check_stmts.append(
        ir.AssignStmt("meta.ih_looped", ir.Const(1, 1)))
    diags = lint_compiled(compiled, only=["IH003"])
    assert diags and rules(diags) == {"IH003"}
    assert run_passes.__module__.startswith("repro.analysis")


def test_bundled_properties_have_no_errors():
    # The CI lint gate: warnings are allowed (documented narrowings,
    # standalone-context header binds), errors are not.
    for name in sorted(PROPERTIES):
        worst = max_severity(api.lint(name))
        assert worst is None or worst < Severity.ERROR, name


# ---------------------------------------------------------------------------
# API facade + CLI
# ---------------------------------------------------------------------------

def test_api_lint_accepts_compiled_checker():
    compiled = api.compile_indus("vlan_isolation")
    assert ([d.rule for d in api.lint(compiled)]
            == [d.rule for d in api.lint("vlan_isolation")])


def test_cli_lint_text_json_and_threshold(capsys):
    assert main(["lint", "loops"]) == 0
    out = capsys.readouterr().out
    assert "loops: clean" in out

    assert main(["lint", "vlan_isolation", "--json"]) == 0
    blob = json.loads(capsys.readouterr().out)
    assert blob["program"] == "vlan_isolation"
    assert any(d["rule"] == "IH001" for d in blob["diagnostics"])

    # The same warning trips the gate at --fail-on warn.
    assert main(["lint", "vlan_isolation", "--fail-on", "warn"]) == 1


def test_cli_lint_all_and_seed_targets(capsys):
    assert main(["lint", "--all"]) == 0
    out = capsys.readouterr().out
    for name in PROPERTIES:
        assert f"{name}:" in out

    assert main(["lint", "7"]) == 0
    assert "dt7:" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# Lint-visible difftest mutations: the linter flags what they break
# ---------------------------------------------------------------------------

def test_kill_register_write_is_flagged_by_ih002():
    compiled = api.compile_indus("load_balance")
    assert not by_rule(lint_compiled(compiled), "IH002")
    note = kill_register_write(compiled)
    assert "killed write" in note
    found = by_rule(lint_compiled(compiled), "IH002")
    assert any(d.path in note for d in found), (note, found)


def test_orphan_table_is_flagged_by_ih007():
    compiled = api.compile_indus("stateful_firewall")
    assert not by_rule(lint_compiled(compiled), "IH007")
    note = orphan_table(compiled)
    assert "orphaned table" in note
    found = by_rule(lint_compiled(compiled), "IH007")
    assert any(d.path in note for d in found), (note, found)


def test_inject_mutation_lint_visible_kinds():
    rng = random.Random(0)
    compiled = api.compile_indus("load_balance")
    note = inject_mutation(compiled, rng, kinds=("kill_write",))
    assert note is not None
    assert by_rule(lint_compiled(compiled), "IH002")

    compiled = api.compile_indus("stateful_firewall")
    note = inject_mutation(compiled, rng, kinds=("orphan",))
    assert note is not None
    assert by_rule(lint_compiled(compiled), "IH007")
