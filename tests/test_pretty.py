"""P4 pretty-printer tests."""

from repro.p4 import count_loc, format_expr, ir, render
from repro.p4.programs import l2_port_forwarding, source_routing


def test_format_const():
    assert format_expr(ir.Const(5, 8)) == "8w5"
    assert format_expr(ir.Const(5, 32)) == "5"


def test_format_field_and_valid():
    assert format_expr(ir.FieldRef("hdr.ipv4.ttl")) == "hdr.ipv4.ttl"
    assert format_expr(ir.ValidRef("ipv4")) == "hdr.ipv4.isValid()"


def test_format_nested_expression():
    expr = ir.BinExpr("&&",
                      ir.BinExpr("==", ir.FieldRef("a"), ir.Const(1, 8)),
                      ir.UnExpr("!", ir.FieldRef("b")))
    assert format_expr(expr) == "((a == 8w1) && !(b))"


def test_format_absdiff_and_minmax():
    expr = ir.BinExpr("absdiff", ir.FieldRef("a"), ir.FieldRef("b"), 32)
    assert format_expr(expr) == "abs_diff(a, b)"
    assert format_expr(ir.BinExpr("min", ir.FieldRef("a"),
                                  ir.FieldRef("b"))) == "min(a, b)"


def test_render_l2_program_structure():
    text = render(l2_port_forwarding())
    assert "header ethernet_t" in text
    assert "struct headers_t" in text
    assert "table fwd_table" in text
    assert "fwd_table.apply();" in text
    assert "parser l2fwdParser" in text
    assert "control l2fwdDeparser" in text


def test_render_source_routing_includes_stack_comment():
    text = render(source_routing())
    assert "srcRoute" in text
    assert "transition select" in text


def test_render_is_deterministic():
    assert render(l2_port_forwarding()) == render(l2_port_forwarding())


def test_count_loc_skips_blank_and_comment_lines():
    text = "// comment\n\ncode();\n  // another\nmore();\n"
    assert count_loc(text) == 2


def test_apply_with_hit_body_renders_as_if():
    program = l2_port_forwarding()
    program.ingress = [ir.ApplyTable("fwd_table",
                                     hit_body=[ir.MarkToDrop()])]
    text = render(program)
    assert "if (fwd_table.apply().hit)" in text


def test_registers_render_in_ingress():
    program = l2_port_forwarding()
    program.add_register(ir.RegisterDef("r0", 32, 8))
    text = render(program)
    assert "register<bit<32>>(8) r0;" in text
