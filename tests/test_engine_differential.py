"""Differential tests: every engine vs the reference interpreter.

The fast engine (:mod:`repro.p4.fastpath`) and the generated-source
codegen engine (:mod:`repro.p4.codegen`) must be observationally
identical to the tree-walking interpreter for every program and packet:
byte-identical output packets, the same digests, and the same register
state.  This suite holds that line over the full properties corpus,
fuzz-generated Indus programs, and multi-hop telemetry chains.
"""

import random

import pytest

from repro.compiler import compile_program, standalone_program
from repro.net.packet import ip, make_tcp, make_udp
from repro.p4.bmv2 import Bmv2Switch
from repro.properties import PROPERTIES, load_source
from tests.genprog import gen_multihop_program, gen_program

ENGINES = ("interp", "fast", "codegen")


def serialize_outputs(outputs):
    """Byte-level view of process() results for exact comparison."""
    return [
        (port,
         [(h.htype.name, h.valid, h.to_bits()) for h in packet.headers],
         packet.payload_len)
        for port, packet in outputs
    ]


def random_packet(rng):
    maker = make_udp if rng.random() < 0.7 else make_tcp
    return maker(
        ip(10, rng.randrange(4), rng.randrange(4), rng.randrange(1, 250)),
        ip(10, rng.randrange(4), rng.randrange(4), rng.randrange(1, 250)),
        rng.randrange(1, 1 << 16), rng.randrange(1, 1 << 16),
        payload_len=rng.randrange(0, 1400),
        ttl=rng.randrange(1, 255),
    )


def build_pair(source, name="diff"):
    """The same compiled program on one switch per engine (anchor
    first), with the standard edge entries installed through the
    control API."""
    compiled = compile_program(source, name=name)
    program = standalone_program(compiled)
    switches = []
    for engine in ENGINES:
        sw = Bmv2Switch(program, name="s1", switch_id=7, engine=engine)
        sw.insert_entry("fwd_table", [1], "fwd_set_egress", [2])
        for port in (1, 2):
            sw.insert_entry(compiled.inject_table, [port],
                            compiled.mark_first_action)
            sw.insert_entry(compiled.strip_table, [port],
                            compiled.mark_last_action)
        switches.append(sw)
    return switches


def assert_switches_agree(switches, packets, ingress_port=1):
    anchor, others = switches[0], switches[1:]
    for packet in packets:
        out_anchor = serialize_outputs(anchor.process(packet, ingress_port))
        for sw in others:
            out = serialize_outputs(sw.process(packet, ingress_port))
            assert out == out_anchor, sw.engine
    for sw in others:
        assert anchor.registers == sw.registers, sw.engine
        assert anchor.packets_processed == sw.packets_processed, sw.engine
        assert anchor.packets_dropped == sw.packets_dropped, sw.engine
        assert list(anchor.digests) == list(sw.digests), sw.engine
        assert anchor.digests.total == sw.digests.total, sw.engine


@pytest.mark.parametrize("name", sorted(PROPERTIES))
def test_properties_corpus_engines_agree(name):
    switches = build_pair(load_source(name), name=name)
    rng = random.Random(hash(name) & 0xFFFF)
    packets = [random_packet(rng) for _ in range(20)]
    assert_switches_agree(switches, packets)


@pytest.mark.parametrize("seed", range(12))
def test_generated_programs_engines_agree(seed):
    source = gen_program(seed)
    switches = build_pair(source, name=f"gen{seed}")
    rng = random.Random(seed)
    packets = [random_packet(rng) for _ in range(15)]
    assert_switches_agree(switches, packets)


@pytest.mark.parametrize("seed", range(6))
def test_multihop_chains_engines_agree(seed):
    """Chain a packet through per-hop switch instances under both
    engines; outputs and telemetry must match hop by hop."""
    source = gen_multihop_program(seed)
    compiled = compile_program(source, name=f"hop{seed}")
    program = standalone_program(compiled)
    rng = random.Random(1000 + seed)
    hops = [rng.randrange(1, 5) for _ in range(rng.randrange(1, 6))]
    packets = {engine: random_packet(random.Random(2000 + seed))
               for engine in ENGINES}
    for i, sid in enumerate(hops):
        outs = {}
        for engine in ENGINES:
            if packets[engine] is None:
                continue
            sw = Bmv2Switch(program, name=f"s{i}", switch_id=sid,
                            engine=engine)
            sw.insert_entry("fwd_table", [1], "fwd_set_egress", [2])
            if compiled.switch_id_table in program.tables:
                sw.set_default_action(compiled.switch_id_table,
                                      compiled.set_switch_id_action, [sid])
            if i == 0:
                sw.insert_entry(compiled.inject_table, [1],
                                compiled.mark_first_action)
            if i == len(hops) - 1:
                sw.insert_entry(compiled.strip_table, [2],
                                compiled.mark_last_action)
            outs[engine] = sw.process(packets[engine], 1)
        for engine in ENGINES[1:]:
            assert serialize_outputs(outs["interp"]) == \
                serialize_outputs(outs[engine]), engine
        packets = {engine: (out[0][1] if out else None)
                   for engine, out in outs.items()}
        if packets["interp"] is None:
            break


def test_control_plane_churn_engines_agree():
    """Insert/delete/clear churn mid-stream: index invalidation must
    track the reference scan exactly."""
    source = load_source("loops")
    compiled = compile_program(source, name="churn")
    program = standalone_program(compiled)
    rng = random.Random(42)
    switches = {e: Bmv2Switch(program, name="s1", engine=e)
                for e in ENGINES}
    entries = {e: {} for e in ENGINES}
    for e, sw in switches.items():
        entries[e]["fwd"] = sw.insert_entry("fwd_table", [1],
                                            "fwd_set_egress", [2])
        sw.insert_entry(compiled.inject_table, [1],
                        compiled.mark_first_action)
        sw.insert_entry(compiled.strip_table, [2],
                        compiled.mark_last_action)
    for round_no in range(6):
        packets = [random_packet(rng) for _ in range(4)]
        for packet in packets:
            outs = [switches[e].process(packet, 1) for e in ENGINES]
            for other in outs[1:]:
                assert serialize_outputs(outs[0]) == \
                    serialize_outputs(other)
        if round_no == 2:
            for e, sw in switches.items():
                sw.delete_entry("fwd_table", entries[e]["fwd"])
        elif round_no == 3:
            for e, sw in switches.items():
                entries[e]["fwd"] = sw.insert_entry(
                    "fwd_table", [1], "fwd_set_egress", [3])
        elif round_no == 4:
            for e, sw in switches.items():
                sw.clear_table("fwd_table")
                entries[e]["fwd"] = sw.insert_entry(
                    "fwd_table", [1], "fwd_set_egress", [2])
    for e in ENGINES:
        assert switches[e].packets_processed == \
            switches[ENGINES[0]].packets_processed
