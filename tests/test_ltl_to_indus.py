"""Theorem 3.1 / Corollary 3.2: every LTLf property is expressible in
Indus.  Property-based three-way equivalence between (1) direct LTLf
semantics, (2) the first-order translation, and (3) the generated Indus
monitor run on the reference interpreter — plus a compiled-pipeline
check for small formulas."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import compile_program, standalone_program
from repro.ltl import (Atom, fo_holds, holds, ltl_to_indus,
                       ltl_to_indus_source, monitor_accepts, parse_formula)
from repro.net.packet import ip, make_udp
from repro.p4.bmv2 import Bmv2Switch

ATOMS = ["a", "b"]


def formula_strategy(max_depth=3):
    atoms = st.sampled_from([f"{name}" for name in ATOMS])
    unary = st.sampled_from(["!", "X ", "F ", "G "])
    return st.recursive(
        atoms,
        lambda children: st.one_of(
            st.tuples(unary, children).map(lambda t: f"{t[0]}({t[1]})"),
            st.tuples(children, st.sampled_from([" & ", " | ", " U "]),
                      children).map(lambda t: f"({t[0]}{t[1]}{t[2]})"),
        ),
        max_leaves=6,
    )


trace_strategy = st.lists(
    st.sets(st.sampled_from(ATOMS)), min_size=1, max_size=6)


@given(text=formula_strategy(), trace=trace_strategy)
@settings(max_examples=120, deadline=None)
def test_three_way_equivalence(text, trace):
    formula = parse_formula(text)
    direct = holds(formula, trace)
    fo = fo_holds(formula, trace)
    monitor = monitor_accepts(formula, trace, max_trace=6)
    assert direct == fo == monitor


@pytest.mark.parametrize("text, trace, expected", [
    ("G !(a & X (F a))", [{"a"}, set(), {"a"}], False),
    ("G !(a & X (F a))", [{"a"}, set(), set()], True),
    ("a U b", [{"a"}, {"a"}, {"b"}], True),
    ("a U b", [{"a"}, set(), {"b"}], False),
    ("F (a & b)", [{"a"}, {"b"}, {"a", "b"}], True),
    ("X a", [{"a"}], False),
])
def test_known_cases_via_generated_monitor(text, trace, expected):
    assert monitor_accepts(parse_formula(text), trace) == expected


def test_generated_source_is_wellformed():
    source = ltl_to_indus_source(parse_formula("G (a -> F b)"), max_trace=4)
    checked = ltl_to_indus(parse_formula("G (a -> F b)"), max_trace=4)
    assert "T.push(length(T));" in source
    assert "A_a.push(atom_a);" in source
    assert checked.program.check_block  # non-trivial checker


def test_trace_longer_than_capacity_rejected():
    with pytest.raises(ValueError):
        monitor_accepts(Atom("a"), [set()] * 9, max_trace=8)


@pytest.mark.parametrize("text", ["a", "X a", "a U b", "F a"])
def test_generated_monitor_compiles_and_runs_on_switch(text):
    """The Theorem 3.1 monitors are real Indus programs: they compile to
    P4 and give the same verdict on the behavioral switch (single-hop
    traces, where the one switch is both first and last hop)."""
    formula = parse_formula(text)
    checked = ltl_to_indus(formula, max_trace=3)
    compiled = compile_program(
        checked, name="ltl",
        bindings={f"atom_{a}": f"meta.atom_{a}" for a in ATOMS},
    )
    program = standalone_program(compiled)
    # Provide the atom metadata fields the bindings reference.
    for a in ATOMS:
        program.metadata.append((f"atom_{a}", 1))
    import copy

    from repro.p4 import ir

    for event in [set(), {"a"}, {"b"}, {"a", "b"}]:
        per_event = copy.deepcopy(program)
        # Atom values arrive via an ingress prologue we splice in (the
        # forwarding program's job in a real deployment).
        prologue = [ir.AssignStmt(f"meta.atom_{a}",
                                  ir.Const(1 if a in event else 0, 1))
                    for a in ATOMS]
        per_event.ingress[:0] = prologue
        sw = Bmv2Switch(per_event, name="s1")
        sw.insert_entry("fwd_table", [1], "fwd_set_egress", [2])
        sw.insert_entry(compiled.inject_table, [1],
                        compiled.mark_first_action)
        sw.insert_entry(compiled.strip_table, [2], compiled.mark_last_action)
        packet = make_udp(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2)
        delivered = len(sw.process(packet, 1)) == 1
        assert delivered == holds(formula, [event])
