"""Unit tests for the Aether substrate: portal rules, ONOS table
management, the mobile core's per-client PFCP-style behaviour, and the
UPF pipeline itself."""

import pytest

from repro.aether import (ALLOW, DENY, FilterRule, OnosController,
                          OperatorPortal, upf_program)
from repro.aether.upf import DIRECTION_DOWNLINK, DIRECTION_UPLINK
from repro.net.packet import (IP_PROTO_TCP, IP_PROTO_UDP, ip,
                              make_gtpu_encapsulated, make_udp)
from repro.p4.bmv2 import Bmv2Switch


# ---------------------------------------------------------------------------
# Portal / rules
# ---------------------------------------------------------------------------

def test_rule_prefix_matching():
    rule = FilterRule(priority=1, ip_prefix=(ip(10, 0, 1, 0), 24),
                      action=ALLOW)
    assert rule.matches(ip(10, 0, 1, 7), IP_PROTO_UDP, 80)
    assert not rule.matches(ip(10, 0, 2, 7), IP_PROTO_UDP, 80)


def test_rule_any_fields():
    rule = FilterRule(priority=1, action=DENY)
    assert rule.matches(ip(1, 2, 3, 4), IP_PROTO_TCP, 12345)
    assert rule.addr_range() == (0, 0xFFFFFFFF)
    assert rule.proto_range() == (0, 0xFF)


def test_rule_port_range():
    rule = FilterRule(priority=1, l4_port=(81, 82), action=ALLOW)
    assert rule.matches(0, 17, 81) and rule.matches(0, 17, 82)
    assert not rule.matches(0, 17, 83)


def test_rule_validation():
    with pytest.raises(ValueError):
        FilterRule(priority=1, action="maybe")
    with pytest.raises(ValueError):
        FilterRule(priority=1, l4_port=(10, 5))


def test_slice_decide_priority_order():
    portal = OperatorPortal()
    portal.create_slice("s", [
        FilterRule(priority=10, action=DENY),
        FilterRule(priority=20, proto=IP_PROTO_UDP, l4_port=(81, 81),
                   action=ALLOW),
    ])
    config = portal.slices["s"]
    assert config.decide(ip(1, 1, 1, 1), IP_PROTO_UDP, 81) == ALLOW
    assert config.decide(ip(1, 1, 1, 1), IP_PROTO_UDP, 80) == DENY
    assert config.decide(ip(1, 1, 1, 1), IP_PROTO_TCP, 81) == DENY


def test_portal_membership():
    portal = OperatorPortal()
    portal.create_slice("a")
    portal.create_slice("b")
    portal.add_member("a", "imsi-1")
    assert portal.slice_of("imsi-1") == "a"
    with pytest.raises(ValueError):
        portal.add_member("b", "imsi-1")  # already in a slice
    with pytest.raises(ValueError):
        portal.create_slice("a")
    with pytest.raises(ValueError):
        portal.rules_for("imsi-unknown")


# ---------------------------------------------------------------------------
# ONOS controller
# ---------------------------------------------------------------------------

def onos_with_switch():
    sw = Bmv2Switch(upf_program(), name="leaf1")
    return OnosController({"leaf1": sw}), sw


def test_attach_installs_sessions_and_terminations():
    onos, sw = onos_with_switch()
    rules = [FilterRule(priority=10, action=DENY),
             FilterRule(priority=20, l4_port=(81, 81), action=ALLOW)]
    record = onos.handle_attach("imsi-1", "s", ip(172, 16, 0, 1),
                                100, 1100, rules)
    assert record.client_id == 1
    assert len(sw.entries["uplink_sessions"]) == 1
    assert len(sw.entries["downlink_sessions"]) == 1
    assert len(sw.entries["applications"]) == 2
    assert len(sw.entries["terminations"]) == 2


def test_identical_rules_share_app_entries():
    onos, sw = onos_with_switch()
    rules = [FilterRule(priority=10, action=DENY)]
    onos.handle_attach("imsi-1", "s", 1, 100, 1100, list(rules))
    onos.handle_attach("imsi-2", "s", 2, 101, 1101, list(rules))
    assert len(sw.entries["applications"]) == 1  # shared
    assert len(sw.entries["terminations"]) == 2  # per client


def test_edited_rules_allocate_new_app_ids():
    onos, sw = onos_with_switch()
    onos.handle_attach("imsi-1", "s", 1, 100, 1100,
                       [FilterRule(priority=20, l4_port=(81, 81),
                                   action=ALLOW)])
    onos.handle_attach("imsi-2", "s", 2, 101, 1101,
                       [FilterRule(priority=25, l4_port=(81, 82),
                                   action=ALLOW)])
    assert len(sw.entries["applications"]) == 2
    assert onos.client("imsi-1").app_ids != onos.client("imsi-2").app_ids


def test_double_attach_rejected():
    onos, _ = onos_with_switch()
    onos.handle_attach("imsi-1", "s", 1, 100, 1100, [])
    with pytest.raises(ValueError):
        onos.handle_attach("imsi-1", "s", 1, 102, 1102, [])


# ---------------------------------------------------------------------------
# UPF pipeline
# ---------------------------------------------------------------------------

def upf_switch():
    sw = Bmv2Switch(upf_program(), name="leaf1")
    sw.insert_entry("upf_routes", [(0, 0)], "upf_route", [2])
    return sw


def uplink_packet(teid=100, dport=81, proto="udp"):
    inner = make_udp(ip(172, 16, 0, 1), ip(10, 0, 1, 2), 40000, dport)
    return make_gtpu_encapsulated(ip(192, 168, 0, 1), ip(192, 168, 0, 9),
                                  teid, inner)


def test_uplink_decapsulation():
    sw = upf_switch()
    sw.insert_entry("uplink_sessions", [100], "set_session_uplink", [1, 1])
    sw.insert_entry("applications",
                    [(0, 0xFF), (0, 0xFFFFFFFF), (0, 0xFFFF), (0, 0xFF)],
                    "set_app_id", [1], priority=1)
    sw.insert_entry("terminations", [1, 1], "term_forward")
    out = sw.process(uplink_packet(), 1)
    assert len(out) == 1
    names = [h.name for h in out[0][1].headers]
    assert "gtpu" not in names          # decapsulated
    assert names.count("ipv4") == 1     # outer stripped


def test_unknown_teid_is_transit_traffic():
    """GTP-U with an unknown TEID is not UPF traffic: it transits the
    fabric unfiltered (direction stays 0)."""
    sw = upf_switch()
    out = sw.process(uplink_packet(teid=999), 1)
    assert len(out) == 1
    assert out[0][1].find("gtpu") is not None  # untouched


def test_terminations_default_drop_sets_flag_then_drops():
    sw = upf_switch()
    sw.insert_entry("uplink_sessions", [100], "set_session_uplink", [1, 1])
    sw.insert_entry("applications",
                    [(0, 0xFF), (0, 0xFFFFFFFF), (0, 0xFFFF), (0, 0xFF)],
                    "set_app_id", [3], priority=1)
    # No terminations entry for (1, 3): default drop.
    assert sw.process(uplink_packet(), 1) == []


def test_applications_priority_reclassifies():
    sw = upf_switch()
    sw.insert_entry("uplink_sessions", [100], "set_session_uplink", [1, 1])
    sw.insert_entry("applications",
                    [(0, 0xFF), (0, 0xFFFFFFFF), (81, 81), (17, 17)],
                    "set_app_id", [2], priority=20)
    sw.insert_entry("applications",
                    [(0, 0xFF), (0, 0xFFFFFFFF), (81, 82), (17, 17)],
                    "set_app_id", [3], priority=25)
    sw.insert_entry("terminations", [1, 2], "term_forward")
    # Higher-priority entry assigns app 3, which has no termination.
    assert sw.process(uplink_packet(dport=81), 1) == []


def test_downlink_encapsulation():
    sw = upf_switch()
    sw.insert_entry("downlink_sessions", [ip(172, 16, 0, 1)],
                    "set_session_downlink", [1, 1, 1100])
    sw.insert_entry("applications",
                    [(0, 0xFF), (0, 0xFFFFFFFF), (0, 0xFFFF), (0, 0xFF)],
                    "set_app_id", [1], priority=1)
    sw.insert_entry("terminations", [1, 1], "term_forward")
    packet = make_udp(ip(10, 0, 1, 2), ip(172, 16, 0, 1), 81, 40000)
    out = sw.process(packet, 2)
    assert len(out) == 1
    result = out[0][1]
    gtpu = result.find("gtpu")
    assert gtpu is not None and gtpu.teid == 1100
    # Inner copy preserves the original addressing.
    inner = result.find("ipv4", nth=1)
    assert inner.dst_addr == ip(172, 16, 0, 1)


def test_plain_ipv4_transit_is_routed():
    sw = upf_switch()
    packet = make_udp(ip(10, 0, 1, 1), ip(10, 0, 2, 2), 1, 2)
    out = sw.process(packet, 3)
    assert out[0][0] == 2  # default route


def test_upf_ecmp_spreads():
    sw = Bmv2Switch(upf_program(), name="leaf1")
    sw.insert_entry("upf_routes", [(0, 0)], "upf_route_ecmp", [2])
    sw.insert_entry("upf_ecmp_table", [0], "upf_ecmp_port", [3])
    sw.insert_entry("upf_ecmp_table", [1], "upf_ecmp_port", [4])
    ports = {sw.process(make_udp(ip(1, 1, 1, 1), ip(2, 2, 2, 2), s, 80),
                        1)[0][0]
             for s in range(40)}
    assert ports == {3, 4}


# ---------------------------------------------------------------------------
# Detach
# ---------------------------------------------------------------------------

def test_detach_removes_client_state():
    onos, sw = onos_with_switch()
    rules = [FilterRule(priority=10, action=DENY)]
    onos.handle_attach("imsi-1", "s", ip(172, 16, 0, 1), 100, 1100, rules)
    onos.handle_attach("imsi-2", "s", ip(172, 16, 0, 2), 101, 1101,
                       list(rules))
    onos.handle_detach("imsi-1")
    assert len(sw.entries["uplink_sessions"]) == 1
    assert len(sw.entries["downlink_sessions"]) == 1
    # Only client 2's termination remains; shared app entry stays.
    assert len(sw.entries["terminations"]) == 1
    assert len(sw.entries["applications"]) == 1
    with pytest.raises(ValueError):
        onos.handle_detach("imsi-1")


def test_detached_client_traffic_becomes_transit():
    """After detach the old TEID is unknown: GTP-U traffic is no longer
    terminated (it transits opaquely) — the realistic state the UPF is
    left in, visible to operators via Hydra's unknown-direction path."""
    from repro.aether import AetherTestbed

    tb = AetherTestbed()
    tb.provision_slice("s", [FilterRule(priority=10, action=ALLOW)])
    tb.portal.add_member("s", "imsi-1")
    tb.attach("imsi-1", 1)
    server = ip(10, 0, 1, 2)
    assert tb.send_uplink("imsi-1", server, 80).delivered
    record = tb.onos.client("imsi-1")
    teid = record.uplink_teid
    tb.detach("imsi-1")
    # Same tunnel, now unknown: the GTP packet transits unfiltered
    # toward its outer destination (the UPF N3 address), not the app.
    from repro.net.packet import make_udp, make_gtpu_encapsulated
    from repro.aether.testbed import N3_CELL, N3_UPF, CELL_HOST

    inner = make_udp(ip(172, 16, 0, 1), server, 40000, 80)
    packet = make_gtpu_encapsulated(N3_CELL, N3_UPF, teid, inner)
    network = tb.network
    before = network.host("h2").rx_count
    network.host(CELL_HOST).send(packet)
    network.run()
    assert network.host("h2").rx_count == before  # no longer delivered
