"""Workload tests: anonymizer (prefix preservation, one-wayness), campus
trace generator (determinism, heavy tail), traffic processes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.packet import ip, make_udp
from repro.net.simulator import Network
from repro.net.topology import single_switch
from repro.p4.bmv2 import Bmv2Switch
from repro.p4.programs import l2_port_forwarding
from repro.workloads import (CampusTraceGenerator, EchoResponder, Pinger,
                             PrefixPreservingAnonymizer, UdpLoadGenerator)


# ---------------------------------------------------------------------------
# Anonymizer
# ---------------------------------------------------------------------------

def common_prefix_len(a, b):
    for i in range(32, -1, -1):
        if i == 0 or (a >> (32 - i)) == (b >> (32 - i)):
            return i
    return 0


@given(a=st.integers(min_value=0, max_value=2**32 - 1),
       b=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_prefix_preservation(a, b):
    anon = PrefixPreservingAnonymizer()
    pa, pb = anon.anonymize_ipv4(a), anon.anonymize_ipv4(b)
    assert common_prefix_len(pa, pb) == common_prefix_len(a, b)


def test_anonymization_is_deterministic_per_salt():
    a1 = PrefixPreservingAnonymizer(salt=b"one")
    a2 = PrefixPreservingAnonymizer(salt=b"one")
    a3 = PrefixPreservingAnonymizer(salt=b"two")
    addr = ip(128, 112, 5, 9)
    assert a1.anonymize_ipv4(addr) == a2.anonymize_ipv4(addr)
    assert a1.anonymize_ipv4(addr) != a3.anonymize_ipv4(addr)


@given(st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_anonymization_is_injective_in_practice(addr):
    anon = PrefixPreservingAnonymizer()
    other = addr ^ 1  # differs in the last bit
    assert anon.anonymize_ipv4(addr) != anon.anonymize_ipv4(other)


def test_mac_anonymization_is_local_unicast():
    anon = PrefixPreservingAnonymizer()
    mac = anon.anonymize_mac(0x001122334455)
    assert mac & 0x020000000000           # locally administered
    assert not (mac & 0x010000000000)     # unicast


def test_packet_anonymization_changes_addresses_keeps_sizes():
    anon = PrefixPreservingAnonymizer()
    packet = make_udp(ip(128, 112, 1, 1), ip(93, 184, 0, 5), 1234, 80,
                      payload_len=100)
    packet.meta["flow_id"] = ("sensitive",)
    out = anon.anonymize_packet(packet)
    assert out.find("ipv4").src_addr != packet.find("ipv4").src_addr
    assert out.length == packet.length
    assert "flow_id" not in out.meta
    # Original untouched.
    assert packet.find("ipv4").src_addr == ip(128, 112, 1, 1)


# ---------------------------------------------------------------------------
# Campus trace generator
# ---------------------------------------------------------------------------

def test_trace_is_deterministic_under_seed():
    a = [p.length for p in CampusTraceGenerator(seed=1).packets(200)]
    b = [p.length for p in CampusTraceGenerator(seed=1).packets(200)]
    c = [p.length for p in CampusTraceGenerator(seed=2).packets(200)]
    assert a == b
    assert a != c


def test_trace_has_protocol_mix():
    generator = CampusTraceGenerator(seed=3)
    list(generator.packets(500))
    stats = generator.stats
    assert stats.tcp_packets > stats.udp_packets > 0


def test_trace_sources_come_from_campus_subnets():
    generator = CampusTraceGenerator(seed=4)
    for packet in generator.packets(100):
        src = packet.find("ipv4").src_addr
        assert (src >> 16) in ((128 << 8) | 112, (140 << 8) | 180)


def test_flow_sizes_are_heavy_tailed():
    generator = CampusTraceGenerator(seed=5)
    list(generator.packets(3000))
    # Pareto(1.2): plenty of 1-packet flows, some large ones.
    assert generator.stats.flows > 100


def test_timed_packets_respect_duration_and_rate():
    generator = CampusTraceGenerator(seed=6)
    events = list(generator.timed_packets(rate_pps=1000, duration_s=0.5))
    assert events
    times = [t for t, _ in events]
    assert max(times) <= 0.5
    assert times == sorted(times)
    # Within a generous factor of the nominal rate.
    assert 0.5 * 500 <= len(events) <= 2.0 * 500


# ---------------------------------------------------------------------------
# Traffic processes
# ---------------------------------------------------------------------------

def echo_network():
    topo = single_switch(2)
    bmv2 = Bmv2Switch(l2_port_forwarding(), name="s1")
    bmv2.insert_entry("fwd_table", [1], "fwd_set_egress", [2])
    bmv2.insert_entry("fwd_table", [2], "fwd_set_egress", [1])
    return Network(topo, {"s1": bmv2})


def test_pinger_measures_rtts():
    network = echo_network()
    EchoResponder(network, "h2")
    pinger = Pinger(network, "h1", "h2", interval_s=0.001)
    count = pinger.schedule(0.01)
    network.run()
    assert count == 10
    assert len(pinger.samples) == 10
    assert all(s.rtt_s > 0 for s in pinger.samples)
    series = pinger.series()
    assert series == sorted(series)


def test_echo_responder_ignores_non_echo_traffic():
    network = echo_network()
    responder = EchoResponder(network, "h2")
    packet = make_udp(network.topology.hosts["h1"].ipv4,
                      network.topology.hosts["h2"].ipv4, 5, 9999)
    network.host("h1").send(packet)
    network.run()
    assert responder.replies == 0


def test_load_generator_is_bidirectional():
    network = echo_network()
    load = UdpLoadGenerator(network, "h1", "h2", rate_bps=10e6,
                            packet_len=1000, jitter=False)
    count = load.schedule(0.01)
    network.run()
    assert count == load.packets_sent
    assert network.host("h1").rx_count > 0
    assert network.host("h2").rx_count > 0


def test_load_rate_approximates_target():
    network = echo_network()
    load = UdpLoadGenerator(network, "h1", "h2", rate_bps=8e6,
                            packet_len=1000, jitter=False)
    load.schedule(0.1)
    # 8 Mb/s at 1000B datagrams = 1000 pps per direction x 0.1 s.
    per_direction = load.packets_sent / 2
    assert 90 <= per_direction <= 110
