"""The optimizer side of the dataflow-analysis framework.

The optimizer's contract is *observational identity*: fold, DCE,
structure pruning, and field coalescing may only change resource usage,
never behavior.  These tests pin the fold semantics against the bmv2
evaluator, the structural invariants the runtime depends on (every
control keeps its ``control_tables`` entry — deployment iterates them),
and the contract itself via the three-level differential oracle.
"""

import random

import pytest

from repro import api
from repro.analysis import optimize_compiled
from repro.analysis.optimize import _fold_expr, OptimizeStats
from repro.difftest import run_seed
from repro.p4 import ir
from repro.p4.bmv2 import Bmv2Switch
from repro.properties import PROPERTIES, TABLE1_ORDER, load_checked


def fold(expr):
    return _fold_expr(expr, OptimizeStats())


def const(value, width=32):
    return ir.Const(value, width)


# ---------------------------------------------------------------------------
# Constant folding mirrors bmv2's evaluator exactly
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("op,left,right,width,expected", [
    ("+", 250, 10, 8, (250 + 10) & 0xFF),
    ("-", 3, 5, 8, (3 - 5) & 0xFF),
    ("*", 100, 100, 8, (100 * 100) & 0xFF),
    ("/", 7, 0, 8, 0),              # bmv2: division by zero yields 0
    ("/", 7, 2, 8, 3),
    ("%", 7, 0, 8, 0),
    ("%", 7, 3, 8, 1),
    ("<<", 1, 9, 8, (1 << (9 % 8)) & 0xFF),   # shift amount mod width
    (">>", 128, 9, 8, 128 >> (9 % 8)),
    ("absdiff", 3, 5, 8, 2),
    ("absdiff", 5, 3, 8, 2),
    ("min", 3, 5, 8, 3),
    ("max", 3, 5, 8, 5),
    ("==", 4, 4, 1, 1),
    ("<", 5, 3, 1, 0),
    ("&&", 0, 7, 1, 0),
    ("||", 0, 7, 1, 1),
])
def test_fold_bin_matches_bmv2(op, left, right, width, expected):
    expr = ir.BinExpr(op, const(left, width), const(right, width), width)
    folded = fold(expr)
    assert isinstance(folded, ir.Const), (op, folded)
    assert folded.value == expected, (op, left, right)


def test_fold_short_circuit_with_non_const_side():
    # A decided const side folds && / || even when the other side is a
    # field read: checker expressions are pure, so this is sound.
    field = ir.FieldRef("meta.ih_x")
    assert fold(ir.BinExpr("&&", const(0, 1), field, 1)).value == 0
    assert fold(ir.BinExpr("||", const(1, 1), field, 1)).value == 1
    # An undecided const side must NOT fold away the field read.
    out = fold(ir.BinExpr("&&", const(1, 1), field, 1))
    assert not isinstance(out, ir.Const)


def test_fold_unary():
    assert fold(ir.UnExpr("!", const(0, 1))).value == 1
    assert fold(ir.UnExpr("!", const(7, 8))).value == 0
    folded = fold(ir.UnExpr("~", const(0b1010, 4)))
    assert folded.value == 0b0101


def test_folded_if_collapses_to_taken_arm():
    compiled = api.compile_indus("""
tele bit<8> x = 0;
{ }
{ if (1 == 1) { x = 3; } else { x = 4; } }
{ }
""", name="fold_if", optimize=True)
    flat = list(ir.walk_stmts(compiled.tele_stmts))
    assert not any(isinstance(s, ir.IfStmt) for s in flat)
    assigned = [s for s in flat if isinstance(s, ir.AssignStmt)
                and s.dest == "hdr.hydra.x"]
    assert any(isinstance(s.value, ir.Const) and s.value.value == 3
               for s in assigned)
    # The not-taken arm's assignment is gone.
    assert not any(isinstance(s, ir.AssignStmt)
                   and isinstance(s.value, ir.Const) and s.value.value == 4
                   for s in flat)


# ---------------------------------------------------------------------------
# Structural invariants
# ---------------------------------------------------------------------------

def test_every_control_keeps_its_control_tables_entry():
    # Deployment iterates compiled.control_tables[decl.name] on every
    # control update; a pruned-empty control must keep its (empty)
    # entry, and scalar controls (empty widths list) must survive.
    for name in sorted(PROPERTIES):
        plain = api.compile_indus(name)
        opt = api.compile_indus(name, optimize=True)
        assert set(opt.control_tables) == set(plain.control_tables), name
        assert set(opt.control_value_widths) == \
            set(plain.control_value_widths), name
        for ctrl, tbls in opt.control_tables.items():
            for tbl in tbls:
                assert tbl in opt.tables, (name, ctrl, tbl)
            # Scalar controls carry an empty widths list; it must stay
            # empty (a deploy-time sentinel), never grow.
            if plain.control_value_widths[ctrl] == []:
                assert opt.control_value_widths[ctrl] == [], (name, ctrl)


def test_optimizer_is_idempotent():
    for name in ("multi_tenancy", "stateful_firewall", "loops"):
        compiled = api.compile_indus(name)
        first = optimize_compiled(compiled)
        second = optimize_compiled(compiled)
        assert not second.changed(), (name, second)
        assert first.changed() or not first.changed()  # stats populated


def test_optimizer_reports_measurable_reductions():
    # The acceptance bar: a real PHV reduction on at least one paper
    # property.  multi_tenancy coalesces tenant-lookup scratch fields.
    stats_seen = False
    for name in ("multi_tenancy", "stateful_firewall"):
        compiled = api.compile_indus(name)
        stats = optimize_compiled(compiled)
        if stats.coalesced_fields or stats.removed_metadata_bits > 0:
            stats_seen = True
    assert stats_seen


def test_dead_control_loader_tables_are_pruned():
    # load_balance declares scalar controls whose loader tables are
    # applied once per lookup site; sites made dead by folding prune.
    plain = api.compile_indus("load_balance")
    opt = api.compile_indus("load_balance", optimize=True)
    assert len(opt.tables) <= len(plain.tables)
    # ABI tables always survive.
    for tbl in (opt.inject_table, opt.strip_table):
        assert tbl in opt.tables


def test_unused_sensor_register_is_removed():
    src = """
sensor bit<32> unused = 0;
tele bool seen = false;
{ }
{ seen = true; }
{ if (seen) { report; } }
"""
    plain = api.compile_indus(src, name="dead_reg")
    opt = api.compile_indus(src, name="dead_reg", optimize=True)
    plain_regs = {r.name for r in plain.registers}
    opt_regs = {r.name for r in opt.registers}
    assert "ih_reg_unused" in plain_regs
    assert "ih_reg_unused" not in opt_regs


def test_optimized_program_still_renders_and_runs():
    from repro.compiler import standalone_program
    from repro.net.packet import ip, make_udp
    from repro.p4 import count_loc, render

    compiled = api.compile_indus("loops", optimize=True)
    program = standalone_program(compiled)
    assert count_loc(render(program)) > 50
    sw = Bmv2Switch(program, name="s1")
    sw.insert_entry("fwd_table", [1], "fwd_set_egress", [2])
    sw.insert_entry(compiled.inject_table, [1], compiled.mark_first_action)
    sw.insert_entry(compiled.strip_table, [2], compiled.mark_last_action)
    out = sw.process(make_udp(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2), 1)
    assert len(out) == 1


# ---------------------------------------------------------------------------
# The contract: optimized == unoptimized under the three-level oracle
# ---------------------------------------------------------------------------

@pytest.mark.difftest
def test_oracle_verdicts_identical_with_and_without_optimizer():
    # The full ≥200-seed campaign runs in CI / by hand; this in-suite
    # slice keeps the contract pinned on every test run.
    for seed in range(30):
        plain = run_seed(seed)
        opt = run_seed(seed, optimize=True)
        assert plain.verdict == opt.verdict == "ok", (
            seed, plain.verdict, opt.verdict)
        assert plain.packets_run == opt.packets_run
        assert plain.hops_checked == opt.hops_checked
        assert plain.reports_checked == opt.reports_checked


@pytest.mark.difftest
def test_oracle_still_catches_mutations_on_optimized_programs():
    # The optimizer must not eat the oracle's bug-finding power: an
    # injected mutation on an optimized checker is still caught.
    caught = 0
    for seed in range(12):
        rng = random.Random(seed)
        from repro.difftest import gen_scenario, inject_mutation
        from repro.difftest.harness import run_scenario

        notes = []

        def mutate(compiled):
            note = inject_mutation(compiled, rng)
            if note is not None:
                notes.append(note)

        result = run_scenario(gen_scenario(seed), mutate=mutate,
                              optimize=True)
        if notes and result.failure is not None:
            caught += 1
    assert caught > 0


# ---------------------------------------------------------------------------
# Table 1 deltas
# ---------------------------------------------------------------------------

def test_table1_reports_phv_delta_on_at_least_one_property():
    from repro.experiments.table1 import compute_table, format_table

    rows = compute_table(["multi_tenancy", "stateful_firewall"],
                         optimize=True)
    assert all(row.opt_stages is not None for row in rows)
    assert any(row.opt_phv_pct < row.phv_pct for row in rows)
    # Monotone: never more stages or PHV.
    for row in rows:
        assert row.opt_stages <= row.stages
        assert row.opt_phv_pct <= row.phv_pct + 1e-9
    text = format_table(rows)
    assert "opt" in text


def test_table1_unoptimized_columns_unchanged_by_optimize_flag():
    from repro.experiments.table1 import compute_row

    plain = compute_row("loops")
    with_opt = compute_row("loops", optimize=True)
    assert plain.stages == with_opt.stages
    assert plain.phv_pct == with_opt.phv_pct
    assert plain.p4_loc == with_opt.p4_loc
    assert plain.opt_stages is None


def test_compile_suite_optimize_flag_threads_through():
    from repro.properties import compile_suite

    suite = compile_suite(["loops", "multi_tenancy"], optimize=True)
    assert [c.name for c in suite] == ["loops", "multi_tenancy"]
    plain = compile_suite(["multi_tenancy"])[0]
    opt = [c for c in suite if c.name == "multi_tenancy"][0]
    assert len(opt.metadata) < len(plain.metadata)
