"""The repro.api facade: the stable public surface and its shims.

The facade is a compatibility contract: five verbs with uniform
keyword-only ``engine=`` / ``obs=`` / ``seed=`` / ``workers=``
arguments, re-exported from the top-level package.  These tests pin
the surface (so an accidental rename breaks loudly here, not in user
code) and the deprecation path for the pre-facade entry points.
"""

import warnings

import pytest

import repro
from repro import api
from repro.difftest import Scenario, gen_scenario
from repro.obs import MetricsRegistry, Observability


def test_api_all_is_curated():
    assert api.__all__ == sorted(api.__all__)
    for name in api.__all__:
        assert callable(getattr(api, name))


def test_top_level_reexports():
    assert repro.compile_indus is api.compile_indus
    assert repro.deploy is api.deploy
    assert repro.run_scenario is api.run_scenario
    assert repro.bench is api.bench
    assert repro.lint is api.lint
    for name in ("api", "bench", "compile_indus", "deploy", "lint",
                 "run_scenario"):
        assert name in repro.__all__
    # The campaign verb is deliberately NOT re-exported at top level:
    # `repro.difftest` must stay the subpackage of that name.
    import repro.difftest as difftest_pkg
    assert repro.difftest is difftest_pkg
    assert "difftest" not in repro.__all__
    assert callable(api.difftest)


def test_compile_indus_accepts_property_name():
    compiled = api.compile_indus("loops")
    assert compiled.name == "loops"


def test_compile_indus_accepts_source_text():
    source = gen_scenario(3).source()
    compiled = api.compile_indus(source, name="from_source")
    assert compiled.name == "from_source"


def test_compile_indus_accepts_file_path(tmp_path):
    path = tmp_path / "prop.indus"
    path.write_text(gen_scenario(3).source())
    compiled = api.compile_indus(str(path))
    assert compiled.name == "prop"


def test_deploy_requires_scenario_or_topology():
    compiled = api.compile_indus("loops")
    with pytest.raises(TypeError):
        api.deploy(compiled)


def test_deploy_scenario_and_run():
    scenario = gen_scenario(3)
    compiled = api.compile_indus(scenario.source(), name="dt3")
    obs = Observability(registry=MetricsRegistry())
    deployment = api.deploy(compiled, scenario=scenario, obs=obs)
    from repro.difftest.harness import build_packet

    packet = build_packet(scenario.packets[0], deployment.topology,
                          scenario.src_host, scenario.dst_host)
    deployment.network.host(scenario.src_host).send(packet)
    deployment.network.run()
    dump = obs.registry.to_dict()
    assert sum(s["value"] for s in
               dump["switch_packets_total"]["series"]) > 0


def test_run_scenario_by_seed_and_by_scenario():
    by_seed = api.run_scenario(seed=7)
    by_int = api.run_scenario(7)
    by_obj = api.run_scenario(gen_scenario(7))
    assert by_seed.ok and by_int.ok and by_obj.ok
    assert (by_seed.packets_run == by_int.packets_run
            == by_obj.packets_run)
    assert isinstance(by_obj.scenario, Scenario)


def test_run_scenario_requires_an_input():
    with pytest.raises(TypeError):
        api.run_scenario()


def test_lint_verb_accepts_all_program_forms(tmp_path):
    from repro.analysis import Diagnostic

    by_name = api.lint("loops")
    by_compiled = api.lint(api.compile_indus("loops"))
    path = tmp_path / "loops.indus"
    from repro.properties import load_source

    path.write_text(load_source("loops"))
    by_path = api.lint(str(path))
    for diags in (by_name, by_compiled, by_path):
        assert all(isinstance(d, Diagnostic) for d in diags)
    assert ([d.rule for d in by_name] == [d.rule for d in by_compiled]
            == [d.rule for d in by_path])


def test_lint_verb_only_filter():
    diags = api.lint("stateful_firewall", only=["IH006"])
    assert all(d.rule == "IH006" for d in diags)


def test_compile_indus_optimize_flag():
    plain = api.compile_indus("multi_tenancy")
    opt = api.compile_indus("multi_tenancy", optimize=True)
    assert len(opt.metadata) < len(plain.metadata)


def test_difftest_verb_matches_run_difftest():
    from repro.difftest import run_difftest

    via_api = api.difftest(seed=7, iters=3)
    direct = run_difftest(seed=7, iters=3)
    assert via_api.verdicts == direct.verdicts


@pytest.mark.slow
def test_bench_verb_smoke(tmp_path):
    out = tmp_path / "bench.json"
    result = api.bench(packets=50, replay=False, out=str(out))
    assert out.exists()
    assert set(result["engines"]) == {"interp", "fast", "codegen"}
    assert set(result["speedups"]) == {"fast", "codegen", "codegen_batch"}
    assert result["workers"] == 1
    assert len(result["history"]) == 1
    # restricted engine set, and a second write extends the history
    result = api.bench(packets=50, replay=False, out=str(out),
                       engines=("interp", "codegen"))
    assert set(result["engines"]) == {"interp", "codegen"}
    assert len(result["history"]) == 2


# -- deprecation shims ------------------------------------------------------

def test_deploy_scenario_shim_warns_and_works():
    scenario = gen_scenario(3)
    compiled = api.compile_indus(scenario.source(), name="dt3")
    from repro.difftest.harness import (build_scenario_deployment,
                                        deploy_scenario)

    with pytest.warns(DeprecationWarning, match="repro.api.deploy"):
        shimmed = deploy_scenario(scenario, compiled)
    fresh = build_scenario_deployment(scenario, compiled)
    assert type(shimmed) is type(fresh)
    assert sorted(shimmed.switches) == sorted(fresh.switches)


def test_new_names_do_not_warn():
    scenario = gen_scenario(3)
    compiled = api.compile_indus(scenario.source(), name="dt3")
    from repro.difftest.harness import build_scenario_deployment

    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        build_scenario_deployment(scenario, compiled)
        api.deploy(compiled, scenario=scenario)


# -- bench(kind=...) / aether / typed results -------------------------------

def test_bench_kind_signature():
    import inspect

    params = inspect.signature(api.bench).parameters
    assert params["kind"].default == "engine"
    assert all(p.kind == inspect.Parameter.KEYWORD_ONLY
               for p in params.values())
    assert api.BENCH_KINDS == ("engine", "net", "aether")
    with pytest.raises(ValueError):
        api.bench(kind="bogus")


def test_bench_net_shim_warns_and_routes_identically(monkeypatch):
    from repro.experiments import netbench

    calls = []

    def fake_run_net_bench(**kwargs):
        calls.append(kwargs)
        return {"benchmark": "net_replay", "sustained": True}

    monkeypatch.setattr(netbench, "run_net_bench", fake_run_net_bench)
    with pytest.warns(DeprecationWarning, match="kind='net'"):
        shimmed = api.bench(net=True)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        fresh = api.bench(kind="net")
    assert calls[0] == calls[1]
    assert dict(shimmed) == dict(fresh)
    assert isinstance(shimmed, api.BenchResult)
    assert shimmed.kind == fresh.kind == "net"
    assert shimmed.sustained is True


def test_aether_verb_routes_to_run_soak(monkeypatch):
    from repro.experiments import aetherbench

    seen = {}

    def fake_run_soak(**kwargs):
        seen.update(kwargs)
        return {"benchmark": "aether_soak",
                "sessions": {"target": kwargs["sessions"]}}

    monkeypatch.setattr(aetherbench, "run_soak", fake_run_soak)
    result = api.aether(sessions=123, workers=2, flatness=False)
    assert isinstance(result, api.SoakResult)
    assert result.sessions == 123
    assert seen["sessions"] == 123 and seen["workers"] == 2
    assert seen["flatness"] is False
    # bench(kind="aether") is the same soak behind the dispatcher.
    via_bench = api.bench(kind="aether", sessions=456, workers=2)
    assert isinstance(via_bench, api.SoakResult)
    assert via_bench.kind == "aether"
    assert seen["sessions"] == 456


def test_bench_result_json_roundtrip():
    import json

    data = {"benchmark": "net_replay", "meta": {"commit": "abc"},
            "sustained": True, "history": [{"speedup": 2.0}]}
    result = api.BenchResult(data, kind="net")
    again = api.BenchResult.from_json(result.to_json())
    assert again == result and again.kind == "net"
    assert again.sustained is True and again.meta == {"commit": "abc"}
    assert again.history == [{"speedup": 2.0}]
    engine = api.BenchResult.from_json(json.dumps(
        {"benchmark": "switch_processing_rate",
         "engines": {"fast": {"pps": 1.0}}}))
    assert engine.kind == "engine"
    assert engine.engines == {"fast": {"pps": 1.0}}
    assert engine["engines"]["fast"]["pps"] == 1.0  # dict access intact


def test_soak_result_json_roundtrip():
    from repro.experiments.aetherbench import run_soak

    result = api.SoakResult(run_soak(
        sessions=300, engine="fast", batched=False, batch_size=100,
        replay_ues=20, replay_repeats=1, flatness=False))
    again = api.SoakResult.from_json(result.to_json())
    assert again == result and again.kind == "aether"
    assert again.sessions == 300 and again.reports == 0
    assert again.attach_per_s > 0 and again.peak_rss_bytes > 0
    assert again.flat is None  # flatness probe was off
    assert set(again.phase_seconds) == {"attach", "churn", "replay"}


def test_difftest_summary_reexport():
    from repro.difftest import DifftestSummary

    assert api.DifftestSummary is DifftestSummary
    summary = api.difftest(seed=7, iters=1)
    assert isinstance(summary, api.DifftestSummary)
