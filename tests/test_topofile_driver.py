"""Topology file format + compiler driver (per-switch codegen) tests."""

import json
import os

import pytest

from repro.compiler import compile_program
from repro.compiler.driver import (deployment_manifest, forwarding_factory,
                                   generate_switch_programs,
                                   write_deployment)
from repro.net.packet import format_ip, ip
from repro.net.topofile import (TopologyFormatError, load_topology,
                                save_topology, topology_from_dict,
                                topology_to_dict)
from repro.net.topology import EDGE, leaf_spine


# ---------------------------------------------------------------------------
# Topology files
# ---------------------------------------------------------------------------

def test_roundtrip_leaf_spine(tmp_path):
    topo = leaf_spine(2, 2, 2)
    path = tmp_path / "topo.json"
    save_topology(topo, str(path))
    loaded = load_topology(str(path))
    assert set(loaded.switches) == set(topo.switches)
    assert set(loaded.hosts) == set(topo.hosts)
    assert len(loaded.links) == len(topo.links)
    for name in topo.switches:
        assert loaded.switches[name].role == topo.switches[name].role
        assert sorted(loaded.switches[name].edge_ports) == \
            sorted(topo.switches[name].edge_ports)
    for name in topo.hosts:
        assert loaded.hosts[name].ipv4 == topo.hosts[name].ipv4


def test_dotted_quad_addresses():
    topo = topology_from_dict({
        "switches": [{"name": "s1", "role": "edge"}],
        "hosts": [{"name": "h1", "ipv4": "10.0.1.1"}],
        "links": [{"a": ["s1", 1], "b": ["h1", 0]}],
    })
    assert topo.hosts["h1"].ipv4 == ip(10, 0, 1, 1)
    assert format_ip(topo.hosts["h1"].ipv4) == "10.0.1.1"


def test_link_attributes_parsed():
    topo = topology_from_dict({
        "switches": [{"name": "s1", "role": "edge"}],
        "hosts": [{"name": "h1"}],
        "links": [{"a": ["s1", 1], "b": ["h1", 0],
                   "latency_us": 5, "bandwidth_gbps": 40}],
    })
    link = topo.links[0]
    assert link.latency_s == pytest.approx(5e-6)
    assert link.bandwidth_bps == pytest.approx(40e9)


@pytest.mark.parametrize("document, fragment", [
    ([], "object"),
    ({"switches": [{"role": "edge"}]}, "name"),
    ({"switches": [{"name": "s1", "role": "purple"}]}, "role"),
    ({"hosts": [{"name": "h1", "ipv4": "10.0.1"}]}, "IPv4"),
    ({"hosts": [{"name": "h1", "ipv4": "10.0.1.999"}]}, "IPv4"),
    ({"switches": [{"name": "s1"}], "links": [{"a": ["s1", 1]}]}, "link"),
])
def test_malformed_documents_rejected(document, fragment):
    with pytest.raises(TopologyFormatError) as excinfo:
        topology_from_dict(document)
    assert fragment.lower() in str(excinfo.value).lower()


def test_invalid_json_file(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json")
    with pytest.raises(TopologyFormatError):
        load_topology(str(path))


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def test_generate_switch_programs_respects_roles():
    topo = leaf_spine(2, 2, 2)
    compiled = compile_program("{ } { } { reject; }", name="t")
    programs = generate_switch_programs(compiled, topo, "l2")
    assert set(programs) == set(topo.switches)
    # Edge programs contain the reject enforcement; core programs don't.
    assert compiled.reject_meta in repr(programs["leaf1"].egress)
    assert compiled.reject_meta not in repr(programs["spine1"].egress)


def test_unknown_forwarding_profile():
    with pytest.raises(ValueError):
        forwarding_factory("quantum")


def test_all_profiles_resolve_and_link():
    topo = leaf_spine(2, 2, 2)
    compiled = compile_program("tele bit<8> x;\n{ } { } { }", name="t")
    for profile in ("l2", "ipv4", "srcroute", "fabric", "vlan", "upf"):
        programs = generate_switch_programs(compiled, topo, profile)
        assert len(programs) == 4


def test_write_deployment(tmp_path):
    topo = leaf_spine(2, 2, 2)
    compiled = compile_program("tele bit<8> x;\n{ } { } { }", name="demo")
    written = write_deployment(compiled, topo, str(tmp_path),
                               forwarding="srcroute")
    for name in topo.switches:
        path = written[name]
        assert os.path.exists(path)
        text = open(path).read()
        assert "hydra_t" in text  # telemetry header present
    manifest = json.load(open(written["__manifest__"]))
    assert manifest["checker"] == "demo"
    assert manifest["edge_entries"]["leaf1"]["ports"] == [1, 2]
    assert "spine1" not in manifest["edge_entries"]


def test_manifest_report_sites():
    topo = leaf_spine(2, 2, 2)
    compiled = compile_program(
        "header bit<16> dport @ udp.dst_port;\n"
        "{ } { } { report((dport, dport)); }", name="r")
    manifest = deployment_manifest(compiled, topo)
    sites = manifest["report_sites"]
    assert len(sites) == 1
    (site,) = sites.values()
    assert site["block"] == "checker"
    assert site["payload_widths"] == [16, 16]
