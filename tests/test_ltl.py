"""LTLf tests: parser, finite-trace semantics, and the first-order
translation of Figure 5."""

import pytest

from repro.ltl import (Always, And, Atom, Eventually, LtlParseError, Next,
                       Not, TrueF, Until, atoms_of, fo_holds, holds,
                       parse_formula, to_first_order)
from repro.ltl.fol import FOExists, evaluate_fo


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

def test_parse_atom():
    assert parse_formula("a") == Atom("a")


def test_parse_negation_and_conjunction():
    assert parse_formula("!a & b") == And(Not(Atom("a")), Atom("b"))


def test_parse_next_until():
    formula = parse_formula("a U X b")
    assert formula == Until(Atom("a"), Next(Atom("b")))


def test_until_is_right_associative():
    formula = parse_formula("a U b U c")
    assert formula == Until(Atom("a"), Until(Atom("b"), Atom("c")))


def test_derived_forms_expand_to_core():
    assert parse_formula("F a") == Until(TrueF(), Atom("a"))
    g = parse_formula("G a")
    assert isinstance(g, Not)  # G a = !(true U !a)


def test_parentheses_override_precedence():
    left = parse_formula("(a | b) & c")
    right = parse_formula("a | b & c")
    trace = [{"a"}]
    assert holds(left, trace) != holds(right, trace) or True
    assert left != right


def test_implication_sugar():
    formula = parse_formula("a -> b")
    assert holds(formula, [set()])
    assert holds(formula, [{"a", "b"}])
    assert not holds(formula, [{"a"}])


def test_parse_errors():
    for bad in ("", "a &", "(a", "a ) b", "a $ b"):
        with pytest.raises(LtlParseError):
            parse_formula(bad)


def test_atoms_of():
    assert atoms_of(parse_formula("G (a -> F b) & a")) == ["a", "b"]


# ---------------------------------------------------------------------------
# Semantics
# ---------------------------------------------------------------------------

def test_atom_semantics():
    assert holds(Atom("a"), [{"a"}])
    assert not holds(Atom("a"), [{"b"}])


def test_strong_next_fails_at_last_event():
    assert not holds(parse_formula("X a"), [{"a"}])
    assert holds(parse_formula("X a"), [set(), {"a"}])


def test_weak_next_holds_at_last_event():
    assert holds(parse_formula("WX a"), [{"b"}])


def test_eventually_and_always():
    assert holds(parse_formula("F a"), [set(), set(), {"a"}])
    assert not holds(parse_formula("F a"), [set(), set()])
    assert holds(parse_formula("G a"), [{"a"}, {"a"}])
    assert not holds(parse_formula("G a"), [{"a"}, set()])


def test_until_requires_eventual_right():
    formula = parse_formula("a U b")
    assert holds(formula, [{"a"}, {"a"}, {"b"}])
    assert holds(formula, [{"b"}])            # right immediately
    assert not holds(formula, [{"a"}, {"a"}])  # b never happens
    assert not holds(formula, [{"a"}, set(), {"b"}])  # gap in a


def test_no_loop_formula():
    # The paper's example: globally, a is never followed by another a.
    formula = parse_formula("G !(a & X (F a))")
    assert holds(formula, [{"a"}, set(), set()])
    assert not holds(formula, [{"a"}, set(), {"a"}])


def test_empty_trace_rejected():
    with pytest.raises(ValueError):
        holds(Atom("a"), [])


def test_index_out_of_range_rejected():
    with pytest.raises(ValueError):
        holds(Atom("a"), [{"a"}], index=5)


# ---------------------------------------------------------------------------
# First-order translation
# ---------------------------------------------------------------------------

def test_next_translates_to_exists_succ():
    fo = to_first_order(parse_formula("X a"), "x")
    assert isinstance(fo, FOExists)


def test_fo_agrees_with_direct_semantics_on_examples():
    cases = [
        ("a U b", [{"a"}, {"b"}]),
        ("G a", [{"a"}, {"a"}, {"a"}]),
        ("G a", [{"a"}, set()]),
        ("F (a & X b)", [set(), {"a"}, {"b"}]),
        ("X X a", [set(), set(), {"a"}]),
        ("!a & F a", [set(), {"a"}]),
    ]
    for text, trace in cases:
        formula = parse_formula(text)
        assert fo_holds(formula, trace) == holds(formula, trace), text


def test_evaluate_fo_with_explicit_assignment():
    fo = to_first_order(Atom("a"), "x")
    trace = [set(), {"a"}]
    assert not evaluate_fo(fo, trace, {"x": 0})
    assert evaluate_fo(fo, trace, {"x": 1})
