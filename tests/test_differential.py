"""Differential tests: the reference interpreter (specification
semantics) against the compiled pipeline (deployed semantics).

The paper's independence argument rests on checking code meaning the
same thing however it executes; here the *same Indus source* runs (a)
on the interpreter over hop contexts and (b) compiled to P4 IR on the
behavioral switch, and the verdicts must agree for every input.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import compile_program, standalone_program
from repro.indus import HopContext, Monitor, check, parse
from repro.net.packet import ip, make_udp
from repro.p4.bmv2 import Bmv2Switch

# Programs whose behaviour depends on UDP ports and packet sizes; each
# exercises a different compiler code path (dict lookup, set membership,
# arrays, sensors are tested separately since they carry cross-packet
# state).
PROGRAMS = {
    "reject_port": (
        "header bit<16> dport @ udp.dst_port;\n"
        "{ } { } { if (dport == 81) { reject; } }"
    ),
    "port_arithmetic": (
        "header bit<16> sport @ udp.src_port;\n"
        "header bit<16> dport @ udp.dst_port;\n"
        "tele bit<16> mix = 0;\n"
        "{ mix = (sport + dport) & 255; } { } "
        "{ if (mix > 200) { reject; } }"
    ),
    "tuple_compare": (
        "header bit<16> sport @ udp.src_port;\n"
        "header bit<16> dport @ udp.dst_port;\n"
        "{ } { } { if ((sport, dport) == (dport, sport)) { reject; } }"
    ),
    "dict_lookup": (
        "control dict<bit<16>,bit<8>> acts;\n"
        "header bit<16> dport @ udp.dst_port;\n"
        "tele bit<8> act = 0;\n"
        "{ act = acts[dport]; } { } { if (act == 1) { reject; } }"
    ),
    "array_membership": (
        "tele bit<16>[4] seen;\n"
        "header bit<16> sport @ udp.src_port;\n"
        "header bit<16> dport @ udp.dst_port;\n"
        "{ seen.push(sport); seen.push(dport); } { } "
        "{ if (81 in seen) { reject; } }"
    ),
    "loop_sum": (
        "tele bit<16>[4] xs;\n"
        "header bit<16> sport @ udp.src_port;\n"
        "header bit<16> dport @ udp.dst_port;\n"
        "tele bit<16> total = 0;\n"
        "{ xs.push(sport); xs.push(dport); } { } "
        "{ for (v in xs) { total = total + v; }\n"
        "  if (total > 60000) { reject; } }"
    ),
    "absdiff": (
        "header bit<16> sport @ udp.src_port;\n"
        "header bit<16> dport @ udp.dst_port;\n"
        "{ } { } { if (abs(sport - dport) < 5) { reject; } }"
    ),
    "shifted_mask": (
        "header bit<16> dport @ udp.dst_port;\n"
        "tele bit<16> v = 0;\n"
        "{ v = (dport >> 3) ^ (dport << 2); } { } "
        "{ if ((v & 7) == 3) { reject; } }"
    ),
}

DICT_ENTRIES = {1000: 1, 2000: 2, 81: 1}


def build_compiled_switch(source):
    compiled = compile_program(source, name="diff")
    program = standalone_program(compiled)
    sw = Bmv2Switch(program, name="s1")
    sw.insert_entry("fwd_table", [1], "fwd_set_egress", [2])
    for port in (1, 2):
        sw.insert_entry(compiled.inject_table, [port],
                        compiled.mark_first_action)
        sw.insert_entry(compiled.strip_table, [port],
                        compiled.mark_last_action)
    if "acts" in compiled.control_tables:
        for table in compiled.control_tables["acts"]:
            for key, value in DICT_ENTRIES.items():
                sw.insert_entry(table, [(key, key)],
                                compiled.dict_hit_action("acts", table),
                                [value], priority=100)
    return compiled, sw


def interpreter_verdict(source, sport, dport, payload):
    monitor = Monitor.from_source(source)
    controls = monitor.new_controls()
    decl = monitor.program.decl("acts")
    if decl is not None:
        for key, value in DICT_ENTRIES.items():
            controls.dict_put("acts", key, value)
    # Compiled packet_length includes the injected telemetry header; the
    # interpreter context mirrors the on-switch view.
    hydra_bytes = compile_program(source, name="diff").hydra_header.width_bytes
    ctx = HopContext(
        headers={"sport": sport, "dport": dport},
        controls=controls,
        first_hop=True, last_hop=True,
        packet_length=42 + payload + hydra_bytes,
    )
    state = monitor.run_path([ctx])
    return not state.rejected


@pytest.mark.parametrize("name", sorted(PROGRAMS))
@given(sport=st.integers(min_value=0, max_value=65535),
       dport=st.integers(min_value=0, max_value=65535),
       payload=st.integers(min_value=0, max_value=1400))
@settings(max_examples=40, deadline=None)
def test_interpreter_and_compiled_agree(name, sport, dport, payload):
    source = PROGRAMS[name]
    compiled, sw = build_compiled_switch(source)
    packet = make_udp(ip(10, 0, 0, 1), ip(10, 0, 0, 2), sport, dport,
                      payload_len=payload)
    compiled_verdict = len(sw.process(packet, 1)) == 1
    assert compiled_verdict == interpreter_verdict(source, sport, dport,
                                                   payload)


@given(ports=st.lists(st.integers(min_value=0, max_value=65535),
                      min_size=1, max_size=6))
@settings(max_examples=30, deadline=None)
def test_sensor_accumulation_agrees_across_packet_sequences(ports):
    """Sensors carry cross-packet state: run a whole packet sequence
    through both semantics and compare the verdict of every packet."""
    source = (
        "sensor bit<32> total = 0;\n"
        "header bit<16> dport @ udp.dst_port;\n"
        "{ } { total += dport; } { if (total > 100000) { reject; } }"
    )
    compiled, sw = build_compiled_switch(source)
    monitor = Monitor.from_source(source)
    sensors = monitor.new_sensors()
    for dport in ports:
        packet = make_udp(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 999, dport)
        compiled_ok = len(sw.process(packet, 1)) == 1
        ctx = HopContext(headers={"dport": dport}, sensors=sensors,
                         first_hop=True, last_hop=True)
        state = monitor.run_path([ctx])
        assert compiled_ok == (not state.rejected)


@given(data=st.data())
@settings(max_examples=25, deadline=None)
def test_multi_hop_telemetry_agrees(data):
    """Telemetry accumulated over a random-length path must produce the
    same verdict in both semantics (three-switch line network)."""
    source = (
        "tele bit<32>[8] path;\ntele bool dup = false;\n"
        "{ } { if (switch_id in path) { dup = true; } path.push(switch_id); }"
        " { if (dup) { reject; } }"
    )
    hops = data.draw(st.lists(st.integers(min_value=1, max_value=4),
                              min_size=1, max_size=6))
    # Interpreter.
    monitor = Monitor.from_source(source)
    state = monitor.new_state()
    for i, sid in enumerate(hops):
        ctx = HopContext(first_hop=(i == 0), last_hop=(i == len(hops) - 1),
                         switch_id=sid)
        monitor.run_hop(state, ctx)
    interp_ok = not state.rejected

    # Compiled: chain the packet through one switch instance per hop,
    # flipping the edge-port tables to control first/last detection.
    compiled = compile_program(source, name="diff2")
    program = standalone_program(compiled)
    packet = make_udp(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2)
    for i, sid in enumerate(hops):
        sw = Bmv2Switch(program, name=f"s{i}", switch_id=sid)
        sw.insert_entry("fwd_table", [1], "fwd_set_egress", [2])
        sw.set_default_action(compiled.switch_id_table,
                              compiled.set_switch_id_action, [sid])
        if i == 0:
            sw.insert_entry(compiled.inject_table, [1],
                            compiled.mark_first_action)
        if i == len(hops) - 1:
            sw.insert_entry(compiled.strip_table, [2],
                            compiled.mark_last_action)
        out = sw.process(packet, 1)
        if not out:
            packet = None
            break
        packet = out[0][1]
    compiled_ok = packet is not None
    assert compiled_ok == interp_ok
