"""Fast-path engine unit tests: UnExpr width regression, bounded digest
logs, and copy elision for non-mutating programs."""

import pytest

from repro.net.packet import HeaderType, Packet, ip, make_udp
from repro.p4 import ir
from repro.p4.bmv2 import BoundedLog, Bmv2Switch
from repro.p4.programs import l2_port_forwarding

ENGINES = ("interp", "fast")

H = HeaderType("h", [("a", 32), ("b", 16)])


def _program(ingress):
    program = ir.P4Program(
        name="unexpr",
        parser=ir.ParserSpec(states=[
            ir.ParserState("start", extracts=[ir.Extract("h", H)],
                           transitions=[ir.Transition(ir.ACCEPT)]),
        ]),
        metadata=[("out", 32)],
        emit_order=["h"],
    )
    program.ingress = ingress
    return program


def _egress_for(expr):
    """Run ``egress_spec = expr`` on both engines; assert they agree and
    return the value."""
    results = []
    for engine in ENGINES:
        program = _program([
            ir.AssignStmt("standard_metadata.egress_spec", expr),
        ])
        sw = Bmv2Switch(program, engine=engine)
        out = sw.process(Packet(headers=[H(a=1, b=2)], payload_len=4), 1)
        results.append(out[0][0])
    assert results[0] == results[1]
    return results[0]


class TestUnExprWidth:
    """Regression: '~' and '-' must mask to the declared width, not a
    hard-coded 32 bits (found via a 16-bit ``~`` comparing > 65535)."""

    def test_not_uses_explicit_width(self):
        assert _egress_for(ir.UnExpr("~", ir.Const(5, 16), 16)) == 0xFFFA

    def test_not_derives_width_from_const_operand(self):
        assert _egress_for(ir.UnExpr("~", ir.Const(5, 8))) == 0xFA

    def test_not_derives_width_from_binexpr_operand(self):
        expr = ir.UnExpr("~", ir.BinExpr("+", ir.Const(1, 16),
                                         ir.Const(2, 16), width=16))
        assert _egress_for(expr) == 0xFFFC

    def test_neg_masks_to_operand_width(self):
        assert _egress_for(ir.UnExpr("-", ir.Const(1, 8))) == 0xFF

    def test_field_ref_operand_defaults_to_32_bits(self):
        expr = ir.UnExpr("~", ir.FieldRef("hdr.h.a"))
        assert _egress_for(expr) == (~1) & 0xFFFFFFFF

    def test_logical_not_is_boolean(self):
        assert _egress_for(ir.UnExpr("!", ir.Const(0, 16))) == 1
        assert _egress_for(ir.UnExpr("!", ir.Const(7, 16))) == 0

    def test_unexpr_width_helper(self):
        assert ir.unexpr_width(ir.UnExpr("~", ir.Const(0, 12), 9)) == 9
        assert ir.unexpr_width(ir.UnExpr("~", ir.Const(0, 12))) == 12
        assert ir.unexpr_width(
            ir.UnExpr("-", ir.UnExpr("!", ir.Const(0, 12)))) == 1
        assert ir.unexpr_width(ir.UnExpr("~", ir.FieldRef("meta.x"))) == 32


class TestBoundedLog:
    def test_ring_semantics(self):
        log = BoundedLog(capacity=3)
        assert not log and len(log) == 0 and log.dropped == 0
        for i in range(5):
            log.append(i)
        assert log.total == 5
        assert len(log) == 3
        assert log.dropped == 2
        assert list(log) == [2, 3, 4]
        assert log[0] == 2 and log[-1] == 4
        assert log[1:] == [3, 4]
        assert log == [2, 3, 4]
        log.clear()
        assert log.total == 0 and len(log) == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            BoundedLog(capacity=0)

    def test_switch_digests_are_bounded(self):
        program = _program([
            ir.Digest("beacon", [ir.FieldRef("hdr.h.b")]),
        ])
        for engine in ENGINES:
            sw = Bmv2Switch(program, engine=engine, digest_capacity=4)
            for i in range(10):
                sw.process(Packet(headers=[H(a=0, b=i)], payload_len=0), 1)
            assert sw.digests.total == 10
            assert len(sw.digests) == 4
            assert sw.digests.dropped == 6
            assert [m.values[0] for m in sw.digests] == [6, 7, 8, 9]

    def test_network_reports_are_bounded(self):
        from repro.net.simulator import Network
        from repro.net.topology import single_switch
        program = _program([ir.Digest("beacon", [ir.Const(1, 8)])])
        # Wire a 1-switch network manually to keep the test small.
        topology = single_switch(num_hosts=2)
        switches = {name: Bmv2Switch(program, name=name)
                    for name in topology.switches}
        network = Network(topology, switches, report_capacity=2)
        for sw in switches.values():
            for i in range(5):
                sw.process(Packet(headers=[H(a=0, b=i)], payload_len=0), 1)
        assert network.reports.total == 5
        assert len(network.reports) == 2


class TestCopyElision:
    def test_non_mutating_program_shares_headers(self):
        program = l2_port_forwarding()
        assert not ir.mutates_headers(program)
        for engine in ENGINES:
            sw = Bmv2Switch(program, engine=engine)
            sw.insert_entry("fwd_table", [1], "fwd_set_egress", [2])
            packet = make_udp(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 10, 20)
            (_, out), = sw.process(packet, 1)
            assert out is not packet  # the shell is fresh
            for original, emitted in zip(packet.headers, out.headers):
                assert emitted is original  # headers are shared

    def test_mutating_program_copies_headers(self):
        program = _program([
            ir.AssignStmt("hdr.h.a", ir.Const(9, 32)),
        ])
        assert ir.mutates_headers(program)
        for engine in ENGINES:
            sw = Bmv2Switch(program, engine=engine)
            packet = Packet(headers=[H(a=1, b=2)], payload_len=0)
            (_, out), = sw.process(packet, 1)
            assert out.headers[0] is not packet.headers[0]
            assert packet.headers[0].values["a"] == 1  # original untouched
            assert out.headers[0].values["a"] == 9


def test_unknown_engine_rejected():
    with pytest.raises(ValueError):
        Bmv2Switch(l2_port_forwarding(), engine="turbo")
