"""Indus pretty-printer tests: canonical output and round-tripping."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.indus import check, parse
from repro.indus.printer import ast_equal, format_expr, format_program
from repro.indus.parser import parse_expression
from repro.properties import load_source, property_names
from tests.genprog import gen_program


def roundtrips(source):
    original = parse(source)
    printed = format_program(original)
    reparsed = parse(printed)
    return ast_equal(original, reparsed), printed


@pytest.mark.parametrize("name", property_names())
def test_all_properties_roundtrip(name):
    ok, printed = roundtrips(load_source(name))
    assert ok, f"round-trip changed the AST:\n{printed}"


def test_printed_output_typechecks():
    for name in property_names():
        printed = format_program(parse(load_source(name)))
        check(parse(printed))  # must not raise


def test_expr_precedence_minimal_parens():
    expr = parse_expression("a + b * c")
    assert format_expr(expr) == "a + b * c"
    expr = parse_expression("(a + b) * c")
    assert format_expr(expr) == "(a + b) * c"


def test_left_associativity_preserved():
    expr = parse_expression("a - b - c")
    text = format_expr(expr)
    assert ast_equal(parse_expression(text), expr)
    expr = parse_expression("a - (b - c)")
    text = format_expr(expr)
    assert ast_equal(parse_expression(text), expr)
    assert "(" in text


def test_logical_and_comparison_mix():
    for source in ("a == b && c != d", "!(a && b) || c",
                   "x in xs && y in ys", "a < b == (c > d)"):
        expr = parse_expression(source)
        assert ast_equal(parse_expression(format_expr(expr)), expr), source


def test_format_decl_forms():
    source = ("tele bit<8> x = 3;\n"
              "control dict<(bit<32>, bit<16>), bool> d;\n"
              "header bit<32> s @ ipv4.src_addr;\n"
              "{ } { } { }")
    printed = format_program(parse(source))
    assert "tele bit<8> x = 3;" in printed
    assert "dict<(bit<32>, bit<16>), bool> d;" in printed
    assert "@ ipv4.src_addr;" in printed


def test_if_elsif_else_shape():
    source = ("tele bit<8> x;\n"
              "{ if (x == 1) { x = 2; } elsif (x == 2) { x = 3; } "
              "else { x = 4; } } { } { }")
    ok, printed = roundtrips(source)
    assert ok
    assert "elsif" in printed and "else {" in printed


@given(seed=st.integers(0, 2**32))
@settings(max_examples=50, deadline=None)
def test_generated_programs_roundtrip(seed):
    source = gen_program(seed)
    ok, printed = roundtrips(source)
    assert ok, printed
