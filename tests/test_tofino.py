"""Tofino resource model tests: PHV container packing and stage
dependency analysis."""

from repro.aether.upf import upf_program
from repro.compiler import compile_program, link
from repro.p4 import ir
from repro.p4.programs import l2_port_forwarding
from repro.properties import compile_property
from repro.tofino import (PAPER_BASELINE_PHV_PCT, PAPER_BASELINE_STAGES,
                          TOTAL_PHV_BITS, allocate, analyze_linked,
                          dependency_depth, phv_bits, pipeline_depth)


# ---------------------------------------------------------------------------
# PHV packing
# ---------------------------------------------------------------------------

def test_total_phv_bits_is_tofino1():
    assert TOTAL_PHV_BITS == 4096


def test_single_field_rounds_to_container():
    alloc = allocate([("f", 9)])
    assert alloc.container_bits == 16
    assert alloc.field_bits == 9


def test_small_fields_share_containers():
    # Eight 1-bit flags fit one 8-bit container.
    alloc = allocate([(f"flag{i}", 1) for i in range(8)])
    assert alloc.container_bits == 8


def test_wide_field_is_sliced():
    alloc = allocate([("mac", 48)])
    # 48 bits -> one 32b container + 16 remaining packed into 16b.
    assert alloc.container_bits == 48


def test_allocation_is_monotone_in_fields():
    base = allocate([("a", 32)]).container_bits
    more = allocate([("a", 32), ("b", 32)]).container_bits
    assert more >= base


def test_phv_bits_grows_when_linking_checker():
    forwarding = l2_port_forwarding()
    compiled = compile_program(
        "tele bit<32>[8] path;\n{ } { path.push(switch_id); } { }")
    linked = link(forwarding, compiled)
    assert phv_bits(linked) > phv_bits(forwarding)


# ---------------------------------------------------------------------------
# Stage analysis
# ---------------------------------------------------------------------------

def test_independent_assignments_share_a_stage():
    program = ir.P4Program(name="p")
    stmts = [
        ir.AssignStmt("meta.a", ir.Const(1, 8)),
        ir.AssignStmt("meta.b", ir.Const(2, 8)),
    ]
    program.metadata = [("a", 8), ("b", 8)]
    assert dependency_depth(program, stmts) == 1


def test_read_after_write_chains():
    program = ir.P4Program(name="p")
    program.metadata = [("a", 8), ("b", 8), ("c", 8)]
    stmts = [
        ir.AssignStmt("meta.a", ir.Const(1, 8)),
        ir.AssignStmt("meta.b", ir.FieldRef("meta.a")),
        ir.AssignStmt("meta.c", ir.FieldRef("meta.b")),
    ]
    assert dependency_depth(program, stmts) == 3


def test_write_after_write_chains():
    program = ir.P4Program(name="p")
    program.metadata = [("a", 8)]
    stmts = [
        ir.AssignStmt("meta.a", ir.Const(1, 8)),
        ir.AssignStmt("meta.a", ir.Const(2, 8)),
    ]
    assert dependency_depth(program, stmts) == 2


def test_control_dependency_counts():
    program = ir.P4Program(name="p")
    program.metadata = [("a", 8), ("b", 8)]
    stmts = [
        ir.AssignStmt("meta.a", ir.Const(1, 8)),
        ir.IfStmt(ir.BinExpr("==", ir.FieldRef("meta.a"), ir.Const(1, 8)),
                  [ir.AssignStmt("meta.b", ir.Const(2, 8))]),
    ]
    assert dependency_depth(program, stmts) == 2


def test_table_apply_depends_on_key_writer():
    program = l2_port_forwarding()
    program.metadata = list(program.metadata) + [("key", 9)]
    program.tables["fwd_table"].keys = [
        ir.TableKey("meta.key", ir.MatchKind.EXACT)]
    stmts = [
        ir.AssignStmt("meta.key", ir.Const(1, 9)),
        ir.ApplyTable("fwd_table"),
    ]
    assert dependency_depth(program, stmts) == 2


def test_pipeline_depth_is_max_of_both_halves():
    program = l2_port_forwarding()
    assert pipeline_depth(program) >= 1


# ---------------------------------------------------------------------------
# Anchored Table-1 reporting
# ---------------------------------------------------------------------------

def test_checkers_do_not_increase_stage_count():
    """The headline Table 1 claim: every checker linked with the
    fabric-upf baseline stays within the baseline's 12 stages."""
    baseline = upf_program()
    for name in ("multi_tenancy", "loops", "application_filtering",
                 "source_routing_validation"):
        compiled = compile_property(name)
        linked = link(baseline, compiled)
        report = analyze_linked(name, linked, baseline)
        assert report.stages == PAPER_BASELINE_STAGES


def test_phv_anchored_at_baseline():
    baseline = upf_program()
    compiled = compile_property("multi_tenancy")
    linked = link(baseline, compiled)
    report = analyze_linked("multi_tenancy", linked, baseline)
    assert report.phv_pct > PAPER_BASELINE_PHV_PCT
    assert report.phv_pct < PAPER_BASELINE_PHV_PCT + 15


def test_phv_ordering_matches_telemetry_volume():
    """Checkers carrying more telemetry must cost more PHV — the
    ordering the paper reports (app filtering and source-route
    validation highest)."""
    baseline = upf_program()

    def delta(name):
        linked = link(baseline, compile_property(name))
        return analyze_linked(name, linked, baseline).phv_delta_bits

    assert delta("source_routing_validation") > delta("waypointing")
    assert delta("application_filtering") > delta("egress_port_validity")
    assert delta("loops") > delta("waypointing")


# ---------------------------------------------------------------------------
# Dataflow optimizer: resource usage is monotone, baseline untouched
# ---------------------------------------------------------------------------

def test_optimizer_never_increases_stages_or_phv():
    """The optimizer's resource contract, quantified over every Table-1
    property in both standalone and linked form: optimized never uses
    more pipeline stages or PHV bits than unoptimized."""
    from repro.compiler import standalone_program
    from repro.properties import TABLE1_ORDER

    baseline = upf_program()
    for name in TABLE1_ORDER:
        plain = compile_property(name)
        opt = compile_property(name, optimize=True)

        plain_sa = standalone_program(plain)
        opt_sa = standalone_program(opt)
        assert pipeline_depth(opt_sa) <= pipeline_depth(plain_sa), name
        assert phv_bits(opt_sa) <= phv_bits(plain_sa), name

        plain_linked = analyze_linked(name, link(baseline, plain), baseline)
        opt_linked = analyze_linked(name, link(baseline, opt), baseline)
        assert opt_linked.stages <= plain_linked.stages, name
        assert opt_linked.phv_pct <= plain_linked.phv_pct + 1e-9, name


def test_optimizer_reduces_phv_on_some_property():
    from repro.compiler import standalone_program

    reduced = []
    for name in ("multi_tenancy", "stateful_firewall",
                 "application_filtering"):
        plain = phv_bits(standalone_program(compile_property(name)))
        opt = phv_bits(standalone_program(
            compile_property(name, optimize=True)))
        if opt < plain:
            reduced.append(name)
    assert reduced


def test_fabric_upf_baseline_unchanged_without_optimize():
    """optimize=False (the default) must keep the paper's anchored
    baseline byte-for-byte: 12 stages, 44.53% PHV."""
    from repro.properties import BASELINE_PHV_PCT, BASELINE_STAGES

    assert BASELINE_STAGES == PAPER_BASELINE_STAGES == 12
    assert BASELINE_PHV_PCT == PAPER_BASELINE_PHV_PCT == 44.53
    baseline = upf_program()
    compiled = compile_property("multi_tenancy")  # default: no optimizer
    report = analyze_linked("multi_tenancy", link(baseline, compiled),
                            baseline)
    # Anchoring intact: stages floor at the baseline, PHV percent is the
    # baseline plus the checker's delta.
    assert report.stages >= PAPER_BASELINE_STAGES
    assert abs(report.phv_pct - (PAPER_BASELINE_PHV_PCT
               + 100.0 * report.phv_delta_bits / TOTAL_PHV_BITS)) < 1e-9
