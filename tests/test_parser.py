"""Parser unit tests."""

import pytest

from repro.indus import ast
from repro.indus.errors import ParseError
from repro.indus.parser import parse, parse_expression
from repro.indus.types import (ArrayType, BitType, BoolType, DictType,
                               SetType, TupleType)

EMPTY_BLOCKS = "{ } { } { }"


def parse_with_decls(decls):
    return parse(decls + "\n" + EMPTY_BLOCKS)


# ---------------------------------------------------------------------------
# Declarations and types
# ---------------------------------------------------------------------------

def test_minimal_program_has_three_blocks():
    program = parse(EMPTY_BLOCKS)
    assert program.init_block == []
    assert program.tele_block == []
    assert program.check_block == []


def test_missing_block_is_an_error():
    with pytest.raises(ParseError):
        parse("{ } { }")


def test_extra_block_is_an_error():
    with pytest.raises(ParseError):
        parse("{ } { } { } { }")


def test_tele_declaration():
    program = parse_with_decls("tele bit<8> tenant;")
    decl = program.decl("tenant")
    assert decl.kind is ast.VarKind.TELE
    assert decl.ty == BitType(8)


def test_declaration_with_initializer():
    program = parse_with_decls("tele bool violated = false;")
    decl = program.decl("violated")
    assert isinstance(decl.init, ast.BoolLit)
    assert decl.init.value is False


def test_array_type():
    program = parse_with_decls("tele bit<32>[15] loads;")
    assert program.decl("loads").ty == ArrayType(BitType(32), 15)


def test_dict_type_with_nested_closing_angle():
    # "bit<8>>" produces a ">>" token the parser must split.
    program = parse_with_decls("control dict<bit<8>,bit<8>> tenants;")
    assert program.decl("tenants").ty == DictType(BitType(8), BitType(8))


def test_dict_with_tuple_key():
    program = parse_with_decls(
        "control dict<(bit<32>,bit<32>),bool> allowed;")
    ty = program.decl("allowed").ty
    assert ty == DictType(TupleType((BitType(32), BitType(32))), BoolType())


def test_set_type():
    program = parse_with_decls("control set<bit<8>> ports;")
    assert program.decl("ports").ty == SetType(BitType(8), 64)


def test_set_type_with_capacity():
    program = parse_with_decls("control set<bit<8>, 16> ports;")
    assert program.decl("ports").ty == SetType(BitType(8), 16)


def test_untyped_control_scalar_defaults_to_bit32():
    program = parse_with_decls("control thresh;")
    assert program.decl("thresh").ty == BitType(32)


def test_untyped_non_control_declaration_rejected():
    with pytest.raises(ParseError):
        parse_with_decls("tele thresh;")


def test_header_annotation():
    program = parse_with_decls("header bit<32> src @ ipv4.src_addr;")
    assert program.decl("src").annotation == "ipv4.src_addr"


def test_zero_width_bit_type_rejected():
    with pytest.raises(ParseError):
        parse_with_decls("tele bit<0> x;")


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

def first_init_stmt(body):
    program = parse(f"tele bit<8> x;\ntele bit<8>[4] xs;\n"
                    f"{{ {body} }} {{ }} {{ }}")
    return program.init_block[0]


def test_assignment():
    stmt = first_init_stmt("x = 4;")
    assert isinstance(stmt, ast.Assign)
    assert isinstance(stmt.target, ast.Var)


def test_indexed_assignment():
    stmt = first_init_stmt("xs[2] = 4;")
    assert isinstance(stmt.target, ast.Index)


def test_augmented_assignment():
    stmt = first_init_stmt("x += 1;")
    assert isinstance(stmt, ast.AugAssign)
    assert stmt.op is ast.BinaryOp.ADD


def test_push_statement():
    stmt = first_init_stmt("xs.push(x);")
    assert isinstance(stmt, ast.Push)


def test_unknown_method_rejected():
    with pytest.raises(ParseError):
        first_init_stmt("xs.pop();")


def test_pass_reject_report():
    program = parse("{ pass; } { report; } { reject; report(1); }")
    assert isinstance(program.init_block[0], ast.Pass)
    assert isinstance(program.tele_block[0], ast.Report)
    assert program.tele_block[0].payload is None
    assert isinstance(program.check_block[0], ast.Reject)
    assert program.check_block[1].payload is not None


def test_if_elsif_else_chain():
    stmt = first_init_stmt(
        "if (x == 1) { pass; } elsif (x == 2) { pass; } else { pass; }")
    assert isinstance(stmt, ast.If)
    assert len(stmt.arms) == 2
    assert len(stmt.orelse) == 1


def test_else_if_sugar():
    stmt = first_init_stmt(
        "if (x == 1) { pass; } else if (x == 2) { pass; }")
    assert len(stmt.arms) == 2


def test_for_loop():
    stmt = first_init_stmt("for (v in xs) { pass; }")
    assert isinstance(stmt, ast.For)
    assert stmt.names == ["v"]


def test_multi_variable_for_loop():
    program = parse(
        "tele bit<8>[4] a;\ntele bit<8>[4] b;\n"
        "{ for (u, v in a, b) { pass; } } { } { }")
    stmt = program.init_block[0]
    assert stmt.names == ["u", "v"]
    assert len(stmt.iterables) == 2


def test_for_loop_arity_mismatch():
    with pytest.raises(ParseError):
        parse("tele bit<8>[4] a;\n{ for (u, v in a) { } } { } { }")


def test_missing_semicolon():
    with pytest.raises(ParseError):
        first_init_stmt("x = 4")


def test_unterminated_block():
    with pytest.raises(ParseError):
        parse("{ x = 4;")


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

def test_precedence_arithmetic_over_comparison():
    expr = parse_expression("a + b * c == d")
    assert isinstance(expr, ast.Binary) and expr.op is ast.BinaryOp.EQ
    left = expr.left
    assert left.op is ast.BinaryOp.ADD
    assert left.right.op is ast.BinaryOp.MUL


def test_precedence_comparison_over_logical():
    expr = parse_expression("a == b && c != d")
    assert expr.op is ast.BinaryOp.AND
    assert expr.left.op is ast.BinaryOp.EQ


def test_or_binds_looser_than_and():
    expr = parse_expression("a || b && c")
    assert expr.op is ast.BinaryOp.OR
    assert expr.right.op is ast.BinaryOp.AND


def test_unary_operators():
    expr = parse_expression("!a")
    assert isinstance(expr, ast.Unary) and expr.op is ast.UnaryOp.NOT
    expr = parse_expression("~a")
    assert expr.op is ast.UnaryOp.BNOT
    expr = parse_expression("-a")
    assert expr.op is ast.UnaryOp.NEG


def test_in_operator():
    expr = parse_expression("x in xs")
    assert isinstance(expr, ast.InExpr)


def test_tuple_expression():
    expr = parse_expression("(a, b, c)")
    assert isinstance(expr, ast.TupleExpr)
    assert len(expr.items) == 3


def test_parenthesized_single_expression_is_not_a_tuple():
    expr = parse_expression("(a)")
    assert isinstance(expr, ast.Var)


def test_index_chains():
    expr = parse_expression("m[(a, b)]")
    assert isinstance(expr, ast.Index)
    assert isinstance(expr.index, ast.TupleExpr)


def test_builtin_calls():
    expr = parse_expression("abs(a - b)")
    assert isinstance(expr, ast.Call) and expr.func == "abs"
    expr = parse_expression("length(xs)")
    assert expr.func == "length"
    expr = parse_expression("max(a, b)")
    assert len(expr.args) == 2


def test_non_builtin_call_is_not_a_call():
    # Only builtin names parse as calls; anything else is an error when
    # followed by parentheses in expression position.
    with pytest.raises(ParseError):
        parse_expression("frobnicate(a)")


def test_trailing_tokens_after_expression_rejected():
    with pytest.raises(ParseError):
        parse_expression("a b")


def test_shift_operators_parse():
    expr = parse_expression("a << 2 | b >> 3")
    assert expr.op is ast.BinaryOp.BOR


def test_figure_programs_parse():
    from repro.properties import load_source, property_names

    for name in property_names():
        parse(load_source(name))  # must not raise
