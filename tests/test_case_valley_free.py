"""Case study 1 (Section 5.1): valley-free source routing.

Reproduces the paper's experiment: on the Figure 8 leaf-spine network
running source routing, Hydra allows *all* valley-free paths between
hosts and drops *any* packet following an errant path injected by the
buggy sender script."""

import pytest

from repro.runtime.scenarios import SourceRoutingTestbed


@pytest.fixture(scope="module")
def testbed():
    return SourceRoutingTestbed()


def test_all_valley_free_paths_delivered(testbed):
    for src, dst in (("h1", "h3"), ("h1", "h4"), ("h2", "h3")):
        for path in testbed.valley_free_node_paths(src, dst):
            ports = testbed.route_for(path, dst)
            result = testbed.send(src, dst, ports)
            assert result.delivered, f"valley-free path blocked: {path}"


def test_same_leaf_path_delivered(testbed):
    ports = testbed.route_for(["leaf1"], "h2")
    assert testbed.send("h1", "h2", ports).delivered


def test_every_errant_valley_path_dropped(testbed):
    for path in testbed.valley_node_paths("h1", "h3"):
        ports = testbed.route_for(path, "h3")
        result = testbed.send("h1", "h3", ports)
        assert not result.delivered, f"valley path leaked: {path}"


def test_buggy_sender_extra_hops_dropped(testbed):
    """The injected bug: the sender script appends invalid extra hops."""
    base = testbed.valley_free_node_paths("h1", "h3")[0]
    ports = testbed.buggy_sender_route(base, "h3")
    assert not testbed.send("h1", "h3", ports).delivered


def test_checker_is_independent_of_forwarding(testbed):
    """The same source-routed packet without the second spine detour is
    fine — the checker reacts to the path, not to source routing."""
    base = testbed.valley_free_node_paths("h1", "h3")[1]
    ports = testbed.route_for(base, "h3")
    assert testbed.send("h1", "h3", ports).delivered


def test_telemetry_stripped_before_delivery(testbed):
    path = testbed.valley_free_node_paths("h1", "h3")[0]
    ports = testbed.route_for(path, "h3")
    host = testbed.network.host("h3")
    host.received.clear()
    host.rx_callbacks.clear()
    testbed.send("h1", "h3", ports)
    _, packet = host.received[-1]
    names = [h.name for h in packet.headers]
    assert all(not n.startswith("hydra") for n in names)
    assert packet.find("ethernet").eth_type == 0x0800


def test_valley_free_holds_on_wider_fabric():
    wide = SourceRoutingTestbed(num_leaves=3, num_spines=2,
                                hosts_per_leaf=1)
    good = wide.valley_free_node_paths("h1", "h3")[0]
    assert wide.send("h1", "h3", wide.route_for(good, "h3")).delivered
    bad = ["leaf1", "spine1", "leaf2", "spine2", "leaf3"]
    assert not wide.send("h1", "h3", wide.route_for(bad, "h3")).delivered
