"""P4 IR tests: table match semantics, entry priority, tree walking."""

import pytest

from repro.p4 import ir


def make_table(kinds):
    return ir.Table(
        name="t",
        keys=[ir.TableKey(f"meta.k{i}", kind) for i, kind in enumerate(kinds)],
        actions=["a"],
    )


def test_exact_match():
    table = make_table([ir.MatchKind.EXACT])
    entry = ir.TableEntry(match=[5], action="a")
    assert entry.matches(table, [5])
    assert not entry.matches(table, [6])


def test_ternary_match():
    table = make_table([ir.MatchKind.TERNARY])
    entry = ir.TableEntry(match=[(0x10, 0xF0)], action="a")
    assert entry.matches(table, [0x1F])
    assert entry.matches(table, [0x10])
    assert not entry.matches(table, [0x20])


def test_ternary_zero_mask_is_wildcard():
    table = make_table([ir.MatchKind.TERNARY])
    entry = ir.TableEntry(match=[(0, 0)], action="a")
    assert entry.matches(table, [12345])


def test_lpm_match():
    table = make_table([ir.MatchKind.LPM])
    prefix = (10 << 24) | (1 << 8)
    entry = ir.TableEntry(match=[(prefix, 24)], action="a")
    assert entry.matches(table, [prefix | 7])
    assert not entry.matches(table, [(10 << 24) | (2 << 8) | 7])


def test_lpm_zero_length_matches_everything():
    table = make_table([ir.MatchKind.LPM])
    entry = ir.TableEntry(match=[(0, 0)], action="a")
    assert entry.matches(table, [0xFFFFFFFF])


def test_range_match_inclusive():
    table = make_table([ir.MatchKind.RANGE])
    entry = ir.TableEntry(match=[(81, 82)], action="a")
    assert entry.matches(table, [81])
    assert entry.matches(table, [82])
    assert not entry.matches(table, [80])
    assert not entry.matches(table, [83])


def test_multi_key_match_requires_all():
    table = make_table([ir.MatchKind.EXACT, ir.MatchKind.RANGE])
    entry = ir.TableEntry(match=[7, (10, 20)], action="a")
    assert entry.matches(table, [7, 15])
    assert not entry.matches(table, [8, 15])
    assert not entry.matches(table, [7, 25])


def test_duplicate_table_and_action_rejected():
    program = ir.P4Program(name="p")
    program.add_table(make_table([ir.MatchKind.EXACT]))
    with pytest.raises(ValueError):
        program.add_table(make_table([ir.MatchKind.EXACT]))
    program.add_action(ir.Action("a"))
    with pytest.raises(ValueError):
        program.add_action(ir.Action("a"))


def test_walk_stmts_recurses_into_branches():
    inner = ir.MarkToDrop()
    other = ir.SetValid("ipv4")
    stmts = [ir.IfStmt(ir.Const(1, 1), [inner], [other])]
    found = list(ir.walk_stmts(stmts))
    assert inner in found and other in found


def test_walk_stmts_covers_apply_bodies():
    inner = ir.MarkToDrop()
    stmts = [ir.ApplyTable("t", hit_body=[inner])]
    assert inner in list(ir.walk_stmts(stmts))


def test_walk_exprs():
    expr = ir.BinExpr("&&",
                      ir.UnExpr("!", ir.FieldRef("meta.a")),
                      ir.ValidRef("ipv4"))
    nodes = list(ir.walk_exprs(expr))
    assert any(isinstance(n, ir.FieldRef) for n in nodes)
    assert any(isinstance(n, ir.ValidRef) for n in nodes)
    assert len(nodes) == 4


def test_bind_types_expands_stacks():
    from repro.net.packet import SOURCE_ROUTE, ETHERNET

    program = ir.P4Program(name="p")
    program.parser = ir.ParserSpec(states=[
        ir.ParserState(
            name="start",
            extracts=[ir.Extract("ethernet", ETHERNET),
                      ir.ExtractStack("srcRoute", SOURCE_ROUTE, "bos",
                                      max_depth=4)],
            transitions=[ir.Transition(ir.ACCEPT)],
        ),
    ])
    binds = program.bind_types()
    assert "ethernet" in binds
    assert {f"srcRoute{i}" for i in range(4)} <= set(binds)


def test_header_types_deduplicated():
    from repro.net.packet import IPV4, ETHERNET

    program = ir.P4Program(name="p")
    program.parser = ir.ParserSpec(states=[
        ir.ParserState(
            name="start",
            extracts=[ir.Extract("ethernet", ETHERNET),
                      ir.Extract("ipv4", IPV4),
                      ir.Extract("inner_ipv4", IPV4)],
            transitions=[ir.Transition(ir.ACCEPT)],
        ),
    ])
    names = [t.name for t in program.header_types()]
    assert names.count("ipv4") == 1
