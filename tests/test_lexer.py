"""Lexer unit tests."""

import pytest

from repro.indus.errors import LexError
from repro.indus.lexer import tokenize
from repro.indus.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source)][:-1]  # drop EOF


def test_empty_input_yields_only_eof():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].kind is TokenKind.EOF


def test_identifiers_and_keywords():
    assert kinds("tele sensor control header local foo") == [
        TokenKind.TELE, TokenKind.SENSOR, TokenKind.CONTROL,
        TokenKind.HEADER, TokenKind.LOCAL, TokenKind.IDENT,
    ]


def test_keywords_are_not_prefix_matched():
    # "telemetry" starts with "tele" but is a plain identifier.
    tokens = tokenize("telemetry")
    assert tokens[0].kind is TokenKind.IDENT
    assert tokens[0].text == "telemetry"


def test_decimal_literal():
    token = tokenize("1234")[0]
    assert token.kind is TokenKind.INT
    assert token.value == 1234


def test_hex_literal():
    assert tokenize("0xFF")[0].value == 255
    assert tokenize("0x88B5")[0].value == 0x88B5


def test_binary_literal():
    assert tokenize("0b1010")[0].value == 10


def test_underscore_separators_in_literals():
    assert tokenize("1_000_000")[0].value == 1000000


def test_malformed_hex_literal_rejected():
    with pytest.raises(LexError):
        tokenize("0x")


def test_trailing_letter_after_literal_rejected():
    with pytest.raises(LexError):
        tokenize("123abc")


def test_booleans():
    assert kinds("true false") == [TokenKind.TRUE, TokenKind.FALSE]


def test_line_comment_skipped():
    assert kinds("a // comment with symbols +-*/\nb") == [
        TokenKind.IDENT, TokenKind.IDENT,
    ]


def test_block_comment_skipped():
    assert kinds("a /* multi\nline\ncomment */ b") == [
        TokenKind.IDENT, TokenKind.IDENT,
    ]


def test_nested_stars_in_block_comment():
    assert kinds("/* ** * */ x") == [TokenKind.IDENT]


def test_unterminated_block_comment():
    with pytest.raises(LexError):
        tokenize("a /* never closed")


def test_two_char_operators():
    assert kinds("== != <= >= && || << >> += -=") == [
        TokenKind.EQ, TokenKind.NEQ, TokenKind.LE, TokenKind.GE,
        TokenKind.AND, TokenKind.OR, TokenKind.SHL, TokenKind.SHR,
        TokenKind.PLUS_ASSIGN, TokenKind.MINUS_ASSIGN,
    ]


def test_single_char_operators():
    assert kinds("+ - * / % ~ & | ^ < > ! = @ . , ;") == [
        TokenKind.PLUS, TokenKind.MINUS, TokenKind.STAR, TokenKind.SLASH,
        TokenKind.PERCENT, TokenKind.TILDE, TokenKind.AMP, TokenKind.PIPE,
        TokenKind.CARET, TokenKind.LT, TokenKind.GT, TokenKind.NOT,
        TokenKind.ASSIGN, TokenKind.AT, TokenKind.DOT, TokenKind.COMMA,
        TokenKind.SEMI,
    ]


def test_maximal_munch_prefers_long_operators():
    # "<<=" lexes as "<<" then "="; "===" as "==" then "=".
    assert kinds("<<=") == [TokenKind.SHL, TokenKind.ASSIGN]
    assert kinds("===") == [TokenKind.EQ, TokenKind.ASSIGN]


def test_unexpected_character():
    with pytest.raises(LexError):
        tokenize("$")


def test_spans_track_lines_and_columns():
    tokens = tokenize("a\n  b")
    assert tokens[0].span.line == 1 and tokens[0].span.column == 1
    assert tokens[1].span.line == 2 and tokens[1].span.column == 3


def test_brackets_and_braces():
    assert kinds("{ } ( ) [ ]") == [
        TokenKind.LBRACE, TokenKind.RBRACE, TokenKind.LPAREN,
        TokenKind.RPAREN, TokenKind.LBRACKET, TokenKind.RBRACKET,
    ]


def test_full_figure1_program_lexes():
    source = """
    control dict<bit<8>,bit<8>> tenants;
    tele bit<8> tenant;
    { tenant = tenants[in_port]; }
    { }
    { if (tenant != tenants[eg_port]) { reject; } }
    """
    tokens = tokenize(source)
    assert tokens[-1].kind is TokenKind.EOF
    assert TokenKind.DICT in [t.kind for t in tokens]
