"""Registry.merge + trace shard-concat: the fleet aggregation layer.

These are the semantics the sharded runner (repro.parallel) leans on:
merging per-worker metric snapshots must be exact, associative, and
safe under the label-cardinality ceiling, and per-shard JSONL traces
must concatenate into one stream with a coherent global sequence.
"""

import json

import pytest

from repro.obs import MetricsRegistry, NullRegistry, concat_jsonl_shards
from repro.obs.metrics import MAX_LABEL_SETS, MetricError


def _registry(counter_points, hist_points=()):
    """Build a registry from [(labels-tuple, value)] counter points and
    [(value,)] histogram observations."""
    reg = MetricsRegistry()
    c = reg.counter("packets_total", "test", labels=("switch",))
    for switch, value in counter_points:
        c.labels(switch).inc(value)
    h = reg.histogram("lat", "test", buckets=(1.0, 5.0))
    for value in hist_points:
        h.observe(value)
    return reg


def test_counter_merge_sums_per_series():
    a = _registry([("s1", 3), ("s2", 5)])
    b = _registry([("s1", 4), ("s3", 1)])
    merged = MetricsRegistry().merge(a).merge(b)
    assert merged.value("packets_total", "s1") == 7
    assert merged.value("packets_total", "s2") == 5
    assert merged.value("packets_total", "s3") == 1


def test_merge_accepts_registry_or_dump():
    a = _registry([("s1", 3)], hist_points=[0.5, 2.0])
    from_registry = MetricsRegistry().merge(a)
    from_dump = MetricsRegistry().merge(a.to_dict())
    assert from_registry.to_dict() == from_dump.to_dict()


def test_merge_into_empty_is_exact_round_trip():
    a = _registry([("s1", 3), ("s2", 5)], hist_points=[0.5, 2.0, 9.0])
    # Include a declared-but-never-observed metric: it must survive too.
    a.counter("quiet_total", "never incremented", labels=("x",))
    dump = a.to_dict()
    assert MetricsRegistry().merge(dump).to_dict() == dump


def test_merge_is_associative():
    regs = [_registry([("s1", i), (f"s{i}", 2 * i)], hist_points=[i * 1.0])
            for i in range(1, 4)]
    left = MetricsRegistry().merge(regs[0]).merge(regs[1]).merge(regs[2])
    right_pair = MetricsRegistry().merge(regs[1]).merge(regs[2])
    right = MetricsRegistry().merge(regs[0]).merge(right_pair)
    assert left.to_dict() == right.to_dict()


def test_gauge_merge_takes_max():
    a = MetricsRegistry()
    a.gauge("sim_time_seconds", "clock").set(4.0)
    b = MetricsRegistry()
    b.gauge("sim_time_seconds", "clock").set(9.0)
    merged = MetricsRegistry().merge(a).merge(b)
    assert merged.value("sim_time_seconds") == 9.0
    # Max is insensitive to merge order.
    other = MetricsRegistry().merge(b).merge(a)
    assert other.value("sim_time_seconds") == 9.0


def test_histogram_merge_adds_buckets_sum_count():
    a = MetricsRegistry()
    a.histogram("lat", buckets=(1.0, 5.0)).observe(0.5)
    b = MetricsRegistry()
    hb = b.histogram("lat", buckets=(1.0, 5.0))
    hb.observe(2.0)
    hb.observe(100.0)
    merged = MetricsRegistry().merge(a).merge(b)
    series = merged.to_dict()["lat"]["series"][0]
    assert series["count"] == 3
    assert series["sum"] == pytest.approx(102.5)
    # Cumulative (le-style) bucket counts: 0.5 lands in both, 2.0 only
    # in le=5.0, 100.0 in neither (it counts toward `count` alone).
    assert series["buckets"]["1.0"] == 1
    assert series["buckets"]["5.0"] == 2


def test_histogram_bucket_mismatch_raises():
    a = MetricsRegistry()
    a.histogram("lat", buckets=(1.0, 5.0)).observe(0.5)
    b = MetricsRegistry()
    b.histogram("lat", buckets=(1.0, 10.0)).observe(0.5)
    merged = MetricsRegistry().merge(a)
    with pytest.raises(MetricError, match="bucket mismatch"):
        merged.merge(b)


def test_kind_mismatch_raises():
    a = MetricsRegistry()
    a.counter("thing").inc()
    b = MetricsRegistry()
    b.gauge("thing").set(1.0)
    with pytest.raises(MetricError):
        MetricsRegistry().merge(a).merge(b)


def test_unknown_kind_in_dump_raises():
    with pytest.raises(MetricError, match="unknown kind"):
        MetricsRegistry().merge(
            {"x": {"kind": "summary", "help": "", "series": []}})


def test_label_union_respects_cardinality_ceiling():
    target = MetricsRegistry()
    c = target.counter("wide_total", labels=("k",))
    for i in range(MAX_LABEL_SETS):
        c.labels(f"k{i}").inc()
    fresh = MetricsRegistry()
    fresh.counter("wide_total", labels=("k",)).labels("brand_new").inc()
    with pytest.raises(MetricError, match="label sets"):
        target.merge(fresh)


def test_merge_overlapping_labels_do_not_hit_ceiling():
    a = MetricsRegistry()
    ca = a.counter("wide_total", labels=("k",))
    for i in range(MAX_LABEL_SETS):
        ca.labels(f"k{i}").inc()
    # Same label sets on the other shard: union adds nothing new.
    b = MetricsRegistry()
    cb = b.counter("wide_total", labels=("k",))
    for i in range(MAX_LABEL_SETS):
        cb.labels(f"k{i}").inc(2)
    merged = MetricsRegistry().merge(a).merge(b)
    assert merged.value("wide_total", "k0") == 3


def test_null_registry_merge_is_noop():
    null = NullRegistry()
    assert null.merge(_registry([("s1", 1)])) is null
    assert null.to_dict() == {}


# -- trace shard concatenation ---------------------------------------------


def _write_shard(path, events):
    with open(path, "w") as handle:
        for seq, kind in enumerate(events):
            handle.write(json.dumps({"seq": seq, "kind": kind}) + "\n")


def test_concat_jsonl_shards_renumbers_and_tags(tmp_path):
    s0 = tmp_path / "shard0.jsonl"
    s1 = tmp_path / "shard1.jsonl"
    _write_shard(s0, ["a", "b"])
    _write_shard(s1, ["c"])
    dest = tmp_path / "merged.jsonl"
    count = concat_jsonl_shards([str(s0), str(s1)], str(dest))
    records = [json.loads(line) for line in dest.read_text().splitlines()]
    assert count == 3 == len(records)
    assert [r["seq"] for r in records] == [0, 1, 2]
    assert [r["shard"] for r in records] == [0, 0, 1]
    assert [r["kind"] for r in records] == ["a", "b", "c"]


def test_concat_jsonl_shards_skips_missing_files(tmp_path):
    s0 = tmp_path / "shard0.jsonl"
    _write_shard(s0, ["a"])
    dest = tmp_path / "merged.jsonl"
    # A killed worker may never have flushed its trace file.
    count = concat_jsonl_shards(
        [str(tmp_path / "never_written.jsonl"), str(s0)], str(dest))
    records = [json.loads(line) for line in dest.read_text().splitlines()]
    assert count == 1
    assert records[0]["kind"] == "a"
    # Shard index reflects position in the source list, not file order.
    assert records[0]["shard"] == 1
