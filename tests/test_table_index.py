"""Table-index unit tests: insert/delete/priority/LPM tie-break order.

The fast engine indexes entries (exact hash map, LPM prefix-length
buckets, sorted scan); the interpreter scans linearly with ``_beats``.
Every scenario here runs on both engines and asserts the same winning
entry — plus the explicitly expected one — including churn that forces
index invalidation and rebuild.
"""

import pytest

from repro.net.packet import HeaderType
from repro.p4 import ir
from repro.p4.bmv2 import Bmv2Switch

H = HeaderType("h", [("a", 32), ("b", 32)])

ENGINES = ("interp", "fast")


def make_program(keys):
    """One table ``t`` with the given keys; the hit action records its
    argument in a metadata field surfaced via egress_spec."""
    program = ir.P4Program(
        name="tidx",
        parser=ir.ParserSpec(states=[
            ir.ParserState("start", extracts=[ir.Extract("h", H)],
                           transitions=[ir.Transition(ir.ACCEPT)]),
        ]),
        metadata=[("out", 32)],
        emit_order=["h"],
    )
    program.add_action(ir.Action("set_out", params=[("v", 32)], body=[
        ir.AssignStmt("standard_metadata.egress_spec",
                      ir.FieldRef("param.v")),
    ]))
    program.add_table(ir.Table("t", keys=keys, actions=["set_out"]))
    program.ingress = [ir.ApplyTable("t")]
    return program


def winners(program, entries, probes, default=None):
    """For each probe packet, the egress_spec chosen by each engine."""
    results = []
    for engine in ENGINES:
        sw = Bmv2Switch(program, engine=engine)
        if default is not None:
            sw.set_default_action("t", *default)
        for match, args, priority in entries:
            sw.insert_entry("t", match, "set_out", args, priority=priority)
        row = []
        for a, b in probes:
            packet_out = sw.process(_packet(a, b), 1)
            row.append(packet_out[0][0] if packet_out else None)
        results.append(row)
    assert results[0] == results[1], "engines disagree"
    return results[0]


def _packet(a, b):
    from repro.net.packet import Packet
    return Packet(headers=[H(a=a, b=b)], payload_len=10)


def test_exact_match_and_miss():
    program = make_program([ir.TableKey("hdr.h.a", ir.MatchKind.EXACT)])
    got = winners(program,
                  entries=[([5], [100], 0), ([9], [200], 0)],
                  probes=[(5, 0), (9, 0), (7, 0)])
    # A miss with no default leaves egress_spec 0 (delivered on port 0).
    assert got == [100, 200, 0]


def test_exact_first_inserted_wins_duplicates():
    program = make_program([ir.TableKey("hdr.h.a", ir.MatchKind.EXACT)])
    got = winners(program,
                  entries=[([5], [100], 0), ([5], [200], 0)],
                  probes=[(5, 0)])
    assert got == [100]


def test_lpm_longest_prefix_beats_priority():
    program = make_program([ir.TableKey("hdr.h.a", ir.MatchKind.LPM)])
    value = 0x0A000001  # 10.0.0.1
    got = winners(program, entries=[
        ([(0x0A000000, 8)], [100], 999),   # /8, huge priority
        ([(0x0A000000, 24)], [200], 0),    # /24 must still win
        ([(0, 0)], [300], 0),              # catch-all
    ], probes=[(value, 0), (0x0B000001, 0)])
    assert got == [200, 300]


def test_lpm_same_length_priority_then_insertion():
    program = make_program([ir.TableKey("hdr.h.a", ir.MatchKind.LPM)])
    value = 0x0A000001
    # Same /8 prefix: higher priority wins; equal priority -> first in.
    got = winners(program, entries=[
        ([(0x0A000000, 8)], [100], 1),
        ([(0x0A000000, 8)], [200], 5),
        ([(0x0A000000, 8)], [300], 5),
    ], probes=[(value, 0)])
    assert got == [200]


def test_ternary_priority_and_insertion_order():
    program = make_program([ir.TableKey("hdr.h.a", ir.MatchKind.TERNARY)])
    got = winners(program, entries=[
        ([(0x10, 0xF0)], [100], 1),
        ([(0x10, 0xF0)], [200], 9),   # higher priority wins
        ([(0x10, 0xF0)], [300], 9),   # tie -> first inserted (200)
    ], probes=[(0x1A, 0)])
    assert got == [200]


def test_range_match():
    program = make_program([ir.TableKey("hdr.h.a", ir.MatchKind.RANGE)])
    got = winners(program, entries=[
        ([(10, 20)], [100], 0),
        ([(15, 30)], [200], 5),
    ], probes=[(12, 0), (17, 0), (25, 0), (40, 0)])
    assert got == [100, 200, 200, 0]


def test_mixed_lpm_plus_exact_key():
    program = make_program([
        ir.TableKey("hdr.h.a", ir.MatchKind.LPM),
        ir.TableKey("hdr.h.b", ir.MatchKind.EXACT),
    ])
    got = winners(program, entries=[
        ([(0x0A000000, 8), 7], [100], 0),
        ([(0x0A000000, 24), 7], [200], 0),
        ([(0x0A000000, 24), 8], [300], 0),
    ], probes=[(0x0A000001, 7), (0x0A000001, 8), (0x0AFF0001, 7)])
    assert got == [200, 300, 100]


def test_default_action_used_on_miss_and_tracks_changes():
    program = make_program([ir.TableKey("hdr.h.a", ir.MatchKind.EXACT)])
    for engine in ENGINES:
        sw = Bmv2Switch(program, engine=engine)
        sw.set_default_action("t", "set_out", [44])
        assert sw.process(_packet(1, 0), 1)[0][0] == 44
        # Changing the default after lookups must take effect.
        sw.set_default_action("t", "set_out", [55])
        assert sw.process(_packet(1, 0), 1)[0][0] == 55


@pytest.mark.parametrize("kind", [ir.MatchKind.EXACT, ir.MatchKind.LPM,
                                  ir.MatchKind.TERNARY])
def test_insert_delete_churn_invalidates_index(kind):
    program = make_program([ir.TableKey("hdr.h.a", kind)])
    specs = {
        ir.MatchKind.EXACT: (5, 5),
        ir.MatchKind.LPM: ((5, 32), (5, 32)),
        ir.MatchKind.TERNARY: ((5, 0xFFFFFFFF), (5, 0xFFFFFFFF)),
    }
    spec_a, spec_b = specs[kind]
    for engine in ENGINES:
        sw = Bmv2Switch(program, engine=engine)
        entry = sw.insert_entry("t", [spec_a], "set_out", [100], priority=1)
        assert sw.process(_packet(5, 0), 1)[0][0] == 100
        # Insert a higher-priority entry after the index was built.
        sw.insert_entry("t", [spec_b], "set_out", [200], priority=9)
        assert sw.process(_packet(5, 0), 1)[0][0] == 200
        sw.delete_entry("t", entry)
        assert sw.process(_packet(5, 0), 1)[0][0] == 200
        sw.clear_table("t")
        assert sw.process(_packet(5, 0), 1)[0][0] == 0  # miss, no default
