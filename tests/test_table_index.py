"""Table-index unit tests: insert/delete/priority/LPM tie-break order.

The fast engine indexes entries (exact hash map, LPM prefix-length
buckets, sorted scan); the interpreter scans linearly with ``_beats``.
Every scenario here runs on both engines and asserts the same winning
entry — plus the explicitly expected one — including churn that forces
index invalidation and rebuild.
"""

import pytest

from repro.net.packet import HeaderType
from repro.p4 import ir
from repro.p4.bmv2 import Bmv2Switch

H = HeaderType("h", [("a", 32), ("b", 32)])

ENGINES = ("interp", "fast")


def make_program(keys):
    """One table ``t`` with the given keys; the hit action records its
    argument in a metadata field surfaced via egress_spec."""
    program = ir.P4Program(
        name="tidx",
        parser=ir.ParserSpec(states=[
            ir.ParserState("start", extracts=[ir.Extract("h", H)],
                           transitions=[ir.Transition(ir.ACCEPT)]),
        ]),
        metadata=[("out", 32)],
        emit_order=["h"],
    )
    program.add_action(ir.Action("set_out", params=[("v", 32)], body=[
        ir.AssignStmt("standard_metadata.egress_spec",
                      ir.FieldRef("param.v")),
    ]))
    program.add_table(ir.Table("t", keys=keys, actions=["set_out"]))
    program.ingress = [ir.ApplyTable("t")]
    return program


def winners(program, entries, probes, default=None):
    """For each probe packet, the egress_spec chosen by each engine."""
    results = []
    for engine in ENGINES:
        sw = Bmv2Switch(program, engine=engine)
        if default is not None:
            sw.set_default_action("t", *default)
        for match, args, priority in entries:
            sw.insert_entry("t", match, "set_out", args, priority=priority)
        row = []
        for a, b in probes:
            packet_out = sw.process(_packet(a, b), 1)
            row.append(packet_out[0][0] if packet_out else None)
        results.append(row)
    assert results[0] == results[1], "engines disagree"
    return results[0]


def _packet(a, b):
    from repro.net.packet import Packet
    return Packet(headers=[H(a=a, b=b)], payload_len=10)


def test_exact_match_and_miss():
    program = make_program([ir.TableKey("hdr.h.a", ir.MatchKind.EXACT)])
    got = winners(program,
                  entries=[([5], [100], 0), ([9], [200], 0)],
                  probes=[(5, 0), (9, 0), (7, 0)])
    # A miss with no default leaves egress_spec 0 (delivered on port 0).
    assert got == [100, 200, 0]


def test_exact_first_inserted_wins_duplicates():
    program = make_program([ir.TableKey("hdr.h.a", ir.MatchKind.EXACT)])
    got = winners(program,
                  entries=[([5], [100], 0), ([5], [200], 0)],
                  probes=[(5, 0)])
    assert got == [100]


def test_lpm_longest_prefix_beats_priority():
    program = make_program([ir.TableKey("hdr.h.a", ir.MatchKind.LPM)])
    value = 0x0A000001  # 10.0.0.1
    got = winners(program, entries=[
        ([(0x0A000000, 8)], [100], 999),   # /8, huge priority
        ([(0x0A000000, 24)], [200], 0),    # /24 must still win
        ([(0, 0)], [300], 0),              # catch-all
    ], probes=[(value, 0), (0x0B000001, 0)])
    assert got == [200, 300]


def test_lpm_same_length_priority_then_insertion():
    program = make_program([ir.TableKey("hdr.h.a", ir.MatchKind.LPM)])
    value = 0x0A000001
    # Same /8 prefix: higher priority wins; equal priority -> first in.
    got = winners(program, entries=[
        ([(0x0A000000, 8)], [100], 1),
        ([(0x0A000000, 8)], [200], 5),
        ([(0x0A000000, 8)], [300], 5),
    ], probes=[(value, 0)])
    assert got == [200]


def test_ternary_priority_and_insertion_order():
    program = make_program([ir.TableKey("hdr.h.a", ir.MatchKind.TERNARY)])
    got = winners(program, entries=[
        ([(0x10, 0xF0)], [100], 1),
        ([(0x10, 0xF0)], [200], 9),   # higher priority wins
        ([(0x10, 0xF0)], [300], 9),   # tie -> first inserted (200)
    ], probes=[(0x1A, 0)])
    assert got == [200]


def test_range_match():
    program = make_program([ir.TableKey("hdr.h.a", ir.MatchKind.RANGE)])
    got = winners(program, entries=[
        ([(10, 20)], [100], 0),
        ([(15, 30)], [200], 5),
    ], probes=[(12, 0), (17, 0), (25, 0), (40, 0)])
    assert got == [100, 200, 200, 0]


def test_mixed_lpm_plus_exact_key():
    program = make_program([
        ir.TableKey("hdr.h.a", ir.MatchKind.LPM),
        ir.TableKey("hdr.h.b", ir.MatchKind.EXACT),
    ])
    got = winners(program, entries=[
        ([(0x0A000000, 8), 7], [100], 0),
        ([(0x0A000000, 24), 7], [200], 0),
        ([(0x0A000000, 24), 8], [300], 0),
    ], probes=[(0x0A000001, 7), (0x0A000001, 8), (0x0AFF0001, 7)])
    assert got == [200, 300, 100]


def test_default_action_used_on_miss_and_tracks_changes():
    program = make_program([ir.TableKey("hdr.h.a", ir.MatchKind.EXACT)])
    for engine in ENGINES:
        sw = Bmv2Switch(program, engine=engine)
        sw.set_default_action("t", "set_out", [44])
        assert sw.process(_packet(1, 0), 1)[0][0] == 44
        # Changing the default after lookups must take effect.
        sw.set_default_action("t", "set_out", [55])
        assert sw.process(_packet(1, 0), 1)[0][0] == 55


# ---------------------------------------------------------------------------
# Bulk control-plane path: insert_entries/delete_entries fold into the
# live index instead of invalidating it.  Same win-order contract.
# ---------------------------------------------------------------------------

ALL_ENGINES = ("interp", "fast", "codegen")


def winners_bulk(program, entries, probes, deletions=()):
    """Like :func:`winners` but installing through ``insert_entries``,
    across all three engines, with optional bulk deletions (indexes into
    ``entries``) applied after a first lookup warmed the index."""
    results = []
    for engine in ALL_ENGINES:
        sw = Bmv2Switch(program, engine=engine)
        created = sw.insert_entries(
            "t", [(match, "set_out", args, priority)
                  for match, args, priority in entries])
        sw.process(_packet(*probes[0]), 1)  # build the index
        if deletions:
            sw.delete_entries("t", [created[i] for i in deletions])
        row = []
        for a, b in probes:
            packet_out = sw.process(_packet(a, b), 1)
            row.append(packet_out[0][0] if packet_out else None)
        results.append(row)
    assert results[0] == results[1] == results[2], "engines disagree"
    return results[0]


def test_bulk_insert_matches_single_insert_semantics():
    program = make_program([ir.TableKey("hdr.h.a", ir.MatchKind.RANGE)])
    got = winners_bulk(program, entries=[
        ([(10, 20)], [100], 0),
        ([(15, 30)], [200], 5),
    ], probes=[(12, 0), (17, 0), (25, 0), (40, 0)])
    assert got == [100, 200, 200, 0]


def test_bulk_delete_reexposes_shadowed_entry():
    program = make_program([ir.TableKey("hdr.h.a", ir.MatchKind.RANGE)])
    got = winners_bulk(program, entries=[
        ([(10, 20)], [100], 1),
        ([(10, 20)], [200], 9),
    ], probes=[(12, 0)], deletions=[1])
    assert got == [100]


def test_bulk_fold_after_warm_index_keeps_order():
    program = make_program([ir.TableKey("hdr.h.a", ir.MatchKind.EXACT)])
    for engine in ALL_ENGINES:
        sw = Bmv2Switch(program, engine=engine)
        first = sw.insert_entries("t", [([5], "set_out", [100], 0)])
        assert sw.process(_packet(5, 0), 1)[0][0] == 100
        # Fold into the already-built index: new key, then a duplicate
        # key at higher priority (forces the fallback rebuild).
        sw.insert_entries("t", [([9], "set_out", [300], 0)])
        assert sw.process(_packet(9, 0), 1)[0][0] == 300
        sw.insert_entries("t", [([5], "set_out", [200], 9)])
        assert sw.process(_packet(5, 0), 1)[0][0] == 200
        sw.delete_entries("t", first)
        assert sw.process(_packet(5, 0), 1)[0][0] == 200


def test_range_buckets_engage_and_preserve_win_order():
    """Above _RBUCKET_MIN entries with a degenerate range column the
    index switches to hashed range buckets; residual wide-range entries
    must still win by priority."""
    from repro.p4.fastpath import _RBUCKET_MIN

    program = make_program([
        ir.TableKey("hdr.h.a", ir.MatchKind.RANGE),
        ir.TableKey("hdr.h.b", ir.MatchKind.RANGE),
    ])
    n = _RBUCKET_MIN + 8
    entries = [([(i, i), (0, 100)], [1000 + i], 1) for i in range(n)]
    # Wide-range entries: one outranking the buckets, one outranked.
    entries.append(([(0, 2 ** 32 - 1), (50, 60)], [7], 5))
    entries.append(([(0, 2 ** 32 - 1), (0, 100)], [8], 0))
    probes = ([(i, 10) for i in range(0, n, 7)]
              + [(3, 55), (n + 50, 55), (n + 50, 99)])
    expected = []
    for a, b in probes:
        if 50 <= b <= 60:
            expected.append(7)
        elif a < n:
            expected.append(1000 + a)
        else:
            expected.append(8)
    got = winners_bulk(program, entries, probes)
    assert got == expected
    # White box: the fast engine actually chose the bucket layout.
    sw = Bmv2Switch(program, engine="fast")
    sw.insert_entries("t", [(m, "set_out", a, p) for m, a, p in entries])
    sw.process(_packet(0, 0), 1)
    index = sw._fast.tables["t"]
    assert index._rb_col == 0
    assert len(index._rb_buckets) == n
    assert len(index._rb_residual) == 2


def test_range_bucket_fold_churn_randomized_parity():
    """Randomized bulk insert/delete churn on a bucketed range table:
    fast and codegen stay packet-for-packet equal to the interpreter."""
    import random

    from repro.p4.fastpath import _RBUCKET_MIN

    program = make_program([
        ir.TableKey("hdr.h.a", ir.MatchKind.RANGE),
        ir.TableKey("hdr.h.b", ir.MatchKind.RANGE),
    ])
    rng = random.Random(42)

    def rows(k, base):
        out = []
        for i in range(k):
            if rng.random() < 0.85:
                v = base + i
                k0 = (v, v)
            else:
                lo = rng.randrange(300)
                k0 = (lo, lo + rng.randrange(300))
            lo_b = rng.randrange(50)
            out.append(([k0, (lo_b, lo_b + rng.randrange(60))],
                        "set_out", [rng.randrange(1, 10 ** 6)],
                        rng.randrange(5)))
        return out

    switches = {e: Bmv2Switch(program, engine=e) for e in ALL_ENGINES}
    state = rng.getstate()
    installed = {}
    for engine, sw in switches.items():
        rng.setstate(state)  # identical row stream per engine
        installed[engine] = list(
            sw.insert_entries("t", rows(_RBUCKET_MIN * 2, 0)))
    state = rng.getstate()

    def assert_parity(round_no):
        probe_rng = random.Random(round_no)
        probes = [(probe_rng.randrange(400), probe_rng.randrange(120))
                  for _ in range(120)]
        rows_out = []
        for engine, sw in switches.items():
            row = []
            for a, b in probes:
                out = sw.process(_packet(a, b), 1)
                row.append(out[0][0] if out else None)
            rows_out.append(row)
        assert rows_out[0] == rows_out[1] == rows_out[2], \
            f"engines diverged in round {round_no}"

    assert_parity(0)
    for round_no in range(1, 5):
        for engine, sw in switches.items():
            rng.setstate(state)
            installed[engine].extend(
                sw.insert_entries("t", rows(20, 1000 * round_no)))
            victim_rng = random.Random(round_no)
            victims = victim_rng.sample(range(len(installed[engine])), 15)
            batch = [installed[engine][i] for i in victims]
            for i in sorted(victims, reverse=True):
                del installed[engine][i]
            sw.delete_entries("t", batch)
        state = rng.getstate()
        assert_parity(round_no)


def test_bulk_insert_validates_like_single_insert():
    from repro.p4.bmv2 import P4RuntimeError

    program = make_program([ir.TableKey("hdr.h.a", ir.MatchKind.EXACT)])
    sw = Bmv2Switch(program)
    with pytest.raises(P4RuntimeError):
        sw.insert_entries("t", [([1], "no_such_action", None, 0)])
    with pytest.raises(P4RuntimeError):
        sw.insert_entries("t", [([1], "set_out", [2, 3], 0)])
    with pytest.raises(P4RuntimeError):
        sw.insert_entries("t", [([1, 2], "set_out", [2], 0)])
    with pytest.raises(P4RuntimeError):
        sw.delete_entries("t", [ir.TableEntry(match=[1], action="set_out",
                                              args=[2])])


@pytest.mark.parametrize("kind", [ir.MatchKind.EXACT, ir.MatchKind.LPM,
                                  ir.MatchKind.TERNARY])
def test_insert_delete_churn_invalidates_index(kind):
    program = make_program([ir.TableKey("hdr.h.a", kind)])
    specs = {
        ir.MatchKind.EXACT: (5, 5),
        ir.MatchKind.LPM: ((5, 32), (5, 32)),
        ir.MatchKind.TERNARY: ((5, 0xFFFFFFFF), (5, 0xFFFFFFFF)),
    }
    spec_a, spec_b = specs[kind]
    for engine in ENGINES:
        sw = Bmv2Switch(program, engine=engine)
        entry = sw.insert_entry("t", [spec_a], "set_out", [100], priority=1)
        assert sw.process(_packet(5, 0), 1)[0][0] == 100
        # Insert a higher-priority entry after the index was built.
        sw.insert_entry("t", [spec_b], "set_out", [200], priority=9)
        assert sw.process(_packet(5, 0), 1)[0][0] == 200
        sw.delete_entry("t", entry)
        assert sw.process(_packet(5, 0), 1)[0][0] == 200
        sw.clear_table("t")
        assert sw.process(_packet(5, 0), 1)[0][0] == 0  # miss, no default
