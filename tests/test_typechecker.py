"""Type checker unit tests: typing rules plus the language restrictions
of Section 3.1 (read-only network state, static allocation, edge-only
rejection)."""

import pytest

from repro.indus import check, parse
from repro.indus.errors import IndusTypeError
from repro.indus.types import BitType, BoolType


def check_ok(source):
    return check(parse(source))


def check_fails(source, fragment=""):
    with pytest.raises(IndusTypeError) as excinfo:
        check(parse(source))
    if fragment:
        assert fragment in str(excinfo.value)
    return excinfo.value


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------

def test_duplicate_declaration_rejected():
    check_fails("tele bit<8> x;\ntele bit<8> x;\n{ } { } { }", "duplicate")


def test_builtin_shadowing_rejected():
    check_fails("tele bool last_hop;\n{ } { } { }", "builtin")


def test_tele_dict_rejected():
    check_fails("tele dict<bit<8>,bit<8>> d;\n{ } { } { }",
                "cannot travel")


def test_header_must_be_scalar():
    check_fails("header bit<8>[4] h;\n{ } { } { }", "scalar")


def test_header_initializer_rejected():
    check_fails("header bit<8> h = 3;\n{ } { } { }", "read-only")


def test_control_initializer_rejected():
    check_fails("control bit<8> c = 3;\n{ } { } { }", "control plane")


def test_sensor_must_map_to_registers():
    check_fails("sensor dict<bit<8>,bit<8>> s;\n{ } { } { }", "register")


def test_sensor_array_of_scalars_allowed():
    check_ok("sensor bit<16>[4] s;\n{ } { } { }")


def test_initializer_type_mismatch():
    check_fails("tele bool b = 3;\n{ } { } { }")


def test_initializer_literal_must_fit():
    check_fails("tele bit<4> x = 200;\n{ } { } { }", "fit")


# ---------------------------------------------------------------------------
# Read-only enforcement (non-interference)
# ---------------------------------------------------------------------------

def test_header_write_rejected():
    check_fails("header bit<8> h;\n{ h = 1; } { } { }", "read-only")


def test_control_write_rejected():
    check_fails("control bit<8> c;\n{ c = 1; } { } { }", "read-only")


def test_control_dict_entry_write_rejected():
    check_fails(
        "control dict<bit<8>,bit<8>> d;\n{ d[1] = 2; } { } { }")


def test_loop_variable_write_rejected():
    check_fails(
        "tele bit<8>[4] xs;\n{ } { for (v in xs) { v = 1; } } { }",
        "read-only")


def test_tele_and_sensor_writable():
    check_ok("tele bit<8> t;\nsensor bit<8> s;\n"
             "{ t = 1; s = 2; } { } { }")


# ---------------------------------------------------------------------------
# Block restrictions
# ---------------------------------------------------------------------------

def test_reject_only_in_checker_block():
    check_fails("{ reject; } { } { }", "checker")
    check_fails("{ } { reject; } { }", "checker")
    check_ok("{ } { } { reject; }")


def test_report_allowed_everywhere():
    check_ok("{ report; } { report; } { report; }")


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

def test_undeclared_variable():
    check_fails("{ } { } { if (mystery) { reject; } }", "undeclared")


def test_builtins_resolve():
    checked = check_ok(
        "{ } { } { if (last_hop && first_hop) { reject; } }")
    assert "last_hop" in checked.used_builtins
    assert "first_hop" in checked.used_builtins


def test_last_hop_rejected_in_init_block():
    # The compiled init block runs at ingress of the first-hop switch,
    # before the egress port (and hence last-hop status) is known; the
    # differential oracle caught the interpreter disagreeing with the
    # data plane here, so the frontend now rejects it outright.
    check_fails("tele bit<8> x;\n{ if (last_hop) { x = 1; } } { } { }",
                "init")


def test_first_hop_allowed_in_init_block():
    check_ok("tele bit<8> x;\n{ if (first_hop) { x = 1; } } { } { }")


def test_last_hop_allowed_in_telemetry_block():
    check_ok("tele bit<8> x;\n{ } { if (last_hop) { x = 1; } } { }")


def test_condition_must_be_bool():
    check_fails("tele bit<8> x;\n{ } { } { if (x) { reject; } }", "bool")


def test_logical_ops_require_bool():
    check_fails("tele bit<8> x;\n{ if (x && x) { pass; } } { } { }")


def test_arithmetic_requires_bits():
    check_fails("tele bool b;\n{ b = b + b; } { } { }")


def test_comparison_widths_can_differ():
    check_ok("tele bit<8> a;\ntele bit<16> b;\n"
             "{ if (a < b) { pass; } } { } { }")


def test_literal_adopts_context_width():
    checked = check_ok("tele bit<8> x;\n{ x = 42; } { } { }")
    stmt = checked.program.init_block[0]
    assert stmt.value.ty == BitType(8)


def test_literal_too_wide_for_context():
    check_fails("tele bit<8> x;\n{ x = 256; } { } { }", "fit")


def test_narrowing_assignment_rejected():
    check_fails("tele bit<8> x;\ntele bit<16> y;\n{ x = y; } { } { }")


def test_widening_assignment_allowed():
    check_ok("tele bit<16> x;\ntele bit<8> y;\n{ x = y; } { } { }")


def test_dict_lookup_types():
    check_ok("control dict<bit<8>,bool> d;\ntele bool b;\n"
             "header bit<8> p;\n{ b = d[p]; } { } { }")


def test_dict_key_type_mismatch():
    check_fails("control dict<bit<32>,bool> d;\ntele bool b;\n"
                "tele bit<32> wide;\ncontrol dict<bool,bool> e;\n"
                "{ b = e[wide]; } { } { }")


def test_dict_tuple_key():
    check_ok("control dict<(bit<32>,bit<32>),bool> allowed;\n"
             "header bit<32> s;\nheader bit<32> d;\ntele bool v;\n"
             "{ v = allowed[(s, d)]; } { } { }")


def test_in_over_array():
    check_ok("tele bit<32>[4] path;\n"
             "{ } { if (switch_id in path) { pass; } } { }")


def test_in_over_scalar_rejected():
    check_fails("tele bit<8> x;\n{ if (1 in x) { pass; } } { } { }")


def test_in_item_type_mismatch():
    check_fails("tele bit<8>[4] xs;\ntele bool b;\n"
                "{ if (b in xs) { pass; } } { } { }")


def test_index_non_indexable():
    check_fails("tele bit<8> x;\n{ x = x[0]; } { } { }")


def test_array_index_must_be_bits():
    check_fails("tele bit<8>[4] xs;\ntele bool b;\ntele bit<8> x;\n"
                "{ x = xs[b]; } { } { }")


def test_abs_requires_bits():
    check_fails("tele bool b;\n{ b = abs(b); } { } { }".replace(
        "b = abs(b)", "b = abs(b) == abs(b)"))


def test_length_requires_collection():
    check_fails("tele bit<32> x;\n{ x = length(x); } { } { }")


def test_max_arity():
    check_fails("tele bit<8> x;\n{ x = max(x); } { } { }", "argument")


def test_tuple_comparison():
    check_ok("header bit<8> a;\nheader bit<8> b;\n"
             "{ } { } { if ((a, b) == (b, a)) { reject; } }")


def test_augassign_requires_bit_target():
    check_fails("tele bool b;\n{ b += 1; } { } { }")


def test_push_type_mismatch():
    check_fails("tele bit<8>[4] xs;\ntele bit<16> wide;\n"
                "{ xs.push(wide); } { } { }")


def test_push_onto_scalar_rejected():
    check_fails("tele bit<8> x;\n{ x.push(1); } { } { }")


# ---------------------------------------------------------------------------
# Loops (termination restrictions)
# ---------------------------------------------------------------------------

def test_for_over_scalar_rejected():
    check_fails("tele bit<8> x;\n{ for (v in x) { pass; } } { } { }",
                "terminat")


def test_parallel_for_capacity_mismatch():
    check_fails("tele bit<8>[4] a;\ntele bit<8>[5] b;\n"
                "{ for (u, v in a, b) { pass; } } { } { }", "capacit")


def test_loop_variable_shadows_sensor_like_figure2():
    # Figure 2 iterates with names shadowing its sensors; must be legal.
    check_ok("sensor bit<32> load = 0;\ntele bit<32>[4] loads;\n"
             "{ } { loads.push(load); } "
             "{ for (load in loads) { if (load > 10) { report; } } }")


def test_loop_variable_scope_ends_with_loop():
    check_fails("tele bit<8>[4] xs;\ntele bit<8> y;\n"
                "{ for (v in xs) { pass; } y = v; } { } { }", "undeclared")


def test_writes_tracking():
    checked = check_ok(
        "tele bit<8> t;\nsensor bit<8> s;\n"
        "{ t = 1; } { s = 2; } { }")
    assert "t" in checked.writes["init"]
    assert "s" in checked.writes["telemetry"]
    assert not checked.writes["checker"]


def test_all_bundled_properties_typecheck():
    from repro.properties import load_checked, property_names

    for name in property_names():
        load_checked(name)  # must not raise
