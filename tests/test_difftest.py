"""Differential-oracle smoke tests (tentpole of the difftest subsystem).

The heavy campaigns run via ``python -m repro difftest``; these tests
keep the machinery honest in tier-1: generation is deterministic and
serializable, a handful of seeds agree across all three levels, an
injected compiler mutation is caught and shrunk to a reproducer, and
the CLI wires it all together.
"""

import json
import random

import pytest

from repro.cli import main
from repro.difftest import (Minimizer, Scenario, dump_reproducer,
                            gen_scenario, inject_mutation, run_difftest,
                            run_scenario)

pytestmark = pytest.mark.difftest


# ---------------------------------------------------------------------------
# Scenario generation
# ---------------------------------------------------------------------------

def test_gen_scenario_deterministic():
    assert gen_scenario(42).to_json() == gen_scenario(42).to_json()
    assert gen_scenario(42).to_json() != gen_scenario(43).to_json()


def test_scenario_json_roundtrip():
    scenario = gen_scenario(7)
    clone = Scenario.from_json(json.loads(json.dumps(scenario.to_json())))
    assert clone.to_json() == scenario.to_json()
    assert clone.source() == scenario.source()


def test_scenario_copy_is_deep():
    scenario = gen_scenario(3)
    clone = scenario.copy()
    clone.program.checker.append("v0 = 1;")
    clone.packets.pop()
    assert clone.to_json() != scenario.to_json() or (
        len(scenario.packets) != len(clone.packets))


def test_generated_programs_typecheck():
    from repro.indus import check, parse

    for seed in range(30):
        source = gen_scenario(seed).program.render()
        check(parse(source))   # must not raise


# ---------------------------------------------------------------------------
# The oracle itself
# ---------------------------------------------------------------------------

def test_oracle_agrees_on_smoke_seeds():
    summary = run_difftest(seed=0, iters=8)
    assert summary.ok, summary.failures
    assert summary.packets_run > 0
    assert summary.reports_checked > 0


def test_single_scenario_result_shape():
    result = run_scenario(gen_scenario(1))
    assert result.failure is None
    assert result.packets_run == len(result.scenario.packets)


# ---------------------------------------------------------------------------
# Mutation injection, catching, and shrinking
# ---------------------------------------------------------------------------

def _mutating_check(seed):
    """A minimizer check that re-applies the same deterministic mutation
    to every candidate's compiled checker before running the oracle."""
    def check(scenario):
        return run_scenario(
            scenario,
            mutate=lambda c: inject_mutation(c, random.Random(seed)),
        ).failure
    return check


def test_injected_mutation_caught_and_shrunk(tmp_path):
    # Seed 0 injects a checker operator swap the oracle catches (see
    # ``repro difftest --inject-bug``); shrink it with the mutation held
    # fixed and dump the reproducer bundle.
    scenario = gen_scenario(0)
    check = _mutating_check(0)
    failure = check(scenario)
    assert failure is not None, "mutation was expected to be caught"

    minimizer = Minimizer(check=check)
    shrunk, shrunk_failure = minimizer.minimize(scenario)
    assert shrunk_failure is not None
    assert len(shrunk.packets) <= len(scenario.packets)
    assert minimizer.evaluations > 0

    json_path, indus_path = dump_reproducer(shrunk, shrunk_failure,
                                            str(tmp_path), name="mut")
    bundle = json.loads(open(json_path).read())
    assert bundle["failure"]["kind"] == shrunk_failure.kind
    replayed = Scenario.from_json(bundle["scenario"])
    assert check(replayed) is not None   # the bundle still reproduces
    assert open(indus_path).read().strip() == shrunk.source().strip()


def test_mutation_campaign_catches_some():
    summary = run_difftest(seed=0, iters=6, inject_bug=True)
    assert summary.mutations_injected > 0
    assert summary.mutations_caught > 0
    assert summary.ok    # caught mutations are not recorded as failures


def test_minimizer_requires_a_failing_scenario():
    with pytest.raises(ValueError):
        Minimizer().minimize(gen_scenario(1))


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_difftest_clean(capsys):
    assert main(["difftest", "--seed", "0", "--iters", "3"]) == 0
    out = capsys.readouterr().out
    assert "all three levels agree" in out


def test_cli_difftest_inject_bug(capsys):
    assert main(["difftest", "--seed", "0", "--iters", "1",
                 "--inject-bug"]) == 0
    out = capsys.readouterr().out
    assert "mutations injected: 1, caught: 1" in out
