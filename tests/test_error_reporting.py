"""Diagnostic quality: errors carry accurate source locations and
actionable messages across the whole front end."""

import pytest

from repro.indus import check, parse
from repro.indus.errors import (IndusError, LexError, ParseError,
                                SourceSpan)
from repro.indus.errors import IndusTypeError


def error_of(source, exc_type=IndusError):
    with pytest.raises(exc_type) as excinfo:
        check(parse(source))
    return excinfo.value


def test_lex_error_has_position():
    err = error_of("tele bit<8> x;\n{ $ } { } { }", LexError)
    assert err.span.line == 2
    assert "$" in err.message


def test_parse_error_points_at_offending_token():
    err = error_of("tele bit<8> x;\n{ x = ; } { } { }", ParseError)
    assert err.span.line == 2
    assert "expression" in err.message


def test_type_error_points_at_declaration():
    err = error_of("header bit<8> h = 1;\n{ } { } { }", IndusTypeError)
    assert err.span.line == 1


def test_type_error_points_at_statement():
    source = "header bit<8> h;\n{ }\n{ }\n{\n  h = 1;\n}"
    err = error_of(source, IndusTypeError)
    assert err.span.line == 5


def test_error_message_includes_location_prefix():
    err = error_of("{ x = 1; } { } { }")
    text = str(err)
    assert text.startswith("1:3")


def test_undeclared_variable_named_in_message():
    err = error_of("{ } { } { if (frobnicator) { reject; } }")
    assert "frobnicator" in err.message


def test_duplicate_declaration_named():
    err = error_of("tele bit<8> dup;\ntele bool dup;\n{ } { } { }")
    assert "dup" in err.message
    assert err.span.line == 2


def test_reject_outside_checker_explains_why():
    err = error_of("{ reject; } { } { }")
    assert "edge" in err.message or "checker" in err.message


def test_span_merge():
    a = SourceSpan(1, 5, 1, 10)
    b = SourceSpan(2, 1, 2, 4)
    merged = a.merge(b)
    assert (merged.line, merged.column) == (1, 5)
    assert (merged.end_line, merged.end_column) == (2, 4)


def test_span_merge_with_unknown():
    known = SourceSpan(3, 1, 3, 5)
    unknown = SourceSpan()
    assert known.merge(unknown) == known
    assert unknown.merge(known) == known
    assert str(unknown) == "<unknown>"


def test_nested_block_errors_point_inside():
    source = ("tele bit<8>[4] xs;\n"
              "{ }\n"
              "{ for (v in xs) {\n"
              "    v = 3;\n"
              "  } }\n"
              "{ }")
    err = error_of(source, IndusTypeError)
    assert err.span.line == 4
    assert "read-only" in err.message


def test_compile_error_carries_context():
    from repro.compiler import compile_program
    from repro.indus.errors import CompileError

    source = ("header bit<8> no_binding_whatsoever;\ntele bit<8> x;\n"
              "{ x = no_binding_whatsoever; } { } { }")
    with pytest.raises(CompileError) as excinfo:
        compile_program(source)
    assert "no_binding_whatsoever" in excinfo.value.message
    assert "binding" in excinfo.value.message
