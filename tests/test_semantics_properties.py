"""Algebraic/property-based tests of the Indus semantics: identities
that must hold for all inputs, run through the reference interpreter."""

from hypothesis import given, settings, strategies as st

from repro.indus import HopContext, Monitor

WIDTH = 16
MASK = (1 << WIDTH) - 1

values = st.integers(min_value=0, max_value=MASK)


def eval_program(body, **headers):
    """Run a one-shot program computing tele bit<16> r; returns r."""
    source = (
        f"tele bit<{WIDTH}> r = 0;\n"
        f"header bit<{WIDTH}> a;\nheader bit<{WIDTH}> b;\n"
        f"header bit<{WIDTH}> c;\n"
        "{ " + body + " } { } { }"
    )
    monitor = Monitor.from_source(source)
    ctx = HopContext(headers={"a": headers.get("a", 0),
                              "b": headers.get("b", 0),
                              "c": headers.get("c", 0)},
                     first_hop=True, last_hop=True)
    return monitor.run_path([ctx]).tele["r"]


@given(a=values, b=values)
@settings(max_examples=60, deadline=None)
def test_addition_commutes(a, b):
    assert eval_program("r = a + b;", a=a, b=b) == \
        eval_program("r = a + b;", a=b, b=a) == (a + b) & MASK


@given(a=values, b=values, c=values)
@settings(max_examples=60, deadline=None)
def test_addition_associates(a, b, c):
    left = eval_program("r = (a + b) + c;", a=a, b=b, c=c)
    right = eval_program("r = a + (b + c);", a=a, b=b, c=c)
    assert left == right


@given(a=values, b=values)
@settings(max_examples=60, deadline=None)
def test_subtraction_inverts_addition(a, b):
    assert eval_program("r = a + b - b;", a=a, b=b) == a


@given(a=values, b=values)
@settings(max_examples=60, deadline=None)
def test_abs_is_symmetric(a, b):
    assert eval_program("r = abs(a - b);", a=a, b=b) == \
        eval_program("r = abs(a - b);", a=b, b=a)


@given(a=values, b=values)
@settings(max_examples=60, deadline=None)
def test_abs_bounds(a, b):
    result = eval_program("r = abs(a - b);", a=a, b=b)
    true_diff = abs(a - b)
    # abs over two's complement recovers |a-b| or its modular mirror.
    assert result in (true_diff, (1 << WIDTH) - true_diff)


@given(a=values, b=values)
@settings(max_examples=60, deadline=None)
def test_de_morgan_on_bits(a, b):
    left = eval_program("r = ~(a & b);", a=a, b=b)
    right = eval_program("r = ~a | ~b;", a=a, b=b)
    assert left == right


@given(a=values)
@settings(max_examples=60, deadline=None)
def test_xor_self_is_zero(a):
    assert eval_program("r = a ^ a;", a=a) == 0


@given(a=values, b=values)
@settings(max_examples=60, deadline=None)
def test_min_max_partition(a, b):
    lo = eval_program("r = min(a, b);", a=a, b=b)
    hi = eval_program("r = max(a, b);", a=a, b=b)
    assert {lo, hi} == {min(a, b), max(a, b)}
    assert (lo + hi) & MASK == (a + b) & MASK


@given(a=values, b=values)
@settings(max_examples=60, deadline=None)
def test_division_bounds(a, b):
    result = eval_program("r = a / b;", a=a, b=b)
    assert result == (a // b if b else 0)
    # quotient never exceeds dividend (unsigned).
    assert result <= a


@given(items=st.lists(values, max_size=6))
@settings(max_examples=60, deadline=None)
def test_array_push_length_membership_coherence(items):
    """For any push sequence: length == min(n, capacity), every pushed
    value within capacity is a member, iteration visits the pushed
    prefix in order."""
    capacity = 4
    source = (
        f"tele bit<{WIDTH}>[{capacity}] xs;\n"
        f"tele bit<32> n = 0;\n"
        f"tele bit<{WIDTH}> total = 0;\n"
        f"header bit<{WIDTH}> a;\n"
        "{ }\n"
        "{ xs.push(a); }\n"
        "{ n = length(xs);\n"
        "  for (v in xs) { total = total + v; } }"
    )
    monitor = Monitor.from_source(source)
    state = monitor.new_state()
    for i, item in enumerate(items):
        ctx = HopContext(headers={"a": item}, first_hop=(i == 0),
                         last_hop=(i == len(items) - 1))
        monitor.run_hop(state, ctx)
    if not items:
        return
    expected_prefix = items[:capacity]
    assert state.tele["n"] == len(expected_prefix)
    assert state.tele["total"] == sum(expected_prefix) & MASK
    assert state.tele["xs"].valid_items() == expected_prefix


@given(key=values, value=values)
@settings(max_examples=40, deadline=None)
def test_dict_put_get_roundtrip(key, value):
    source = (
        f"control dict<bit<{WIDTH}>, bit<{WIDTH}>> d;\n"
        f"tele bit<{WIDTH}> r = 0;\n"
        f"header bit<{WIDTH}> a;\n"
        "{ r = d[a]; } { } { }"
    )
    monitor = Monitor.from_source(source)
    controls = monitor.new_controls()
    controls.dict_put("d", key, value)
    ctx = HopContext(headers={"a": key}, controls=controls,
                     first_hop=True, last_hop=True)
    assert monitor.run_path([ctx]).tele["r"] == value
    # A different key misses to zero.
    other = (key + 1) & MASK
    ctx = HopContext(headers={"a": other}, controls=controls,
                     first_hop=True, last_hop=True)
    assert monitor.run_path([ctx]).tele["r"] == \
        (value if other == key else 0)
