"""Wire-serialization fidelity: with ``serialize_on_wire=True`` every
packet is rebuilt from its bit representation at each link, so the
telemetry header (and everything else) must carry its complete state on
the wire.  The case studies must behave identically in this mode."""

import pytest

from repro.net.packet import make_udp, ip
from repro.net.simulator import Network
from repro.net.topology import single_switch
from repro.p4.bmv2 import Bmv2Switch
from repro.p4.programs import l2_port_forwarding, source_routing
from repro.properties import compile_property
from repro.runtime.deployment import HydraDeployment


def test_plain_forwarding_survives_wire_roundtrip():
    topo = single_switch(2)
    bmv2 = Bmv2Switch(l2_port_forwarding(), name="s1")
    bmv2.insert_entry("fwd_table", [1], "fwd_set_egress", [2])
    network = Network(topo, {"s1": bmv2}, serialize_on_wire=True)
    packet = make_udp(topo.hosts["h1"].ipv4, topo.hosts["h2"].ipv4,
                      1234, 80, payload_len=99)
    network.host("h1").send(packet)
    network.run()
    (when, received), = network.host("h2").received
    assert received.find("udp").src_port == 1234
    assert received.payload_len == 99
    assert received.packet_id == packet.packet_id


def test_valley_free_case_study_on_the_wire():
    """Section 5.1 verdicts are identical when telemetry travels as
    bits: valid paths pass, valleys are dropped at the edge."""
    from repro.net.topology import leaf_spine
    from repro.net.packet import make_source_routed

    topology = leaf_spine(2, 2, 2)
    compiled = compile_property("valley_free")
    forwarding = {name: source_routing(f"sr_{name}")
                  for name in topology.switches}
    deployment = HydraDeployment(topology, compiled, forwarding,
                                 serialize_on_wire=True)
    for name, spec in topology.switches.items():
        deployment.set_control("is_spine_switch", spec.is_spine,
                               switch=name)

    def send(ports):
        src = topology.hosts["h1"].ipv4
        dst = topology.hosts["h3"].ipv4
        packet = make_source_routed(
            ports, make_udp(src, dst, 1, 2))
        dest = deployment.network.host("h3")
        before = dest.rx_count
        deployment.network.host("h1").send(packet)
        deployment.network.run()
        return dest.rx_count > before

    good = topology.ports_path(["leaf1", "spine1", "leaf2", "h3"])
    valley = topology.ports_path(
        ["leaf1", "spine1", "leaf2", "spine1", "leaf2", "h3"])
    assert send(good)
    assert not send(valley)


def test_telemetry_array_state_survives_the_wire():
    """The loop checker's path array (slots + validity bits + cursor)
    works bit-identically across serialized links."""
    from repro.net.topology import leaf_spine

    topology = leaf_spine(2, 2, 2)
    compiled = compile_property("loops")
    forwarding = {name: l2_port_forwarding(f"l2_{name}")
                  for name in topology.switches}
    deployment = HydraDeployment(topology, compiled, forwarding,
                                 serialize_on_wire=True)
    switches = deployment.switches
    # Static path with a loop: leaf1 -> spine1 -> leaf1 (revisit!) ...
    switches["leaf1"].insert_entry("fwd_table", [1], "fwd_set_egress", [3])
    switches["spine1"].insert_entry("fwd_table", [1], "fwd_set_egress", [1])
    switches["leaf1"].insert_entry("fwd_table", [3], "fwd_set_egress", [2])
    packet = make_udp(topology.hosts["h1"].ipv4,
                      topology.hosts["h2"].ipv4, 5, 6)
    network = deployment.network
    network.host("h1").send(packet)
    network.run()
    # The revisit is recorded in serialized telemetry and rejected at
    # the edge (leaf1's port 2 toward h2 is an edge port).
    assert network.host("h2").rx_count == 0
    assert network.packets_lost == 1


def test_wire_mode_off_and_on_agree():
    """Same scenario, both modes: identical delivery outcome."""
    results = []
    for wire in (False, True):
        topo = single_switch(2)
        compiled = compile_property("multi_tenancy")
        deployment = HydraDeployment(topo, compiled,
                                     {"s1": l2_port_forwarding()},
                                     serialize_on_wire=wire)
        sw = deployment.switches["s1"]
        sw.insert_entry("fwd_table", [1], "fwd_set_egress", [2])
        deployment.dict_put("tenants", 1, 5)
        deployment.dict_put("tenants", 2, 9)  # cross-tenant!
        packet = make_udp(topo.hosts["h1"].ipv4, topo.hosts["h2"].ipv4,
                          1, 2)
        deployment.network.host("h1").send(packet)
        deployment.network.run()
        results.append(deployment.network.host("h2").rx_count)
    assert results[0] == results[1] == 0
