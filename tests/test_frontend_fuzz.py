"""Front-end robustness fuzzing.

Two properties:

1. **No crash on garbage** — random mutations of valid programs either
   parse/check fine or raise a proper ``IndusError`` with a source span;
   the front end never throws anything else.
2. **Generated well-typed programs round-trip** — randomly generated
   (grammar-directed) programs type-check, compile, and give the *same
   verdict* on the interpreter and the compiled pipeline: a generalized
   differential test over a much wider program space than the
   hand-written cases.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import compile_program, standalone_program
from repro.indus import HopContext, IndusError, Monitor, check, parse
from repro.net.packet import ip, make_udp
from repro.p4.bmv2 import Bmv2Switch
from repro.properties import load_source, property_names
from tests.genprog import gen_program

SOURCES = [load_source(name) for name in property_names()]

_MUTATION_CHARS = list("{}();=<>!&|+-*/%[],.@ \n") + ["bit", "tele", "if",
                                                      "reject", "0", "x"]


@given(data=st.data())
@settings(max_examples=150, deadline=None)
def test_mutated_programs_never_crash_the_front_end(data):
    source = data.draw(st.sampled_from(SOURCES))
    rng = random.Random(data.draw(st.integers(0, 2**32)))
    text = list(source)
    for _ in range(rng.randint(1, 6)):
        op = rng.randrange(3)
        pos = rng.randrange(max(len(text), 1))
        if op == 0 and text:
            del text[pos % len(text)]
        elif op == 1:
            text.insert(pos, rng.choice(_MUTATION_CHARS))
        elif text:
            text[pos % len(text)] = rng.choice(_MUTATION_CHARS)
    mutated = "".join(text)
    try:
        check(parse(mutated))
    except IndusError:
        pass  # a diagnostic is the correct outcome
    # Any other exception type propagates and fails the test.


# ---------------------------------------------------------------------------
# Grammar-directed generation of well-typed programs
# ---------------------------------------------------------------------------

@given(seed=st.integers(0, 2**32),
       sport=st.integers(0, 65535), dport=st.integers(0, 65535))
@settings(max_examples=60, deadline=None)
def test_generated_programs_differential(seed, sport, dport):
    source = gen_program(seed)
    checked = check(parse(source))

    # Interpreter verdict.
    monitor = Monitor(checked)
    ctx = HopContext(headers={"sport": sport, "dport": dport},
                     first_hop=True, last_hop=True)
    state = monitor.run_path([ctx])
    interp_ok = not state.rejected

    # Compiled verdict.
    compiled = compile_program(checked, name="fuzz")
    sw = Bmv2Switch(standalone_program(compiled), name="s1")
    sw.insert_entry("fwd_table", [1], "fwd_set_egress", [2])
    sw.insert_entry(compiled.inject_table, [1], compiled.mark_first_action)
    sw.insert_entry(compiled.strip_table, [2], compiled.mark_last_action)
    packet = make_udp(ip(1, 1, 1, 1), ip(2, 2, 2, 2), sport, dport)
    compiled_ok = len(sw.process(packet, 1)) == 1

    assert interp_ok == compiled_ok, f"divergence on:\n{source}"


@given(seed=st.integers(0, 2**32))
@settings(max_examples=40, deadline=None)
def test_generated_programs_render_to_p4(seed):
    from repro.p4 import count_loc, render

    source = gen_program(seed)
    compiled = compile_program(source, name="fuzz")
    text = render(standalone_program(compiled))
    assert count_loc(text) > 50


# ---------------------------------------------------------------------------
# The dataflow analyzer over the generated-program space
# ---------------------------------------------------------------------------

@given(seed=st.integers(0, 2**32))
@settings(max_examples=40, deadline=None)
def test_analyzer_never_crashes_and_is_deterministic(seed):
    """Lint runs on every generated program without raising, and two
    runs over the same program produce byte-identical diagnostics."""
    from repro.analysis import lint_compiled

    source = gen_program(seed)
    first = [d.format() for d in
             lint_compiled(compile_program(source, name="fuzz"))]
    second = [d.format() for d in
              lint_compiled(compile_program(source, name="fuzz"))]
    assert first == second


@given(seed=st.integers(0, 2**32))
@settings(max_examples=30, deadline=None)
def test_clean_programs_stay_clean_after_optimize(seed):
    """lint -> optimize -> lint: the optimizer never *introduces* an
    error-severity finding, and an error-clean program stays so."""
    from repro.analysis import Severity, lint_compiled, optimize_compiled

    def errors(compiled):
        return sorted(d.rule for d in lint_compiled(compiled)
                      if d.severity >= Severity.ERROR)

    compiled = compile_program(gen_program(seed), name="fuzz")
    before = errors(compiled)
    optimize_compiled(compiled)
    after = errors(compiled)
    assert set(after) <= set(before), (before, after)


@given(seed=st.integers(0, 2**32),
       sport=st.integers(0, 65535), dport=st.integers(0, 65535))
@settings(max_examples=30, deadline=None)
def test_optimized_generated_programs_differential(seed, sport, dport):
    """Generated programs keep the interpreter verdict after the
    optimizer rewrites them — the oracle-equality contract quantified
    over the fuzz program space."""
    from repro.analysis import optimize_compiled

    source = gen_program(seed)
    checked = check(parse(source))
    monitor = Monitor(checked)
    ctx = HopContext(headers={"sport": sport, "dport": dport},
                     first_hop=True, last_hop=True)
    interp_ok = not monitor.run_path([ctx]).rejected

    compiled = compile_program(checked, name="fuzz")
    optimize_compiled(compiled)
    sw = Bmv2Switch(standalone_program(compiled), name="s1")
    sw.insert_entry("fwd_table", [1], "fwd_set_egress", [2])
    sw.insert_entry(compiled.inject_table, [1], compiled.mark_first_action)
    sw.insert_entry(compiled.strip_table, [2], compiled.mark_last_action)
    packet = make_udp(ip(1, 1, 1, 1), ip(2, 2, 2, 2), sport, dport)
    compiled_ok = len(sw.process(packet, 1)) == 1
    assert interp_ok == compiled_ok, f"optimizer divergence on:\n{source}"


@given(seed=st.integers(0, 2**32), data=st.data())
@settings(max_examples=40, deadline=None)
def test_generated_multihop_programs_differential(seed, data):
    """Telemetry-accumulating generated programs agree between the
    interpreter and a chain of compiled switches over random paths."""
    from tests.genprog import gen_multihop_program

    source = gen_multihop_program(seed)
    checked = check(parse(source))
    hops = data.draw(st.lists(
        st.tuples(st.integers(0, 65535), st.integers(0, 65535)),
        min_size=1, max_size=5))

    # Interpreter.
    monitor = Monitor(checked)
    state = monitor.new_state()
    for i, (sport, dport) in enumerate(hops):
        ctx = HopContext(headers={"sport": sport, "dport": dport},
                         first_hop=(i == 0), last_hop=(i == len(hops) - 1))
        monitor.run_hop(state, ctx)
    interp_ok = not state.rejected

    # Compiled: one switch instance per hop.  Header values vary per hop
    # by rewriting the packet's ports before each traversal.
    compiled = compile_program(checked, name="mh")
    program = standalone_program(compiled)
    packet = make_udp(ip(1, 1, 1, 1), ip(2, 2, 2, 2), *hops[0])
    for i, (sport, dport) in enumerate(hops):
        udp = packet.find("udp")
        udp.src_port, udp.dst_port = sport, dport
        sw = Bmv2Switch(program, name=f"s{i}")
        sw.insert_entry("fwd_table", [1], "fwd_set_egress", [2])
        if i == 0:
            sw.insert_entry(compiled.inject_table, [1],
                            compiled.mark_first_action)
        if i == len(hops) - 1:
            sw.insert_entry(compiled.strip_table, [2],
                            compiled.mark_last_action)
        out = sw.process(packet, 1)
        if not out:
            packet = None
            break
        packet = out[0][1]
    compiled_ok = packet is not None
    assert compiled_ok == interp_ok, f"divergence on:\n{source}\n{hops}"
