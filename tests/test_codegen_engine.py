"""Codegen engine tests: generated source, batching, recompile hooks.

The codegen engine (:mod:`repro.p4.codegen`) compiles each pipeline to
one straight-line generated-source function, specializing on
control-plane facts (assumed action sets, baked default bindings) and
on observability (instrumentation is emitted or absent at build time).
Three-engine byte-equality over the corpus lives in
``tests/test_engine_differential.py``; this suite pins the engine's own
mechanics — batch-vs-single equality, recompilation exactly when a
baked fact is invalidated, obs specialization, and the ``dump-src`` /
``repro.api.generated_source`` surface.
"""

import random

import pytest

import repro
from repro.cli import main as cli_main
from repro.compiler import compile_program, standalone_program
from repro.obs import Observability
from repro.p4.bmv2 import Bmv2Switch
from repro.properties import load_source
from tests.test_engine_differential import (build_pair, random_packet,
                                            serialize_outputs)

BATCH_PROPS = ("loops", "valley_free", "stateful_firewall",
               "source_routing_validation", "load_balance_arrays")


def build_switch(name="loops", engine="codegen", optimize=False,
                 obs=None, entries=True):
    compiled = compile_program(load_source(name), name=name,
                               optimize=optimize)
    program = standalone_program(compiled)
    sw = Bmv2Switch(program, name="s1", switch_id=7, engine=engine,
                    obs=obs)
    if entries:
        sw.insert_entry("fwd_table", [1], "fwd_set_egress", [2])
        for port in (1, 2):
            sw.insert_entry(compiled.inject_table, [port],
                            compiled.mark_first_action)
            sw.insert_entry(compiled.strip_table, [port],
                            compiled.mark_last_action)
    return sw


# ---------------------------------------------------------------------------
# Batch execution
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", BATCH_PROPS)
def test_batch_matches_single(name):
    """process_batch on one switch must equal sequential process calls
    on an identically configured twin — including register effects."""
    single = build_switch(name)
    batched = build_switch(name)
    rng = random.Random(hash(name) & 0xFFFF)
    items = [(random_packet(rng), 1) for _ in range(25)]
    expected = [serialize_outputs(single.process(p.copy(), port))
                for p, port in items]
    got = [serialize_outputs(out) for out in batched.process_batch(items)]
    assert got == expected
    assert single.registers == batched.registers
    assert single.packets_processed == batched.packets_processed
    assert single.packets_dropped == batched.packets_dropped


@pytest.mark.parametrize("name", ("loops", "valley_free"))
def test_optimized_pipeline_parity(name):
    """The dataflow-optimized IR through codegen still matches the
    unoptimized interpreter packet for packet."""
    switches = [build_switch(name, engine="interp"),
                build_switch(name, optimize=True)]
    rng = random.Random(99)
    for packet in (random_packet(rng) for _ in range(20)):
        outs = [serialize_outputs(sw.process(packet, 1))
                for sw in switches]
        assert outs[0] == outs[1]
    assert switches[0].registers == switches[1].registers


# ---------------------------------------------------------------------------
# Recompilation: baked facts are invalidated exactly when they change
# ---------------------------------------------------------------------------

def test_recompile_on_undeclared_action_install():
    """fwd_table's assumed set is its declared actions plus its default
    (fwd_set_egress, fwd_drop); installing an entry bound to any other
    program action violates that contract and must rebuild the module —
    after which the entry dispatches correctly."""
    sw = build_switch()
    interp = build_switch(engine="interp")
    assert sw._fast._assumed["fwd_table"] == {"fwd_set_egress",
                                             "fwd_drop"}
    before = sw._fast.recompiles
    for s in (sw, interp):
        s.insert_entry("fwd_table", [3], "ih_mark_first_hop", [])
    assert sw._fast.recompiles == before + 1
    rng = random.Random(5)
    for port in (1, 3):
        for packet in (random_packet(rng) for _ in range(5)):
            assert serialize_outputs(sw.process(packet, port)) == \
                serialize_outputs(interp.process(packet, port))


def test_no_recompile_for_declared_action_churn():
    sw = build_switch()
    before = sw._fast.recompiles
    handle = sw.insert_entry("fwd_table", [4], "fwd_set_egress", [9])
    sw.delete_entry("fwd_table", handle)
    sw.clear_table("fwd_table")
    sw.insert_entry("fwd_table", [1], "fwd_set_egress", [2])
    assert sw._fast.recompiles == before


def test_default_change_recompiles_only_on_real_change():
    """The miss-path binding is baked into the generated source, so a
    genuine default swap must rebuild; restating the compiled-in
    default must not."""
    sw = build_switch()
    interp = build_switch(engine="interp")
    baked = sw._fast._defaults_snapshot["fwd_table"]
    before = sw._fast.recompiles
    sw.set_default_action("fwd_table", baked[0], list(baked[1]))
    assert sw._fast.recompiles == before  # no-op restatement
    for s in (sw, interp):
        s.set_default_action("fwd_table", "fwd_set_egress", [7])
    assert sw._fast.recompiles == before + 1
    rng = random.Random(6)
    for packet in (random_packet(rng) for _ in range(5)):
        # Port 5 has no entry: the packet takes the new miss path.
        assert serialize_outputs(sw.process(packet, 5)) == \
            serialize_outputs(interp.process(packet, 5))


# ---------------------------------------------------------------------------
# Observability is a compile-time specialization
# ---------------------------------------------------------------------------

def test_null_obs_leaves_no_residue():
    source = build_switch()._fast.source
    assert "def _process(" in source
    assert "def _process_batch(" in source
    assert "TR." not in source      # no tracer calls
    assert ".inc()" not in source   # no metrics counters


def test_live_obs_instruments_and_matches_fast():
    traffic = [(random_packet(random.Random(11)), 1) for _ in range(10)]
    dumps = {}
    for engine in ("fast", "codegen"):
        obs = Observability.enabled()
        sw = build_switch(engine=engine, obs=obs)
        for packet, port in traffic:
            sw.process(packet.copy(), port)
        dumps[engine] = obs.registry.to_dict()
    codegen_sw = build_switch(obs=Observability.enabled())
    assert "TR." in codegen_sw._fast.source
    lookups = dumps["codegen"]["table_lookups_total"]["series"]
    assert sum(s["value"] for s in lookups) > 0
    # Packet-path metrics agree; only the engine-specific build/latency
    # instruments (fastpath_ns vs codegen_ns, phase timings) differ.
    skip = {"fastpath_ns_per_packet", "codegen_ns_per_packet",
            "phase_seconds"}
    shared = set(dumps["fast"]) & set(dumps["codegen"]) - skip
    assert "switch_packets_total" in shared
    for metric in shared:
        assert dumps["codegen"][metric] == dumps["fast"][metric], metric


def test_attach_observability_rebuilds():
    """Attaching a live handle swaps in a freshly built, instrumented
    engine; detaching (NULL_OBS) restores the residue-free source."""
    from repro.obs import NULL_OBS
    sw = build_switch()
    plain = sw._fast
    assert ".inc()" not in plain.source
    sw.attach_observability(Observability.enabled())
    assert sw._fast is not plain
    assert ".inc()" in sw._fast.source
    sw.attach_observability(NULL_OBS)
    assert sw._fast.source == plain.source


# ---------------------------------------------------------------------------
# dump-src / generated_source surface
# ---------------------------------------------------------------------------

def test_generated_source_api_accepts_every_program_form(tmp_path):
    by_name = repro.api.generated_source("loops")
    assert "def _process(" in by_name and "def _process_batch(" in by_name
    compiled = repro.compile_indus("loops")
    assert repro.api.generated_source(compiled) == by_name

    path = tmp_path / "prog.indus"
    path.write_text(load_source("loops"))
    assert "def _process(" in repro.api.generated_source(str(path))

    by_seed = repro.api.generated_source(3)  # difftest seed
    assert "def _process(" in by_seed


def test_dump_src_cli(capsys):
    code = cli_main(["dump-src", "loops"])
    out = capsys.readouterr().out
    assert code == 0
    assert "def _process(" in out

    code = cli_main(["dump-src", "3", "--optimize"])
    out = capsys.readouterr().out
    assert code == 0
    assert "def _process(" in out
