"""BoundedLog behavior: ring bounds, counters, list-like reads."""

import pytest

from repro.p4.bmv2 import BoundedLog


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        BoundedLog(0)
    with pytest.raises(ValueError):
        BoundedLog(-3)


def test_append_within_capacity():
    log = BoundedLog(4)
    for i in range(3):
        log.append(i)
    assert len(log) == 3
    assert log.total == 3
    assert log.dropped == 0
    assert list(log) == [0, 1, 2]


def test_overflow_drops_oldest_and_counts():
    log = BoundedLog(3)
    for i in range(10):
        log.append(i)
    assert len(log) == 3
    assert log.total == 10
    assert log.dropped == 7
    assert list(log) == [7, 8, 9]


def test_indexing_and_slicing():
    log = BoundedLog(5)
    for i in range(5):
        log.append(i * 10)
    assert log[0] == 0
    assert log[-1] == 40
    assert log[1:3] == [10, 20]
    assert log[::2] == [0, 20, 40]
    assert log[5:] == []
    with pytest.raises(IndexError):
        log[7]


def test_equality_against_lists_and_logs():
    a = BoundedLog(4)
    b = BoundedLog(8)          # different capacity, same contents
    for i in (1, 2, 3):
        a.append(i)
        b.append(i)
    assert a == [1, 2, 3]
    assert a == b
    assert not a == [1, 2]
    assert a != [3, 2, 1]
    # Comparing against unrelated types falls back to NotImplemented.
    assert (a == "123") is False


def test_clear_resets_counters():
    log = BoundedLog(2)
    for i in range(5):
        log.append(i)
    assert log.dropped == 3
    log.clear()
    assert len(log) == 0
    assert log.total == 0
    assert log.dropped == 0
    assert not log
    log.append("x")
    assert log.total == 1
    assert list(log) == ["x"]


def test_bool_and_repr():
    log = BoundedLog(2)
    assert not log
    log.append(1)
    assert log
    assert "total=1" in repr(log)


def test_repr_reports_eviction_count():
    log = BoundedLog(2)
    assert "evicted=0" in repr(log)
    for i in range(5):
        log.append(i)
    assert "evicted=3" in repr(log)


def test_on_evict_callback_fires_per_eviction():
    evictions = []
    log = BoundedLog(3, on_evict=evictions.append)
    for i in range(3):
        log.append(i)
    assert evictions == []            # within capacity: no callback
    log.append(3)
    log.append(4)
    assert evictions == [1, 1]        # one call per evicted entry
    assert sum(evictions) == log.dropped
    log.clear()
    log.append("x")
    assert evictions == [1, 1]        # clear resets, no spurious calls
