"""Shared grammar-directed Indus program generator for fuzz tests.

The implementation moved to :mod:`repro.difftest.genprog` so the
differential-oracle subsystem and the test suite draw from one grammar;
this module re-exports it for the existing test imports.  Seed-stable:
the same seed keeps producing the same program.
"""

from repro.difftest.genprog import (HDRS, VARS, gen_cond, gen_expr,
                                    gen_multihop_program, gen_program,
                                    gen_stmts)

__all__ = ["HDRS", "VARS", "gen_cond", "gen_expr", "gen_multihop_program",
           "gen_program", "gen_stmts"]
