"""Shared grammar-directed Indus program generator for fuzz tests."""

import random

VARS = ["v0", "v1", "v2"]
HDRS = ["sport", "dport"]


def gen_expr(rng, depth=0):
    """A bit<16> expression over tele vars, header vars, literals."""
    if depth >= 3 or rng.random() < 0.4:
        choice = rng.randrange(3)
        if choice == 0:
            return str(rng.randrange(0, 1 << 16))
        if choice == 1:
            return rng.choice(VARS)
        return rng.choice(HDRS)
    op = rng.choice(["+", "-", "*", "&", "|", "^"])
    return (f"({gen_expr(rng, depth + 1)} {op} "
            f"{gen_expr(rng, depth + 1)})")


def gen_cond(rng, depth=0):
    if depth < 2 and rng.random() < 0.3:
        joiner = rng.choice(["&&", "||"])
        return (f"({gen_cond(rng, depth + 1)} {joiner} "
                f"{gen_cond(rng, depth + 1)})")
    cmp_op = rng.choice(["==", "!=", "<", "<=", ">", ">="])
    return f"{gen_expr(rng, 2)} {cmp_op} {gen_expr(rng, 2)}"


def gen_stmts(rng, count, depth=0):
    lines = []
    for _ in range(count):
        if depth < 2 and rng.random() < 0.25:
            inner = gen_stmts(rng, rng.randint(1, 2), depth + 1)
            lines.append(f"if ({gen_cond(rng)}) {{ {' '.join(inner)} }}")
        else:
            lines.append(f"{rng.choice(VARS)} = {gen_expr(rng)};")
    return lines


def gen_program(seed):
    rng = random.Random(seed)
    decls = [f"tele bit<16> {v} = {rng.randrange(0, 1 << 16)};"
             for v in VARS]
    decls.append("header bit<16> sport @ udp.src_port;")
    decls.append("header bit<16> dport @ udp.dst_port;")
    init = gen_stmts(rng, rng.randint(0, 3))
    tele = gen_stmts(rng, rng.randint(0, 3))
    checker = gen_stmts(rng, rng.randint(0, 2))
    checker.append(f"if ({gen_cond(rng)}) {{ reject; }}")
    return "\n".join(
        decls
        + ["{", *init, "}"]
        + ["{", *tele, "}"]
        + ["{", *checker, "}"]
    )




def gen_multihop_program(seed):
    """A program that accumulates telemetry across hops: pushes an
    expression per hop and checks the collected trace at the edge."""
    rng = random.Random(seed)
    decls = [f"tele bit<16> {v} = {rng.randrange(0, 1 << 16)};"
             for v in VARS]
    decls.append("tele bit<16>[4] trace;")
    decls.append("header bit<16> sport @ udp.src_port;")
    decls.append("header bit<16> dport @ udp.dst_port;")
    init = gen_stmts(rng, rng.randint(0, 2))
    tele = gen_stmts(rng, rng.randint(0, 2))
    tele.append(f"trace.push({gen_expr(rng)});")
    checker = [
        f"if ({gen_expr(rng, 2)} in trace) {{ {VARS[0]} = 1; }}",
        "for (t in trace) { " + f"{VARS[1]} = {VARS[1]} + t;" + " }",
        f"if ({gen_cond(rng)}) {{ reject; }}",
    ]
    return "\n".join(
        decls
        + ["{", *init, "}"]
        + ["{", *tele, "}"]
        + ["{", *checker, "}"]
    )
