"""The Aether soak benchmark harness (``repro aether``): determinism
across worker counts, report shape, history persistence, flatness
probe plumbing, and the weighted-percentile helper."""

import json

import pytest

from repro.experiments.aetherbench import (_weighted_percentile,
                                           format_aether_bench,
                                           run_soak)
from repro.obs import MetricsRegistry

SMALL = dict(sessions=1200, engine="fast", batched=False, batch_size=400,
             churn_every=10, replay_ues=60, replay_repeats=2,
             flatness=False)


def test_weighted_percentile():
    samples = [(1.0, 1), (2.0, 1), (3.0, 1), (4.0, 1)]
    assert _weighted_percentile(samples, 0.5) == 2.0
    assert _weighted_percentile(samples, 1.0) == 4.0
    # Weights count as repeated observations.
    assert _weighted_percentile([(1.0, 99), (100.0, 1)], 0.5) == 1.0
    assert _weighted_percentile([], 0.5) == 0.0


def test_soak_report_shape_and_counters():
    result = run_soak(**SMALL)
    assert result["benchmark"] == "aether_soak"
    assert result["sessions"] == {"target": 1200, "attached_peak": 1200}
    assert result["attach"]["total"] == 1200
    assert result["attach"]["per_s"] > 0
    assert result["attach"]["p99_us"] >= result["attach"]["p50_us"] > 0
    assert result["churn"]["detached"] == 120  # every 10th UE
    replay = result["replay"]
    # Allowed uplink+downlink all delivered; denied packets offered
    # beyond that are classified then dropped by the UPF.
    assert replay["delivered"] == replay["expected"]
    assert replay["offered"] > replay["expected"]
    assert replay["reports"] == 0
    assert result["peak_rss_bytes"] > 0
    assert set(result["phase_seconds"]) == {"attach", "churn", "replay"}
    assert result["capacity"]["total_sessions"] == 1200
    assert "flatness" not in result
    assert "aether soak" in format_aether_bench(result)


def test_soak_deterministic_across_worker_counts():
    serial = run_soak(**SMALL, workers=1)
    sharded = run_soak(**SMALL, workers=2)
    assert serial["deterministic"] == sharded["deterministic"]
    assert sharded["workers"] == 2


def test_soak_flatness_probe():
    result = run_soak(sessions=600, engine="fast", batched=False,
                      batch_size=200, replay_ues=30, replay_repeats=1,
                      flatness=True, baseline_sessions=200)
    flat = result["flatness"]
    assert flat["baseline_sessions"] == 200
    assert flat["us_per_packet_baseline"] > 0
    assert flat["us_per_packet_full"] > 0
    assert flat["us_per_packet_after_churn"] > 0
    assert flat["ratio"] == pytest.approx(
        flat["us_per_packet_full"] / flat["us_per_packet_baseline"],
        rel=0.01)
    assert isinstance(flat["flat"], bool)


def test_soak_history_appends_across_writes(tmp_path):
    out = tmp_path / "BENCH_aether.json"
    first = run_soak(**SMALL, out_path=str(out))
    assert len(first["history"]) == 1
    second = run_soak(**SMALL, out_path=str(out))
    assert len(second["history"]) == 2
    on_disk = json.loads(out.read_text())
    entry = on_disk["history"][-1]
    assert entry["sessions"] == 1200
    assert entry["attach_per_s"] > 0
    assert entry["replay_pps"] > 0
    assert entry["peak_rss_bytes"] > 0
    assert "commit" in entry["meta"] and "timestamp" in entry["meta"]


def test_soak_merges_phases_into_live_registry():
    registry = MetricsRegistry()
    run_soak(**SMALL, registry=registry)
    phases = {series["labels"]["phase"]
              for series in registry.to_dict()["phase_seconds"]["series"]}
    assert {"attach", "churn", "replay"} <= phases


def test_soak_validates_arguments():
    with pytest.raises(ValueError):
        run_soak(sessions=0)
    with pytest.raises(ValueError):
        run_soak(sessions=10, workers=0)
