"""Sensor arrays compiled to register banks: push/index/length/in/for
through the compiled pipeline, cross-checked against the interpreter."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import compile_program, standalone_program
from repro.indus import HopContext, Monitor
from repro.net.packet import ip, make_udp
from repro.p4.bmv2 import Bmv2Switch


def deploy(source):
    compiled = compile_program(source, name="sarr")
    sw = Bmv2Switch(standalone_program(compiled), name="s1")
    sw.insert_entry("fwd_table", [1], "fwd_set_egress", [2])
    sw.insert_entry(compiled.inject_table, [1], compiled.mark_first_action)
    sw.insert_entry(compiled.strip_table, [2], compiled.mark_last_action)
    return compiled, sw


def send(sw, dport=2000):
    packet = make_udp(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 999, dport)
    return sw.process(packet, 1)


def test_sensor_push_persists_across_packets():
    source = (
        "sensor bit<16>[4] recent;\n"
        "header bit<16> dport @ udp.dst_port;\n"
        "{ } { recent.push(dport); } "
        "{ if (length(recent) >= 3) { reject; } }"
    )
    compiled, sw = deploy(source)
    assert len(send(sw, 10)) == 1   # count 1
    assert len(send(sw, 20)) == 1   # count 2
    assert send(sw, 30) == []       # count 3 -> reject
    reg = f"{compiled.meta_prefix}reg_recent"
    assert sw.register_read(reg, 0) == 10
    assert sw.register_read(reg, 2) == 30


def test_sensor_push_saturates():
    source = (
        "sensor bit<16>[2] xs;\nheader bit<16> dport @ udp.dst_port;\n"
        "{ } { xs.push(dport); } { if (length(xs) > 2) { reject; } }"
    )
    compiled, sw = deploy(source)
    for dport in (1, 2, 3, 4):
        assert len(send(sw, dport)) == 1  # never exceeds capacity
    cnt = f"{compiled.meta_prefix}reg_xs_cnt"
    assert sw.register_read(cnt, 0) == 2


def test_sensor_in_operator():
    source = (
        "sensor bit<16>[4] seen;\nheader bit<16> dport @ udp.dst_port;\n"
        "{ } { if (dport in seen) { pass; } else { seen.push(dport); } } "
        "{ if (dport in seen && length(seen) >= 2) { reject; } }"
    )
    compiled, sw = deploy(source)
    assert len(send(sw, 10)) == 1   # first flavour, count 1
    assert len(send(sw, 10)) == 1   # duplicate: not re-pushed, count 1
    assert send(sw, 20) == []       # second flavour: count 2 -> reject
    cnt = f"{compiled.meta_prefix}reg_seen_cnt"
    assert sw.register_read(cnt, 0) == 2


def test_sensor_for_loop_sums():
    source = (
        "sensor bit<16>[4] xs;\ntele bit<16> total = 0;\n"
        "header bit<16> dport @ udp.dst_port;\n"
        "{ } { xs.push(dport); } "
        "{ for (v in xs) { total = total + v; }\n"
        "  if (total > 50) { reject; } }"
    )
    compiled, sw = deploy(source)
    assert len(send(sw, 20)) == 1   # total 20
    assert len(send(sw, 25)) == 1   # total 45
    assert send(sw, 10) == []       # total 55 -> reject


def test_sensor_indexed_read_and_write():
    source = (
        "sensor bit<16>[4] xs;\ntele bit<16> r = 0;\n"
        "header bit<16> dport @ udp.dst_port;\n"
        "{ xs[2] = dport; r = xs[2]; } { } "
        "{ if (r != dport) { reject; } }"
    )
    compiled, sw = deploy(source)
    assert len(send(sw, 77)) == 1
    reg = f"{compiled.meta_prefix}reg_xs"
    assert sw.register_read(reg, 2) == 77
    cnt = f"{compiled.meta_prefix}reg_xs_cnt"
    assert sw.register_read(cnt, 0) == 3  # cursor extended to index+1


@given(dports=st.lists(st.integers(0, 65535), min_size=1, max_size=8))
@settings(max_examples=30, deadline=None)
def test_sensor_array_differential(dports):
    """Interpreter and compiled pipeline agree on per-packet verdicts for
    a sensor-array program over any packet sequence."""
    source = (
        "sensor bit<16>[4] seen;\nheader bit<16> dport @ udp.dst_port;\n"
        "{ } { if (!(dport in seen)) { seen.push(dport); } } "
        "{ if (length(seen) >= 4 && !(dport in seen)) { reject; } }"
    )
    compiled, sw = deploy(source)
    monitor = Monitor.from_source(source)
    sensors = monitor.new_sensors()
    for dport in dports:
        compiled_ok = len(send(sw, dport)) == 1
        ctx = HopContext(headers={"dport": dport}, sensors=sensors,
                         first_hop=True, last_hop=True)
        state = monitor.run_path([ctx])
        assert compiled_ok == (not state.rejected), dports


def test_figure2_verbatim_with_sensor_history():
    """A Figure-2-style monitor using a *sensor* history array: the last
    few load deltas are kept on the switch across packets."""
    source = (
        "sensor bit<32>[8] deltas;\n"
        "sensor bit<32> left = 0;\nsensor bit<32> right = 0;\n"
        "control thresh;\nheader bit<8> eg_port;\n"
        "{ }\n"
        "{ if (eg_port == 1) { left += packet_length; }\n"
        "  elsif (eg_port == 2) { right += packet_length; }\n"
        "  deltas.push(abs(left - right)); }\n"
        "{ for (d in deltas) { if (d > thresh) { report; } } }"
    )
    compiled, sw = deploy(source)
    for table in compiled.control_tables["thresh"]:
        sw.set_default_action(
            table, compiled.scalar_load_action("thresh", table), [200])
    # All traffic egresses port 2 (right): deltas grow past the threshold.
    for _ in range(4):
        send(sw)
    assert sw.digests  # imbalance history reported at the edge
