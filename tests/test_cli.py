"""CLI tests (``python -m repro``)."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_properties_listing(capsys):
    code, out, _ = run_cli(capsys, "properties")
    assert code == 0
    assert "multi_tenancy" in out
    assert "Table 1" in out


def test_check_bundled_property(capsys):
    code, out, _ = run_cli(capsys, "check", "loops")
    assert code == 0
    assert "loops: OK" in out
    assert "tele" in out


def test_check_file(tmp_path, capsys):
    path = tmp_path / "prog.indus"
    path.write_text("tele bit<8> x;\n{ } { } { }")
    code, out, _ = run_cli(capsys, "check", str(path))
    assert code == 0
    assert "prog: OK" in out


def test_check_reports_type_errors(tmp_path, capsys):
    path = tmp_path / "bad.indus"
    path.write_text("header bit<8> h;\n{ h = 1; } { } { }")
    code, _, err = run_cli(capsys, "check", str(path))
    assert code == 1
    assert "read-only" in err


def test_unknown_target_exits(capsys):
    with pytest.raises(SystemExit):
        main(["check", "no_such_property"])


def test_compile_prints_p4(capsys):
    code, out, _ = run_cli(capsys, "compile", "valley_free")
    assert code == 0
    assert "#include <v1model.p4>" in out
    assert "hydra_t" in out


def test_compile_summary(capsys):
    code, out, _ = run_cli(capsys, "compile", "multi_tenancy", "--summary")
    assert code == 0
    assert "telemetry header" in out
    assert "generated P4" in out


def test_ltl_generation(capsys):
    code, out, _ = run_cli(capsys, "ltl", "a U b", "--max-trace", "3")
    assert code == 0
    assert "T.push(length(T));" in out
    assert "A_a.push(atom_a);" in out


def test_ltl_parse_error(capsys):
    code, _, err = run_cli(capsys, "ltl", "a &&& b")
    assert code == 1
    assert "error" in err


def test_table1_runs(capsys):
    code, out, _ = run_cli(capsys, "table1")
    assert code == 0
    assert "Baseline" in out
    assert "source_routing_validation" in out


def test_metrics_command_prometheus(capsys):
    code, out, _ = run_cli(capsys, "metrics", "3")
    assert code == 0
    assert "# TYPE switch_packets_total counter" in out
    assert 'switch_packets_total{switch="s1"' in out
    assert "# TYPE phase_seconds histogram" in out


def test_metrics_command_json(capsys):
    import json

    code, out, _ = run_cli(capsys, "metrics", "3", "--json")
    assert code == 0
    dump = json.loads(out)
    assert dump["switch_packets_total"]["kind"] == "counter"
    assert sum(s["value"] for s in
               dump["table_lookups_total"]["series"]) > 0


def test_trace_command_jsonl_stdout(capsys):
    import json

    code, out, _ = run_cli(capsys, "trace", "3")
    assert code == 0
    events = [json.loads(line) for line in out.splitlines()]
    assert events
    kinds = {e["kind"] for e in events}
    assert "parse" in kinds and "enqueue" in kinds


def test_trace_command_follow_and_export(tmp_path, capsys):
    import json

    out_path = tmp_path / "trace.jsonl"
    code, out, err = run_cli(capsys, "trace", "3", "--follow",
                             "-o", str(out_path))
    assert code == 0
    assert "packet" in out and "parse" in out
    assert f"to {out_path}" in err
    lines = out_path.read_text().splitlines()
    assert lines and all(json.loads(line) for line in lines)


def test_trace_command_rejects_bad_scenario(capsys):
    with pytest.raises(SystemExit, match="scenario must be"):
        main(["trace", "not-a-seed"])
