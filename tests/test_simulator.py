"""Event-driven simulator tests: scheduling, latency model, queueing."""

import pytest

from repro.net.packet import ip, make_udp
from repro.net.simulator import Network, Simulator
from repro.net.topology import Topology, leaf_spine, single_switch
from repro.p4.bmv2 import Bmv2Switch
from repro.p4.programs import l2_port_forwarding


def test_simulator_orders_events_by_time():
    sim = Simulator()
    order = []
    sim.schedule(0.3, lambda: order.append("c"))
    sim.schedule(0.1, lambda: order.append("a"))
    sim.schedule(0.2, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fifo():
    sim = Simulator()
    order = []
    for label in "abc":
        sim.schedule(0.1, lambda l=label: order.append(l))
    sim.run()
    assert order == ["a", "b", "c"]


def test_run_until_stops_the_clock():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.run(until=0.5)
    assert not fired
    assert sim.now == 0.5
    sim.run()
    assert fired


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        Simulator().schedule(-1, lambda: None)


def make_single_switch_network(**kwargs):
    topo = single_switch(2)
    program = l2_port_forwarding()
    bmv2 = Bmv2Switch(program, name="s1")
    bmv2.insert_entry("fwd_table", [1], "fwd_set_egress", [2])
    bmv2.insert_entry("fwd_table", [2], "fwd_set_egress", [1])
    return topo, Network(topo, {"s1": bmv2}, **kwargs)


def test_packet_delivery_end_to_end():
    topo, network = make_single_switch_network()
    packet = make_udp(topo.hosts["h1"].ipv4, topo.hosts["h2"].ipv4, 1, 2)
    network.host("h1").send(packet)
    network.run()
    assert network.host("h2").rx_count == 1
    assert network.packets_delivered == 1


def test_latency_model_components():
    """Delivery time = 2x(serialization + propagation) + switch delay."""
    topo, network = make_single_switch_network()
    packet = make_udp(topo.hosts["h1"].ipv4, topo.hosts["h2"].ipv4, 1, 2,
                      payload_len=100)
    received = []
    network.host("h2").add_rx_callback(lambda t, p: received.append(t))
    network.host("h1").send(packet)
    network.run()
    link = topo.link_at("s1", 1)
    tx = packet.length * 8 / link.bandwidth_bps
    device = network.switch("s1")
    expected = 2 * (tx + link.latency_s) + device.processing_delay_s
    assert received[0] == pytest.approx(expected, rel=1e-9)


def test_processing_delay_scales_with_stages():
    topo1, net1 = make_single_switch_network(stage_counts={"s1": 12})
    topo2, net2 = make_single_switch_network(stage_counts={"s1": 20})
    times = []
    for topo, network in ((topo1, net1), (topo2, net2)):
        packet = make_udp(topo.hosts["h1"].ipv4, topo.hosts["h2"].ipv4, 1, 2)
        network.host("h2").add_rx_callback(
            lambda t, p, bucket=times: bucket.append(t))
        network.host("h1").send(packet)
        network.run()
    assert times[1] > times[0]


def test_output_queueing_serializes_packets():
    """Two packets racing for the same output port queue behind each
    other: arrivals are separated by at least one serialization time."""
    topo, network = make_single_switch_network()
    arrivals = []
    network.host("h2").add_rx_callback(lambda t, p: arrivals.append(t))
    for _ in range(2):
        packet = make_udp(topo.hosts["h1"].ipv4, topo.hosts["h2"].ipv4,
                          1, 2, payload_len=1400)
        network.host("h1").send(packet)
    network.run()
    link = topo.link_at("s1", 2)
    tx = (1400 + 42) * 8 / link.bandwidth_bps
    assert arrivals[1] - arrivals[0] >= tx * 0.99


def test_unforwardable_packet_counts_as_lost():
    topo = single_switch(2)
    program = l2_port_forwarding()
    bmv2 = Bmv2Switch(program, name="s1")  # no fwd entries -> default drop
    network = Network(topo, {"s1": bmv2})
    packet = make_udp(topo.hosts["h1"].ipv4, topo.hosts["h2"].ipv4, 1, 2)
    network.host("h1").send(packet)
    network.run()
    assert network.packets_lost == 1
    assert network.host("h2").rx_count == 0


def test_missing_switch_program_rejected():
    topo = single_switch(1)
    with pytest.raises(ValueError):
        Network(topo, {})


def test_multi_hop_delivery_across_fabric():
    topo = leaf_spine(2, 2, 2)
    switches = {}
    for name in topo.switches:
        bmv2 = Bmv2Switch(l2_port_forwarding(f"fwd_{name}"), name=name)
        switches[name] = bmv2
    # Static path h1 -> leaf1 -> spine1 -> leaf2 -> h3 and reverse.
    switches["leaf1"].insert_entry("fwd_table", [1], "fwd_set_egress", [3])
    switches["spine1"].insert_entry("fwd_table", [1], "fwd_set_egress", [2])
    switches["leaf2"].insert_entry("fwd_table", [3], "fwd_set_egress", [1])
    network = Network(topo, switches)
    packet = make_udp(topo.hosts["h1"].ipv4, topo.hosts["h3"].ipv4, 1, 2)
    network.host("h1").send(packet)
    network.run()
    assert network.host("h3").rx_count == 1


def test_host_callbacks_receive_time_and_packet():
    topo, network = make_single_switch_network()
    seen = []
    network.host("h2").add_rx_callback(lambda t, p: seen.append((t, p)))
    packet = make_udp(topo.hosts["h1"].ipv4, topo.hosts["h2"].ipv4, 7, 8)
    network.host("h1").send(packet)
    network.run()
    assert len(seen) == 1
    t, received = seen[0]
    assert t > 0
    assert received.find("udp").src_port == 7
