"""Behavioral model tests: parsing, pipeline execution, tables,
registers, digests, header stacks, and the control API."""

import pytest

from repro.net.packet import (ETH_TYPE_IPV4, ETHERNET, IPV4, SOURCE_ROUTE,
                              UDP, ip, make_source_routed, make_udp)
from repro.p4 import ir
from repro.p4.bmv2 import Bmv2Switch, P4RuntimeError
from repro.p4.programs import (ecmp_fabric, ipv4_lpm_forwarding,
                               l2_port_forwarding, source_routing,
                               vlan_l2_forwarding)


def l2_switch():
    sw = Bmv2Switch(l2_port_forwarding(), name="s1")
    sw.insert_entry("fwd_table", [1], "fwd_set_egress", [2])
    sw.insert_entry("fwd_table", [2], "fwd_set_egress", [1])
    return sw


def test_l2_forwarding_by_ingress_port():
    sw = l2_switch()
    packet = make_udp(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2)
    out = sw.process(packet, 1)
    assert len(out) == 1 and out[0][0] == 2
    out = sw.process(packet, 2)
    assert out[0][0] == 1


def test_default_action_drops_unknown_port():
    sw = l2_switch()
    packet = make_udp(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2)
    assert sw.process(packet, 9) == []
    assert sw.packets_dropped == 1


def test_processing_does_not_mutate_input_packet():
    sw = Bmv2Switch(ipv4_lpm_forwarding(), name="s1")
    sw.insert_entry("ipv4_lpm", [(ip(2, 2, 2, 2), 32)], "ipv4_forward",
                    [0xAABB, 3])
    packet = make_udp(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2, ttl=64)
    out = sw.process(packet, 1)
    assert packet.find("ipv4").ttl == 64          # original untouched
    assert out[0][1].find("ipv4").ttl == 63       # output decremented


def test_lpm_longest_prefix_wins():
    sw = Bmv2Switch(ipv4_lpm_forwarding(), name="s1")
    sw.insert_entry("ipv4_lpm", [(ip(10, 0, 0, 0), 8)], "ipv4_forward",
                    [1, 1])
    sw.insert_entry("ipv4_lpm", [(ip(10, 0, 1, 0), 24)], "ipv4_forward",
                    [2, 2])
    packet = make_udp(ip(9, 9, 9, 9), ip(10, 0, 1, 5), 1, 2)
    assert sw.process(packet, 1)[0][0] == 2
    packet = make_udp(ip(9, 9, 9, 9), ip(10, 0, 9, 5), 1, 2)
    assert sw.process(packet, 1)[0][0] == 1


def test_range_priority_higher_wins():
    program = ir.P4Program(name="p", parser=ir.ParserSpec(states=[
        ir.ParserState("start", [ir.Extract("ethernet", ETHERNET)],
                       [ir.Transition(ir.ACCEPT)]),
    ]))
    program.emit_order = ["ethernet"]
    program.add_action(ir.Action("set_port", [("port", 9)], [
        ir.AssignStmt("standard_metadata.egress_spec",
                      ir.FieldRef("param.port"))]))
    program.add_table(ir.Table(
        "t", [ir.TableKey("standard_metadata.ingress_port",
                          ir.MatchKind.RANGE)],
        actions=["set_port"]))
    program.ingress = [ir.ApplyTable("t")]
    sw = Bmv2Switch(program)
    sw.insert_entry("t", [(0, 100)], "set_port", [1], priority=1)
    sw.insert_entry("t", [(5, 10)], "set_port", [2], priority=10)
    packet = make_udp(1, 2, 3, 4)
    assert sw.process(packet, 7)[0][0] == 2   # higher priority
    assert sw.process(packet, 50)[0][0] == 1  # only the wide entry


def test_non_ipv4_dropped_by_lpm_program():
    sw = Bmv2Switch(ipv4_lpm_forwarding(), name="s1")
    packet = make_udp(1, 2, 3, 4)
    packet.find("ethernet").eth_type = 0x9999
    packet.remove("ipv4")
    assert sw.process(packet, 1) == []


def test_source_routing_pops_and_forwards():
    sw = Bmv2Switch(source_routing(), name="s1")
    inner = make_udp(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2)
    packet = make_source_routed([4, 7], inner)
    port, out = sw.process(packet, 1)[0]
    assert port == 4
    entries = out.find_all("srcRoute")
    assert len(entries) == 1 and entries[0].port == 7 and entries[0].bos == 1


def test_source_routing_restores_ethertype_on_last_pop():
    sw = Bmv2Switch(source_routing(), name="s1")
    inner = make_udp(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2)
    packet = make_source_routed([4], inner)
    port, out = sw.process(packet, 1)[0]
    assert port == 4
    assert out.find_all("srcRoute") == []
    assert out.find("ethernet").eth_type == ETH_TYPE_IPV4


def test_source_routing_drops_without_stack():
    sw = Bmv2Switch(source_routing(), name="s1")
    packet = make_udp(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2)
    assert sw.process(packet, 1) == []


def test_ecmp_spreads_flows():
    sw = Bmv2Switch(ecmp_fabric(), name="leaf")
    sw.insert_entry("routes", [(0, 0)], "route_ecmp", [2])
    sw.insert_entry("ecmp_table", [0], "ecmp_set_port", [3])
    sw.insert_entry("ecmp_table", [1], "ecmp_set_port", [4])
    ports = set()
    for sport in range(40):
        packet = make_udp(ip(1, 1, 1, 1), ip(2, 2, 2, 2), sport, 80)
        ports.add(sw.process(packet, 1)[0][0])
    assert ports == {3, 4}


def test_ecmp_is_per_flow_deterministic():
    sw = Bmv2Switch(ecmp_fabric(), name="leaf")
    sw.insert_entry("routes", [(0, 0)], "route_ecmp", [2])
    sw.insert_entry("ecmp_table", [0], "ecmp_set_port", [3])
    sw.insert_entry("ecmp_table", [1], "ecmp_set_port", [4])
    first = [sw.process(make_udp(1, 2, 1000, 80), 1)[0][0]
             for _ in range(5)]
    assert len(set(first)) == 1


def test_vlan_parsing():
    from repro.net.packet import ETH_TYPE_VLAN, VLAN

    sw = Bmv2Switch(vlan_l2_forwarding(), name="s1")
    sw.insert_entry("fwd_table", [1], "fwd_set_egress", [2])
    packet = make_udp(1, 2, 3, 4)
    ether = packet.find("ethernet")
    vlan = VLAN(vid=42, eth_type=ETH_TYPE_IPV4)
    packet.insert_after("ethernet", vlan)
    ether.eth_type = ETH_TYPE_VLAN
    out = sw.process(packet, 1)
    assert out[0][1].find("vlan").vid == 42


# ---------------------------------------------------------------------------
# Registers and digests
# ---------------------------------------------------------------------------

def register_program():
    program = ir.P4Program(name="regs", parser=ir.ParserSpec(states=[
        ir.ParserState("start", [ir.Extract("ethernet", ETHERNET)],
                       [ir.Transition(ir.ACCEPT)]),
    ]))
    program.emit_order = ["ethernet"]
    program.add_register(ir.RegisterDef("counter", 32, 4))
    program.metadata = [("scratch", 32)]
    program.ingress = [
        ir.RegisterRead("meta.scratch", "counter", ir.Const(1, 32)),
        ir.AssignStmt("meta.scratch",
                      ir.BinExpr("+", ir.FieldRef("meta.scratch"),
                                 ir.Const(1, 32), 32)),
        ir.RegisterWrite("counter", ir.Const(1, 32),
                         ir.FieldRef("meta.scratch")),
        ir.Digest("count_report", [ir.FieldRef("meta.scratch")]),
        ir.AssignStmt("standard_metadata.egress_spec", ir.Const(2, 9)),
    ]
    return program


def test_register_read_modify_write_persists():
    sw = Bmv2Switch(register_program())
    packet = make_udp(1, 2, 3, 4)
    for expected in (1, 2, 3):
        sw.process(packet, 1)
        assert sw.register_read("counter", 1) == expected
    assert sw.register_read("counter", 0) == 0  # untouched index


def test_register_out_of_range_reads_zero_and_drops_writes():
    program = register_program()
    program.ingress[0] = ir.RegisterRead("meta.scratch", "counter",
                                         ir.Const(99, 32))
    program.ingress[2] = ir.RegisterWrite("counter", ir.Const(99, 32),
                                          ir.Const(5, 32))
    sw = Bmv2Switch(program)
    sw.process(make_udp(1, 2, 3, 4), 1)
    assert all(v == 0 for v in sw.registers["counter"])


def test_digest_listeners_and_log():
    sw = Bmv2Switch(register_program(), name="sw7")
    seen = []
    sw.on_digest(seen.append)
    sw.process(make_udp(1, 2, 3, 4), 1)
    assert len(sw.digests) == 1
    assert seen[0].name == "count_report"
    assert seen[0].values == [1]
    assert seen[0].switch_name == "sw7"


def test_register_write_masks_to_width():
    program = register_program()
    program.registers[0] = ir.RegisterDef("counter", 8, 4)
    sw = Bmv2Switch(program)
    sw.register_write("counter", 0, 0x1FF)
    assert sw.register_read("counter", 0) == 0xFF


# ---------------------------------------------------------------------------
# Control API validation
# ---------------------------------------------------------------------------

def test_insert_into_unknown_table_rejected():
    sw = l2_switch()
    with pytest.raises(P4RuntimeError):
        sw.insert_entry("ghost", [1], "fwd_set_egress", [2])


def test_wrong_action_arity_rejected():
    sw = Bmv2Switch(l2_port_forwarding())
    with pytest.raises(P4RuntimeError):
        sw.insert_entry("fwd_table", [1], "fwd_set_egress", [2, 3])


def test_wrong_match_arity_rejected():
    sw = Bmv2Switch(l2_port_forwarding())
    with pytest.raises(P4RuntimeError):
        sw.insert_entry("fwd_table", [1, 2], "fwd_set_egress", [2])


def test_unknown_action_rejected():
    sw = Bmv2Switch(l2_port_forwarding())
    with pytest.raises(P4RuntimeError):
        sw.insert_entry("fwd_table", [1], "ghost_action", [])


def test_delete_entry():
    sw = l2_switch()
    entry = sw.entries["fwd_table"][0]
    sw.delete_entry("fwd_table", entry)
    with pytest.raises(P4RuntimeError):
        sw.delete_entry("fwd_table", entry)


def test_clear_table():
    sw = l2_switch()
    sw.clear_table("fwd_table")
    assert sw.entries["fwd_table"] == []


def test_reading_invalid_header_yields_zero():
    # A packet without IPv4 parsed: reads of hdr.ipv4.* are 0 (bmv2-like).
    program = l2_port_forwarding()
    program.ingress.append(ir.AssignStmt(
        "standard_metadata.egress_spec",
        ir.BinExpr("+", ir.FieldRef("hdr.ipv4.ttl"), ir.Const(2, 9), 9)))
    sw = Bmv2Switch(program)
    sw.insert_entry("fwd_table", [1], "fwd_set_egress", [7])
    packet = make_udp(1, 2, 3, 4)
    packet.find("ethernet").eth_type = 0x9999
    packet.remove("ipv4")
    packet.remove("udp")
    assert sw.process(packet, 1)[0][0] == 2  # 0 + 2


def test_unparsed_tail_is_preserved():
    """Headers beyond the parse graph travel opaquely and re-emit."""
    sw = l2_switch()
    inner = make_udp(1, 2, 3, 4)
    packet = make_source_routed([9], inner)  # srcRoute unknown to l2fwd
    out = sw.process(packet, 1)
    names = [h.name for h in out[0][1].headers]
    assert "srcRoute" in names


def test_parser_cycle_guard():
    """A malformed parse graph that never reaches accept is detected
    rather than looping forever."""
    program = ir.P4Program(name="cyclic", parser=ir.ParserSpec(states=[
        ir.ParserState("start", [], [ir.Transition("start")]),
    ]))
    sw = Bmv2Switch(program)
    with pytest.raises(P4RuntimeError):
        sw.process(make_udp(1, 2, 3, 4), 1)


def test_parse_reject_leaves_headers_in_tail():
    """A packet the parse graph cannot consume keeps all its headers as
    opaque tail and is still forwarded by port-based logic."""
    program = l2_port_forwarding()
    # Force the parser to expect IPv4 immediately (no Ethernet state).
    program.parser = ir.ParserSpec(states=[
        ir.ParserState("start", [ir.Extract("ipv4", IPV4)],
                       [ir.Transition(ir.ACCEPT)]),
    ])
    program.emit_order = ["ipv4"]
    sw = Bmv2Switch(program)
    sw.insert_entry("fwd_table", [1], "fwd_set_egress", [2])
    packet = make_udp(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2)
    out = sw.process(packet, 1)
    names = [h.name for h in out[0][1].headers]
    assert names == ["ethernet", "ipv4", "udp"]  # tail preserved intact


def test_egress_spec_drop_port():
    from repro.p4.bmv2 import DROP_PORT

    program = l2_port_forwarding()
    sw = Bmv2Switch(program)
    sw.insert_entry("fwd_table", [1], "fwd_set_egress", [DROP_PORT])
    assert sw.process(make_udp(1, 2, 3, 4), 1) == []


def test_action_params_scoped_per_invocation():
    """Nested action invocations restore the caller's parameters."""
    program = l2_port_forwarding()
    sw = Bmv2Switch(program)
    sw.insert_entry("fwd_table", [1], "fwd_set_egress", [5])
    sw.insert_entry("fwd_table", [2], "fwd_set_egress", [6])
    assert sw.process(make_udp(1, 2, 3, 4), 1)[0][0] == 5
    assert sw.process(make_udp(1, 2, 3, 4), 2)[0][0] == 6
