"""Per-hop checking (Section 4.3, implemented as the paper's proposed
extension): the checker block runs at every hop and violating packets
are dropped inside the network core instead of at the edge."""

import pytest

from repro.compiler import compile_program, link
from repro.compiler.linker import LAST_HOP, PER_HOP
from repro.indus.errors import CompileError
from repro.net.packet import ip, make_udp
from repro.p4.bmv2 import Bmv2Switch
from repro.p4.programs import l2_port_forwarding
from repro.runtime.scenarios import SourceRoutingTestbed

LOOPS = (
    "tele bit<32>[8] path;\ntele bool dup = false;\n"
    "{ }\n"
    "{ if (switch_id in path) { dup = true; } path.push(switch_id); }\n"
    "{ if (dup) { reject; report; } }"
)


def test_unknown_check_mode_rejected():
    compiled = compile_program(LOOPS)
    with pytest.raises(CompileError):
        link(l2_port_forwarding(), compiled, check_mode="sometimes")


def test_core_switch_enforces_under_per_hop():
    """A core switch (which never strips) drops a violating packet
    immediately under per-hop checking but forwards it under last-hop
    checking."""
    compiled = compile_program(LOOPS, name="loops")

    def run_chain(check_mode):
        # first hop (edge) -> core that completes a loop.
        packet = make_udp(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2)
        edge = Bmv2Switch(link(l2_port_forwarding("e"), compiled,
                               role="edge", check_mode=check_mode),
                          name="edge", switch_id=1)
        edge.insert_entry("fwd_table", [1], "fwd_set_egress", [2])
        edge.insert_entry(compiled.inject_table, [1],
                          compiled.mark_first_action)
        edge.set_default_action(compiled.switch_id_table,
                                compiled.set_switch_id_action, [1])
        out = edge.process(packet, 1)
        assert out
        packet = out[0][1]
        core = Bmv2Switch(link(l2_port_forwarding("c"), compiled,
                               role="core", check_mode=check_mode),
                          name="core", switch_id=1)  # same id -> loop!
        core.insert_entry("fwd_table", [1], "fwd_set_egress", [2])
        core.set_default_action(compiled.switch_id_table,
                                compiled.set_switch_id_action, [1])
        return core.process(packet, 1)

    assert run_chain(LAST_HOP)            # core forwards; edge would drop
    assert run_chain(PER_HOP) == []       # core drops on the spot


def test_valley_free_per_hop_drops_at_second_spine():
    """Under per-hop checking the errant packet dies at the offending
    spine — it never reaches the destination leaf."""
    testbed = SourceRoutingTestbed(check_mode=PER_HOP)
    # Valid paths still work.
    for path in testbed.valley_free_node_paths("h1", "h3"):
        assert testbed.send("h1", "h3",
                            testbed.route_for(path, "h3")).delivered
    # A valley path is dropped...
    spine1 = testbed.deployment.switches["spine1"]
    dropped_before = spine1.bmv2.packets_dropped \
        if hasattr(spine1, "bmv2") else spine1.packets_dropped
    path = ["leaf1", "spine1", "leaf2", "spine1", "leaf2"]
    assert not testbed.send("h1", "h3",
                            testbed.route_for(path, "h3")).delivered
    # ...at the spine itself (its drop counter moved).
    dropped_after = spine1.packets_dropped
    assert dropped_after == dropped_before + 1


def test_per_hop_and_last_hop_agree_on_verdicts():
    """For telemetry-only checkers the two modes accept/reject exactly
    the same packets — only the drop location differs."""
    for mode in (LAST_HOP, PER_HOP):
        testbed = SourceRoutingTestbed(check_mode=mode)
        good = testbed.valley_free_node_paths("h1", "h3")[0]
        assert testbed.send("h1", "h3",
                            testbed.route_for(good, "h3")).delivered
        for bad in testbed.valley_node_paths("h1", "h3"):
            assert not testbed.send(
                "h1", "h3", testbed.route_for(bad, "h3")).delivered


def test_per_hop_reports_fire_at_detecting_switch():
    testbed = SourceRoutingTestbed(check_mode=PER_HOP, checker="loops")
    path = ["leaf1", "spine1", "leaf1", "spine1", "leaf2"]
    result = testbed.send("h1", "h3", testbed.route_for(path, "h3"))
    assert not result.delivered
    assert result.new_reports
    # The loop closes at leaf1's second visit.
    assert result.new_reports[0].switch_name == "leaf1"
