"""Interpreter store APIs: ControlStore and SensorStore edge cases."""

import pytest

from repro.indus import EvalError, HopContext, Monitor

SOURCE = (
    "control bit<8> knob;\n"
    "control dict<bit<8>, bool> d;\n"
    "control set<bit<8>> s;\n"
    "sensor bit<8> counter = 5;\n"
    "tele bit<8> x = 0;\n"
    "{ } { } { }"
)


@pytest.fixture()
def monitor():
    return Monitor.from_source(SOURCE)


def test_scalar_set_value(monitor):
    controls = monitor.new_controls()
    controls.set_value("knob", 300)  # masked to bit<8>
    assert controls.get("knob") == 300 & 0xFF


def test_dict_requires_entrywise_updates(monitor):
    controls = monitor.new_controls()
    with pytest.raises(EvalError):
        controls.set_value("d", {1: True})


def test_dict_put_and_remove(monitor):
    controls = monitor.new_controls()
    controls.dict_put("d", 1, True)
    assert controls.get("d").get(1) is True
    controls.dict_remove("d", 1)
    assert controls.get("d").get(1) is False


def test_dict_ops_reject_non_dicts(monitor):
    controls = monitor.new_controls()
    with pytest.raises(EvalError):
        controls.dict_put("knob", 1, 2)
    with pytest.raises(EvalError):
        controls.dict_remove("s", 1)


def test_set_value_accepts_iterables_for_sets(monitor):
    controls = monitor.new_controls()
    controls.set_value("s", [1, 2, 3])
    assert controls.get("s").valid_items() == [1, 2, 3]
    controls.set_add("s", 9)
    assert 9 in controls.get("s")


def test_set_add_rejects_non_sets(monitor):
    controls = monitor.new_controls()
    with pytest.raises(EvalError):
        controls.set_add("knob", 1)


def test_unknown_control_rejected(monitor):
    controls = monitor.new_controls()
    with pytest.raises(EvalError):
        controls.set_value("ghost", 1)
    with pytest.raises(EvalError):
        controls.dict_put("ghost", 1, 2)


def test_sensor_store_snapshot_and_defaults(monitor):
    sensors = monitor.new_sensors()
    assert sensors.snapshot() == {"counter": 5}
    sensors.set("counter", 9)
    assert sensors.get("counter") == 9
    # setup() never clobbers existing state.
    from repro.indus.types import BitType

    sensors.setup("counter", BitType(8), 5)
    assert sensors.get("counter") == 9


def test_missing_stores_raise_clean_errors():
    source = ("sensor bit<8> s = 0;\ncontrol bit<8> c;\ntele bit<8> x;\n"
              "{ x = c; s = 1; } { } { }")
    monitor = Monitor.from_source(source)
    # No control store bound:
    with pytest.raises(EvalError):
        monitor.run_path([HopContext(sensors=monitor.new_sensors(),
                                     first_hop=True, last_hop=True)])
    # No sensor store bound:
    controls = monitor.new_controls()
    with pytest.raises(EvalError):
        monitor.run_path([HopContext(controls=controls,
                                     first_hop=True, last_hop=True)])
