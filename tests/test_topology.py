"""Topology graph and builder tests."""

import pytest

from repro.net.topology import (CORE, EDGE, Endpoint, Topology, fat_tree,
                                leaf_spine, linear, single_switch)


def test_leaf_spine_shape():
    topo = leaf_spine(2, 2, 2)
    assert sorted(topo.switches) == ["leaf1", "leaf2", "spine1", "spine2"]
    assert sorted(topo.hosts) == ["h1", "h2", "h3", "h4"]
    assert topo.switches["leaf1"].role == EDGE
    assert topo.switches["spine1"].role == CORE
    assert topo.switches["spine1"].is_spine
    assert topo.switches["leaf1"].is_leaf


def test_leaf_spine_port_conventions():
    topo = leaf_spine(2, 2, 2)
    # Hosts on ports 1..H; spines on H+1..; spine port i faces leaf i.
    assert topo.peer("leaf1", 1) == Endpoint("h1", 0)
    assert topo.peer("leaf1", 3) == Endpoint("spine1", 1)
    assert topo.peer("leaf1", 4) == Endpoint("spine2", 1)
    assert topo.peer("spine1", 2) == Endpoint("leaf2", 3)


def test_leaf_spine_host_addresses():
    topo = leaf_spine(2, 2, 2)
    assert topo.hosts["h1"].ipv4 == (10 << 24) | (1 << 8) | 1
    assert topo.hosts["h3"].ipv4 == (10 << 24) | (2 << 8) | 3


def test_edge_ports_are_host_facing():
    topo = leaf_spine(2, 2, 2)
    assert sorted(topo.switches["leaf1"].edge_ports) == [1, 2]
    assert topo.switches["spine1"].edge_ports == []


def test_duplicate_node_rejected():
    topo = Topology()
    topo.add_switch("s1")
    with pytest.raises(ValueError):
        topo.add_switch("s1")
    with pytest.raises(ValueError):
        topo.add_host("s1")


def test_double_wiring_a_port_rejected():
    topo = Topology()
    topo.add_switch("s1")
    topo.add_host("h1")
    topo.add_host("h2")
    topo.add_link("s1", 1, "h1", 0)
    with pytest.raises(ValueError):
        topo.add_link("s1", 1, "h2", 0)


def test_link_to_unknown_node_rejected():
    topo = Topology()
    topo.add_switch("s1")
    with pytest.raises(ValueError):
        topo.add_link("s1", 1, "ghost", 0)


def test_port_toward_and_ports_path():
    topo = leaf_spine(2, 2, 2)
    assert topo.port_toward("leaf1", "spine1") == 3
    assert topo.port_toward("spine1", "leaf2") == 2
    ports = topo.ports_path(["leaf1", "spine1", "leaf2", "h3"])
    assert ports == [3, 2, 1]


def test_port_toward_unlinked_raises():
    topo = leaf_spine(2, 2, 2)
    with pytest.raises(ValueError):
        topo.port_toward("leaf1", "leaf2")  # leaves are not adjacent


def test_host_attachment():
    topo = leaf_spine(2, 2, 2)
    assert topo.host_attachment("h3") == Endpoint("leaf2", 1)
    with pytest.raises(ValueError):
        Topology().add_host("hx") and None
        topo.host_attachment("ghost")


def test_switch_ids_unique():
    topo = leaf_spine(3, 2, 1)
    ids = [s.switch_id for s in topo.switches.values()]
    assert len(set(ids)) == len(ids)


def test_single_switch_builder():
    topo = single_switch(3)
    assert list(topo.switches) == ["s1"]
    assert len(topo.hosts) == 3
    assert sorted(topo.switches["s1"].edge_ports) == [1, 2, 3]


def test_linear_builder_roles():
    topo = linear(4, hosts_per_end=1)
    assert topo.switches["s1"].role == EDGE
    assert topo.switches["s2"].role == CORE
    assert topo.switches["s3"].role == CORE
    assert topo.switches["s4"].role == EDGE
    # Chain connectivity: s1 -> s2 -> s3 -> s4.
    assert topo.port_toward("s1", "s2") == 10
    assert topo.port_toward("s2", "s1") == 11


def test_fat_tree_shape():
    topo = fat_tree(4)
    cores = [n for n in topo.switches if n.startswith("core")]
    aggs = [n for n in topo.switches if n.startswith("agg")]
    edges = [n for n in topo.switches if n.startswith("edge")]
    assert len(cores) == 4     # (k/2)^2
    assert len(aggs) == 8      # k pods x k/2
    assert len(edges) == 8
    assert len(topo.hosts) == 16


def test_fat_tree_odd_arity_rejected():
    with pytest.raises(ValueError):
        fat_tree(3)
