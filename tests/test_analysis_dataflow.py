"""The shared analysis substrate: CFG construction, the worklist
solver, liveness, reaching definitions, placement views, and parser
must-extraction.  These are the facts every lint pass and the optimizer
consume, so they get direct unit coverage on hand-built IR.
"""

from repro import api
from repro.analysis import (AnalysisUnit, UNINIT, build_cfg,
                            checker_placements, expr_uses, liveness,
                            reaching_definitions)
from repro.analysis.dataflow import cfg_effects, stmt_effects
from repro.p4 import ir


def C(v, w=8):
    return ir.Const(v, w)


def F(path):
    return ir.FieldRef(path)


# ---------------------------------------------------------------------------
# CFG construction
# ---------------------------------------------------------------------------

def test_cfg_straight_line():
    stmts = [ir.AssignStmt("meta.a", C(1)), ir.AssignStmt("meta.b", C(2))]
    cfg = build_cfg(stmts)
    assert len(cfg.stmt_nodes()) == 2
    entry, exit_ = cfg.nodes[cfg.entry], cfg.nodes[cfg.exit]
    assert entry.succs and exit_.preds
    # Linear chain: every stmt node has one successor.
    for node in cfg.stmt_nodes():
        assert len(node.succs) == 1


def test_cfg_if_arms_rejoin():
    branch = ir.IfStmt(cond=F("meta.c"),
                       then_body=[ir.AssignStmt("meta.a", C(1))],
                       else_body=[ir.AssignStmt("meta.a", C(2))])
    tail = ir.AssignStmt("meta.b", F("meta.a"))
    cfg = build_cfg([branch, tail])
    nodes = {id(n.stmt): n for n in cfg.stmt_nodes()}
    branch_node = nodes[id(branch)]
    tail_node = nodes[id(tail)]
    assert len(branch_node.succs) == 2
    assert len(tail_node.preds) == 2  # both arms rejoin here


def test_cfg_empty_else_falls_through():
    branch = ir.IfStmt(cond=F("meta.c"),
                       then_body=[ir.AssignStmt("meta.a", C(1))])
    tail = ir.AssignStmt("meta.b", C(2))
    cfg = build_cfg([branch, tail])
    nodes = {id(n.stmt): n for n in cfg.stmt_nodes()}
    # Tail is reachable both through the arm and directly from the branch.
    assert len(nodes[id(tail)].preds) == 2


def test_cfg_mark_to_drop_is_not_a_terminator():
    # bmv2 semantics: MarkToDrop sets a flag and execution continues —
    # the CFG must reflect that (this is what makes IH003 a lint rule
    # rather than an optimizer opportunity).
    drop = ir.MarkToDrop()
    after = ir.AssignStmt("meta.a", C(1))
    cfg = build_cfg([drop, after])
    nodes = {id(n.stmt): n for n in cfg.stmt_nodes()}
    assert nodes[id(after)].index in nodes[id(drop)].succs


def test_expr_uses_collects_fields_and_validity():
    expr = ir.BinExpr("&&", ir.ValidRef("tcp"),
                      ir.BinExpr("==", F("meta.a"), F("hdr.ipv4.ttl"), 1), 1)
    assert expr_uses(expr) == {"hdr.tcp.$valid", "meta.a", "hdr.ipv4.ttl"}


# ---------------------------------------------------------------------------
# Liveness
# ---------------------------------------------------------------------------

def _solve(stmts):
    cfg = build_cfg(stmts)
    effects = cfg_effects(cfg, tables={}, actions={})
    return cfg, effects


def test_liveness_read_after_write_keeps_the_def_live():
    w = ir.AssignStmt("meta.a", C(1))
    r = ir.AssignStmt("hdr.hydra.x", F("meta.a"))
    cfg, effects = _solve([w, r])
    live_in, live_out = liveness(cfg, effects)
    nodes = {id(n.stmt): n.index for n in cfg.stmt_nodes()}
    assert "meta.a" in live_out[nodes[id(w)]]
    assert "meta.a" not in live_out[nodes[id(r)]]


def test_liveness_overwritten_def_is_dead():
    first = ir.AssignStmt("meta.a", C(1))
    second = ir.AssignStmt("meta.a", C(2))
    read = ir.AssignStmt("hdr.hydra.x", F("meta.a"))
    cfg, effects = _solve([first, second, read])
    live_in, live_out = liveness(cfg, effects)
    nodes = {id(n.stmt): n.index for n in cfg.stmt_nodes()}
    # The first write's value never survives to a read.
    assert "meta.a" not in live_out[nodes[id(first)]]
    assert "meta.a" in live_out[nodes[id(second)]]


def test_liveness_through_one_branch_arm():
    w = ir.AssignStmt("meta.a", C(1))
    branch = ir.IfStmt(cond=F("meta.c"),
                       then_body=[ir.AssignStmt("hdr.hydra.x", F("meta.a"))])
    cfg, effects = _solve([w, branch])
    live_in, live_out = liveness(cfg, effects)
    nodes = {id(n.stmt): n.index for n in cfg.stmt_nodes()}
    assert "meta.a" in live_out[nodes[id(w)]]


# ---------------------------------------------------------------------------
# Reaching definitions
# ---------------------------------------------------------------------------

def test_reaching_uninit_at_entry_and_kill_by_write():
    w = ir.AssignStmt("meta.a", C(1))
    cfg = build_cfg([w])
    effects = cfg_effects(cfg, tables={}, actions={})
    facts = reaching_definitions(cfg, effects, ["meta.a", "meta.b"])
    nodes = {id(n.stmt): n.index for n in cfg.stmt_nodes()}
    at_w = facts[nodes[id(w)]]
    # Before the write, only the synthetic zero-init site reaches.
    assert at_w["meta.a"] == frozenset({UNINIT})
    # At exit, the write killed UNINIT for a but not for b.
    at_exit = facts[cfg.exit]
    assert UNINIT not in at_exit["meta.a"]
    assert at_exit["meta.b"] == frozenset({UNINIT})


def test_reaching_merge_keeps_both_branch_defs():
    branch = ir.IfStmt(cond=F("meta.c"),
                       then_body=[ir.AssignStmt("meta.a", C(1))],
                       else_body=[ir.AssignStmt("meta.a", C(2))])
    cfg = build_cfg([branch])
    effects = cfg_effects(cfg, tables={}, actions={})
    facts = reaching_definitions(cfg, effects, ["meta.a"])
    at_exit = facts[cfg.exit]
    # Both arm writes reach the join; the entry zero-init does not.
    assert len(at_exit["meta.a"]) == 2
    assert UNINIT not in at_exit["meta.a"]


def test_reaching_one_armed_write_keeps_uninit():
    branch = ir.IfStmt(cond=F("meta.c"),
                       then_body=[ir.AssignStmt("meta.a", C(1))])
    cfg = build_cfg([branch])
    effects = cfg_effects(cfg, tables={}, actions={})
    facts = reaching_definitions(cfg, effects, ["meta.a"])
    assert UNINIT in facts[cfg.exit]["meta.a"]


# ---------------------------------------------------------------------------
# Table effects
# ---------------------------------------------------------------------------

def test_table_apply_without_default_is_a_may_def():
    action = ir.Action(name="set_a", params=[],
                       body=[ir.AssignStmt("meta.a", C(1))])
    table = ir.Table(name="t", keys=[ir.TableKey("meta.k")],
                     actions=["set_a"])
    apply_stmt = ir.ApplyTable("t")
    eff = stmt_effects(apply_stmt, tables={"t": table},
                       actions={"set_a": action})
    assert "meta.a" in eff.defs
    assert "meta.a" not in eff.must_defs
    assert "meta.k" in eff.uses
    # With a default action, some action always runs: must-def.
    table.default_action = ("set_a", [])
    eff = stmt_effects(apply_stmt, tables={"t": table},
                       actions={"set_a": action})
    assert "meta.a" in eff.must_defs


def test_register_stmts_are_side_effecting():
    write = ir.RegisterWrite("r", C(0), F("meta.a"))
    eff = stmt_effects(write, tables={}, actions={})
    assert eff.side_effects
    assert "meta.a" in eff.uses
    read = ir.RegisterRead("meta.b", "r", C(0))
    eff = stmt_effects(read, tables={}, actions={})
    assert "meta.b" in eff.defs


# ---------------------------------------------------------------------------
# Placements + unit
# ---------------------------------------------------------------------------

def test_checker_placements_cover_roles_and_modes():
    compiled = api.compile_indus("loops")
    views = checker_placements(compiled)
    assert {(v.role, v.check_mode) for v in views} == {
        ("edge", "last_hop"), ("edge", "per_hop"),
        ("core", "last_hop"), ("core", "per_hop")}
    # Placement views share the fragment statement objects (dataflow
    # facts key by id(stmt), the optimizer rewrites in place).
    tele_ids = {id(s) for s in compiled.tele_stmts}
    for view in views:
        view_ids = {id(n.stmt) for n in view.cfg.stmt_nodes()}
        assert tele_ids <= view_ids, view.name


def test_core_placements_omit_init_and_inject():
    compiled = api.compile_indus("loops")
    views = {v.name: v for v in checker_placements(compiled)}
    init_ids = {id(s) for s in compiled.init_stmts}
    for name in ("core-last_hop", "core-per_hop"):
        view_ids = {id(n.stmt) for n in views[name].cfg.stmt_nodes()}
        assert not (init_ids & view_ids), name
        applies = [n.stmt.table for n in views[name].cfg.stmt_nodes()
                   if isinstance(n.stmt, ir.ApplyTable)]
        assert compiled.inject_table not in applies


def test_analysis_unit_caches_and_exposes_facts():
    unit = AnalysisUnit(api.compile_indus("loops"))
    view = unit.placements[0]
    assert unit.effects(view) is unit.effects(view)
    live_in, live_out = unit.liveness(view)
    assert cfgkeys(live_in) == {n.index for n in view.cfg.nodes}
    widths = unit.field_widths()
    assert widths["standard_metadata.egress_port"] == 9
    assert any(k.startswith("meta.") for k in widths)
    assert any(k.startswith("hdr.") for k in widths)


def cfgkeys(mapping):
    return set(mapping)
