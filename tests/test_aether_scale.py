"""The scaled Aether control plane: reverse indexes, shared-entry
refcounting, bulk attach/detach parity, and the capacity model.

These pin the million-subscriber invariants:

* ``OperatorPortal.slice_of`` and ``AetherTestbed._host_for_ip`` are
  maintained reverse indexes, behaviorally identical to the scans they
  replaced and kept consistent by add/remove;
* shared Applications entries are released only when the *last*
  referencing subscriber detaches (traffic for the survivors keeps
  classifying);
* ``attach_many``/``detach_many`` are semantically a loop of the
  single-client calls;
* :class:`AetherCapacity` bounds sessions and app-id allocation.
"""

import pytest

from repro.aether import (ALLOW, AetherCapacity, AetherTestbed,
                          AttachSpec, CapacityError, FilterRule,
                          MAX_APP_IDS, MAX_UE_INDEX, OperatorPortal,
                          OnosController, SERVER_HOST, ue_address,
                          upf_program)
from repro.net.packet import ip
from repro.p4.bmv2 import Bmv2Switch

UDP = 17


def allow_rules(server, port=80):
    return [
        FilterRule(priority=10, ip_prefix=(server, 32), proto=UDP,
                   l4_port=(port, port), action=ALLOW),
        FilterRule(priority=1, action="deny"),
    ]


# -- portal reverse index ---------------------------------------------------

def test_slice_of_matches_membership_lists():
    portal = OperatorPortal()
    portal.create_slice("a", [])
    portal.create_slice("b", [])
    portal.add_member("a", "i1")
    portal.add_members("b", ["i2", "i3"])
    for imsi in ("i1", "i2", "i3"):
        # The index answer must agree with the operator-facing lists.
        scan = next((name for name, cfg in portal.slices.items()
                     if imsi in cfg.members), None)
        assert portal.slice_of(imsi) == scan
    assert portal.slice_of("i9") is None


def test_remove_member_keeps_index_and_list_consistent():
    portal = OperatorPortal()
    portal.create_slice("a", [])
    portal.add_members("a", ["i1", "i2"])
    portal.remove_member("i1")
    assert portal.slice_of("i1") is None
    assert portal.slices["a"].members == ["i2"]
    with pytest.raises(ValueError):
        portal.remove_member("i1")
    # Freed for re-enrolment elsewhere.
    portal.create_slice("b", [])
    portal.add_member("b", "i1")
    assert portal.slice_of("i1") == "b"


def test_duplicate_enrolment_rejected_across_slices():
    portal = OperatorPortal()
    portal.create_slice("a", [])
    portal.create_slice("b", [])
    portal.add_member("a", "i1")
    with pytest.raises(ValueError):
        portal.add_member("b", "i1")
    with pytest.raises(ValueError):
        portal.add_members("b", ["i2", "i1"])
    # The failed bulk call must not have half-applied.
    assert portal.slice_of("i2") is None
    assert portal.slices["b"].members == []


def test_host_for_ip_matches_topology_scan():
    tb = AetherTestbed()
    for name, spec in tb.topology.hosts.items():
        assert tb._host_for_ip(spec.ipv4) == name
    assert tb._host_for_ip(ip(9, 9, 9, 9)) is None


# -- shared-entry refcounting (the Figure 11 table) -------------------------

def test_shared_app_entry_survives_first_detach():
    tb = AetherTestbed()
    server = tb.topology.hosts[SERVER_HOST].ipv4
    tb.provision_slice("phones", allow_rules(server))
    tb.portal.add_members("phones", ["ue1", "ue2"])
    tb.attach("ue1", 1)
    tb.attach("ue2", 2)
    shared = tb.onos.client("ue1").app_ids
    assert shared == tb.onos.client("ue2").app_ids
    installed = tb.onos.applications_entries()
    assert tb.onos.app_refcount(shared[0]) == 2

    tb.detach("ue1")
    # The surviving subscriber still references both patterns: nothing
    # may be uninstalled, and its traffic must still classify.
    assert tb.onos.app_refcount(shared[0]) == 1
    assert tb.onos.applications_entries() == installed
    result = tb.send_uplink("ue2", server, 80)
    assert result.delivered
    assert result.new_reports == []

    tb.detach("ue2")
    assert tb.onos.app_refcount(shared[0]) == 0
    assert tb.onos.applications_entries() == 0


def test_released_pattern_reinstalls_on_next_attach():
    tb = AetherTestbed()
    server = tb.topology.hosts[SERVER_HOST].ipv4
    tb.provision_slice("phones", allow_rules(server))
    tb.portal.add_members("phones", ["ue1", "ue2"])
    tb.attach("ue1", 1)
    tb.detach("ue1")
    assert tb.onos.applications_entries() == 0
    tb.attach("ue2", 2)
    assert tb.onos.applications_entries() == 2  # both patterns back
    assert tb.send_uplink("ue2", server, 80).delivered


# -- bulk vs serial parity --------------------------------------------------

def _table_sizes(tb):
    return {
        (name, table): len(entries)
        for name, sw in tb.deployment.switches.items()
        for table, entries in sw.entries.items()
    }


def test_attach_many_matches_serial_attach():
    serial, bulk = AetherTestbed(), AetherTestbed()
    for tb in (serial, bulk):
        server = tb.topology.hosts[SERVER_HOST].ipv4
        tb.provision_slice("phones", allow_rules(server))
        tb.portal.add_members("phones", [f"ue{i}" for i in range(1, 6)])
    for i in range(1, 6):
        serial.attach(f"ue{i}", i)
    bulk.attach_many([(f"ue{i}", i) for i in range(1, 6)])
    assert _table_sizes(serial) == _table_sizes(bulk)
    for tb in (serial, bulk):
        for i in (1, 3, 5):
            result = tb.send_uplink(f"ue{i}", server, 80)
            assert result.delivered and result.new_reports == []
            assert not tb.send_uplink(f"ue{i}", server, 9999).delivered


def test_detach_many_matches_serial_detach():
    serial, bulk = AetherTestbed(), AetherTestbed()
    for tb in (serial, bulk):
        server = tb.topology.hosts[SERVER_HOST].ipv4
        tb.provision_slice("phones", allow_rules(server))
        tb.portal.add_members("phones", [f"ue{i}" for i in range(1, 6)])
        tb.attach_many([(f"ue{i}", i) for i in range(1, 6)])
    for i in (2, 4):
        serial.detach(f"ue{i}")
    bulk.detach_many(["ue2", "ue4"])
    assert _table_sizes(serial) == _table_sizes(bulk)
    for tb in (serial, bulk):
        assert tb.send_uplink("ue3", server, 80).delivered
        with pytest.raises(KeyError):
            tb.onos.client("ue2")


def test_batch_internal_duplicate_imsi_rejected():
    tb = AetherTestbed()
    server = tb.topology.hosts[SERVER_HOST].ipv4
    tb.provision_slice("phones", allow_rules(server))
    tb.portal.add_member("phones", "ue1")
    with pytest.raises(ValueError):
        tb.attach_many([("ue1", 1), ("ue1", 2)])


# -- capacity model ---------------------------------------------------------

def test_session_budget_enforced():
    tb = AetherTestbed(capacity=AetherCapacity(max_sessions=3))
    server = tb.topology.hosts[SERVER_HOST].ipv4
    tb.provision_slice("phones", allow_rules(server))
    tb.portal.add_members("phones", [f"ue{i}" for i in range(1, 6)])
    tb.attach_many([("ue1", 1), ("ue2", 2)])
    with pytest.raises(CapacityError):
        tb.attach_many([("ue3", 3), ("ue4", 4)])
    # The refused batch must not have partially attached.
    assert len(tb.onos.clients) == 2
    tb.detach("ue1")
    tb.attach_many([("ue3", 3), ("ue4", 4)])
    assert len(tb.onos.clients) == 3


def test_ue_address_plan_bounds():
    assert ue_address(1) == (172 << 24) | (16 << 16) | 1
    assert ue_address(MAX_UE_INDEX) >> 20 == (172 << 24 | 16 << 16) >> 20
    for bad in (0, MAX_UE_INDEX + 1):
        with pytest.raises(ValueError):
            ue_address(bad)
    with pytest.raises(ValueError):
        AetherCapacity(max_sessions=MAX_UE_INDEX + 1)


def test_capacity_sizes_tables_and_digest_window():
    cap = AetherCapacity(max_sessions=100, rules_per_session=2,
                         digest_log_window=64)
    tb = AetherTestbed(capacity=cap)
    for sw in tb.deployment.switches.values():
        assert sw.digests.capacity == 64
    program = upf_program(capacity=cap)
    sizes = {t.name: t.size for t in program.tables.values()}
    assert sizes["uplink_sessions"] >= 100
    assert sizes["terminations"] >= 200
    assert sizes["applications"] == MAX_APP_IDS
    described = cap.describe()
    assert described["max_sessions"] == 100
    assert cap.estimate_bytes() > 0


def test_app_id_space_exhaustion_raises():
    program = upf_program(capacity=AetherCapacity(max_sessions=300))
    sw = Bmv2Switch(program, name="s1")
    onos = OnosController({"s1": sw})
    for i in range(MAX_APP_IDS):
        onos.handle_attach(
            f"ue{i}", "phones", ue_address(i + 1), 100 + i, 1100 + i,
            [FilterRule(priority=i + 1, action=ALLOW)])
    with pytest.raises(CapacityError):
        onos.handle_attach(
            "ue_over", "phones", ue_address(300), 999, 1999,
            [FilterRule(priority=MAX_APP_IDS + 1, action=ALLOW)])


def test_edge_only_filtering_keeps_spines_clean():
    tb = AetherTestbed(capacity=AetherCapacity(max_sessions=10))
    server = tb.topology.hosts[SERVER_HOST].ipv4
    tb.provision_slice("phones", allow_rules(server))
    tb.portal.add_member("phones", "ue1")
    tb.attach("ue1", 1)
    filtering = [t for t in tb.deployment.switches["leaf1"].entries
                 if "filtering_actions" in t]
    assert filtering, "expected a filtering_actions dict table"
    table = filtering[0]
    for name, spec in tb.topology.switches.items():
        entries = tb.deployment.switches[name].entries.get(table, [])
        if spec.is_leaf:
            assert entries, f"edge {name} must carry checker rows"
        else:
            assert not entries, f"spine {name} must stay clean"
    # Traffic still checked end to end in edge-only mode.
    result = tb.send_uplink("ue1", server, 80)
    assert result.delivered and result.new_reports == []


def test_attach_spec_roundtrip_via_controller():
    program = upf_program()
    sw = Bmv2Switch(program, name="s1")
    onos = OnosController({"s1": sw})
    spec = AttachSpec(imsi="ue1", slice_name="phones", ue_ip=ue_address(1),
                      uplink_teid=100, downlink_teid=1100,
                      rules=(FilterRule(priority=5, action=ALLOW),))
    record = onos.handle_attach_many([spec])[0]
    assert record.imsi == "ue1"
    assert record.entries and all(name == "s1"
                                  for name, _, _ in record.entries)
    onos.handle_detach("ue1")
    assert all(not entries for entries in sw.entries.values())
