"""Observability wired through the runtime layers.

End-to-end checks: packet-lifecycle event ordering over a 3-hop path,
drop accounting (queue_full / no_route / pipeline / ttl), per-switch
metrics, instrumented-vs-plain engine output equality, and that the
differential oracle's verdicts are identical with observability on.
"""

import json

import pytest

from repro.net.packet import ip, make_udp
from repro.net.simulator import Network
from repro.net.topology import linear, single_switch
from repro.obs import MetricsRegistry, Observability, Tracer
from repro.p4.bmv2 import Bmv2Switch
from repro.p4.programs import l2_port_forwarding


def _switches(topology, engine="fast", obs=None):
    return {
        name: Bmv2Switch(l2_port_forwarding(f"l2_{name}"), name=name,
                         switch_id=spec.switch_id, engine=engine, obs=obs)
        for name, spec in topology.switches.items()
    }


def _packet():
    return make_udp(ip(10, 1, 0, 1), ip(10, 2, 0, 1), 1111, 2222)


# ---------------------------------------------------------------------------
# Lifecycle ordering across a 3-hop path
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("engine", ["fast", "interp"])
def test_three_hop_lifecycle_event_ordering(engine):
    topo = linear(3)                       # h1 - s1 - s2 - s3 - h2
    obs = Observability.enabled()
    switches = _switches(topo, engine=engine, obs=obs)
    switches["s1"].insert_entry("fwd_table", [1], "fwd_set_egress", [10])
    switches["s2"].insert_entry("fwd_table", [11], "fwd_set_egress", [10])
    switches["s3"].insert_entry("fwd_table", [11], "fwd_set_egress", [1])
    net = Network(topo, switches, obs=obs)
    net.host("h1").send(_packet())
    net.run()
    assert net.packets_delivered == 1

    events = list(obs.tracer)
    # One global trace, strictly ordered.
    seqs = [e.seq for e in events]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
    stamps = [e.ts for e in events if e.ts is not None]
    assert stamps == sorted(stamps)        # simulator time, monotonic

    # The canonical per-hop shape: each switch parses, applies the
    # forwarding table (hit), deparses, then queues onto the next link.
    assert [e.node for e in obs.tracer.events(kind="parse")] == \
        ["s1", "s2", "s3"]
    kinds = [(e.kind, e.node) for e in events]
    for sw in ("s1", "s2", "s3"):
        hop = [k for k, n in kinds if n == sw]
        assert hop == ["parse", "apply", "deparse", "enqueue", "link"]
    assert kinds[0] == ("enqueue", "h1")
    assert kinds[1] == ("link", "h1")
    assert kinds[-1] == ("deliver", "h2")
    applies = obs.tracer.events(kind="apply")
    assert all(e.detail == {"table": "fwd_table", "result": "hit"}
               for e in applies)

    # Every event serializes to a JSON line.
    for line in obs.tracer.to_jsonl_lines():
        assert json.loads(line)["kind"] in (
            "enqueue", "link", "parse", "apply", "deparse", "deliver")

    # And the per-switch metrics agree with the trace.
    for sw, port in (("s1", 1), ("s2", 11), ("s3", 11)):
        assert obs.registry.value("switch_packets_total", sw, port) == 1
    assert obs.registry.value("packets_delivered_total", "h2") == 1
    assert obs.registry.value("table_lookups_total",
                              "s1", "fwd_table", "hit") == 1


# ---------------------------------------------------------------------------
# Drop paths
# ---------------------------------------------------------------------------

def test_queue_overflow_drop_is_counted_and_traced():
    topo = single_switch(2)
    obs = Observability.enabled()
    switches = _switches(topo, obs=obs)
    switches["s1"].insert_entry("fwd_table", [1], "fwd_set_egress", [2])
    net = Network(topo, switches, obs=obs, max_queue_delay_s=0.0)
    # Two simultaneous sends: the second queues behind the first's
    # serialization and exceeds the (zero) queue budget.
    net.host("h1").send(_packet())
    net.host("h1").send(_packet())
    net.run()
    assert net.packets_delivered == 1
    assert net.packets_lost == 1
    assert obs.registry.value("queue_drops_total", "h1", "queue_full") == 1
    drops = obs.tracer.events(kind="drop")
    assert len(drops) == 1
    assert drops[0].node == "h1"
    assert drops[0].detail["reason"] == "queue_full"
    assert drops[0].detail["queue_wait_s"] > 0


def test_no_route_drop_is_counted_and_traced():
    topo = single_switch(2)
    obs = Observability.enabled()
    switches = _switches(topo, obs=obs)
    # Forward to port 9, which has no link attached.
    switches["s1"].insert_entry("fwd_table", [1], "fwd_set_egress", [9])
    net = Network(topo, switches, obs=obs)
    net.host("h1").send(_packet())
    net.run()
    assert net.packets_delivered == 0
    assert net.packets_lost == 1
    assert obs.registry.value("queue_drops_total", "s1", "no_route") == 1
    drops = obs.tracer.events(kind="drop")
    assert [e.detail["reason"] for e in drops] == ["no_route"]
    assert drops[0].port == 9


@pytest.mark.parametrize("engine", ["fast", "interp"])
def test_pipeline_and_ttl_drop_reasons(engine):
    topo = single_switch(2)
    obs = Observability.enabled()
    switches = _switches(topo, engine=engine, obs=obs)
    net = Network(topo, switches, obs=obs)    # no fwd entries: table miss
    net.host("h1").send(_packet())
    net.host("h1").send(make_udp(ip(10, 1, 0, 1), ip(10, 2, 0, 1),
                                 1111, 2222, ttl=1), delay=1e-3)
    net.run()
    assert net.packets_delivered == 0
    reasons = [e.detail["reason"] for e in obs.tracer.events(kind="drop")]
    assert reasons == ["pipeline", "ttl"]
    name = "fastpath" if engine == "fast" else "interp"
    dropped = obs.registry.value("switch_packets_dropped_total",
                                 "s1", "pipeline")
    assert dropped == 1
    assert obs.registry.value("switch_packets_dropped_total",
                              "s1", "ttl") == 1
    # The latency histogram saw both packets.
    hist = obs.registry.value(f"{name}_ns_per_packet")
    assert hist.count == 2


# ---------------------------------------------------------------------------
# Off-by-default: instrumented and plain engines agree byte-for-byte
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("engine", ["fast", "interp"])
def test_instrumented_engine_outputs_match_plain(engine):
    from repro.experiments.bench import _build_switch

    plain = _build_switch(engine)
    metered = _build_switch(engine, obs=Observability.enabled())
    assert plain.obs.live is False
    for i in range(20):
        packet_a = make_udp(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1000 + i, 53)
        packet_b = make_udp(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1000 + i, 53)
        out_a = plain.process(packet_a, 1)
        out_b = metered.process(packet_b, 1)
        assert [(p, [h.to_bits() for h in pkt.headers if h.valid])
                for p, pkt in out_a] == \
            [(p, [h.to_bits() for h in pkt.headers if h.valid])
             for p, pkt in out_b]
    assert plain.registers == metered.registers
    assert plain.digests.total == metered.digests.total


def test_attach_observability_rebuilds_fastpath():
    from repro.experiments.bench import _build_switch

    sw = _build_switch("fast")
    out_before = sw.process(_packet(), 1)
    obs = Observability.enabled()
    sw.attach_observability(obs)
    assert sw.obs is obs
    out_after = sw.process(_packet(), 1)
    assert [p for p, _ in out_before] == [p for p, _ in out_after]
    assert obs.tracer.events(kind="parse")  # instrumentation is active
    assert obs.registry.value("switch_packets_total", "s1", 1) == 1


def test_digest_log_eviction_metric():
    obs = Observability(registry=MetricsRegistry())
    sw = Bmv2Switch(l2_port_forwarding("l2_s1"), name="s1",
                    digest_capacity=2, obs=obs)
    for i in range(5):
        sw.digests.append(i)
    assert sw.digests.dropped == 3
    assert obs.registry.value("log_evictions_total", "digests", "s1") == 3
    assert "evicted=3" in repr(sw.digests)
    assert list(sw.digests) == [3, 4]


# ---------------------------------------------------------------------------
# The oracle's verdicts do not depend on observability
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", [0, 1, 7])
def test_difftest_verdicts_unchanged_with_live_registry(seed):
    from repro.difftest.harness import run_scenario
    from repro.difftest.scenario import gen_scenario

    plain = run_scenario(gen_scenario(seed))
    registry = MetricsRegistry()
    metered = run_scenario(gen_scenario(seed), registry=registry)
    assert plain.ok and metered.ok
    assert plain.packets_run == metered.packets_run
    assert plain.hops_checked == metered.hops_checked
    assert plain.reports_checked == metered.reports_checked
    # The registry actually saw the deployments run.
    dump = registry.to_dict()
    assert sum(s["value"] for s in
               dump["switch_packets_total"]["series"]) > 0


def test_deployment_stats_include_metrics_snapshot():
    from repro.compiler import compile_program
    from repro.difftest.harness import build_packet, \
        build_scenario_deployment
    from repro.difftest.scenario import gen_scenario

    scenario = gen_scenario(3)
    compiled = compile_program(scenario.source(), name="dt3")
    obs = Observability.enabled()
    dep = build_scenario_deployment(scenario, compiled, obs=obs)
    packet = build_packet(scenario.packets[0], dep.topology,
                          scenario.src_host, scenario.dst_host)
    dep.network.host(scenario.src_host).send(packet)
    dep.network.run()
    stats = dep.stats()
    assert "metrics" in stats
    assert "switch_packets_total" in stats["metrics"]
    assert "phase_seconds" in stats["metrics"]     # link/deploy profiling
    phases = {s["labels"]["phase"]
              for s in stats["metrics"]["phase_seconds"]["series"]}
    assert {"link", "deploy"} <= phases
