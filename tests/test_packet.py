"""Packet and header codec tests."""

import copy

import pytest
from hypothesis import given, strategies as st

from repro.net.packet import (ETH_TYPE_IPV4, ETH_TYPE_SRCROUTE, ETHERNET,
                              GTPU, Header, HeaderType, IPV4, Packet,
                              SOURCE_ROUTE, UDP, format_ip, ip,
                              make_gtpu_encapsulated, make_source_routed,
                              make_tcp, make_udp)


def test_header_type_widths():
    assert ETHERNET.width_bits == 112
    assert ETHERNET.width_bytes == 14
    assert IPV4.width_bits == 160
    assert UDP.width_bits == 64
    assert GTPU.width_bytes == 8
    assert SOURCE_ROUTE.width_bits == 16


def test_duplicate_field_names_rejected():
    with pytest.raises(ValueError):
        HeaderType("bad", [("x", 8), ("x", 8)])


def test_field_values_masked_to_width():
    header = IPV4(ttl=300)
    assert header.ttl == 300 & 0xFF


def test_header_attribute_access():
    header = UDP(src_port=1234)
    assert header.src_port == 1234
    header.dst_port = 80
    assert header.get("dst_port") == 80


def test_unknown_attribute_raises():
    header = UDP()
    with pytest.raises(AttributeError):
        _ = header.nonexistent
    with pytest.raises(KeyError):
        header.set("nonexistent", 1)


def test_header_bits_roundtrip():
    header = IPV4(version=4, ihl=5, ttl=64, protocol=17,
                  src_addr=ip(10, 0, 0, 1), dst_addr=ip(10, 0, 0, 2))
    bits, width = header.to_bits()
    assert width == IPV4.width_bits
    restored = Header.from_bits(IPV4, bits)
    assert restored.values == header.values


@given(st.integers(min_value=0, max_value=2**48 - 1),
       st.integers(min_value=0, max_value=2**16 - 1))
def test_ethernet_bits_roundtrip(mac, ethertype):
    header = ETHERNET(dst_addr=mac, src_addr=mac ^ 0xFFFF,
                      eth_type=ethertype)
    bits, width = header.to_bits()
    assert Header.from_bits(ETHERNET, bits).values == header.values


def test_header_type_identity_survives_deepcopy():
    assert copy.deepcopy(ETHERNET) is ETHERNET
    assert copy.copy(IPV4) is IPV4


def test_packet_length_counts_valid_headers_and_payload():
    packet = make_udp(ip(10, 0, 0, 1), ip(10, 0, 0, 2), 1, 2,
                      payload_len=100)
    assert packet.length == 14 + 20 + 8 + 100
    packet.headers[2].valid = False
    assert packet.length == 14 + 20 + 100


def test_packet_find_and_nth():
    inner = make_udp(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2)
    packet = make_gtpu_encapsulated(ip(9, 9, 9, 9), ip(8, 8, 8, 8), 55, inner)
    assert packet.find("ipv4").dst_addr == ip(8, 8, 8, 8)        # outer
    assert packet.find("ipv4", nth=1).dst_addr == ip(2, 2, 2, 2)  # inner
    assert len(packet.find_all("udp")) == 2


def test_packet_insert_and_remove():
    packet = make_udp(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2)
    extra = SOURCE_ROUTE(bos=1, port=3)
    packet.insert_after("ethernet", extra)
    assert packet.headers[1].name == "srcRoute"
    removed = packet.remove("srcRoute")
    assert removed is extra
    assert packet.remove("srcRoute") is None


def test_packet_copy_is_deep_for_headers():
    packet = make_udp(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2)
    clone = packet.copy()
    clone.find("ipv4").ttl = 1
    assert packet.find("ipv4").ttl == 64
    assert clone.packet_id == packet.packet_id


def test_make_source_routed_stack_order():
    inner = make_udp(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2)
    packet = make_source_routed([3, 2, 1], inner)
    assert packet.find("ethernet").eth_type == ETH_TYPE_SRCROUTE
    entries = packet.find_all("srcRoute")
    assert [e.port for e in entries] == [3, 2, 1]
    assert [e.bos for e in entries] == [0, 0, 1]


def test_make_source_routed_requires_hops():
    inner = make_udp(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2)
    with pytest.raises(ValueError):
        make_source_routed([], inner)


def test_gtpu_encapsulation_structure():
    inner = make_udp(ip(172, 16, 0, 1), ip(10, 0, 1, 2), 1000, 81,
                     payload_len=50)
    packet = make_gtpu_encapsulated(ip(192, 168, 0, 1), ip(192, 168, 0, 2),
                                    777, inner)
    names = [h.name for h in packet.headers]
    assert names == ["ethernet", "ipv4", "udp", "gtpu", "ipv4", "udp"]
    assert packet.find("gtpu").teid == 777
    assert packet.find("udp").dst_port == 2152
    # Inner payload length preserved.
    assert packet.payload_len == 50


def test_make_tcp():
    packet = make_tcp(ip(1, 2, 3, 4), ip(5, 6, 7, 8), 80, 443)
    assert packet.find("tcp").src_port == 80
    assert packet.find("ipv4").protocol == 6


def test_ip_helpers():
    assert ip(10, 0, 1, 2) == (10 << 24) | (1 << 8) | 2
    assert format_ip(ip(10, 0, 1, 2)) == "10.0.1.2"


def test_packet_ids_are_unique():
    a = make_udp(1, 2, 3, 4)
    b = make_udp(1, 2, 3, 4)
    assert a.packet_id != b.packet_id
