"""Experiment-harness tests: Table 1 rows, a scaled-down Figure 12 run,
and throughput parity.  The full-size runs live in benchmarks/."""

import pytest

from repro.experiments import (ALL_CHECKERS, Fig12Config, compute_row,
                               compute_table, format_table, run_fig12,
                               run_replay, run_rtt_experiment)
from repro.properties import (BASELINE_PHV_PCT, BASELINE_STAGES, PROPERTIES,
                              TABLE1_ORDER)


def test_table1_row_shape():
    row = compute_row("multi_tenancy")
    assert row.indus_loc > 0
    assert row.p4_loc > row.indus_loc  # generated P4 is much longer
    assert row.stages == BASELINE_STAGES
    assert row.phv_pct > BASELINE_PHV_PCT


def test_table1_conciseness_claim():
    """Indus programs are ~an order of magnitude shorter than the
    generated P4 (Section 6.1)."""
    for name in ("multi_tenancy", "loops", "waypointing"):
        row = compute_row(name)
        assert row.p4_loc >= 4 * row.indus_loc


def test_table1_full_table_renders():
    rows = compute_table(TABLE1_ORDER[:3])
    text = format_table(rows)
    assert "Baseline" in text
    assert "multi_tenancy" in text


SMALL = Fig12Config(duration_s=0.05, ping_interval_s=0.005,
                    load_bps_per_pair=30e6)


def test_fig12_baseline_arm_produces_samples():
    run = run_rtt_experiment(None, "Baseline", SMALL)
    assert len(run.rtts_ms) >= 5
    assert run.mean_ms > 0


def test_fig12_checkers_arm_keeps_all_pings():
    run = run_rtt_experiment(["loops", "waypointing"], "subset", SMALL)
    assert len(run.rtts_ms) >= 5


@pytest.mark.slow
def test_fig12_no_significant_difference_small_suite():
    """A reduced-duration Figure 12: RTTs with a three-checker suite are
    statistically indistinguishable from baseline."""
    config = Fig12Config(duration_s=0.1, ping_interval_s=0.002,
                         load_bps_per_pair=40e6)
    result = run_fig12(config, checkers=["loops", "waypointing",
                                         "multi_tenancy"])
    assert len(result.baseline.rtts_ms) == len(result.with_checkers.rtts_ms)
    assert not result.t_test.significant(alpha=0.01)
    base_cdf, checker_cdf = result.cdfs(20)
    assert base_cdf and checker_cdf


def test_throughput_parity():
    baseline = run_replay(None, "baseline", rate_pps=3000, duration_s=0.03)
    hydra = run_replay(["loops"], "hydra", rate_pps=3000, duration_s=0.03)
    assert baseline.delivery_ratio > 0.95
    assert hydra.delivery_ratio > 0.95
    # Goodput parity within 5% (telemetry is stripped before delivery).
    assert hydra.goodput_bps == pytest.approx(baseline.goodput_bps, rel=0.05)
