"""CI smoke: a traced fig12 scenario produces a sane event stream.

Runs one short Figure-12 arm (full checker suite) with live
observability, then asserts the observable invariants:

* the JSONL export parses line-by-line,
* key metrics are nonzero (packets processed, table lookups,
  deliveries, per-packet latency samples, phase timers),
* the event stream contains the core lifecycle kinds in a consistent
  shape (every parse has a matching switch, seq strictly increasing).

Usage: ``PYTHONPATH=src python benchmarks/trace_smoke.py``
"""

from __future__ import annotations

import io
import json
import sys

from repro.experiments import Fig12Config, run_rtt_experiment
from repro.experiments.fig12 import ALL_CHECKERS
from repro.obs import Observability


def main() -> int:
    obs = Observability.enabled()
    config = Fig12Config(duration_s=0.02)
    run = run_rtt_experiment(ALL_CHECKERS, "smoke", config, obs=obs)
    print(f"fig12 smoke arm: {len(run.rtts_ms)} pings, "
          f"{run.packets_lost} lost, {obs.tracer.total} trace events")

    failures = []

    # 1. JSONL export parses.
    buffer = io.StringIO()
    count = obs.tracer.export_jsonl(buffer)
    events = []
    for lineno, line in enumerate(buffer.getvalue().splitlines(), 1):
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as exc:
            failures.append(f"line {lineno} is not valid JSON: {exc}")
            break
    if count != len(events) and not failures:
        failures.append(f"export wrote {count} events, parsed {len(events)}")

    # 2. Event-stream shape.
    if not events:
        failures.append("trace is empty")
    else:
        seqs = [e["seq"] for e in events]
        if seqs != sorted(seqs) or len(set(seqs)) != len(seqs):
            failures.append("event seq is not strictly increasing")
        kinds = {e["kind"] for e in events}
        for kind in ("enqueue", "link", "parse", "apply", "deliver"):
            if kind not in kinds:
                failures.append(f"no {kind!r} events in the trace")

    # 3. Key metrics nonzero.
    dump = obs.registry.to_dict()

    def total(name: str) -> float:
        series = dump.get(name, {}).get("series", [])
        return sum(s.get("value", s.get("count", 0)) for s in series)

    for name in ("switch_packets_total", "table_lookups_total",
                 "packets_delivered_total", "fastpath_ns_per_packet",
                 "phase_seconds"):
        if total(name) <= 0:
            failures.append(f"metric {name} is zero")
    if not run.rtts_ms:
        failures.append("no pings completed")

    if failures:
        for failure in failures:
            print(f"SMOKE FAILURE: {failure}", file=sys.stderr)
        return 1
    print(f"trace smoke OK: {len(events)} events parsed, "
          f"{int(total('switch_packets_total'))} switch packets, "
          f"{int(total('packets_delivered_total'))} delivered")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
