#!/usr/bin/env python
"""Codegen compile smoke: generated source must build for every program.

For the entire bundled property corpus plus every ``examples/*.indus``
file, compile the checker (both plain and through the dataflow
optimizer), stand up a codegen-engine switch — which emits, compiles,
and execs the generated module — and push a packet through the single
and batch entry points.  Any program whose generated source fails to
compile, or whose codegen output diverges from the interp engine on the
smoke packet, fails the run.

Usage: ``PYTHONPATH=src python benchmarks/codegen_smoke.py``
"""

from __future__ import annotations

import glob
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.compiler import compile_program, standalone_program  # noqa: E402
from repro.net.packet import ip, make_udp                       # noqa: E402
from repro.p4.bmv2 import Bmv2Switch                            # noqa: E402
from repro.properties import PROPERTIES, load_source            # noqa: E402


def _targets():
    for name in sorted(PROPERTIES):
        yield name, load_source(name)
    examples = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "examples")
    for path in sorted(glob.glob(os.path.join(examples, "*.indus"))):
        with open(path) as handle:
            yield os.path.basename(path), handle.read()


def _serialize(outputs):
    return [(port, [(h.htype.name, h.valid, h.to_bits())
                    for h in pkt.headers], pkt.payload_len)
            for port, pkt in outputs]


def main() -> int:
    failures = 0
    packet = make_udp(ip(10, 0, 0, 1), ip(10, 0, 0, 2), 7, 9, ttl=12)
    for name, source in _targets():
        for optimize in (False, True):
            label = name + (" [optimized]" if optimize else "")
            try:
                compiled = compile_program(source, name=name,
                                           optimize=optimize)
                program = standalone_program(compiled)
                engines = {}
                for engine in ("interp", "codegen"):
                    sw = Bmv2Switch(program, name="smoke", switch_id=1,
                                    engine=engine)
                    sw.insert_entry("fwd_table", [1],
                                    "fwd_set_egress", [2])
                    single = _serialize(sw.process(packet.copy(), 1))
                    if engine == "codegen":
                        assert sw._fast.source, "empty generated source"
                        batch = sw.process_batch([(packet.copy(), 1)])
                        if [_serialize(o) for o in [batch[0]]][0] != single:
                            raise AssertionError(
                                "batch output differs from single")
                    engines[engine] = single
                if engines["interp"] != engines["codegen"]:
                    raise AssertionError("codegen diverges from interp "
                                         "on the smoke packet")
            except Exception as exc:
                failures += 1
                print(f"FAIL {label}: {type(exc).__name__}: {exc}")
                continue
            print(f"ok   {label}")
    if failures:
        print(f"{failures} program(s) failed", file=sys.stderr)
        return 1
    print("codegen smoke: all programs build and agree")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
