"""Figure 12 — Hydra's performance overhead on packet latency.

Regenerates both panels:

* **12a** — RTT over (simulated) time, baseline vs all checkers;
* **12b** — RTT CDF comparison plus the t-test the paper runs, which
  must find no statistically significant difference.

The experiment is the paper's, scaled down linearly for the event-driven
substrate (see repro.experiments.fig12 and EXPERIMENTS.md): the Aether
fabric under ~55% bidirectional UDP load with ECMP, a fast ping between
servers on different leaves, and the full Table-1 checker suite linked
into every switch for the Hydra arm.
"""

from repro.experiments import ALL_CHECKERS, Fig12Config, run_fig12
from repro.stats import percentile

CONFIG = Fig12Config(duration_s=0.2, ping_interval_s=0.002,
                     load_bps_per_pair=40e6)


def _run():
    return run_fig12(CONFIG, checkers=ALL_CHECKERS)


def test_fig12_rtt_overhead(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    baseline, hydra = result.baseline, result.with_checkers

    print()
    print("Figure 12a — RTT over time (ms), downsampled series")
    print(f"{'t (s)':>8s} {'baseline':>10s} {'all checkers':>13s}")
    for (tb, rb), (tc, rc) in zip(baseline.series[::10],
                                  hydra.series[::10]):
        print(f"{tb:>8.3f} {rb:>10.4f} {rc:>13.4f}")

    print()
    print("Figure 12b — RTT distribution summary (ms)")
    print(f"{'':12s} {'p10':>8s} {'p50':>8s} {'p90':>8s} {'mean':>8s}")
    for run in (baseline, hydra):
        print(f"{run.label:12s} "
              f"{percentile(run.rtts_ms, 10):>8.4f} "
              f"{percentile(run.rtts_ms, 50):>8.4f} "
              f"{percentile(run.rtts_ms, 90):>8.4f} "
              f"{run.mean_ms:>8.4f}")
    t = result.t_test
    print(f"t-test: t = {t.statistic:.3f}, dof = {t.dof:.1f}, "
          f"p = {t.p_value:.3f} -> "
          f"{'SIGNIFICANT' if t.significant() else 'no significant difference'}")

    # The paper's conclusions, reproduced in shape:
    assert len(baseline.rtts_ms) == len(hydra.rtts_ms)  # no pings lost
    assert baseline.packets_lost == 0 and hydra.packets_lost == 0
    assert not t.significant(alpha=0.01)
    # Means within ~25% of each other (the checkers only add telemetry
    # bytes, inflated here by the scaled-down link rate).
    assert abs(hydra.mean_ms - baseline.mean_ms) <= 0.25 * baseline.mean_ms
