"""Bench guard: the null-registry hot path must stay fast.

Observability is off-by-default-cheap: a switch built with the default
:data:`~repro.obs.NULL_OBS` must process packets at the same rate as
before the observability plane existed.  This guard measures the fast
engine's packets/sec with a *null-registry* Observability handle
explicitly attached and compares it against a baseline:

* default — regenerate the baseline on this machine first
  (``measure_pps`` with no handle at all), so the comparison never
  crosses hardware; this is what CI runs.
* ``--baseline BENCH_throughput.json`` — compare against the committed
  benchmark report instead (same-machine development workflow).

Exit code 0 if the attached run is within ``--tolerance`` (default 10%)
of the baseline, 1 otherwise.

A second mode, ``--codegen``, guards the engine ladder instead: the
codegen engine must process at least as many packets/sec as the fast
engine on the bench program (re-measured on this machine, so the
comparison never crosses hardware).

A third mode, ``--net``, guards the traffic plane: the network's batch
hot loop must replay a fig12-style campus trace strictly faster than
the event-per-packet path (both re-measured here on a short slice), and
both modes must produce identical delivery counts, bytes, and final
arrival time.  ``--net-floor-pps`` optionally also enforces an absolute
batched rate (off by default: CI machines are too variable for the
paper's 350K pps target, which ``python -m repro bench --net`` checks).

A fourth mode, ``--aether``, guards the control-plane scale path: a
scaled-down Aether soak (bulk attach, churn, traffic with checkers
live) must clear modest attach/s and replay-pps floors, raise zero
Hydra reports on allowed traffic, and keep per-packet cost flat
between the small-baseline probe and the full session count (the O(1)
checker-state claim).  Floors are deliberately conservative — CI
machines are too variable for the committed BENCH_aether.json numbers,
which ``python -m repro aether`` reproduces.

Usage: ``PYTHONPATH=src python benchmarks/bench_guard.py
[--codegen | --net | --aether]``
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.experiments.bench import _build_switch, measure_pps
from repro.net.packet import ip, make_udp
from repro.obs import NULL_OBS
import time


def measure_null_obs_pps(packets: int, repeats: int = 3) -> float:
    """Fast-engine pps with a null Observability handle attached —
    the instrumented construction path, the uninstrumented hot path."""
    sw = _build_switch("fast", obs=NULL_OBS)
    assert not sw.obs.live
    packet = make_udp(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2)
    for _ in range(packets // 10):
        sw.process(packet, 1)
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(packets):
            sw.process(packet, 1)
        elapsed = time.perf_counter() - start
        if elapsed > 0:
            best = max(best, packets / elapsed)
    return best


def guard_codegen(packets: int, tolerance: float) -> int:
    """The engine-ladder guard: codegen pps must not fall below fast
    pps (both re-measured here, best-of-N, same program)."""
    fast_pps = measure_pps("fast", packets=packets)
    codegen_pps = measure_pps("codegen", packets=packets)
    ratio = codegen_pps / fast_pps
    floor = 1.0 - tolerance
    verdict = "OK" if ratio >= floor else "REGRESSION"
    print(f"bench guard (codegen): fast {fast_pps:.0f} pps, "
          f"codegen {codegen_pps:.0f} pps, ratio {ratio:.3f} "
          f"(floor {floor:.2f}) -> {verdict}")
    if ratio < floor:
        print("the codegen engine fell below the fast engine on the "
              "bench program; see docs/INTERNALS.md (engines)",
              file=sys.stderr)
        return 1
    return 0


def guard_net(rate_pps: float, duration_s: float,
              floor_pps: float) -> int:
    """The traffic-plane guard: batched replay must beat event replay
    on wall clock and match it exactly on observable outputs."""
    from repro.experiments.netbench import (check_equivalence,
                                            measure_replay)

    batched = measure_replay("batched", rate_pps, duration_s)
    event = measure_replay("event", rate_pps, duration_s)
    equivalence = check_equivalence(rate_pps=rate_pps,
                                    duration_s=duration_s)
    speedup = (batched["replay_pps"] / event["replay_pps"]
               if event["replay_pps"] else float("inf"))
    ok = batched["replay_pps"] > event["replay_pps"] and equivalence["ok"]
    floor_note = ""
    if floor_pps > 0:
        floor_note = f", floor {floor_pps:,.0f} pps"
        ok = ok and batched["replay_pps"] >= floor_pps
    verdict = "OK" if ok else "REGRESSION"
    print(f"bench guard (net): batched {batched['replay_pps']:,.0f} pps, "
          f"event {event['replay_pps']:,.0f} pps, speedup {speedup:.2f}x, "
          f"equivalence {'ok' if equivalence['ok'] else 'DIVERGED'}"
          f"{floor_note} -> {verdict}")
    if not equivalence["ok"]:
        print("batched and event replay diverged on "
              + ", ".join(k for k, v in equivalence.items()
                          if k.endswith("_equal") and not v),
              file=sys.stderr)
    elif not ok:
        print("the batch hot loop no longer beats the event-per-packet "
              "path; see docs/INTERNALS.md (traffic plane)",
              file=sys.stderr)
    return 0 if ok else 1


def guard_aether(sessions: int, attach_floor: float, pps_floor: float,
                 tolerance: float) -> int:
    """The control-plane scale guard: bulk attach rate, replay pps,
    zero reports on allowed traffic, and per-packet cost flatness."""
    from repro.experiments.aetherbench import (
        FLATNESS_BASELINE_SESSIONS, run_soak)

    # Baseline at the standard 10^4 probe point (the flatness claim is
    # 10^4 -> 10^6); much smaller baselines fit whole tables in cache
    # and overstate the ratio.
    baseline = max(1000, min(FLATNESS_BASELINE_SESSIONS, sessions // 2))
    result = run_soak(sessions=sessions, engine="codegen", batched=True,
                      workers=1, flatness=True,
                      baseline_sessions=baseline)
    attach_per_s = result["attach"]["per_s"]
    replay_pps = result["replay"]["pps"]
    reports = result["replay"]["reports"]
    flat = result["flatness"]
    ratio = flat["ratio"]
    floor = 1.0 + tolerance
    ok = (attach_per_s >= attach_floor and replay_pps >= pps_floor
          and reports == 0 and ratio is not None and ratio <= floor)
    verdict = "OK" if ok else "REGRESSION"
    print(f"bench guard (aether): {sessions:,} sessions, "
          f"attach {attach_per_s:,.0f}/s (floor {attach_floor:,.0f}), "
          f"replay {replay_pps:,.0f} pps (floor {pps_floor:,.0f}), "
          f"reports {reports}, per-pkt ratio {ratio:.3f} "
          f"(ceiling {floor:.2f}) -> {verdict}")
    if not ok:
        print("the Aether control-plane scale path regressed; see "
              "docs/INTERNALS.md (Aether at scale)", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--packets", type=int, default=5000)
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed fractional slowdown (default 0.10)")
    parser.add_argument("--baseline", default="",
                        help="compare against this BENCH_throughput.json "
                             "instead of re-measuring on this machine")
    parser.add_argument("--codegen", action="store_true",
                        help="guard the engine ladder instead: codegen "
                             "pps must be >= fast pps on this machine")
    parser.add_argument("--net", action="store_true",
                        help="guard the traffic plane instead: batched "
                             "replay must beat event replay and match "
                             "its outputs exactly")
    parser.add_argument("--net-rate", type=float, default=100_000.0,
                        help="[--net] offered replay rate (default 1e5)")
    parser.add_argument("--net-duration", type=float, default=0.05,
                        help="[--net] simulated seconds (default 0.05)")
    parser.add_argument("--net-floor-pps", type=float, default=0.0,
                        help="[--net] also require this absolute batched "
                             "rate (default 0 = relative check only)")
    parser.add_argument("--aether", action="store_true",
                        help="guard the control-plane scale path "
                             "instead: a scaled-down Aether soak must "
                             "clear attach/s and replay-pps floors with "
                             "flat per-packet cost and zero reports")
    parser.add_argument("--aether-sessions", type=int, default=20_000,
                        help="[--aether] soak size (default 20000)")
    parser.add_argument("--aether-attach-floor", type=float,
                        default=2_000.0,
                        help="[--aether] minimum bulk attach/s "
                             "(default 2000)")
    parser.add_argument("--aether-pps-floor", type=float, default=1_000.0,
                        help="[--aether] minimum replay pps "
                             "(default 1000)")
    args = parser.parse_args(argv)

    if args.aether:
        return guard_aether(args.aether_sessions,
                            args.aether_attach_floor,
                            args.aether_pps_floor, args.tolerance)
    if args.net:
        return guard_net(args.net_rate, args.net_duration,
                         args.net_floor_pps)
    if args.codegen:
        return guard_codegen(args.packets, args.tolerance)

    if args.baseline:
        with open(args.baseline) as handle:
            baseline_pps = json.load(handle)["engines"]["fast"]["pps"]
        source = args.baseline
    else:
        baseline_pps = measure_pps("fast", packets=args.packets)
        source = "same-machine remeasure"

    guarded_pps = measure_null_obs_pps(args.packets)
    ratio = guarded_pps / baseline_pps
    floor = 1.0 - args.tolerance
    verdict = "OK" if ratio >= floor else "REGRESSION"
    print(f"bench guard: baseline {baseline_pps:.0f} pps ({source}), "
          f"null-registry {guarded_pps:.0f} pps, "
          f"ratio {ratio:.3f} (floor {floor:.2f}) -> {verdict}")
    if ratio < floor:
        print("the null-observability hot path regressed beyond "
              f"{args.tolerance:.0%}; see docs/INTERNALS.md "
              "(observability plane)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
