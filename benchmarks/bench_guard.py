"""Bench guard: the null-registry hot path must stay fast.

Observability is off-by-default-cheap: a switch built with the default
:data:`~repro.obs.NULL_OBS` must process packets at the same rate as
before the observability plane existed.  This guard measures the fast
engine's packets/sec with a *null-registry* Observability handle
explicitly attached and compares it against a baseline:

* default — regenerate the baseline on this machine first
  (``measure_pps`` with no handle at all), so the comparison never
  crosses hardware; this is what CI runs.
* ``--baseline BENCH_throughput.json`` — compare against the committed
  benchmark report instead (same-machine development workflow).

Exit code 0 if the attached run is within ``--tolerance`` (default 10%)
of the baseline, 1 otherwise.

A second mode, ``--codegen``, guards the engine ladder instead: the
codegen engine must process at least as many packets/sec as the fast
engine on the bench program (re-measured on this machine, so the
comparison never crosses hardware).

Usage: ``PYTHONPATH=src python benchmarks/bench_guard.py [--codegen]``
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.experiments.bench import _build_switch, measure_pps
from repro.net.packet import ip, make_udp
from repro.obs import NULL_OBS
import time


def measure_null_obs_pps(packets: int, repeats: int = 3) -> float:
    """Fast-engine pps with a null Observability handle attached —
    the instrumented construction path, the uninstrumented hot path."""
    sw = _build_switch("fast", obs=NULL_OBS)
    assert not sw.obs.live
    packet = make_udp(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2)
    for _ in range(packets // 10):
        sw.process(packet, 1)
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(packets):
            sw.process(packet, 1)
        elapsed = time.perf_counter() - start
        if elapsed > 0:
            best = max(best, packets / elapsed)
    return best


def guard_codegen(packets: int, tolerance: float) -> int:
    """The engine-ladder guard: codegen pps must not fall below fast
    pps (both re-measured here, best-of-N, same program)."""
    fast_pps = measure_pps("fast", packets=packets)
    codegen_pps = measure_pps("codegen", packets=packets)
    ratio = codegen_pps / fast_pps
    floor = 1.0 - tolerance
    verdict = "OK" if ratio >= floor else "REGRESSION"
    print(f"bench guard (codegen): fast {fast_pps:.0f} pps, "
          f"codegen {codegen_pps:.0f} pps, ratio {ratio:.3f} "
          f"(floor {floor:.2f}) -> {verdict}")
    if ratio < floor:
        print("the codegen engine fell below the fast engine on the "
              "bench program; see docs/INTERNALS.md (engines)",
              file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--packets", type=int, default=5000)
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed fractional slowdown (default 0.10)")
    parser.add_argument("--baseline", default="",
                        help="compare against this BENCH_throughput.json "
                             "instead of re-measuring on this machine")
    parser.add_argument("--codegen", action="store_true",
                        help="guard the engine ladder instead: codegen "
                             "pps must be >= fast pps on this machine")
    args = parser.parse_args(argv)

    if args.codegen:
        return guard_codegen(args.packets, args.tolerance)

    if args.baseline:
        with open(args.baseline) as handle:
            baseline_pps = json.load(handle)["engines"]["fast"]["pps"]
        source = args.baseline
    else:
        baseline_pps = measure_pps("fast", packets=args.packets)
        source = "same-machine remeasure"

    guarded_pps = measure_null_obs_pps(args.packets)
    ratio = guarded_pps / baseline_pps
    floor = 1.0 - args.tolerance
    verdict = "OK" if ratio >= floor else "REGRESSION"
    print(f"bench guard: baseline {baseline_pps:.0f} pps ({source}), "
          f"null-registry {guarded_pps:.0f} pps, "
          f"ratio {ratio:.3f} (floor {floor:.2f}) -> {verdict}")
    if ratio < floor:
        print("the null-observability hot path regressed beyond "
              f"{args.tolerance:.0%}; see docs/INTERNALS.md "
              "(observability plane)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
