#!/usr/bin/env python
"""Emit BENCH_throughput.json: packets/sec for interp vs fast engines.

Standalone entry point (no pytest needed):

    python benchmarks/run_bench.py [--packets N] [--no-replay] [-o PATH]

Also reachable as ``python -m repro bench`` when ``src`` is on the path.
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.experiments import format_bench, run_bench  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--packets", type=int, default=5000,
                        help="packets per timing run (default 5000)")
    parser.add_argument("--no-replay", action="store_true",
                        help="skip the campus-replay goodput parity check")
    parser.add_argument("-o", "--out", default="BENCH_throughput.json",
                        help="output path (default BENCH_throughput.json)")
    args = parser.parse_args()
    result = run_bench(packets=args.packets, replay=not args.no_replay,
                       out_path=args.out)
    print(format_bench(result))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
