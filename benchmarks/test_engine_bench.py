"""Fast-path engine benchmark: interp vs fast packets/sec + goodput
parity, recorded to ``BENCH_throughput.json``.

Marked ``bench`` so tier-1 stays fast; run on demand with

    PYTHONPATH=src python -m pytest benchmarks/test_engine_bench.py -s
"""

import pytest

from repro.experiments import format_bench, run_bench

pytestmark = pytest.mark.bench


def test_engine_speedup_and_parity(tmp_path):
    out = tmp_path / "BENCH_throughput.json"
    result = run_bench(packets=3000, replay=True, out_path=str(out))
    print()
    print(format_bench(result))
    assert out.exists()
    assert result["engines"]["fast"]["pps"] > 0
    assert result["engines"]["interp"]["pps"] > 0
    # The compiled engine must beat the tree-walker comfortably.
    assert result["speedup"] >= 2.0
    # Goodput must be engine-independent (byte-identical forwarding).
    assert result["replay_goodput"]["parity"]
