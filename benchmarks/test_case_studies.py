"""Section 5 case studies as repeatable benchmarks: the valley-free
source-routing validation (5.1) and the Aether application-filtering bug
detection (5.2), timed end-to-end (topology build + control plane +
traffic)."""

from repro.aether import ALLOW, AetherTestbed, DENY, FilterRule
from repro.net.packet import IP_PROTO_UDP
from repro.runtime.scenarios import SourceRoutingTestbed


def _valley_free_sweep():
    testbed = SourceRoutingTestbed()
    passed = blocked = 0
    for path in testbed.valley_free_node_paths("h1", "h3"):
        if testbed.send("h1", "h3", testbed.route_for(path, "h3")).delivered:
            passed += 1
    for path in testbed.valley_node_paths("h1", "h3"):
        if not testbed.send("h1", "h3",
                            testbed.route_for(path, "h3")).delivered:
            blocked += 1
    total_bad = len(testbed.valley_node_paths("h1", "h3"))
    return passed, blocked, total_bad


def test_case_study_valley_free(benchmark):
    passed, blocked, total_bad = benchmark.pedantic(
        _valley_free_sweep, rounds=1, iterations=1)
    print()
    print(f"Section 5.1: {passed} valley-free paths delivered, "
          f"{blocked}/{total_bad} errant paths dropped")
    assert passed == 2
    assert blocked == total_bad


def _aether_bug_scenario():
    testbed = AetherTestbed()
    server = testbed.topology.hosts["h2"].ipv4
    testbed.provision_slice("camera", [
        FilterRule(priority=10, action=DENY),
        FilterRule(priority=20, proto=IP_PROTO_UDP, l4_port=(81, 81),
                   action=ALLOW),
    ])
    testbed.portal.add_member("camera", "imsi-001")
    testbed.portal.add_member("camera", "imsi-002")
    testbed.attach("imsi-001", 1)
    before = testbed.send_uplink("imsi-001", server, 81)
    testbed.portal.update_rules("camera", [
        FilterRule(priority=10, action=DENY),
        FilterRule(priority=25, proto=IP_PROTO_UDP, l4_port=(81, 82),
                   action=ALLOW),
    ])
    testbed.attach("imsi-002", 2)
    after = testbed.send_uplink("imsi-001", server, 81)
    return before, after


def test_case_study_aether_bug(benchmark):
    before, after = benchmark.pedantic(_aether_bug_scenario,
                                       rounds=1, iterations=1)
    print()
    print("Section 5.2: client-1 UDP:81 before policy edit: "
          f"delivered={before.delivered}")
    print("             after second attach under edited policy: "
          f"delivered={after.delivered}, "
          f"hydra reports={len(after.new_reports)}")
    if after.new_reports:
        print(f"             {after.new_reports[0]}")
    assert before.delivered
    assert not after.delivered          # the bug
    assert len(after.new_reports) == 1  # caught by Hydra
