"""Ablations of the design choices DESIGN.md calls out.

* Telemetry-volume ablation: PHV cost as the loop checker's path array
  grows — quantifies the paper's observation that PHV overhead tracks
  telemetry volume.
* Checker-count ablation: RTT as checkers are added one at a time —
  the marginal latency cost of each extra telemetry header.
* Last-hop vs per-hop trade-off proxy (Section 4.3): telemetry bytes a
  packet carries under last-hop checking, versus what per-hop checking
  would carry for the loop checker (which needs the full path either
  way) and for the valley-free checker (two bits in both designs).
"""

from repro.aether.upf import upf_program
from repro.compiler import compile_program, link
from repro.experiments import Fig12Config, run_rtt_experiment
from repro.tofino import analyze_linked

LOOPS_TEMPLATE = """
tele bit<32>[{cap}] path;
tele bool looped = false;
{{ }}
{{
  if (switch_id in path) {{ looped = true; }}
  path.push(switch_id);
}}
{{
  if (looped) {{ reject; report; }}
}}
"""


def test_ablation_telemetry_volume(benchmark):
    def sweep():
        baseline = upf_program()
        rows = []
        for cap in (2, 4, 8, 12):
            compiled = compile_program(LOOPS_TEMPLATE.format(cap=cap),
                                       name=f"loops{cap}")
            linked = link(baseline, compiled)
            report = analyze_linked(f"loops[{cap}]", linked, baseline)
            rows.append((cap, compiled.hydra_header.width_bits, report))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("Telemetry-volume ablation (loop checker, growing path array)")
    print(f"{'capacity':>9s} {'hdr bits':>9s} {'PHV %':>8s} {'stages':>7s}")
    for cap, bits, report in rows:
        print(f"{cap:>9d} {bits:>9d} {report.phv_pct:>8.2f} "
              f"{report.stages:>7d}")
    deltas = [report.phv_delta_bits for _, _, report in rows]
    assert deltas == sorted(deltas)  # PHV grows with telemetry
    assert all(report.stages == 12 for _, _, report in rows)


CONFIG = Fig12Config(duration_s=0.06, ping_interval_s=0.003,
                     load_bps_per_pair=30e6)

SUITES = [
    ([], "baseline"),
    (["valley_free"], "1 checker"),
    (["valley_free", "loops", "waypointing"], "3 checkers"),
    (["valley_free", "loops", "waypointing", "multi_tenancy",
      "egress_port_validity", "service_chain"], "6 checkers"),
]


def test_ablation_checker_count(benchmark):
    def sweep():
        runs = []
        for checkers, label in SUITES:
            run = run_rtt_experiment(checkers or None, label, CONFIG)
            runs.append(run)
        return runs

    runs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("Checker-count ablation (mean RTT, ms)")
    for run in runs:
        print(f"{run.label:12s} mean={run.mean_ms:.4f} "
              f"n={len(run.rtts_ms)}")
    base = runs[0].mean_ms
    # Even six simultaneous checkers stay within 30% of baseline RTT at
    # this (scaled-down, overhead-inflating) link rate.
    assert runs[-1].mean_ms <= 1.30 * base


def test_ablation_perhop_vs_lasthop(benchmark):
    """Section 4.3's trade-off, measured: under last-hop checking a
    violating packet burns switch work all the way to the edge; under
    per-hop checking it dies at the offending switch.  We count the
    total pipeline executions a violating valley packet causes."""
    from repro.runtime.scenarios import SourceRoutingTestbed

    def run(mode):
        testbed = SourceRoutingTestbed(check_mode=mode)
        path = ["leaf1", "spine1", "leaf2", "spine1", "leaf2"]
        before = sum(sw.packets_processed
                     for sw in testbed.deployment.switches.values())
        result = testbed.send("h1", "h3", testbed.route_for(path, "h3"))
        after = sum(sw.packets_processed
                    for sw in testbed.deployment.switches.values())
        return (not result.delivered), after - before

    def both():
        return run("last_hop"), run("per_hop")

    (last_dropped, last_hops), (per_dropped, per_hops) = \
        benchmark.pedantic(both, rounds=1, iterations=1)
    print()
    print("Per-hop vs last-hop checking "
          "(violating valley packet, 5-hop path)")
    print(f"  last-hop: dropped={last_dropped}, "
          f"pipeline executions={last_hops}")
    print(f"  per-hop:  dropped={per_dropped}, "
          f"pipeline executions={per_hops}")
    assert last_dropped and per_dropped        # both enforce...
    assert per_hops < last_hops                # ...per-hop enforces earlier


def test_ablation_lasthop_telemetry_bytes(benchmark):
    """Proxy for the Section 4.3 trade-off: bytes of telemetry carried
    under the implemented last-hop design, per checker."""
    from repro.properties import compile_property

    names = ("valley_free", "loops", "source_routing_validation",
             "application_filtering")

    def compile_all():
        return {name: compile_property(name) for name in names}

    compiled = benchmark.pedantic(compile_all, rounds=1, iterations=1)
    print()
    print("Telemetry carried per packet (last-hop checking design)")
    for name in names:
        print(f"{name:28s} {compiled[name].hydra_header.width_bytes:4d} "
              "bytes")
    # Valley-free needs only two bits of telemetry (+ the EtherType
    # linkage), exactly the paper's claim for Figure 7.
    assert compiled["valley_free"].hydra_header.width_bits == 16 + 2
