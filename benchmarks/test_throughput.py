"""Section 6.2 throughput microbenchmark.

The paper replays mirrored campus traffic toward leaf1 and finds
throughput "almost identical" (~20 Gb/s) with and without Hydra.  Here
the synthetic campus trace replays across the fabric in both
configurations; delivered goodput must match (telemetry is added inside
the fabric and stripped at the edge, so goodput is unchanged)."""

import pytest

from repro.experiments import run_replay

pytestmark = pytest.mark.bench

RATE_PPS = 5_000
DURATION_S = 0.05


def test_throughput_parity(benchmark):
    def both():
        baseline = run_replay(None, "baseline", rate_pps=RATE_PPS,
                              duration_s=DURATION_S)
        hydra = run_replay(["loops", "waypointing", "multi_tenancy"],
                           "hydra", rate_pps=RATE_PPS,
                           duration_s=DURATION_S)
        return baseline, hydra

    baseline, hydra = benchmark.pedantic(both, rounds=1, iterations=1)
    print()
    print("Throughput microbenchmark (campus replay toward the fabric)")
    for result in (baseline, hydra):
        print(f"{result.label:10s} offered={result.offered_packets:5d} pkts "
              f"delivered={result.delivered_packets:5d} "
              f"goodput={result.goodput_bps / 1e6:8.1f} Mb/s "
              f"ratio={result.delivery_ratio:.3f}")
    assert baseline.delivery_ratio > 0.95
    assert hydra.delivery_ratio > 0.95
    assert hydra.goodput_bps == pytest.approx(baseline.goodput_bps, rel=0.05)


def test_switch_processing_rate(benchmark):
    """Supplementary: raw behavioral-model forwarding rate (packets/s)
    for a single linked switch — the simulator-cost figure that bounds
    how large an experiment this substrate can run."""
    from repro.compiler import compile_program, standalone_program
    from repro.net.packet import ip, make_udp
    from repro.p4.bmv2 import Bmv2Switch
    from repro.properties import load_source

    compiled = compile_program(load_source("loops"), name="loops")
    program = standalone_program(compiled)
    sw = Bmv2Switch(program, name="s1")
    sw.insert_entry("fwd_table", [1], "fwd_set_egress", [2])
    sw.insert_entry(compiled.inject_table, [1], compiled.mark_first_action)
    sw.insert_entry(compiled.strip_table, [2], compiled.mark_last_action)
    packet = make_udp(ip(1, 1, 1, 1), ip(2, 2, 2, 2), 1, 2)

    result = benchmark(lambda: sw.process(packet, 1))
    assert result  # forwarded, not dropped
