"""Table 1 — Tofino resource columns (stages, PHV%).

Regenerates the "Stages" and "PHV (%)" columns: each checker linked with
the Aether fabric-upf baseline, stages from the dependency-depth
allocator and PHV from the container-packing model, both anchored at
the paper's measured baseline (12 stages / 44.53%)."""

from repro.aether.upf import upf_program
from repro.compiler import link
from repro.properties import (BASELINE_PHV_PCT, BASELINE_STAGES, PROPERTIES,
                              TABLE1_ORDER, compile_property)
from repro.tofino import analyze_linked


def _analyze_all():
    baseline = upf_program()
    reports = []
    for name in TABLE1_ORDER:
        compiled = compile_property(name)
        linked = link(baseline, compiled)
        reports.append(analyze_linked(name, linked, baseline))
    return reports


def test_table1_stages_column(benchmark):
    reports = benchmark.pedantic(_analyze_all, rounds=1, iterations=1)
    print()
    print(f"{'Property':28s} {'Stages':>8s} {'paper':>6s}")
    print(f"{'Baseline (fabric-upf)':28s} {BASELINE_STAGES:>8d} {'12':>6s}")
    for report in reports:
        paper = PROPERTIES[report.name].paper_stages
        print(f"{report.name:28s} {report.stages:>8d} {paper:>6d}")
        # The paper's headline: no checker increases the stage count.
        assert report.stages <= BASELINE_STAGES


def test_table1_phv_column(benchmark):
    reports = benchmark.pedantic(_analyze_all, rounds=1, iterations=1)
    print()
    print(f"{'Property':28s} {'PHV %':>8s} {'paper':>8s} {'+bits':>7s}")
    print(f"{'Baseline (fabric-upf)':28s} {BASELINE_PHV_PCT:>8.2f} "
          f"{'44.53':>8s} {'-':>7s}")
    by_name = {}
    for report in reports:
        paper = PROPERTIES[report.name].paper_phv_pct
        print(f"{report.name:28s} {report.phv_pct:>8.2f} {paper:>8.2f} "
              f"{report.phv_delta_bits:>7d}")
        by_name[report.name] = report
        # Modest overhead: every checker stays under baseline + 12 points
        # (the paper's worst case is +7.61).
        assert BASELINE_PHV_PCT <= report.phv_pct <= BASELINE_PHV_PCT + 12
    # Ordering claim: the telemetry-heavy checkers (source-route path
    # validation and application filtering) cost the most PHV.
    heavy = {by_name["source_routing_validation"].phv_delta_bits,
             by_name["application_filtering"].phv_delta_bits}
    for name in ("waypointing", "egress_port_validity", "routing_validity"):
        assert by_name[name].phv_delta_bits < max(heavy)
