#!/usr/bin/env python3
"""CI smoke for the sharded fleet runner's fault paths.

Exercises, with real worker processes, what a green unit run can't
prove end to end at CI scale:

1. determinism — a sharded campaign's verdict map equals the serial
   one for the same seed range;
2. crash recovery — a worker SIGKILLed by ``FaultPlan`` is respawned,
   the killing seed is retried then quarantined with a reproducer
   bundle, and every other seed still completes;
3. timeout — a hung worker is killed within the per-scenario budget
   and only the hung seed is quarantined.

Exits nonzero on the first violated expectation.  Runs in a few
seconds; used by the ``parallel`` CI job.
"""

import json
import os
import shutil
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.difftest import run_difftest                     # noqa: E402
from repro.parallel import (FaultPlan, FleetOptions,        # noqa: E402
                            run_fleet)


def check(condition, label):
    if not condition:
        print(f"FAIL: {label}")
        raise SystemExit(1)
    print(f"ok: {label}")


def main():
    workdir = tempfile.mkdtemp(prefix="parallel_smoke_")
    try:
        serial = run_difftest(seed=7, iters=8, stop_on_failure=False)
        fleet = run_fleet(7, 8, options=FleetOptions(
            workers=2, quarantine_dir=workdir))
        check(fleet.verdicts == serial.verdicts,
              "workers=2 verdicts identical to serial")
        check(fleet.respawns == 0 and not fleet.quarantined,
              "clean run needs no recovery")

        crashed = run_fleet(7, 6, options=FleetOptions(
            workers=2, quarantine_dir=workdir,
            fault=FaultPlan(crash_seeds=frozenset({9}))))
        check(sorted(crashed.verdicts) == list(range(7, 13)),
              "crash run accounts for every seed")
        check(crashed.verdicts[9] == "quarantined:worker_crash",
              "killing seed quarantined as worker_crash")
        check(all(crashed.verdicts[s] == "ok"
                  for s in (7, 8, 10, 11, 12)),
              "all other seeds complete after respawn")
        check(crashed.respawns >= 2,
              "crash run respawned the worker (retry + quarantine)")
        bundle = crashed.quarantined[0]["bundle"]
        check(os.path.exists(bundle), "reproducer bundle written")
        with open(bundle) as handle:
            doc = json.load(handle)
        check(doc["failure"]["kind"] == "worker_crash",
              "bundle records the failure kind")

        hung = run_fleet(7, 6, options=FleetOptions(
            workers=2, timeout_s=1.0, quarantine_dir=workdir,
            fault=FaultPlan(hang_seeds=frozenset({8}))))
        check(hung.verdicts[8] == "quarantined:timeout",
              "hung seed quarantined as timeout")
        check(all(hung.verdicts[s] == "ok"
                  for s in (7, 9, 10, 11, 12)),
              "all other seeds complete around the hang")

        print("parallel fleet smoke: all checks passed")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
