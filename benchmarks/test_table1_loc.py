"""Table 1 — lines-of-code columns.

Regenerates the "LoC Indus" and "LoC P4 Output" columns for all eleven
properties and prints them next to the paper's numbers.  The benchmark
times one full compile-and-render cycle (the work behind one table row).
"""

from repro.compiler import compile_program, link
from repro.aether.upf import upf_program
from repro.experiments import compute_table, format_table
from repro.p4 import count_loc, render
from repro.properties import TABLE1_ORDER, load_checked


def test_table1_loc_columns(benchmark):
    rows = benchmark.pedantic(
        compute_table, args=(TABLE1_ORDER,), rounds=1, iterations=1)
    print()
    print(format_table(rows))
    for row in rows:
        # Conciseness claim (Section 6.1): the generated P4 is always
        # substantially longer.  Application filtering is ~2x in the
        # paper too (64 -> 126); every other row is >= 4x.
        floor = 2 if row.name == "application_filtering" else 4
        assert row.p4_loc >= floor * row.indus_loc
        # And within 2x of the paper's Indus line counts.
        assert row.indus_loc <= 2 * row.paper_indus_loc


def test_single_property_compile_and_render(benchmark):
    """Time of one compile+link+render cycle (multi_tenancy)."""
    checked = load_checked("multi_tenancy")
    baseline = upf_program()

    def cycle():
        compiled = compile_program(checked, name="multi_tenancy")
        linked = link(baseline, compiled)
        return count_loc(render(linked))

    loc = benchmark(cycle)
    assert loc > 0
