"""Benchmark harness configuration.

Every benchmark regenerates one table or figure of the paper and prints
the reproduced artifact (run with ``-s`` to see it inline; without
``-s`` pytest shows captured output for each test at the end when
``-rA`` is passed).  Timings come from pytest-benchmark.
"""
