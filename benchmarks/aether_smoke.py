"""Aether soak smoke for CI: a scaled-down (but still 50K-session)
soak with churn and traffic, plus the determinism contract — the
deterministic counters of a serial run and a 2-worker sharded run must
be identical, because every per-session decision is a pure function of
the UE index.

Usage: ``PYTHONPATH=src python benchmarks/aether_smoke.py``
"""

from __future__ import annotations

import sys

from repro.experiments.aetherbench import format_aether_bench, run_soak

SESSIONS = 50_000


def main() -> int:
    config = dict(sessions=SESSIONS, engine="codegen", batched=True,
                  batch_size=10_000, churn_every=10, replay_ues=500,
                  replay_repeats=5, flatness=False)
    print(f"aether smoke: {SESSIONS:,} sessions, serial...")
    serial = run_soak(**config, workers=1)
    print(format_aether_bench(serial))
    print(f"aether smoke: {SESSIONS:,} sessions, 2 workers...")
    sharded = run_soak(**config, workers=2)
    print(format_aether_bench(sharded))

    failures = []
    if serial["sessions"]["attached_peak"] != SESSIONS:
        failures.append(
            f"serial run attached {serial['sessions']['attached_peak']} "
            f"of {SESSIONS} sessions")
    if serial["churn"]["detached"] == 0:
        failures.append("churn phase detached nothing")
    replay = serial["replay"]
    if replay["delivered"] != replay["expected"]:
        failures.append(
            f"replay delivered {replay['delivered']} != expected "
            f"{replay['expected']}")
    if replay["reports"] != 0:
        failures.append(
            f"checker raised {replay['reports']} report(s) on allowed "
            "traffic")
    if serial["deterministic"] != sharded["deterministic"]:
        failures.append(
            "serial vs 2-worker deterministic counters diverged:\n"
            f"  serial:  {serial['deterministic']}\n"
            f"  sharded: {sharded['deterministic']}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"aether smoke OK: {SESSIONS:,} sessions, "
          f"{serial['churn']['detached']:,} churned, "
          f"{replay['delivered']:,} packets delivered, 0 reports, "
          "serial == 2-worker counters")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
