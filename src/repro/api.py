"""The stable public API facade.

Everything a script, notebook, or downstream harness needs lives here
behind a small set of verbs with uniform keyword arguments:

* :func:`compile_indus` — Indus source (or a bundled property name, or
  a ``.indus`` path) to a compiled checker;
* :func:`lint`         — dataflow diagnostics over a compiled checker
  (``repro lint`` is this verb on the command line);
* :func:`deploy`       — a compiled checker onto a topology (or a
  difftest scenario) as a running :class:`~repro.runtime.deployment.
  HydraDeployment`;
* :func:`run_scenario` — one differential-oracle scenario, end to end;
* :func:`difftest`     — a whole oracle campaign, serial or sharded;
* :func:`bench`        — the benchmark dispatcher:
  ``kind="engine"`` (interp/fast/codegen pps), ``kind="net"``
  (paper-rate traffic-plane replay), ``kind="aether"`` (the
  million-subscriber soak);
* :func:`aether`       — the Aether soak with full control over scale,
  churn, and sharding (``repro aether`` on the command line);
* :func:`generated_source` — the codegen engine's generated Python
  source for a pipeline (``repro dump-src`` is this verb on the
  command line).

Benchmark verbs return typed result objects — :class:`BenchResult`
(engine/net kinds) and :class:`SoakResult` (aether) — that *are* the
plain report dict (every existing key access keeps working) plus typed
accessors and JSON round-tripping.  :class:`DifftestSummary` is
re-exported here so downstream type hints never import internal
modules.

Uniform keywords across the verbs, always keyword-only:

* ``engine=``  — switch execution engine: ``"fast"``, ``"interp"``, or
  ``"codegen"`` (the generated-source batch engine);
* ``obs=``     — an :class:`~repro.obs.Observability` handle (metrics
  registry + tracer) threaded through every layer; fleet runs merge
  worker registries into it;
* ``seed=``    — the deterministic seed.  Scenarios are pure functions
  of their seed, so equal seeds mean equal behavior — including across
  worker counts;
* ``workers=`` — process fan-out where the verb supports it
  (:mod:`repro.parallel`); ``1`` means serial, in-process.

Stability promise: these signatures are the compatibility surface
the CLI, the experiment harnesses, and the tests are written against.
Internal modules (``repro.difftest.harness``, ``repro.parallel.runner``,
…) may reshuffle between releases; this module will not, short of a
deprecation cycle (see the shims in :mod:`repro.difftest.harness` for
the pattern).

Heavyweight subsystems are imported lazily inside each function so that
``import repro`` stays cheap and cycle-free.
"""

from __future__ import annotations

import json
import os
import warnings
from typing import Any, Callable, Dict, List, Optional, Union

__all__ = ["BenchResult", "DifftestSummary", "SoakResult", "aether",
           "bench", "compile_indus", "deploy", "difftest",
           "generated_source", "lint", "run_scenario"]

BENCH_KINDS = ("engine", "net", "aether")

_KIND_BY_BENCHMARK = {
    "switch_processing_rate": "engine",
    "net_replay": "net",
    "aether_soak": "aether",
}


class _ReportDict(dict):
    """A benchmark report: the plain JSON-ready dict the harnesses
    produce, with typed accessors layered on top.  Subclassing dict
    keeps every pre-existing ``result["..."]`` access working."""

    kind: str = "engine"

    @property
    def meta(self) -> Dict[str, Any]:
        """Provenance stamp: commit, timestamp, python, platform."""
        return self.get("meta", {})

    @property
    def history(self) -> List[Dict[str, Any]]:
        """Per-run records carried across report overwrites."""
        return self.get("history", [])

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        return json.dumps(self, indent=indent)


class BenchResult(_ReportDict):
    """An engine- or net-kind benchmark report (see :func:`bench`)."""

    def __init__(self, data: Any = (), kind: str = "engine"):
        super().__init__(data)
        self.kind = kind

    @property
    def engines(self) -> Dict[str, Any]:
        """Per-engine stats (engine kind; empty for net)."""
        return self.get("engines", {})

    @property
    def speedups(self) -> Dict[str, float]:
        return self.get("speedups", {})

    @property
    def sustained(self) -> Optional[bool]:
        """Net kind: offered rate sustained against the paper target."""
        return self.get("sustained")

    @classmethod
    def from_json(cls, text: str) -> "BenchResult":
        data = json.loads(text)
        return cls(data, kind=_KIND_BY_BENCHMARK.get(
            data.get("benchmark"), "engine"))


class SoakResult(_ReportDict):
    """An Aether soak report (see :func:`aether`)."""

    kind = "aether"

    @property
    def sessions(self) -> int:
        """Target concurrent session count of the soak."""
        return self.get("sessions", {}).get("target", 0)

    @property
    def attach_per_s(self) -> float:
        return self.get("attach", {}).get("per_s", 0.0)

    @property
    def attach_p99_us(self) -> float:
        return self.get("attach", {}).get("p99_us", 0.0)

    @property
    def replay_pps(self) -> float:
        return self.get("replay", {}).get("pps", 0.0)

    @property
    def reports(self) -> int:
        """Hydra reports raised during the replay phase."""
        return self.get("replay", {}).get("reports", 0)

    @property
    def peak_rss_bytes(self) -> int:
        return self.get("peak_rss_bytes", 0)

    @property
    def flat(self) -> Optional[bool]:
        """Per-packet cost at full scale within tolerance of the
        small-baseline probe (None when flatness was not measured)."""
        return self.get("flatness", {}).get("flat")

    @property
    def phase_seconds(self) -> Dict[str, float]:
        return self.get("phase_seconds", {})

    @classmethod
    def from_json(cls, text: str) -> "SoakResult":
        return cls(json.loads(text))


def __getattr__(name: str) -> Any:
    # DifftestSummary re-exports lazily: `import repro` must stay cheap,
    # and the difftest package pulls in the whole harness.
    if name == "DifftestSummary":
        from .difftest import DifftestSummary

        return DifftestSummary
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def compile_indus(program: str, *, name: Optional[str] = None,
                  optimize: bool = False) -> Any:
    """Compile an Indus checker to P4.

    ``program`` may be a bundled property name (``"loops"``, see
    ``python -m repro properties``), a path to an ``.indus`` file, or
    Indus source text itself.  ``optimize=True`` runs the dataflow
    optimizer (dead code/table/register elimination, constant folding,
    scratch-field coalescing — behaviorally identical, validated by the
    differential oracle).  Returns the
    :class:`~repro.compiler.codegen.CompiledChecker` that
    :func:`deploy` consumes.
    """
    from .compiler import compile_program
    from .properties import PROPERTIES, load_source

    if program in PROPERTIES:
        return compile_program(load_source(program),
                               name=name or program, optimize=optimize)
    if "\n" not in program and "{" not in program \
            and os.path.exists(program):
        with open(program) as handle:
            source = handle.read()
        default = os.path.splitext(os.path.basename(program))[0]
        return compile_program(source, name=name or default,
                               optimize=optimize)
    return compile_program(program, name=name or "checker",
                           optimize=optimize)


def lint(program: Any, *, name: Optional[str] = None,
         only: Optional[List[str]] = None) -> List[Any]:
    """Lint an Indus checker: dataflow diagnostics over the compiled IR.

    ``program`` accepts everything :func:`compile_indus` does, or an
    already-compiled :class:`~repro.compiler.codegen.CompiledChecker`.
    ``only`` restricts to specific rule ids (``["IH001", ...]``).
    Returns the deterministically ordered
    :class:`~repro.analysis.diagnostics.Diagnostic` list; each entry
    carries the rule id, severity, message, Indus source span, and a
    fix hint.
    """
    from .analysis import lint_compiled
    from .compiler.codegen import CompiledChecker

    if not isinstance(program, CompiledChecker):
        program = compile_indus(program, name=name)
    return lint_compiled(program, only=only)


def deploy(compiled: Any, *, scenario: Any = None, topology: Any = None,
           forwarding: Any = None, engine: str = "fast",
           obs: Any = None) -> Any:
    """Stand up a running deployment of a compiled checker.

    Either pass a difftest ``scenario=`` (everything else — topology,
    forwarding, routes — is derived from it), or pass ``topology=`` and
    ``forwarding=`` explicitly as
    :class:`~repro.runtime.deployment.HydraDeployment` would take them.
    Returns the live deployment: inject packets via
    ``deployment.network`` and read verdicts/reports off the collector.
    """
    if scenario is not None:
        from .difftest.harness import build_scenario_deployment

        return build_scenario_deployment(scenario, compiled,
                                         engine=engine, obs=obs)
    if topology is None or forwarding is None:
        raise TypeError(
            "deploy() needs either scenario=, or both topology= and "
            "forwarding=")
    from .runtime.deployment import HydraDeployment

    kwargs: Dict[str, Any] = {"engine": engine}
    if obs is not None:
        kwargs["obs"] = obs
    return HydraDeployment(topology, compiled, forwarding, **kwargs)


def run_scenario(scenario: Union[int, Any] = None, *,
                 seed: Optional[int] = None, obs: Any = None,
                 optimize: bool = False,
                 engines: Any = None) -> Any:
    """Run one differential-oracle scenario end to end: compile, deploy
    under both P4 engines, replay through the reference Indus monitor,
    compare all three.

    Pass a :class:`~repro.difftest.scenario.Scenario` (or its seed as a
    plain int), or ``seed=`` alone.  ``engines`` widens the engine set
    the oracle cross-checks (default ``("interp", "fast")``; add
    ``"codegen"`` for the generated-source engine).  Returns the
    :class:`~repro.difftest.harness.ScenarioResult`; ``result.ok`` is
    the oracle verdict.
    """
    from .difftest import gen_scenario
    from .difftest.harness import run_scenario as _run

    if scenario is None:
        if seed is None:
            raise TypeError("run_scenario() needs a scenario or seed=")
        scenario = gen_scenario(seed)
    elif isinstance(scenario, int):
        scenario = gen_scenario(scenario)
    registry = None
    if obs is not None and obs.registry.live:
        registry = obs.registry
    return _run(scenario, registry=registry, optimize=optimize,
                engines=engines)


def difftest(*, seed: int = 0, iters: int = 100, workers: int = 1,
             inject_bug: bool = False, stop_on_failure: bool = True,
             obs: Any = None, timeout_s: float = 60.0,
             quarantine_dir: str = "difftest_failures",
             progress: Optional[Callable[[str], None]] = None,
             optimize: bool = False, engines: Any = None) -> Any:
    """Run a differential-oracle campaign over ``iters`` seeds starting
    at ``seed``.

    ``workers > 1`` shards the seed range across that many processes
    (:func:`repro.parallel.run_fleet`) with per-scenario ``timeout_s``
    kill, crashed-worker respawn, and quarantine of seeds that take
    down their worker (reproducer bundles land in ``quarantine_dir``).
    For a fixed seed the verdict *set* is identical for any worker
    count.  ``engines`` widens the engine set each scenario
    cross-checks (default interp vs fast; add ``"codegen"``).
    Returns the :class:`~repro.difftest.DifftestSummary`.
    """
    from .difftest import run_difftest

    return run_difftest(seed=seed, iters=iters, inject_bug=inject_bug,
                        stop_on_failure=stop_on_failure,
                        progress=progress, obs=obs, workers=workers,
                        timeout_s=timeout_s,
                        quarantine_dir=quarantine_dir,
                        optimize=optimize, engines=engines)


def bench(*, kind: str = "engine", packets: int = 5000,
          replay: bool = True, workers: int = 1,
          out: Optional[str] = None, optimize: bool = False,
          engines: Any = None, net: bool = False,
          rate_pps: Optional[float] = None,
          duration_s: Optional[float] = None,
          seed: int = 5, sessions: Optional[int] = None,
          batched: bool = True,
          flatness: bool = True) -> "BenchResult":
    """Benchmark dispatcher — ``kind`` selects what is measured:

    * ``"engine"`` (default) — interp vs fast vs codegen packets/sec
      (plus the codegen engine's batch entry point), a campus-replay
      goodput parity check, and a metered metrics snapshot.  The timed
      pps measurement always runs serially in this process —
      co-scheduling would distort it; ``workers > 1`` offloads the side
      tasks (replay parity, metered snapshot) to a process pool.
      ``engines`` restricts which engines are timed.
    * ``"net"`` — the traffic-plane benchmark
      (:func:`repro.experiments.netbench.run_net_bench`): a fig12-style
      campus replay through the full simulated fabric in both the
      batched and event-per-packet network modes, with an exact-
      equivalence stamp and a sustained-rate verdict against the
      paper's 350K pps mirror rate.  ``rate_pps``/``duration_s`` shape
      the offered load (defaults 400K pps for 1 simulated second).
    * ``"aether"`` — a bench-scale Aether soak
      (:func:`repro.experiments.aetherbench.run_soak` via
      :func:`aether`): ``sessions`` concurrent subscribers (default
      50,000 here; the full million-session campaign runs through
      :func:`aether` / ``repro aether``), churn, live checkers, and the
      flatness probe.  ``workers`` shards the soak.

    Returns a :class:`BenchResult` (a :class:`SoakResult` for the
    aether kind) — the report dict with typed accessors.  Writing to
    ``out`` appends the run to the report's ``history`` list so the
    trajectory across commits is preserved.

    ``net=True`` is the deprecated spelling of ``kind="net"`` and
    routes identically.
    """
    if net:
        warnings.warn(
            "bench(net=True) is deprecated; use bench(kind='net')",
            DeprecationWarning, stacklevel=2)
        kind = "net"
    if kind not in BENCH_KINDS:
        raise ValueError(f"unknown bench kind {kind!r}; "
                         f"valid: {', '.join(BENCH_KINDS)}")
    if kind == "net":
        from .experiments.netbench import (DEFAULT_DURATION_S,
                                           DEFAULT_RATE_PPS, run_net_bench)

        engine = engines[0] if engines else "codegen"
        return BenchResult(run_net_bench(
            rate_pps=rate_pps if rate_pps is not None else DEFAULT_RATE_PPS,
            duration_s=(duration_s if duration_s is not None
                        else DEFAULT_DURATION_S),
            seed=seed, engine=engine, out_path=out), kind="net")
    if kind == "aether":
        engine = engines[0] if engines else "codegen"
        return aether(sessions=sessions if sessions is not None
                      else 50_000,
                      engine=engine, batched=batched, workers=workers,
                      flatness=flatness, out=out)
    from .experiments.bench import run_bench

    return BenchResult(
        run_bench(packets=packets, replay=replay, out_path=out,
                  workers=workers, optimize=optimize, engines=engines),
        kind="engine")


def aether(*, sessions: int = 1_000_000, engine: str = "codegen",
           batched: bool = True, workers: int = 1,
           batch_size: int = 10_000, churn_every: int = 10,
           replay_ues: int = 2_000, replay_repeats: int = 25,
           flatness: bool = True,
           out: Optional[str] = None) -> "SoakResult":
    """Soak the Aether testbed at scale (``repro aether``).

    Attaches ``sessions`` subscribers in bulk batches, churns every
    ``churn_every``-th one (detach + re-attach), then replays uplink
    and downlink traffic from ``replay_ues`` sampled UEs through the
    UPF with the application-filtering checker live.  ``flatness``
    additionally probes per-packet forwarding cost at a 10^4-session
    baseline and at full scale — the O(1) checker-state check.

    ``workers > 1`` shards the UE range round-robin across a process
    pool; every deterministic counter in the report is identical for
    any worker count.  Returns the :class:`SoakResult`; ``out`` writes
    ``BENCH_aether.json``-style history-carrying JSON.
    """
    from .experiments.aetherbench import run_soak

    return SoakResult(run_soak(
        sessions=sessions, engine=engine, batched=batched,
        workers=workers, batch_size=batch_size, churn_every=churn_every,
        replay_ues=replay_ues, replay_repeats=replay_repeats,
        flatness=flatness, out_path=out))


def generated_source(program: Union[int, str, Any], *,
                     name: Optional[str] = None,
                     optimize: bool = False) -> str:
    """The codegen engine's generated Python source for a pipeline.

    ``program`` accepts everything :func:`compile_indus` does — a
    bundled property name, an ``.indus`` path, Indus source text, or an
    already-compiled checker — plus a plain int, which is taken as a
    difftest scenario seed (the reproducer-bundle workflow: seeing the
    exact straight-line code an oracle divergence executed).  Returns
    the module source as emitted (one ``_process`` and one
    ``_process_batch`` function, specialized to the program).
    """
    from .compiler import standalone_program
    from .compiler.codegen import CompiledChecker
    from .p4.bmv2 import Bmv2Switch

    if isinstance(program, int):
        from .compiler import compile_program
        from .difftest.scenario import gen_scenario

        source = gen_scenario(program).source()
        compiled = compile_program(source, name=name or f"dt{program}",
                                   optimize=optimize)
    elif isinstance(program, CompiledChecker):
        compiled = program
    else:
        compiled = compile_indus(program, name=name, optimize=optimize)
    switch = Bmv2Switch(standalone_program(compiled), name="dump",
                        switch_id=1, engine="codegen")
    return switch._fast.source
