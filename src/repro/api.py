"""The stable public API facade.

Everything a script, notebook, or downstream harness needs lives here
behind six verbs with uniform keyword arguments:

* :func:`compile_indus` — Indus source (or a bundled property name, or
  a ``.indus`` path) to a compiled checker;
* :func:`lint`         — dataflow diagnostics over a compiled checker
  (``repro lint`` is this verb on the command line);
* :func:`deploy`       — a compiled checker onto a topology (or a
  difftest scenario) as a running :class:`~repro.runtime.deployment.
  HydraDeployment`;
* :func:`run_scenario` — one differential-oracle scenario, end to end;
* :func:`difftest`     — a whole oracle campaign, serial or sharded;
* :func:`bench`        — the engine throughput benchmark;
* :func:`generated_source` — the codegen engine's generated Python
  source for a pipeline (``repro dump-src`` is this verb on the
  command line).

Uniform keywords across the verbs, always keyword-only:

* ``engine=``  — switch execution engine: ``"fast"``, ``"interp"``, or
  ``"codegen"`` (the generated-source batch engine);
* ``obs=``     — an :class:`~repro.obs.Observability` handle (metrics
  registry + tracer) threaded through every layer; fleet runs merge
  worker registries into it;
* ``seed=``    — the deterministic seed.  Scenarios are pure functions
  of their seed, so equal seeds mean equal behavior — including across
  worker counts;
* ``workers=`` — process fan-out where the verb supports it
  (:mod:`repro.parallel`); ``1`` means serial, in-process.

Stability promise: these six signatures are the compatibility surface
the CLI, the experiment harnesses, and the tests are written against.
Internal modules (``repro.difftest.harness``, ``repro.parallel.runner``,
…) may reshuffle between releases; this module will not, short of a
deprecation cycle (see the shims in :mod:`repro.difftest.harness` for
the pattern).

Heavyweight subsystems are imported lazily inside each function so that
``import repro`` stays cheap and cycle-free.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, List, Optional, Union

__all__ = ["bench", "compile_indus", "deploy", "difftest",
           "generated_source", "lint", "run_scenario"]


def compile_indus(program: str, *, name: Optional[str] = None,
                  optimize: bool = False) -> Any:
    """Compile an Indus checker to P4.

    ``program`` may be a bundled property name (``"loops"``, see
    ``python -m repro properties``), a path to an ``.indus`` file, or
    Indus source text itself.  ``optimize=True`` runs the dataflow
    optimizer (dead code/table/register elimination, constant folding,
    scratch-field coalescing — behaviorally identical, validated by the
    differential oracle).  Returns the
    :class:`~repro.compiler.codegen.CompiledChecker` that
    :func:`deploy` consumes.
    """
    from .compiler import compile_program
    from .properties import PROPERTIES, load_source

    if program in PROPERTIES:
        return compile_program(load_source(program),
                               name=name or program, optimize=optimize)
    if "\n" not in program and "{" not in program \
            and os.path.exists(program):
        with open(program) as handle:
            source = handle.read()
        default = os.path.splitext(os.path.basename(program))[0]
        return compile_program(source, name=name or default,
                               optimize=optimize)
    return compile_program(program, name=name or "checker",
                           optimize=optimize)


def lint(program: Any, *, name: Optional[str] = None,
         only: Optional[List[str]] = None) -> List[Any]:
    """Lint an Indus checker: dataflow diagnostics over the compiled IR.

    ``program`` accepts everything :func:`compile_indus` does, or an
    already-compiled :class:`~repro.compiler.codegen.CompiledChecker`.
    ``only`` restricts to specific rule ids (``["IH001", ...]``).
    Returns the deterministically ordered
    :class:`~repro.analysis.diagnostics.Diagnostic` list; each entry
    carries the rule id, severity, message, Indus source span, and a
    fix hint.
    """
    from .analysis import lint_compiled
    from .compiler.codegen import CompiledChecker

    if not isinstance(program, CompiledChecker):
        program = compile_indus(program, name=name)
    return lint_compiled(program, only=only)


def deploy(compiled: Any, *, scenario: Any = None, topology: Any = None,
           forwarding: Any = None, engine: str = "fast",
           obs: Any = None) -> Any:
    """Stand up a running deployment of a compiled checker.

    Either pass a difftest ``scenario=`` (everything else — topology,
    forwarding, routes — is derived from it), or pass ``topology=`` and
    ``forwarding=`` explicitly as
    :class:`~repro.runtime.deployment.HydraDeployment` would take them.
    Returns the live deployment: inject packets via
    ``deployment.network`` and read verdicts/reports off the collector.
    """
    if scenario is not None:
        from .difftest.harness import build_scenario_deployment

        return build_scenario_deployment(scenario, compiled,
                                         engine=engine, obs=obs)
    if topology is None or forwarding is None:
        raise TypeError(
            "deploy() needs either scenario=, or both topology= and "
            "forwarding=")
    from .runtime.deployment import HydraDeployment

    kwargs: Dict[str, Any] = {"engine": engine}
    if obs is not None:
        kwargs["obs"] = obs
    return HydraDeployment(topology, compiled, forwarding, **kwargs)


def run_scenario(scenario: Union[int, Any] = None, *,
                 seed: Optional[int] = None, obs: Any = None,
                 optimize: bool = False,
                 engines: Any = None) -> Any:
    """Run one differential-oracle scenario end to end: compile, deploy
    under both P4 engines, replay through the reference Indus monitor,
    compare all three.

    Pass a :class:`~repro.difftest.scenario.Scenario` (or its seed as a
    plain int), or ``seed=`` alone.  ``engines`` widens the engine set
    the oracle cross-checks (default ``("interp", "fast")``; add
    ``"codegen"`` for the generated-source engine).  Returns the
    :class:`~repro.difftest.harness.ScenarioResult`; ``result.ok`` is
    the oracle verdict.
    """
    from .difftest import gen_scenario
    from .difftest.harness import run_scenario as _run

    if scenario is None:
        if seed is None:
            raise TypeError("run_scenario() needs a scenario or seed=")
        scenario = gen_scenario(seed)
    elif isinstance(scenario, int):
        scenario = gen_scenario(scenario)
    registry = None
    if obs is not None and obs.registry.live:
        registry = obs.registry
    return _run(scenario, registry=registry, optimize=optimize,
                engines=engines)


def difftest(*, seed: int = 0, iters: int = 100, workers: int = 1,
             inject_bug: bool = False, stop_on_failure: bool = True,
             obs: Any = None, timeout_s: float = 60.0,
             quarantine_dir: str = "difftest_failures",
             progress: Optional[Callable[[str], None]] = None,
             optimize: bool = False, engines: Any = None) -> Any:
    """Run a differential-oracle campaign over ``iters`` seeds starting
    at ``seed``.

    ``workers > 1`` shards the seed range across that many processes
    (:func:`repro.parallel.run_fleet`) with per-scenario ``timeout_s``
    kill, crashed-worker respawn, and quarantine of seeds that take
    down their worker (reproducer bundles land in ``quarantine_dir``).
    For a fixed seed the verdict *set* is identical for any worker
    count.  ``engines`` widens the engine set each scenario
    cross-checks (default interp vs fast; add ``"codegen"``).
    Returns the :class:`~repro.difftest.DifftestSummary`.
    """
    from .difftest import run_difftest

    return run_difftest(seed=seed, iters=iters, inject_bug=inject_bug,
                        stop_on_failure=stop_on_failure,
                        progress=progress, obs=obs, workers=workers,
                        timeout_s=timeout_s,
                        quarantine_dir=quarantine_dir,
                        optimize=optimize, engines=engines)


def bench(*, packets: int = 5000, replay: bool = True, workers: int = 1,
          out: Optional[str] = None, optimize: bool = False,
          engines: Any = None, net: bool = False,
          rate_pps: Optional[float] = None,
          duration_s: Optional[float] = None,
          seed: int = 5) -> Dict[str, Any]:
    """Benchmark the behavioral model: interp vs fast vs codegen
    packets/sec (plus the codegen engine's batch entry point), a
    campus-replay goodput parity check, and a metered metrics snapshot.

    The timed pps measurement always runs serially in this process —
    co-scheduling would distort it; ``workers > 1`` offloads the side
    tasks (replay parity, metered snapshot) to a process pool instead.
    ``engines`` restricts which engines are timed (default all three).
    Returns the report dict (written to ``out`` as JSON when given;
    each write appends the run to the report's ``history`` list so the
    pps trajectory across commits is preserved).

    ``net=True`` switches to the traffic-plane benchmark instead
    (:func:`repro.experiments.netbench.run_net_bench`): a fig12-style
    campus replay through the full simulated fabric in both the batched
    and event-per-packet network modes, with an exact-equivalence stamp
    and a sustained-rate verdict against the paper's 350K pps mirror
    rate.  ``rate_pps``/``duration_s`` shape the offered load (defaults
    400K pps for 1 simulated second); ``out`` then defaults to
    ``BENCH_net.json`` at the CLI.  ``packets``/``replay``/``workers``/
    ``optimize`` do not apply to the net benchmark.
    """
    if net:
        from .experiments.netbench import (DEFAULT_DURATION_S,
                                           DEFAULT_RATE_PPS, run_net_bench)

        engine = engines[0] if engines else "codegen"
        return run_net_bench(
            rate_pps=rate_pps if rate_pps is not None else DEFAULT_RATE_PPS,
            duration_s=(duration_s if duration_s is not None
                        else DEFAULT_DURATION_S),
            seed=seed, engine=engine, out_path=out)
    from .experiments.bench import run_bench

    return run_bench(packets=packets, replay=replay, out_path=out,
                     workers=workers, optimize=optimize, engines=engines)


def generated_source(program: Union[int, str, Any], *,
                     name: Optional[str] = None,
                     optimize: bool = False) -> str:
    """The codegen engine's generated Python source for a pipeline.

    ``program`` accepts everything :func:`compile_indus` does — a
    bundled property name, an ``.indus`` path, Indus source text, or an
    already-compiled checker — plus a plain int, which is taken as a
    difftest scenario seed (the reproducer-bundle workflow: seeing the
    exact straight-line code an oracle divergence executed).  Returns
    the module source as emitted (one ``_process`` and one
    ``_process_batch`` function, specialized to the program).
    """
    from .compiler import standalone_program
    from .compiler.codegen import CompiledChecker
    from .p4.bmv2 import Bmv2Switch

    if isinstance(program, int):
        from .compiler import compile_program
        from .difftest.scenario import gen_scenario

        source = gen_scenario(program).source()
        compiled = compile_program(source, name=name or f"dt{program}",
                                   optimize=optimize)
    elif isinstance(program, CompiledChecker):
        compiled = program
    else:
        compiled = compile_indus(program, name=name, optimize=optimize)
    switch = Bmv2Switch(standalone_program(compiled), name="dump",
                        switch_id=1, engine="codegen")
    return switch._fast.source
