"""Control-flow graphs over P4 IR statement bodies.

The analysis framework sees a compiled checker the way the hardware
does: as a handful of *placements* — the virtual linear pipelines a
switch of a given role actually executes (mirroring
:func:`repro.compiler.linker.link` exactly, but **sharing** the
fragment statement objects instead of deep-copying them, so dataflow
facts computed on a placement attach to the very statements the
optimizer rewrites).

A :class:`CFG` is built per placement (and per action body): structured
``IfStmt``/``ApplyTable`` statements become branch nodes whose bodies
chain to a common successor.  ``MarkToDrop`` is deliberately *not* a
terminator — in this substrate (as on bmv2) it sets the drop flag and
execution continues to the end of the pipeline, which is exactly why
the post-drop lint rule exists.

Parser coverage: :func:`always_extracted` computes the header binds
guaranteed to be extracted on every path from the parse-graph start
state to ``accept`` — the must-valid seed set for the
possibly-invalid-table-key rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from ..net.topology import CORE, EDGE
from ..p4 import ir

ENTRY = "entry"
EXIT = "exit"
STMT = "stmt"


@dataclass
class CFGNode:
    """One node of a control-flow graph.

    ``stmt`` is the IR statement the node evaluates (``None`` for the
    synthetic entry/exit nodes).  A structured statement contributes its
    *shallow* part only — an ``IfStmt`` node evaluates the condition, an
    ``ApplyTable`` node the key match and action — while the nested
    bodies become separate nodes downstream.
    """

    index: int
    kind: str = STMT
    stmt: Optional[ir.P4Stmt] = None
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)


@dataclass
class CFG:
    """A control-flow graph with unique entry and exit nodes."""

    nodes: List[CFGNode] = field(default_factory=list)
    entry: int = 0
    exit: int = 0

    def stmt_nodes(self) -> List[CFGNode]:
        return [n for n in self.nodes if n.stmt is not None]

    def __len__(self) -> int:
        return len(self.nodes)


def build_cfg(stmts: Sequence[ir.P4Stmt]) -> CFG:
    """Build the CFG of a statement body.

    Every statement object in ``stmts`` (recursively) gets exactly one
    node; branch arms rejoin at the next statement in their parent
    body.  The returned graph always has ``entry -> ... -> exit``.
    """
    cfg = CFG()

    def new_node(kind: str, stmt: Optional[ir.P4Stmt] = None) -> int:
        node = CFGNode(index=len(cfg.nodes), kind=kind, stmt=stmt)
        cfg.nodes.append(node)
        return node.index

    def edge(src: int, dst: int) -> None:
        cfg.nodes[src].succs.append(dst)
        cfg.nodes[dst].preds.append(src)

    def chain(body: Sequence[ir.P4Stmt], frontier: List[int]) -> List[int]:
        """Thread ``body`` after the ``frontier`` nodes; returns the new
        frontier (the nodes falling through to whatever comes next)."""
        for stmt in body:
            node = new_node(STMT, stmt)
            for prev in frontier:
                edge(prev, node)
            if isinstance(stmt, ir.IfStmt):
                then_exits = chain(stmt.then_body, [node])
                else_exits = chain(stmt.else_body, [node])
                # An empty arm falls straight through the branch node.
                frontier = list(dict.fromkeys(then_exits + else_exits))
            elif isinstance(stmt, ir.ApplyTable):
                hit_exits = chain(stmt.hit_body, [node])
                miss_exits = chain(stmt.miss_body, [node])
                frontier = list(dict.fromkeys(hit_exits + miss_exits))
            else:
                frontier = [node]
        return frontier

    cfg.entry = new_node(ENTRY)
    exits = chain(stmts, [cfg.entry])
    cfg.exit = new_node(EXIT)
    for prev in exits:
        edge(prev, cfg.exit)
    return cfg


# ---------------------------------------------------------------------------
# Placements: the virtual pipelines a compiled checker runs in
# ---------------------------------------------------------------------------

from ..compiler.linker import LAST_HOP, PER_HOP  # noqa: E402  (cycle-free)


@dataclass
class PlacementView:
    """One (role, check-mode) linearization of a compiled checker.

    ``stmts`` is the ingress+egress pipeline body a switch of ``role``
    executes under ``check_mode``, built from the *same* statement
    objects as the compiled fragments — wrapper ``IfStmt`` nodes mirror
    the conditions the linker synthesizes at link time (telemetry
    validity guards, the last-hop gate, per-hop reject enforcement).
    """

    name: str
    role: str
    check_mode: str
    stmts: List[ir.P4Stmt]
    cfg: CFG


def _wrap_valid(compiled, body: List[ir.P4Stmt]) -> ir.IfStmt:
    return ir.IfStmt(cond=ir.ValidRef(compiled.hydra_name), then_body=body)


def _enforce_reject(compiled) -> ir.IfStmt:
    return ir.IfStmt(
        cond=ir.BinExpr("==", ir.FieldRef(f"meta.{compiled.reject_meta}"),
                        ir.Const(1, 1)),
        then_body=[ir.MarkToDrop()],
    )


def _last_hop_gate(compiled, body: List[ir.P4Stmt]) -> ir.IfStmt:
    is_last = ir.BinExpr("==", ir.FieldRef(f"meta.{compiled.last_hop_meta}"),
                         ir.Const(1, 1))
    return ir.IfStmt(
        cond=ir.BinExpr("&&", ir.ValidRef(compiled.hydra_name), is_last),
        then_body=body,
    )


def checker_placements(compiled) -> List[PlacementView]:
    """The four placements a compiled checker can execute in.

    A statement is safe to drop only if it is dead in *every* placement
    that contains it — the optimizer and the lint passes both quantify
    over this list rather than assuming a particular deployment.
    """
    core_prologue = [s for s in compiled.egress_prologue
                     if not (isinstance(s, ir.ApplyTable)
                             and s.table == compiled.inject_table)]
    views: List[PlacementView] = []

    def add(name: str, role: str, mode: str,
            stmts: List[ir.P4Stmt]) -> None:
        views.append(PlacementView(name=name, role=role, check_mode=mode,
                                   stmts=stmts, cfg=build_cfg(stmts)))

    add("edge-last_hop", EDGE, LAST_HOP,
        list(compiled.ingress_prologue) + list(compiled.init_stmts)
        + list(compiled.egress_prologue)
        + [_wrap_valid(compiled, compiled.tele_stmts),
           _last_hop_gate(compiled, (list(compiled.check_stmts)
                                     + list(compiled.strip_stmts)))])
    add("edge-per_hop", EDGE, PER_HOP,
        list(compiled.ingress_prologue) + list(compiled.init_stmts)
        + list(compiled.egress_prologue)
        + [_wrap_valid(compiled, compiled.tele_stmts),
           _wrap_valid(compiled, (list(compiled.check_stmts)
                                  + [_enforce_reject(compiled)])),
           _last_hop_gate(compiled, list(compiled.strip_stmts))])
    add("core-last_hop", CORE, LAST_HOP,
        list(core_prologue)
        + [_wrap_valid(compiled, compiled.tele_stmts)])
    add("core-per_hop", CORE, PER_HOP,
        list(core_prologue)
        + [_wrap_valid(compiled, compiled.tele_stmts),
           _wrap_valid(compiled, (list(compiled.check_stmts)
                                  + [_enforce_reject(compiled)]))])
    return views


# ---------------------------------------------------------------------------
# Parser coverage
# ---------------------------------------------------------------------------

def always_extracted(parser: ir.ParserSpec) -> Set[str]:
    """Header binds extracted on *every* path from the start state to
    ``accept`` — the binds a table key may reference without a validity
    guard.  Stack extracts are excluded (their depth is data-dependent).
    Computed as a forward must-analysis over the parse graph."""
    states = {s.name: s for s in parser.states}
    if parser.start not in states:
        return set()

    def state_binds(state: ir.ParserState) -> Set[str]:
        return {ex.bind for ex in state.extracts
                if isinstance(ex, ir.Extract)}

    # must_in[state] = intersection over predecessors of must_out;
    # union lattice complement, so iterate to a fixpoint from TOP.
    all_binds: Set[str] = set()
    for s in parser.states:
        all_binds |= state_binds(s)
    must_in: Dict[str, Set[str]] = {name: set(all_binds) for name in states}
    must_in[parser.start] = set()
    accept_in: Optional[Set[str]] = None
    changed = True
    while changed:
        changed = False
        accept_in = None
        for name, state in states.items():
            out = must_in[name] | state_binds(state)
            for tr in state.transitions:
                target = tr.next_state
                if target == ir.ACCEPT or target == ir.REJECT_STATE:
                    if target == ir.ACCEPT:
                        accept_in = (set(out) if accept_in is None
                                     else accept_in & out)
                    continue
                if target in states and not must_in[target] <= out:
                    narrowed = must_in[target] & out
                    if narrowed != must_in[target]:
                        must_in[target] = narrowed
                        changed = True
    return accept_in if accept_in is not None else set()


__all__ = [
    "CFG", "CFGNode", "ENTRY", "EXIT", "STMT", "PlacementView",
    "always_extracted", "build_cfg", "checker_placements",
]
