"""Oracle-validated optimizer over compiled checker IR.

Pipeline (all in place, fixpoint-iterated):

1. **Constant folding** — pure expressions over constants evaluate at
   compile time with *exactly* the reference interpreter's semantics
   (width masking, zero-divisor yields 0, shift amounts mod width,
   short-circuit booleans); ``if`` statements with constant conditions
   collapse to the taken arm.
2. **Liveness-driven DCE** — a statement is removed only when it is
   dead in *every* placement (role × check-mode) that contains it, per
   :func:`~repro.analysis.cfg.checker_placements`.  Anything observable
   is a root and never a candidate: register writes, digests,
   header/validity mutation, drops, standard-metadata writes, and the
   hop-protocol ABI tables (inject/strip/switch-id).
3. **Dead-table / dead-action / dead-register pruning** — tables no
   longer applied anywhere are dropped (and the control-routing maps
   updated so the deployment runtime never programs a ghost table);
   actions no remaining table references follow; registers with zero
   reads *and* zero writes follow.
4. **Scratch-field coalescing** — equal-width compiler-generated
   metadata fields whose live ranges never overlap in any placement
   share one PHV container.  Hop-protocol marks and control-plane
   values are excluded; the interference graph is the union over all
   placements, so the merge is safe wherever the checker lands.
5. **Metadata pruning** — struct entries nothing references anymore
   disappear, which is what moves the Tofino PHV number.

The invariant the whole pass is validated against: an optimized
program is verdict-, report-, and register-identical to the
unoptimized one under the three-level differential oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..compiler.codegen import CompiledChecker
from ..net.topology import EDGE
from ..p4 import ir
from .cfg import checker_placements
from .dataflow import cfg_effects, liveness

_FRAGMENT_ATTRS = ("ingress_prologue", "init_stmts", "egress_prologue",
                   "tele_stmts", "check_stmts", "strip_stmts")

_MASKED_OPS = {"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
               "absdiff"}
_BOOL_OPS = {"==", "!=", "<", "<=", ">", ">=", "&&", "||"}


@dataclass
class OptimizeStats:
    """What one :func:`optimize_compiled` run changed."""

    folded_exprs: int = 0
    removed_stmts: int = 0
    removed_tables: List[str] = field(default_factory=list)
    removed_actions: List[str] = field(default_factory=list)
    removed_registers: List[str] = field(default_factory=list)
    coalesced_fields: List[Tuple[str, str]] = field(default_factory=list)
    removed_metadata: List[Tuple[str, int]] = field(default_factory=list)
    # SSA-strength passes (PR-6): reads rewritten to constants or copy
    # sources, recomputations replaced by copies, branches decided under
    # known table defaults, and definitions the SSA def-use chains prove
    # unread in every placement.
    ssa_copyprop: int = 0
    ssa_cse: int = 0
    ssa_branches: int = 0
    ssa_dce: int = 0

    @property
    def removed_metadata_bits(self) -> int:
        return sum(width for _, width in self.removed_metadata)

    def changed(self) -> bool:
        return bool(self.folded_exprs or self.removed_stmts
                    or self.removed_tables or self.removed_registers
                    or self.coalesced_fields or self.removed_metadata
                    or self.ssa_copyprop or self.ssa_cse
                    or self.ssa_branches or self.ssa_dce)


# ---------------------------------------------------------------------------
# 1. Constant folding (reference-interpreter semantics, bit for bit)
# ---------------------------------------------------------------------------

def _const_value(expr: ir.P4Expr) -> Optional[int]:
    if isinstance(expr, ir.Const):
        return expr.value & ((1 << expr.width) - 1)
    return None


def _fold_expr(expr: ir.P4Expr, stats: OptimizeStats) -> ir.P4Expr:
    if isinstance(expr, ir.UnExpr):
        operand = _fold_expr(expr.operand, stats)
        value = _const_value(operand)
        if value is not None:
            stats.folded_exprs += 1
            if expr.op == "!":
                return ir.Const(0 if value else 1, 1, span=expr.span)
            width = ir.unexpr_width(expr)
            mask = (1 << width) - 1
            result = (~value if expr.op == "~" else -value) & mask
            return ir.Const(result, width, span=expr.span)
        if operand is not expr.operand:
            return ir.UnExpr(expr.op, operand, expr.width, span=expr.span)
        return expr
    if isinstance(expr, ir.BinExpr):
        left = _fold_expr(expr.left, stats)
        right = _fold_expr(expr.right, stats)
        folded = _fold_bin(expr, left, right)
        if folded is not None:
            stats.folded_exprs += 1
            return folded
        if left is not expr.left or right is not expr.right:
            return ir.BinExpr(expr.op, left, right, expr.width,
                              span=expr.span)
        return expr
    return expr


def _fold_bin(expr: ir.BinExpr, left: ir.P4Expr,
              right: ir.P4Expr) -> Optional[ir.Const]:
    op = expr.op
    lv, rv = _const_value(left), _const_value(right)
    # Expressions are pure on this substrate, so a deciding constant on
    # either side of a boolean settles the whole expression.
    if op == "&&":
        if lv == 0 or rv == 0:
            return ir.Const(0, 1, span=expr.span)
        if lv is not None and rv is not None:
            return ir.Const(1, 1, span=expr.span)
        return None
    if op == "||":
        if (lv is not None and lv != 0) or (rv is not None and rv != 0):
            return ir.Const(1, 1, span=expr.span)
        if lv == 0 and rv == 0:
            return ir.Const(0, 1, span=expr.span)
        return None
    if lv is None or rv is None:
        return None
    mask = (1 << expr.width) - 1
    if op == "+":
        value, width = (lv + rv) & mask, expr.width
    elif op == "-":
        value, width = (lv - rv) & mask, expr.width
    elif op == "*":
        value, width = (lv * rv) & mask, expr.width
    elif op == "/":
        value, width = ((lv // rv) & mask if rv else 0), expr.width
    elif op == "%":
        value, width = ((lv % rv) & mask if rv else 0), expr.width
    elif op == "&":
        value, width = (lv & rv) & mask, expr.width
    elif op == "|":
        value, width = (lv | rv) & mask, expr.width
    elif op == "^":
        value, width = (lv ^ rv) & mask, expr.width
    elif op == "<<":
        value, width = (lv << (rv % expr.width)) & mask, expr.width
    elif op == ">>":
        value, width = (lv >> (rv % expr.width)) & mask, expr.width
    elif op in ("==", "!=", "<", "<=", ">", ">="):
        value = int({"==": lv == rv, "!=": lv != rv, "<": lv < rv,
                     "<=": lv <= rv, ">": lv > rv, ">=": lv >= rv}[op])
        width = 1
    elif op == "absdiff":
        diff = (lv - rv) & mask
        value, width = min(diff, (-diff) & mask), expr.width
    elif op in ("min", "max"):
        value = min(lv, rv) if op == "min" else max(lv, rv)
        width = max(_expr_width_of(left), _expr_width_of(right))
    else:
        return None
    return ir.Const(value, max(width, value.bit_length(), 1),
                    span=expr.span)


def _expr_width_of(expr: ir.P4Expr) -> int:
    return expr.width if isinstance(expr, ir.Const) else 32


def _fold_stmts(stmts: Sequence[ir.P4Stmt],
                stats: OptimizeStats) -> List[ir.P4Stmt]:
    out: List[ir.P4Stmt] = []
    for stmt in stmts:
        if isinstance(stmt, ir.AssignStmt):
            stmt.value = _fold_expr(stmt.value, stats)
        elif isinstance(stmt, ir.IfStmt):
            stmt.cond = _fold_expr(stmt.cond, stats)
            stmt.then_body[:] = _fold_stmts(stmt.then_body, stats)
            stmt.else_body[:] = _fold_stmts(stmt.else_body, stats)
            cond = _const_value(stmt.cond)
            if cond is not None:
                taken = stmt.then_body if cond else stmt.else_body
                stats.removed_stmts += 1
                out.extend(taken)
                continue
        elif isinstance(stmt, ir.ApplyTable):
            stmt.hit_body[:] = _fold_stmts(stmt.hit_body, stats)
            stmt.miss_body[:] = _fold_stmts(stmt.miss_body, stats)
        elif isinstance(stmt, ir.RegisterRead):
            stmt.index = _fold_expr(stmt.index, stats)
        elif isinstance(stmt, ir.RegisterWrite):
            stmt.index = _fold_expr(stmt.index, stats)
            stmt.value = _fold_expr(stmt.value, stats)
        elif isinstance(stmt, ir.Digest):
            stmt.fields = [_fold_expr(f, stats) for f in stmt.fields]
        out.append(stmt)
    return out


# ---------------------------------------------------------------------------
# 1b. SSA-strength passes: copy propagation, CSE, dead-branch pruning
# ---------------------------------------------------------------------------

def _ssa_round(compiled: CompiledChecker, stats: OptimizeStats) -> bool:
    """One SSA propose/merge/apply sweep over all placements.

    Each placement lifts to SSA independently (edge placements get a
    :class:`~repro.p4.ssa.StdBarrier` where the unseen forwarding
    pipeline runs between the checker's ingress and egress fragments;
    core placements start mid-pipeline, so standard metadata is unknown
    at their entry).  Only proposals every containing placement agrees
    on are applied — to the shared fragment statement objects, so one
    rewrite is seen by every deployment.  Returns True if anything
    changed.
    """
    from ..p4.ssa import (SSAFunction, SSAInfo, StdBarrier, UNKNOWN_STD,
                          apply_proposals, merge_proposals, propose)

    info = SSAInfo.for_compiled(compiled)
    ingress_len = len(compiled.ingress_prologue) + len(compiled.init_stmts)
    all_props = []
    for view in checker_placements(compiled):
        if view.role == EDGE:
            stmts = list(view.stmts)
            stmts.insert(ingress_len, StdBarrier())
            fn = SSAFunction.lift(stmts, info)
        else:
            fn = SSAFunction.lift(view.stmts, info, std_entry=UNKNOWN_STD)
        all_props.append(propose(fn))
    merged = merge_proposals(all_props)
    counts = apply_proposals(
        [getattr(compiled, attr) for attr in _FRAGMENT_ATTRS], merged)
    stats.ssa_copyprop += counts["copyprop"]
    stats.ssa_cse += counts["cse"]
    stats.ssa_branches += counts["branch"]
    stats.ssa_dce += counts["dce"]
    return any(counts.values())


# ---------------------------------------------------------------------------
# 2. Liveness-driven dead-code elimination
# ---------------------------------------------------------------------------

def _abi_tables(compiled: CompiledChecker) -> Set[str]:
    return {compiled.inject_table, compiled.strip_table,
            compiled.switch_id_table}


def _dce_round(compiled: CompiledChecker, stats: OptimizeStats) -> bool:
    """One removal sweep; returns True if anything changed."""
    abi = _abi_tables(compiled)
    needed: Set[int] = set()
    for view in checker_placements(compiled):
        effects = cfg_effects(view.cfg, compiled.tables, compiled.actions)
        _, live_out = liveness(view.cfg, effects)
        for node in view.cfg.nodes:
            stmt = node.stmt
            if stmt is None:
                continue
            eff = effects[node.index]
            if isinstance(stmt, (ir.AssignStmt, ir.RegisterRead)):
                if eff.side_effects or eff.defs & live_out[node.index]:
                    needed.add(id(stmt))
            elif isinstance(stmt, ir.ApplyTable):
                if (stmt.table in abi or eff.side_effects
                        or eff.defs & live_out[node.index]):
                    needed.add(id(stmt))
            elif isinstance(stmt, ir.IfStmt):
                pass  # kept structurally iff a live statement survives inside
            else:
                needed.add(id(stmt))  # side-effecting leaf

    def sweep(stmts: Sequence[ir.P4Stmt]) -> List[ir.P4Stmt]:
        out: List[ir.P4Stmt] = []
        for stmt in stmts:
            if isinstance(stmt, ir.IfStmt):
                stmt.then_body[:] = sweep(stmt.then_body)
                stmt.else_body[:] = sweep(stmt.else_body)
                if stmt.then_body or stmt.else_body:
                    out.append(stmt)
                else:
                    stats.removed_stmts += 1
            elif isinstance(stmt, ir.ApplyTable):
                stmt.hit_body[:] = sweep(stmt.hit_body)
                stmt.miss_body[:] = sweep(stmt.miss_body)
                if (id(stmt) in needed or stmt.hit_body
                        or stmt.miss_body):
                    out.append(stmt)
                else:
                    stats.removed_stmts += 1
            elif id(stmt) in needed:
                out.append(stmt)
            else:
                stats.removed_stmts += 1
        return out

    before = stats.removed_stmts
    for attr in _FRAGMENT_ATTRS:
        stmts = getattr(compiled, attr)
        stmts[:] = sweep(stmts)
    return stats.removed_stmts != before


# ---------------------------------------------------------------------------
# 3. Structure pruning
# ---------------------------------------------------------------------------

def _applied_table_names(compiled: CompiledChecker) -> Set[str]:
    names: Set[str] = set()
    for attr in _FRAGMENT_ATTRS:
        for stmt in ir.walk_stmts(getattr(compiled, attr)):
            if isinstance(stmt, ir.ApplyTable):
                names.add(stmt.table)
    for action in compiled.actions.values():
        for stmt in ir.walk_stmts(action.body):
            if isinstance(stmt, ir.ApplyTable):
                names.add(stmt.table)
    return names


def _prune_structures(compiled: CompiledChecker,
                      stats: OptimizeStats) -> None:
    abi = _abi_tables(compiled)
    applied = _applied_table_names(compiled)
    dead_tables = [name for name in compiled.tables
                   if name not in applied and name not in abi]
    for name in dead_tables:
        del compiled.tables[name]
        stats.removed_tables.append(name)
    if dead_tables:
        for control, table_names in list(compiled.control_tables.items()):
            keep = [t for t in table_names if t in compiled.tables]
            if len(keep) == len(table_names):
                continue
            widths = compiled.control_value_widths.get(control, [])
            # Scalar controls carry an empty width list; only dict/set
            # controls keep widths parallel to their lookup tables.
            if len(widths) == len(table_names):
                compiled.control_value_widths[control] = [
                    w for t, w in zip(table_names, widths)
                    if t in compiled.tables]
            # Keep the (possibly empty) entry: the deployment runtime
            # iterates these lists when a scenario programs the
            # control, and an absent key would crash it.
            compiled.control_tables[control] = keep

    referenced_actions: Set[str] = set()
    for table in compiled.tables.values():
        referenced_actions.update(table.actions)
        if table.default_action is not None:
            referenced_actions.add(table.default_action[0])
    dead_actions = [name for name in compiled.actions
                    if name not in referenced_actions]
    for name in dead_actions:
        del compiled.actions[name]
        stats.removed_actions.append(name)

    touched: Dict[str, Tuple[int, int]] = {}
    for _, stmt in _iter_all_stmts(compiled):
        if isinstance(stmt, ir.RegisterRead):
            reads, writes = touched.get(stmt.register, (0, 0))
            touched[stmt.register] = (reads + 1, writes)
        elif isinstance(stmt, ir.RegisterWrite):
            reads, writes = touched.get(stmt.register, (0, 0))
            touched[stmt.register] = (reads, writes + 1)
    dead_regs = [reg for reg in compiled.registers
                 if touched.get(reg.name, (0, 0)) == (0, 0)]
    for reg in dead_regs:
        compiled.registers.remove(reg)
        stats.removed_registers.append(reg.name)


def _iter_all_stmts(compiled: CompiledChecker):
    for attr in _FRAGMENT_ATTRS:
        for stmt in ir.walk_stmts(getattr(compiled, attr)):
            yield attr, stmt
    for name, action in compiled.actions.items():
        for stmt in ir.walk_stmts(action.body):
            yield f"action:{name}", stmt


# ---------------------------------------------------------------------------
# 4. Scratch-field coalescing
# ---------------------------------------------------------------------------

def _protected_fields(compiled: CompiledChecker) -> Set[str]:
    prefix = compiled.meta_prefix
    protected = {compiled.first_hop_meta, compiled.last_hop_meta,
                 compiled.reject_meta, compiled.switch_id_meta}
    protected.update(name for name, _ in compiled.metadata
                     if name.startswith(prefix + "ctrlval"))
    return protected


def _coalesce_fields(compiled: CompiledChecker,
                     stats: OptimizeStats) -> None:
    prefix = compiled.meta_prefix
    protected = _protected_fields(compiled)
    widths = dict(compiled.metadata)
    candidates = [name for name, _ in compiled.metadata
                  if name.startswith(prefix) and name not in protected]
    if len(candidates) < 2:
        return
    cand_paths = {f"meta.{name}" for name in candidates}

    interference: Dict[str, Set[str]] = {f"meta.{n}": set()
                                         for n in candidates}
    entry_live: Set[str] = set()
    for view in checker_placements(compiled):
        effects = cfg_effects(view.cfg, compiled.tables, compiled.actions)
        live_in, live_out = liveness(view.cfg, effects)
        entry_live |= set(live_in[view.cfg.entry]) & cand_paths
        for node in view.cfg.nodes:
            eff = effects[node.index]
            for d in eff.defs & cand_paths:
                for alive in live_out[node.index] & cand_paths:
                    if alive != d:
                        interference[d].add(alive)
                        interference[alive].add(d)

    # A candidate live at pipeline entry is read-before-write; leave its
    # zero-initialized container alone.
    pool = [n for n in candidates if f"meta.{n}" not in entry_live]

    # Merging two fields also merges their dependency chains, which can
    # *lengthen* the pipeline (two independent register sensors forced
    # to serialize).  PHV is only worth buying when stages don't pay for
    # it, so every merge is admitted against the post-DCE stage depth.
    import copy as _copy

    from ..compiler.linker import standalone_program
    from ..tofino.stages import pipeline_depth

    def depth_of(checker: CompiledChecker) -> int:
        return pipeline_depth(standalone_program(checker))

    base_depth = depth_of(compiled)
    groups: List[Tuple[str, int, Set[str]]] = []  # (rep, width, members)
    rename: Dict[str, str] = {}
    pairs: List[Tuple[str, str]] = []
    for name in pool:
        path, width = f"meta.{name}", widths[name]
        for rep, rep_width, members in groups:
            if rep_width != width:
                continue
            if any(m in interference[path] or path in interference[m]
                   for m in members):
                continue
            trial = dict(rename)
            trial[path] = f"meta.{rep}"
            probe = _copy.deepcopy(compiled)
            _rename_fields(probe, trial)
            if depth_of(probe) > base_depth:
                continue
            members.add(path)
            rename = trial
            pairs.append((name, rep))
            break
        else:
            groups.append((name, width, {path}))
    if rename:
        _rename_fields(compiled, rename)
        stats.coalesced_fields.extend(pairs)


def _rename_fields(compiled: CompiledChecker,
                   rename: Dict[str, str]) -> None:
    def fix_expr(expr: ir.P4Expr) -> None:
        for node in ir.walk_exprs(expr):
            if isinstance(node, ir.FieldRef) and node.path in rename:
                object.__setattr__(node, "path", rename[node.path])

    for _, stmt in _iter_all_stmts(compiled):
        if isinstance(stmt, ir.AssignStmt):
            stmt.dest = rename.get(stmt.dest, stmt.dest)
            fix_expr(stmt.value)
        elif isinstance(stmt, ir.IfStmt):
            fix_expr(stmt.cond)
        elif isinstance(stmt, ir.RegisterRead):
            stmt.dest = rename.get(stmt.dest, stmt.dest)
            fix_expr(stmt.index)
        elif isinstance(stmt, ir.RegisterWrite):
            fix_expr(stmt.index)
            fix_expr(stmt.value)
        elif isinstance(stmt, ir.Digest):
            for expr in stmt.fields:
                fix_expr(expr)
    for table in compiled.tables.values():
        for key in table.keys:
            key.path = rename.get(key.path, key.path)


# ---------------------------------------------------------------------------
# 5. Metadata pruning
# ---------------------------------------------------------------------------

def _referenced_meta(compiled: CompiledChecker) -> Set[str]:
    refs: Set[str] = set()

    def note(path: str) -> None:
        if path.startswith("meta."):
            refs.add(path[len("meta."):])

    for _, stmt in _iter_all_stmts(compiled):
        if isinstance(stmt, ir.AssignStmt):
            note(stmt.dest)
        elif isinstance(stmt, ir.RegisterRead):
            note(stmt.dest)
        for attr in ("value", "cond", "index"):
            expr = getattr(stmt, attr, None)
            if isinstance(expr, ir.P4Expr):
                for node in ir.walk_exprs(expr):
                    if isinstance(node, ir.FieldRef):
                        note(node.path)
        if isinstance(stmt, ir.Digest):
            for expr in stmt.fields:
                for node in ir.walk_exprs(expr):
                    if isinstance(node, ir.FieldRef):
                        note(node.path)
    for table in compiled.tables.values():
        for key in table.keys:
            note(key.path)
    return refs


def _prune_metadata(compiled: CompiledChecker,
                    stats: OptimizeStats) -> None:
    keep = _referenced_meta(compiled) | _protected_fields(compiled)
    dead = [(name, width) for name, width in compiled.metadata
            if name not in keep]
    if dead:
        compiled.metadata = [(name, width)
                             for name, width in compiled.metadata
                             if name in keep]
        stats.removed_metadata.extend(dead)


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def optimize_compiled(compiled: CompiledChecker) -> OptimizeStats:
    """Optimize a compiled checker in place; returns what changed.

    Safe by construction: every removal is justified by liveness over
    all four placements, every fold replays the reference interpreter's
    arithmetic, and everything observable (registers, digests, headers,
    drops, hop-protocol ABI) is a root.
    """
    stats = OptimizeStats()
    # Folding and the SSA passes feed each other: a propagated constant
    # makes an expression foldable, a folded condition decides a branch.
    # Iterate the pair to a (bounded) fixpoint before DCE.
    for _ in range(8):
        for attr in _FRAGMENT_ATTRS:
            stmts = getattr(compiled, attr)
            stmts[:] = _fold_stmts(stmts, stats)
        for action in compiled.actions.values():
            action.body[:] = _fold_stmts(action.body, stats)
        if not _ssa_round(compiled, stats):
            break
    while _dce_round(compiled, stats):
        pass
    _prune_structures(compiled, stats)
    _coalesce_fields(compiled, stats)
    _prune_metadata(compiled, stats)
    return stats


__all__ = ["OptimizeStats", "optimize_compiled"]
