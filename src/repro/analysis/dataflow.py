"""Def/use extraction and the worklist dataflow solver.

Two classic analyses over the :mod:`repro.analysis.cfg` graphs, both
instances of one generic worklist solver:

* **Reaching definitions** (forward): per program point, for every
  metadata field, the set of definition sites that may reach it.  The
  synthetic site :data:`UNINIT` models the zero-initialized state at
  pipeline entry; a read whose *only* reaching definition is ``UNINIT``
  is a read no execution path ever wrote.
* **Liveness** (backward): per program point, the metadata fields whose
  current value may still be read downstream.  Table applies are
  may-defs (a missed table with no default action writes nothing), so
  they never kill liveness — except when a default action makes the
  write unconditional, in which case it is a must-def like any
  assignment.

The tracked variable universe is user/compiler *metadata* (``meta.*``):
header fields are wire-observable, standard metadata feeds the traffic
manager, and registers persist across packets — all of them are roots
the optimizer must preserve, so there is nothing to solve for them.
Register *occurrences* still show up in :class:`Effects` (as
``reg.<name>`` tokens) so the register-oriented lint passes can reuse
the same extraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, List, Set, Tuple

from ..p4 import ir
from .cfg import CFG, CFGNode

#: Synthetic reaching-definition site: "never written, still the
#: pipeline-entry zero value".
UNINIT = -1


def expr_uses(expr: ir.P4Expr) -> Set[str]:
    """Every location an expression reads: field paths plus
    ``hdr.<bind>.$valid`` tokens for validity tests."""
    uses: Set[str] = set()
    for node in ir.walk_exprs(expr):
        if isinstance(node, ir.FieldRef):
            uses.add(node.path)
        elif isinstance(node, ir.ValidRef):
            uses.add(f"hdr.{node.header}.$valid")
    return uses


@dataclass(frozen=True)
class Effects:
    """Shallow read/write behavior of one CFG node.

    ``defs`` are may-defs; ``must_defs`` additionally hold on every
    execution of the node.  ``side_effects`` marks work that is
    observable beyond the tracked metadata (register writes, digests,
    header/validity mutation, drops, externs) — a node with side
    effects is never a dead-code candidate no matter how dead its
    written fields are.
    """

    uses: FrozenSet[str] = frozenset()
    defs: FrozenSet[str] = frozenset()
    must_defs: FrozenSet[str] = frozenset()
    side_effects: bool = False


def _is_observable_dest(dest: str) -> bool:
    return not dest.startswith("meta.")


def action_effects(action: ir.Action) -> Effects:
    """Aggregate effects of an action body (``param.*`` reads excluded —
    action data is immediate, not PHV state).  Writes inside an action
    are may-defs from the caller's viewpoint unless the whole body is
    straight-line, in which case they hold whenever the action runs."""
    uses: Set[str] = set()
    defs: Set[str] = set()
    must: Set[str] = set()
    side = False
    straight = all(not isinstance(s, (ir.IfStmt, ir.ApplyTable))
                   for s in action.body)
    for stmt in ir.walk_stmts(action.body):
        eff = stmt_effects(stmt, tables={}, actions={})
        uses |= {u for u in eff.uses if not u.startswith("param.")}
        defs |= eff.defs
        if straight:
            must |= eff.must_defs
        side = side or eff.side_effects
    return Effects(uses=frozenset(uses), defs=frozenset(defs),
                   must_defs=frozenset(must), side_effects=side)


def table_effects(table: ir.Table,
                  actions: Dict[str, ir.Action]) -> Effects:
    """Effects of applying ``table``: key reads plus the union of its
    actions' effects.  Writes every action *and* the default action
    perform unconditionally are must-defs (some action always runs when
    a default is declared); without a default action a miss writes
    nothing, so nothing is guaranteed."""
    uses: Set[str] = {k.path for k in table.keys}
    defs: Set[str] = set()
    side = False
    action_names = list(table.actions)
    if table.default_action is not None:
        action_names.append(table.default_action[0])
    per_action_must: List[FrozenSet[str]] = []
    for name in action_names:
        action = actions.get(name)
        if action is None:
            continue
        eff = action_effects(action)
        uses |= eff.uses
        defs |= eff.defs
        per_action_must.append(eff.must_defs)
        side = side or eff.side_effects
    must: Set[str] = set()
    if table.default_action is not None and per_action_must:
        must = set(per_action_must[0])
        for m in per_action_must[1:]:
            must &= m
    return Effects(uses=frozenset(uses), defs=frozenset(defs),
                   must_defs=frozenset(must), side_effects=side)


def stmt_effects(stmt: ir.P4Stmt, tables: Dict[str, ir.Table],
                 actions: Dict[str, ir.Action]) -> Effects:
    """Shallow effects of one statement (branch bodies excluded — they
    are separate CFG nodes)."""
    if isinstance(stmt, ir.AssignStmt):
        return Effects(uses=frozenset(expr_uses(stmt.value)),
                       defs=frozenset({stmt.dest}),
                       must_defs=frozenset({stmt.dest}),
                       side_effects=_is_observable_dest(stmt.dest))
    if isinstance(stmt, ir.IfStmt):
        return Effects(uses=frozenset(expr_uses(stmt.cond)))
    if isinstance(stmt, ir.ApplyTable):
        table = tables.get(stmt.table)
        if table is None:
            return Effects(side_effects=True)  # unknown table: hands off
        return table_effects(table, actions)
    if isinstance(stmt, ir.RegisterRead):
        return Effects(uses=frozenset(expr_uses(stmt.index)
                                      | {f"reg.{stmt.register}"}),
                       defs=frozenset({stmt.dest}),
                       must_defs=frozenset({stmt.dest}),
                       side_effects=_is_observable_dest(stmt.dest))
    if isinstance(stmt, ir.RegisterWrite):
        return Effects(uses=frozenset(expr_uses(stmt.index)
                                      | expr_uses(stmt.value)),
                       defs=frozenset({f"reg.{stmt.register}"}),
                       must_defs=frozenset({f"reg.{stmt.register}"}),
                       side_effects=True)
    if isinstance(stmt, ir.Digest):
        uses: Set[str] = set()
        for expr in stmt.fields:
            uses |= expr_uses(expr)
        return Effects(uses=frozenset(uses), side_effects=True)
    if isinstance(stmt, (ir.SetValid, ir.SetInvalid)):
        return Effects(defs=frozenset({f"hdr.{stmt.header}.$valid"}),
                       must_defs=frozenset({f"hdr.{stmt.header}.$valid"}),
                       side_effects=True)
    if isinstance(stmt, ir.MarkToDrop):
        return Effects(defs=frozenset({"standard_metadata.$drop"}),
                       must_defs=frozenset({"standard_metadata.$drop"}),
                       side_effects=True)
    # PopSourceRoute / ExternCall: opaque header/world mutation.
    return Effects(side_effects=True)


def cfg_effects(cfg: CFG, tables: Dict[str, ir.Table],
                actions: Dict[str, ir.Action]) -> Dict[int, Effects]:
    """Per-node shallow effects for a whole CFG."""
    out: Dict[int, Effects] = {}
    for node in cfg.nodes:
        out[node.index] = (stmt_effects(node.stmt, tables, actions)
                           if node.stmt is not None else Effects())
    return out


# ---------------------------------------------------------------------------
# The worklist solver
# ---------------------------------------------------------------------------

def worklist_solve(cfg: CFG, *, backward: bool,
                   transfer: Callable[[int, FrozenSet], FrozenSet],
                   boundary: FrozenSet,
                   init: FrozenSet,
                   ) -> Tuple[Dict[int, FrozenSet], Dict[int, FrozenSet]]:
    """Generic union-lattice worklist solver.

    Returns ``(in_sets, out_sets)`` in *execution* orientation: for a
    backward problem ``in_sets[n]`` is the fact before the node runs
    (i.e. the solver's output side).  ``boundary`` seeds the entry node
    (exit node for backward problems); ``init`` seeds everything else.
    """
    n = len(cfg.nodes)
    if backward:
        edges_in = [node.succs for node in cfg.nodes]   # meet over succs
        start = cfg.exit
    else:
        edges_in = [node.preds for node in cfg.nodes]
        start = cfg.entry
    meet_in: List[FrozenSet] = [init] * n
    result: List[FrozenSet] = [init] * n
    meet_in[start] = boundary
    result[start] = transfer(start, boundary)
    work = list(range(n))
    while work:
        idx = work.pop()
        if idx == start:
            acc = boundary
        else:
            acc = frozenset()
            for j in edges_in[idx]:
                acc = acc | result[j]
        meet_in[idx] = acc
        new = transfer(idx, acc)
        if new != result[idx]:
            result[idx] = new
            node = cfg.nodes[idx]
            work.extend(node.preds if backward else node.succs)
    if backward:
        return dict(enumerate(result)), dict(enumerate(meet_in))
    return dict(enumerate(meet_in)), dict(enumerate(result))


def _tracked(name: str) -> bool:
    return name.startswith("meta.")


def liveness(cfg: CFG, effects: Dict[int, Effects]
             ) -> Tuple[Dict[int, FrozenSet[str]], Dict[int, FrozenSet[str]]]:
    """Backward liveness of metadata fields.

    Returns ``(live_in, live_out)`` per node.  At pipeline exit nothing
    is live — per-packet metadata dies with the packet; everything
    observable (headers, registers, standard metadata) is excluded from
    the universe instead of being modeled as live-at-exit.
    """
    def transfer(idx: int, live_out: FrozenSet[str]) -> FrozenSet[str]:
        eff = effects[idx]
        uses = frozenset(u for u in eff.uses if _tracked(u))
        kills = frozenset(d for d in eff.must_defs if _tracked(d))
        return uses | (live_out - kills)

    return worklist_solve(cfg, backward=True, transfer=transfer,
                          boundary=frozenset(), init=frozenset())


def reaching_definitions(cfg: CFG, effects: Dict[int, Effects],
                         fields: Iterable[str]
                         ) -> Dict[int, Dict[str, FrozenSet[int]]]:
    """Forward reaching definitions over metadata fields.

    Returns, per node, ``field -> set of CFG node indices whose
    definition may reach the node's entry``; :data:`UNINIT` stands for
    the zero-initialized pipeline-entry "definition".  May-defs (table
    applies without a covering default) *add* a site without killing
    ``UNINIT`` — only must-defs kill.
    """
    universe = [f for f in fields if _tracked(f)]
    # Encode (field, site) pairs as frozenset elements.
    def transfer(idx: int, reach_in: FrozenSet) -> FrozenSet:
        eff = effects[idx]
        out = set(reach_in)
        for f in universe:
            if f in eff.must_defs:
                out -= {(f, s) for (g, s) in reach_in if g == f}
                out.add((f, idx))
            elif f in eff.defs:
                out.add((f, idx))
        return frozenset(out)

    boundary = frozenset((f, UNINIT) for f in universe)
    in_sets, _ = worklist_solve(cfg, backward=False, transfer=transfer,
                                boundary=boundary, init=frozenset())
    result: Dict[int, Dict[str, FrozenSet[int]]] = {}
    for idx, pairs in in_sets.items():
        per_field: Dict[str, Set[int]] = {f: set() for f in universe}
        for f, site in pairs:
            per_field.setdefault(f, set()).add(site)
        result[idx] = {f: frozenset(sites)
                       for f, sites in per_field.items()}
    return result


__all__ = [
    "Effects", "UNINIT", "action_effects", "cfg_effects", "expr_uses",
    "liveness", "reaching_definitions", "stmt_effects", "table_effects",
    "worklist_solve",
]
