"""Dataflow analysis over compiled checker IR.

A shared substrate — per-placement control-flow graphs
(:mod:`~repro.analysis.cfg`), def/use extraction and the worklist
solver (:mod:`~repro.analysis.dataflow`) — feeds two consumers:

* the **lint** passes (:mod:`~repro.analysis.passes`), which emit
  structured :class:`~repro.analysis.diagnostics.Diagnostic` records
  surfaced by ``python -m repro lint`` and :func:`repro.api.lint`;
* the **optimizer** (:mod:`~repro.analysis.optimize`), a
  liveness-driven dead-code/dead-table/dead-register eliminator with
  constant folding and scratch-field coalescing, whose one invariant is
  that it changes nothing observable: verdicts, reports, and register
  state are bit-identical under the three-level difftest oracle.
"""

from .cfg import (CFG, CFGNode, PlacementView, always_extracted,
                  build_cfg, checker_placements)
from .dataflow import (Effects, UNINIT, expr_uses, liveness,
                       reaching_definitions, worklist_solve)
from .diagnostics import (Diagnostic, Severity, max_severity,
                          render_json, sort_diagnostics)
from .lint import lint_compiled
from .optimize import OptimizeStats, optimize_compiled
from .passes import REGISTRY, lint_pass, run_passes
from .unit import AnalysisUnit

__all__ = [
    "AnalysisUnit", "CFG", "CFGNode", "Diagnostic", "Effects",
    "OptimizeStats", "PlacementView", "REGISTRY", "Severity", "UNINIT",
    "always_extracted", "build_cfg", "checker_placements", "expr_uses",
    "lint_compiled", "lint_pass", "liveness", "max_severity",
    "optimize_compiled", "reaching_definitions", "render_json",
    "run_passes", "sort_diagnostics", "worklist_solve",
]
