"""Top-level lint driver: compiled checker in, diagnostics out."""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..compiler.codegen import CompiledChecker
from ..p4 import ir
from .diagnostics import Diagnostic
from .passes import run_passes
from .unit import AnalysisUnit


def lint_compiled(compiled: CompiledChecker,
                  program: Optional[ir.P4Program] = None,
                  only: Optional[Iterable[str]] = None
                  ) -> List[Diagnostic]:
    """Run every registered lint pass over a compiled checker.

    ``program`` optionally supplies the linked forwarding context
    (parser graph, header widths); when omitted the checker is linked
    against the minimal standalone L2 program.  ``only`` restricts to a
    subset of rule ids.  The result is deterministically ordered.
    """
    return run_passes(AnalysisUnit(compiled, program), only=only)


__all__ = ["lint_compiled"]
