"""IH006 — width truncation in assignments and arithmetic.

Two shapes are flagged, both warnings (the bmv2 reference semantics
mask deterministically, so truncation is well-defined — just usually
unintended):

* an ``AssignStmt`` whose value is provably wider than the declared
  width of the destination field;
* an arithmetic/bitwise ``BinExpr`` whose declared result width is
  narrower than its widest operand — the interpreter masks the result
  to ``expr.width`` bits, silently discarding high bits.

Width inference is conservative: constants contribute the minimal
width of their *value* (``Const(1, 32)`` flowing into a 1-bit field is
not a truncation), field references their declared width, comparisons
and logical operators 1 bit, masked arithmetic its declared result
width (the mask guarantees the fit), ``min``/``max`` the wider operand.
Unknown widths (action parameters, undeclared paths) disable the check
for that expression rather than guessing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ...p4 import ir
from ..diagnostics import Diagnostic, Severity
from ..unit import AnalysisUnit
from . import lint_pass

#: Operators whose bmv2 evaluation masks the result to ``expr.width``.
MASKED_OPS = {"+", "-", "*", "&", "|", "^", "/", "%", "<<", ">>",
              "absdiff"}
#: Operators yielding a 0/1 boolean regardless of operand width.
BOOL_OPS = {"==", "!=", "<", "<=", ">", ">=", "&&", "||"}


def expr_width(expr: ir.P4Expr,
               widths: Dict[str, int]) -> Optional[int]:
    """Inferred value width of ``expr``; ``None`` when unknown."""
    if isinstance(expr, ir.Const):
        return max(1, expr.value.bit_length())
    if isinstance(expr, ir.FieldRef):
        return widths.get(expr.path)
    if isinstance(expr, ir.ValidRef):
        return 1
    if isinstance(expr, ir.UnExpr):
        if expr.op == "!":
            return 1
        return ir.unexpr_width(expr)
    if isinstance(expr, ir.BinExpr):
        if expr.op in BOOL_OPS:
            return 1
        if expr.op in MASKED_OPS:
            return expr.width
        # min/max: unmasked, bounded by the wider operand.
        left = expr_width(expr.left, widths)
        right = expr_width(expr.right, widths)
        if left is None or right is None:
            return None
        return max(left, right)
    return None


@lint_pass("IH006")
def width_truncation(unit: AnalysisUnit) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    widths = unit.field_widths()
    seen: Set[Tuple] = set()

    def emit(key: Tuple, diag: Diagnostic) -> None:
        if key in seen:
            return
        seen.add(key)
        diags.append(diag)

    def check_expr(expr: ir.P4Expr, block: str,
                   fallback: ir.P4Stmt) -> None:
        for node in ir.walk_exprs(expr):
            if not isinstance(node, ir.BinExpr):
                continue
            if node.op not in MASKED_OPS:
                continue
            left = expr_width(node.left, widths)
            right = expr_width(node.right, widths)
            if left is None or right is None:
                continue
            operand_width = max(left, right)
            if node.width >= operand_width:
                continue
            span = node.span if node.span.line else fallback.span
            emit((block, node.op, node.width, operand_width,
                  span.line, span.column), Diagnostic(
                rule="IH006", severity=Severity.WARNING,
                message=f"{node.width}-bit {node.op!r} over "
                        f"{operand_width}-bit operand(s); the result "
                        f"is masked to {node.width} bits, discarding "
                        f"high bits",
                span=span, block=block,
                hint=f"widen the expression to {operand_width} bits "
                     f"or mask the operands explicitly"))

    def check_stmt(stmt: ir.P4Stmt, block: str) -> None:
        for expr in _stmt_exprs(stmt):
            check_expr(expr, block, stmt)
        if isinstance(stmt, ir.AssignStmt):
            dest_width = widths.get(stmt.dest)
            value_width = expr_width(stmt.value, widths)
            if (dest_width is not None and value_width is not None
                    and value_width > dest_width):
                emit((block, stmt.dest, dest_width, value_width,
                      stmt.span.line, stmt.span.column), Diagnostic(
                    rule="IH006", severity=Severity.WARNING,
                    message=f"assignment truncates a {value_width}-bit "
                            f"value into the {dest_width}-bit field "
                            f"{stmt.dest!r}",
                    span=stmt.span, path=stmt.dest, block=block,
                    hint=f"declare {stmt.dest!r} at least "
                         f"{value_width} bits wide, or reduce the "
                         f"value's range first"))

    for label, stmt in unit.iter_stmts():
        check_stmt(stmt, label)
    for name, stmt in unit.iter_action_stmts():
        check_stmt(stmt, f"action:{name}")
    return diags


def _stmt_exprs(stmt: ir.P4Stmt) -> List[ir.P4Expr]:
    if isinstance(stmt, ir.AssignStmt):
        return [stmt.value]
    if isinstance(stmt, ir.IfStmt):
        return [stmt.cond]
    if isinstance(stmt, ir.RegisterRead):
        return [stmt.index]
    if isinstance(stmt, ir.RegisterWrite):
        return [stmt.index, stmt.value]
    if isinstance(stmt, ir.Digest):
        return list(stmt.fields)
    return []
