"""IH002 — dead register; IH004 — write-write register conflict.

IH002 flags a register that is (a) never referenced at all, (b) written
but never read by the data plane, or (c) read but never written — the
reads can only ever return the initial value.  Register state *is*
control-plane observable (the difftest oracle compares full register
dumps), so all three are warnings with hints rather than errors.

IH004 flags a register written from both the telemetry and the checker
fragment: on an edge switch both fragments run in the same egress pass,
so the final value depends on fragment placement order — exactly the
kind of silent cross-block coupling the paper's checker/telemetry split
is meant to avoid.
"""

from __future__ import annotations

from typing import List

from ...indus.errors import UNKNOWN_SPAN
from ...p4 import ir
from ..diagnostics import Diagnostic, Severity
from ..unit import AnalysisUnit
from . import lint_pass


def _first_span(stmts: List[ir.P4Stmt]):
    for stmt in stmts:
        if stmt.span.line:
            return stmt.span
    return UNKNOWN_SPAN


@lint_pass("IH002")
def dead_register(unit: AnalysisUnit) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    occ = unit.register_occurrences()
    for reg in unit.compiled.registers:
        stmts = [s for block in occ.get(reg.name, {}).values()
                 for s in block]
        reads = [s for s in stmts if isinstance(s, ir.RegisterRead)]
        writes = [s for s in stmts if isinstance(s, ir.RegisterWrite)]
        if reads and writes:
            continue
        if not reads and not writes:
            diags.append(Diagnostic(
                rule="IH002", severity=Severity.WARNING,
                message=f"register {reg.name!r} is never read or "
                        f"written",
                path=reg.name,
                hint="delete the declaration (the optimizer does this "
                     "under optimize=True)"))
        elif writes:
            diags.append(Diagnostic(
                rule="IH002", severity=Severity.WARNING,
                message=f"register {reg.name!r} is written but never "
                        f"read by the data plane",
                span=_first_span(writes), path=reg.name,
                hint="its value is only reachable via control-plane "
                     "readout; drop the sensor if that is not intended"))
        else:
            diags.append(Diagnostic(
                rule="IH002", severity=Severity.WARNING,
                message=f"register {reg.name!r} is read but never "
                        f"written; every read returns the initial value",
                span=_first_span(reads), path=reg.name,
                hint="write the register somewhere, or replace the read "
                     "with the constant initial value"))
    return diags


@lint_pass("IH004")
def register_write_conflict(unit: AnalysisUnit) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    occ = unit.register_occurrences()
    for reg in unit.compiled.registers:
        blocks = occ.get(reg.name, {})

        def writes_in(label: str) -> List[ir.P4Stmt]:
            return [s for s in blocks.get(label, [])
                    if isinstance(s, ir.RegisterWrite)]

        tele_writes = writes_in("telemetry")
        check_writes = writes_in("checker")
        if tele_writes and check_writes:
            diags.append(Diagnostic(
                rule="IH004", severity=Severity.WARNING,
                message=f"register {reg.name!r} is written by both the "
                        f"telemetry and the checker block; on an edge "
                        f"switch both run in the same egress pass, so "
                        f"the surviving value depends on placement "
                        f"order",
                span=_first_span(check_writes), path=reg.name,
                block="checker",
                hint="write the register from a single block, or make "
                     "one side read-modify-write through the other's "
                     "result"))
    return diags
