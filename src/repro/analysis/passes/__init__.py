"""Lint pass registry.

A pass is a function ``(AnalysisUnit) -> List[Diagnostic]`` registered
under its stable rule id with the :func:`lint_pass` decorator:

    @lint_pass("IH001")
    def uninit_read(unit): ...

:func:`run_passes` runs every registered pass (or a subset) and returns
the merged, deterministically ordered diagnostic list.  Registration is
import-time and ordered, so the framework stays open for future passes
(e.g. a cross-switch checker-state race detector) without touching the
driver: drop a module next to these, import it here, done.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from ..diagnostics import Diagnostic, sort_diagnostics
from ..unit import AnalysisUnit

LintPass = Callable[[AnalysisUnit], List[Diagnostic]]

#: rule id -> pass function, in registration order.
REGISTRY: Dict[str, LintPass] = {}


def lint_pass(rule_id: str) -> Callable[[LintPass], LintPass]:
    def register(fn: LintPass) -> LintPass:
        if rule_id in REGISTRY:
            raise ValueError(f"lint pass {rule_id!r} registered twice")
        REGISTRY[rule_id] = fn
        return fn
    return register


def run_passes(unit: AnalysisUnit,
               only: Optional[Iterable[str]] = None) -> List[Diagnostic]:
    """Run registered passes over ``unit``; ``only`` restricts to the
    given rule ids.  Output order is deterministic."""
    selected = list(REGISTRY) if only is None else list(only)
    diags: List[Diagnostic] = []
    for rule_id in selected:
        try:
            fn = REGISTRY[rule_id]
        except KeyError:
            raise ValueError(f"unknown lint rule {rule_id!r}; known: "
                             f"{', '.join(REGISTRY)}") from None
        diags.extend(fn(unit))
    return sort_diagnostics(diags)


# Import-time registration of the built-in rules (order = rule id order).
from . import uninit      # noqa: E402,F401  IH001
from . import registers   # noqa: E402,F401  IH002 + IH004
from . import reachability  # noqa: E402,F401  IH003 + IH007
from . import headers     # noqa: E402,F401  IH005
from . import widths      # noqa: E402,F401  IH006

__all__ = ["LintPass", "REGISTRY", "lint_pass", "run_passes"]
