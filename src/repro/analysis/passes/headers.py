"""IH005 — table key referencing a possibly-invalid header.

A match key of the form ``hdr.<bind>.<field>`` reads a header that may
not be valid at apply time unless one of three things guarantees it:

* the parser extracts ``bind`` on **every** start→accept path
  (:func:`~repro.analysis.cfg.always_extracted`);
* an earlier ``SetValid`` in the same straight-line context;
* an enclosing ``if`` whose condition carries a positive
  ``hdr.<bind>.isValid()`` conjunct.

The walk runs over the four placement views (so the validity guards the
linker synthesizes around telemetry/checker fragments count) plus raw
action bodies (which get no such guard).  Reading an invalid header
yields 0 on this substrate rather than trapping, so the finding is a
warning: the match silently degrades to matching on zero.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from ...p4 import ir
from ..cfg import always_extracted
from ..diagnostics import Diagnostic, Severity
from ..unit import AnalysisUnit
from . import lint_pass


def _valid_conjuncts(cond: ir.P4Expr) -> Set[str]:
    """Headers positively asserted valid by top-level ``&&`` conjuncts."""
    out: Set[str] = set()

    def walk(expr: ir.P4Expr) -> None:
        if isinstance(expr, ir.BinExpr) and expr.op == "&&":
            walk(expr.left)
            walk(expr.right)
        elif isinstance(expr, ir.ValidRef):
            out.add(expr.header)

    walk(cond)
    return out


@lint_pass("IH005")
def possibly_invalid_key(unit: AnalysisUnit) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    seen: Set[Tuple[str, str]] = set()
    must_valid = always_extracted(unit.program.parser)
    tables = unit.compiled.tables

    def flag(table_name: str, key: ir.TableKey, bind: str,
             block: str, site: ir.ApplyTable) -> None:
        if (table_name, bind) in seen:
            return
        seen.add((table_name, bind))
        diags.append(Diagnostic(
            rule="IH005", severity=Severity.WARNING,
            message=f"table {table_name!r} matches on {key.path!r} but "
                    f"header {bind!r} may be invalid here; the key "
                    f"silently reads 0 when it is",
            span=site.span, path=key.path, block=block,
            hint=f"guard the apply with hdr.{bind}.isValid(), or key "
                 f"on metadata copied out under a validity check"))

    def check_apply(site: ir.ApplyTable, ctx: Set[str],
                    block: str) -> None:
        table = tables.get(site.table)
        if table is None:
            return
        for key in table.keys:
            if not key.path.startswith("hdr."):
                continue
            bind = key.path.split(".")[1]
            if bind not in ctx:
                flag(site.table, key, bind, block, site)

    def scan(stmts: Sequence[ir.P4Stmt], ctx: Set[str],
             block: str) -> None:
        ctx = set(ctx)
        for stmt in stmts:
            if isinstance(stmt, ir.SetValid):
                ctx.add(stmt.header)
            elif isinstance(stmt, ir.SetInvalid):
                ctx.discard(stmt.header)
            elif isinstance(stmt, ir.IfStmt):
                scan(stmt.then_body, ctx | _valid_conjuncts(stmt.cond),
                     block)
                scan(stmt.else_body, ctx, block)
            elif isinstance(stmt, ir.ApplyTable):
                check_apply(stmt, ctx, block)
                scan(stmt.hit_body, ctx, block)
                scan(stmt.miss_body, ctx, block)

    for view in unit.placements:
        scan(view.stmts, must_valid, view.name)
    for name, action in unit.compiled.actions.items():
        scan(action.body, must_valid, f"action:{name}")
    return diags
