"""IH001 — uninitialized header/metadata field read.

Metadata half: a read whose *only* reaching definition (over every
placement the statement executes in) is the synthetic pipeline-entry
:data:`~repro.analysis.dataflow.UNINIT` site — no execution path ever
wrote the field, so the read always observes the zero-initialized
value.  Table applies count as (may-)definitions, so a field a table
action *might* load is not flagged; this keeps the rule quiet on the
intentional read-the-default patterns the compiler emits (first/last-hop
marks) while still catching fields nothing can ever write.

Header half: a read of ``hdr.<bind>.<field>`` where ``bind`` is neither
extracted by any parser state nor ever made valid with ``SetValid`` —
the read unconditionally yields 0 on this substrate.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ...p4 import ir
from ..dataflow import UNINIT, expr_uses
from ..diagnostics import Diagnostic, Severity
from ..unit import AnalysisUnit
from . import lint_pass

RULE = "IH001"


def _managed_fields(unit: AnalysisUnit) -> Set[str]:
    """Compiler-managed hop-protocol fields whose zero default is read
    by design (the per-hop reject gate, hop marks, control values) —
    never IH001 candidates."""
    c = unit.compiled
    managed = {c.first_hop_meta, c.last_hop_meta, c.reject_meta,
               c.switch_id_meta}
    managed.update(name for name, _ in c.metadata
                   if name.startswith(c.meta_prefix + "ctrlval"))
    return {f"meta.{name}" for name in managed}


@lint_pass(RULE)
def uninit_read(unit: AnalysisUnit) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    seen: Set[tuple] = set()
    managed = _managed_fields(unit)

    # --- metadata: reaching definitions per placement -----------------
    # (field, stmt) is flagged if every placement containing the read
    # sees only the UNINIT definition.
    verdict: Dict[tuple, bool] = {}
    stmt_of: Dict[tuple, ir.P4Stmt] = {}
    for view in unit.placements:
        effects = unit.effects(view)
        reaching = unit.reaching(view)
        for node in view.cfg.nodes:
            if node.stmt is None:
                continue
            for use in effects[node.index].uses:
                if use in managed:
                    continue
                sites = reaching[node.index].get(use)
                if sites is None:      # not a tracked metadata field
                    continue
                key = (use, id(node.stmt))
                stmt_of[key] = node.stmt
                only_uninit = sites == frozenset({UNINIT})
                verdict[key] = verdict.get(key, True) and only_uninit
    for (use, _), always_uninit in sorted(
            verdict.items(), key=lambda kv: (kv[0][0], kv[0][1])):
        if not always_uninit:
            continue
        stmt = stmt_of[(use, _)]
        dedup = (use,)
        if dedup in seen:
            continue
        seen.add(dedup)
        diags.append(Diagnostic(
            rule=RULE, severity=Severity.ERROR,
            message=f"read of metadata field {use!r} which no execution "
                    f"path ever writes (always the entry value 0)",
            span=stmt.span, path=use,
            hint="initialize the field before reading it, or delete the "
                 "read if the zero default is intended"))

    # --- headers: binds that can never be valid -----------------------
    known_binds = set(unit.program.bind_types())
    made_valid: Set[str] = set()
    for _, stmt in unit.iter_stmts():
        if isinstance(stmt, ir.SetValid):
            made_valid.add(stmt.header)
    for label, stmt in unit.iter_stmts():
        uses: Set[str] = set()
        if isinstance(stmt, ir.AssignStmt):
            uses = expr_uses(stmt.value)
        elif isinstance(stmt, ir.IfStmt):
            uses = expr_uses(stmt.cond)
        elif isinstance(stmt, (ir.RegisterRead, ir.RegisterWrite)):
            uses = expr_uses(stmt.index)
            if isinstance(stmt, ir.RegisterWrite):
                uses |= expr_uses(stmt.value)
        elif isinstance(stmt, ir.Digest):
            for expr in stmt.fields:
                uses |= expr_uses(expr)
        for use in sorted(uses):
            if not use.startswith("hdr.") or use.endswith(".$valid"):
                continue
            bind = use.split(".")[1]
            if bind in known_binds or bind in made_valid:
                continue
            if ("hdr", bind) in seen:
                continue
            seen.add(("hdr", bind))
            diags.append(Diagnostic(
                rule=RULE, severity=Severity.WARNING,
                message=f"read of {use!r}: header {bind!r} is never "
                        f"parsed and never made valid, so the read "
                        f"always yields 0",
                span=stmt.span, path=use, block=label,
                hint="bind the checker to a header the forwarding "
                     "program parses, or SetValid the header first"))
    return diags
