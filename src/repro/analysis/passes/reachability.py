"""IH003 — statement after an unconditional drop; IH007 — dead table.

``MarkToDrop`` on this substrate (as on bmv2) only sets the drop flag;
execution continues to the end of the block, so trailing statements are
not literally unreachable — register writes and digests still land.
That is precisely why IH003 is a *lint* finding and never an optimizer
target: the packet-visible work after the drop is wasted, and stateful
work after the drop is more often an ordering accident than intent.

IH007 flags tables the compiled checker declares but never applies from
any fragment or action body — dead configuration surface that still
costs match-action stages in the Tofino resource model.
"""

from __future__ import annotations

from typing import List, Sequence

from ...p4 import ir
from ..diagnostics import Diagnostic, Severity
from ..unit import AnalysisUnit
from . import lint_pass


def _drop_sites(stmts: Sequence[ir.P4Stmt]):
    """Yield ``(drop stmt, trailing stmts)`` for every ``MarkToDrop``
    followed by more statements in the same body list, recursively."""
    for i, stmt in enumerate(stmts):
        if isinstance(stmt, ir.MarkToDrop) and i + 1 < len(stmts):
            yield stmt, stmts[i + 1:]
        if isinstance(stmt, ir.IfStmt):
            yield from _drop_sites(stmt.then_body)
            yield from _drop_sites(stmt.else_body)
        elif isinstance(stmt, ir.ApplyTable):
            yield from _drop_sites(stmt.hit_body)
            yield from _drop_sites(stmt.miss_body)


@lint_pass("IH003")
def after_drop(unit: AnalysisUnit) -> List[Diagnostic]:
    diags: List[Diagnostic] = []

    def scan(label: str, stmts: Sequence[ir.P4Stmt]) -> None:
        for drop, trailing in _drop_sites(stmts):
            nxt = trailing[0]
            what = (f"table apply of {nxt.table!r}"
                    if isinstance(nxt, ir.ApplyTable)
                    else f"{len(trailing)} statement(s)")
            span = nxt.span if nxt.span.line else drop.span
            diags.append(Diagnostic(
                rule="IH003", severity=Severity.WARNING,
                message=f"{what} after an unconditional drop in the "
                        f"same block; the packet is already marked to "
                        f"drop, so packet-visible effects are wasted "
                        f"(stateful effects still execute)",
                span=span, block=label,
                hint="move the work before the drop, or guard it on "
                     "the drop condition's complement"))

    for label, stmts in unit.fragments().items():
        scan(label, stmts)
    for name, action in unit.compiled.actions.items():
        scan(f"action:{name}", action.body)
    return diags


@lint_pass("IH007")
def dead_table(unit: AnalysisUnit) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    applied = unit.applied_tables()
    for name in unit.compiled.tables:
        if name in applied:
            continue
        diags.append(Diagnostic(
            rule="IH007", severity=Severity.WARNING,
            message=f"table {name!r} is declared but never applied by "
                    f"any pipeline fragment or action",
            path=name,
            hint="apply the table or delete it (the optimizer prunes "
                 "unapplied tables under optimize=True)"))
    return diags
