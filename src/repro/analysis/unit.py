"""The :class:`AnalysisUnit`: everything a pass needs about one checker.

A unit wraps one :class:`~repro.compiler.codegen.CompiledChecker` with:

* the named pipeline *fragments* (ingress prologue, init, egress
  prologue, telemetry, checker, strip) — the blocks lint findings are
  attributed to;
* the four :class:`~repro.analysis.cfg.PlacementView` linearizations and
  their per-node :class:`~repro.analysis.dataflow.Effects`;
* lazily solved liveness and reaching-definitions facts per placement;
* the standalone linked program (checker + minimal L2 forwarding), which
  supplies the parser graph and the field-width map;
* action-body CFGs, so passes cover action code too.

Facts are cached per unit; build a fresh unit after mutating the
compiled checker (the optimizer does exactly that between iterations).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from ..compiler.codegen import CompiledChecker
from ..p4 import ir
from .cfg import CFG, PlacementView, build_cfg, checker_placements
from .dataflow import (Effects, cfg_effects, liveness,
                       reaching_definitions)

#: Fragment labels in placement order.
FRAGMENTS = ("ingress_prologue", "init", "egress_prologue",
             "telemetry", "checker", "strip")

# v1model standard metadata widths (mirrors repro.tofino.phv).
STANDARD_METADATA_WIDTHS: Dict[str, int] = {
    "standard_metadata.ingress_port": 9,
    "standard_metadata.egress_spec": 9,
    "standard_metadata.egress_port": 9,
    "standard_metadata.packet_length": 32,
}


class AnalysisUnit:
    """One compiled checker prepared for lint/optimize passes."""

    def __init__(self, compiled: CompiledChecker,
                 program: Optional[ir.P4Program] = None):
        self.compiled = compiled
        if program is None:
            from ..compiler.linker import standalone_program
            program = standalone_program(compiled)
        #: The checker linked into a minimal forwarding program — parser
        #: and header-width context (placement analyses use the shared
        #: fragment statements, not this copy).
        self.program = program
        self.placements: List[PlacementView] = checker_placements(compiled)
        self._effects: Dict[int, Dict[int, Effects]] = {}
        self._liveness: Dict[int, Tuple[Dict[int, FrozenSet[str]],
                                        Dict[int, FrozenSet[str]]]] = {}
        self._reaching: Dict[int, Dict[int, Dict[str, FrozenSet[int]]]] = {}
        self._widths: Optional[Dict[str, int]] = None

    # -- structure -----------------------------------------------------

    @property
    def name(self) -> str:
        return self.compiled.name

    def fragments(self) -> Dict[str, List[ir.P4Stmt]]:
        c = self.compiled
        return {
            "ingress_prologue": c.ingress_prologue,
            "init": c.init_stmts,
            "egress_prologue": c.egress_prologue,
            "telemetry": c.tele_stmts,
            "checker": c.check_stmts,
            "strip": c.strip_stmts,
        }

    def iter_stmts(self) -> Iterator[Tuple[str, ir.P4Stmt]]:
        """(fragment label, statement) over every fragment statement,
        recursing into branches."""
        for label, stmts in self.fragments().items():
            for stmt in ir.walk_stmts(stmts):
                yield label, stmt

    def iter_action_stmts(self) -> Iterator[Tuple[str, ir.P4Stmt]]:
        for name, action in self.compiled.actions.items():
            for stmt in ir.walk_stmts(action.body):
                yield name, stmt

    def action_cfgs(self) -> Dict[str, CFG]:
        return {name: build_cfg(action.body)
                for name, action in self.compiled.actions.items()}

    # -- solved facts (cached per placement) ---------------------------

    def effects(self, view: PlacementView) -> Dict[int, Effects]:
        key = id(view)
        if key not in self._effects:
            self._effects[key] = cfg_effects(
                view.cfg, self.compiled.tables, self.compiled.actions)
        return self._effects[key]

    def liveness(self, view: PlacementView
                 ) -> Tuple[Dict[int, FrozenSet[str]],
                            Dict[int, FrozenSet[str]]]:
        key = id(view)
        if key not in self._liveness:
            self._liveness[key] = liveness(view.cfg, self.effects(view))
        return self._liveness[key]

    def reaching(self, view: PlacementView
                 ) -> Dict[int, Dict[str, FrozenSet[int]]]:
        key = id(view)
        if key not in self._reaching:
            fields = [f"meta.{name}" for name, _ in self.compiled.metadata]
            self._reaching[key] = reaching_definitions(
                view.cfg, self.effects(view), fields)
        return self._reaching[key]

    # -- context -------------------------------------------------------

    def field_widths(self) -> Dict[str, int]:
        """Declared width of every addressable field: checker metadata,
        header fields of the linked program, standard metadata."""
        if self._widths is None:
            widths = dict(STANDARD_METADATA_WIDTHS)
            for name, width in self.compiled.metadata:
                widths[f"meta.{name}"] = width
            for name, width in self.program.metadata:
                widths.setdefault(f"meta.{name}", width)
            for bind, htype in self.program.bind_types().items():
                for fdef in htype.fields:
                    widths[f"hdr.{bind}.{fdef.name}"] = fdef.width
            self._widths = widths
        return self._widths

    def register_occurrences(self
                             ) -> Dict[str, Dict[str, List[ir.P4Stmt]]]:
        """Per register: the ``RegisterRead``/``RegisterWrite``
        statements referencing it, across fragments and action bodies,
        keyed by the fragment (or ``action:<name>``) they live in."""
        occ: Dict[str, Dict[str, List[ir.P4Stmt]]] = {
            reg.name: {} for reg in self.compiled.registers}

        def note(register: str, where: str, stmt: ir.P4Stmt) -> None:
            occ.setdefault(register, {}).setdefault(where, []).append(stmt)

        for label, stmt in self.iter_stmts():
            if isinstance(stmt, (ir.RegisterRead, ir.RegisterWrite)):
                note(stmt.register, label, stmt)
        for name, stmt in self.iter_action_stmts():
            if isinstance(stmt, (ir.RegisterRead, ir.RegisterWrite)):
                note(stmt.register, f"action:{name}", stmt)
        return occ

    def applied_tables(self) -> Dict[str, List[Tuple[str, ir.ApplyTable]]]:
        """table name -> [(fragment label, apply statement)] over every
        fragment and action body."""
        applies: Dict[str, List[Tuple[str, ir.ApplyTable]]] = {}
        for label, stmt in self.iter_stmts():
            if isinstance(stmt, ir.ApplyTable):
                applies.setdefault(stmt.table, []).append((label, stmt))
        for name, stmt in self.iter_action_stmts():
            if isinstance(stmt, ir.ApplyTable):
                applies.setdefault(stmt.table, []).append(
                    (f"action:{name}", stmt))
        return applies


__all__ = ["AnalysisUnit", "FRAGMENTS", "STANDARD_METADATA_WIDTHS"]
