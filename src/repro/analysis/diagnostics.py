"""Structured lint diagnostics.

Every lint pass emits :class:`Diagnostic` records: a stable rule id, a
severity, a human message, the Indus :class:`~repro.indus.errors.
SourceSpan` the offending IR was lowered from (``UNKNOWN_SPAN`` for
synthesized nodes — never a crash), the path/object the finding is
about, and a fix hint.  Diagnostics order deterministically (severity
first, then source position, then rule/path) so repeated runs over the
same program produce byte-identical output.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..indus.errors import SourceSpan, UNKNOWN_SPAN


class Severity(enum.IntEnum):
    """Diagnostic severity; integer ordering is escalation order."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Severity":
        aliases = {"info": cls.INFO, "warn": cls.WARNING,
                   "warning": cls.WARNING, "error": cls.ERROR}
        try:
            return aliases[text.strip().lower()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r}; expected one of "
                f"{', '.join(sorted(aliases))}") from None


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding."""

    rule: str                     # stable id, e.g. "IH001"
    severity: Severity
    message: str
    span: SourceSpan = UNKNOWN_SPAN
    path: str = ""                # field/register/table the finding names
    block: str = ""               # fragment or placement context
    hint: str = ""                # how to fix it

    def sort_key(self):
        return (-int(self.severity), self.span.line, self.span.column,
                self.rule, self.path, self.message)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "rule": self.rule,
            "severity": self.severity.label,
            "message": self.message,
        }
        if self.span.line:
            out["span"] = {"line": self.span.line,
                           "column": self.span.column,
                           "end_line": self.span.end_line,
                           "end_column": self.span.end_column}
        if self.path:
            out["path"] = self.path
        if self.block:
            out["block"] = self.block
        if self.hint:
            out["hint"] = self.hint
        return out

    def format(self, name: str = "") -> str:
        where = f"{name}:" if name else ""
        if self.span.line:
            where += f"{self.span.line}:{self.span.column}:"
        ctx = f" [{self.block}]" if self.block else ""
        hint = f" (hint: {self.hint})" if self.hint else ""
        return (f"{where} {self.severity.label}[{self.rule}]{ctx} "
                f"{self.message}{hint}")


def sort_diagnostics(diags: List[Diagnostic]) -> List[Diagnostic]:
    return sorted(diags, key=Diagnostic.sort_key)


def max_severity(diags: List[Diagnostic]) -> Optional[Severity]:
    return max((d.severity for d in diags), default=None)


def render_json(diags: List[Diagnostic], name: str = "") -> str:
    return json.dumps({
        "program": name,
        "diagnostics": [d.to_dict() for d in sort_diagnostics(diags)],
    }, indent=2, sort_keys=True)


__all__ = ["Diagnostic", "Severity", "max_severity", "render_json",
           "sort_diagnostics"]
