"""First-order translation of LTLf (Figure 5, bottom).

De Giacomo & Vardi's translation maps an LTLf formula to a first-order
formula over finite index sequences::

    [A]x          = A(x)
    [!phi]x       = ![phi]x
    [phi & psi]x  = [phi]x & [psi]x
    [X phi]x      = exists y. succ(x, y) & [phi]y
    [phi U psi]x  = exists y. x <= y <= last & [psi]y &
                    forall z. x <= z < y -> [phi]z

This module represents that FO fragment explicitly and evaluates it over
a finite interpretation, providing the middle leg of Theorem 3.1's
three-way equivalence (LTLf semantics == FO semantics == compiled-Indus
verdict), which the test suite checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

from .ast import And, Atom, FalseF, Formula, Next, Not, TrueF, Until


class FOFormula:
    """Base class for first-order formulas over trace indices."""


@dataclass(frozen=True)
class FOAtom(FOFormula):
    """A(x) — atom ``name`` holds at the event index bound to ``var``."""

    name: str
    var: str


@dataclass(frozen=True)
class FOTrue(FOFormula):
    pass


@dataclass(frozen=True)
class FOFalse(FOFormula):
    pass


@dataclass(frozen=True)
class FONot(FOFormula):
    operand: FOFormula


@dataclass(frozen=True)
class FOAnd(FOFormula):
    left: FOFormula
    right: FOFormula


@dataclass(frozen=True)
class FOSucc(FOFormula):
    """succ(x, y): y = x + 1 within the trace."""

    x: str
    y: str


@dataclass(frozen=True)
class FOLe(FOFormula):
    """x <= y over indices."""

    x: str
    y: str


@dataclass(frozen=True)
class FOLt(FOFormula):
    x: str
    y: str


@dataclass(frozen=True)
class FOExists(FOFormula):
    var: str
    body: FOFormula


@dataclass(frozen=True)
class FOForAll(FOFormula):
    var: str
    body: FOFormula


def fo_or(a: FOFormula, b: FOFormula) -> FOFormula:
    return FONot(FOAnd(FONot(a), FONot(b)))


def fo_implies(a: FOFormula, b: FOFormula) -> FOFormula:
    return fo_or(FONot(a), b)


class _Translator:
    def __init__(self):
        self.counter = 0

    def fresh(self) -> str:
        self.counter += 1
        return f"v{self.counter}"

    def translate(self, formula: Formula, var: str) -> FOFormula:
        if isinstance(formula, TrueF):
            return FOTrue()
        if isinstance(formula, FalseF):
            return FOFalse()
        if isinstance(formula, Atom):
            return FOAtom(formula.name, var)
        if isinstance(formula, Not):
            return FONot(self.translate(formula.operand, var))
        if isinstance(formula, And):
            return FOAnd(self.translate(formula.left, var),
                         self.translate(formula.right, var))
        if isinstance(formula, Next):
            y = self.fresh()
            return FOExists(y, FOAnd(FOSucc(var, y),
                                     self.translate(formula.operand, y)))
        if isinstance(formula, Until):
            y = self.fresh()
            z = self.fresh()
            within = FOAnd(FOLe(var, y),
                           self.translate(formula.right, y))
            before = FOForAll(z, fo_implies(
                FOAnd(FOLe(var, z), FOLt(z, y)),
                self.translate(formula.left, z),
            ))
            return FOExists(y, FOAnd(within, before))
        raise TypeError(f"unknown formula {type(formula).__name__}")


def to_first_order(formula: Formula, var: str = "x") -> FOFormula:
    """Translate an LTLf formula to first-order logic (Figure 5)."""
    return _Translator().translate(formula, var)


def evaluate_fo(formula: FOFormula, trace: Sequence[Set[str]],
                assignment: Dict[str, int]) -> bool:
    """Evaluate an FO formula over a finite trace interpretation."""
    n = len(trace)
    if isinstance(formula, FOTrue):
        return True
    if isinstance(formula, FOFalse):
        return False
    if isinstance(formula, FOAtom):
        return formula.name in trace[assignment[formula.var]]
    if isinstance(formula, FONot):
        return not evaluate_fo(formula.operand, trace, assignment)
    if isinstance(formula, FOAnd):
        return (evaluate_fo(formula.left, trace, assignment)
                and evaluate_fo(formula.right, trace, assignment))
    if isinstance(formula, FOSucc):
        return assignment[formula.y] == assignment[formula.x] + 1
    if isinstance(formula, FOLe):
        return assignment[formula.x] <= assignment[formula.y]
    if isinstance(formula, FOLt):
        return assignment[formula.x] < assignment[formula.y]
    if isinstance(formula, FOExists):
        return any(
            evaluate_fo(formula.body, trace, {**assignment, formula.var: i})
            for i in range(n)
        )
    if isinstance(formula, FOForAll):
        return all(
            evaluate_fo(formula.body, trace, {**assignment, formula.var: i})
            for i in range(n)
        )
    raise TypeError(f"unknown FO formula {type(formula).__name__}")


def fo_holds(formula: Formula, trace: Sequence[Set[str]]) -> bool:
    """Theorem 3.1, leg two: evaluate via the first-order translation
    with the start variable bound to index 0."""
    if not trace:
        raise ValueError("FO semantics need a non-empty trace")
    fo = to_first_order(formula, "x")
    return evaluate_fo(fo, [set(e) for e in trace], {"x": 0})
