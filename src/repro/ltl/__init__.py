"""LTLf toolchain for the expressiveness theorem (Section 3.3):
syntax + parser, finite-trace semantics, the first-order translation of
Figure 5, and the LTLf-to-Indus compiler of Theorem 3.1."""

from .ast import (Always, And, Atom, Eventually, FalseF, Formula, Implies,
                  LtlParseError, Next, Not, Or, TrueF, Until, WeakNext,
                  atoms_of, parse_formula)
from .fol import (FOFormula, evaluate_fo, fo_holds, to_first_order)
from .semantics import holds, normalize_trace
from .to_indus import (DEFAULT_MAX_TRACE, ltl_to_indus, ltl_to_indus_source,
                       monitor_accepts)

__all__ = [
    "Always", "And", "Atom", "DEFAULT_MAX_TRACE", "Eventually", "FOFormula",
    "FalseF", "Formula", "Implies", "LtlParseError", "Next", "Not", "Or",
    "TrueF", "Until", "WeakNext", "atoms_of", "evaluate_fo", "fo_holds",
    "holds", "ltl_to_indus", "ltl_to_indus_source", "monitor_accepts",
    "normalize_trace", "parse_formula", "to_first_order",
]
