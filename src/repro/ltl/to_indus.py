"""The Theorem 3.1 construction: compile any LTLf formula to an Indus
program.

The telemetry block populates an array ``T`` with the increasing index
sequence plus one boolean array per atomic predicate; the checker block
evaluates the first-order translation of the formula over those arrays
using for-loops (existentials become loops that OR into an accumulator,
exactly as in Section 3.3's example).  The packet is rejected iff the
formula does not hold on its trace.

Atoms are read from per-hop boolean header variables named
``atom_<name>``, which the hop context (or the forwarding program's
bindings) supplies.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from ..indus import HopContext, Monitor, check, parse
from ..indus.typechecker import CheckedProgram
from .ast import (And, Atom, FalseF, Formula, Next, Not, TrueF, Until,
                  atoms_of)

DEFAULT_MAX_TRACE = 8


class _IndusEmitter:
    """Generates Indus source text for one formula."""

    def __init__(self, formula: Formula, max_trace: int):
        self.formula = formula
        self.max_trace = max_trace
        self.atoms = atoms_of(formula)
        self.locals: List[str] = []
        self.counter = 0

    def fresh_bool(self) -> str:
        self.counter += 1
        name = f"r{self.counter}"
        self.locals.append(name)
        return name

    def fresh_loop_var(self) -> str:
        self.counter += 1
        return f"i{self.counter}"

    # -- formula emission ----------------------------------------------------

    def emit(self, formula: Formula, index_expr: str,
             out: List[str], depth: int) -> str:
        """Emit statements computing ``formula`` at ``index_expr``;
        returns the local holding the result."""
        pad = "  " * depth
        result = self.fresh_bool()
        if isinstance(formula, TrueF):
            out.append(f"{pad}{result} = true;")
            return result
        if isinstance(formula, FalseF):
            out.append(f"{pad}{result} = false;")
            return result
        if isinstance(formula, Atom):
            out.append(f"{pad}{result} = A_{formula.name}[{index_expr}];")
            return result
        if isinstance(formula, Not):
            inner = self.emit(formula.operand, index_expr, out, depth)
            out.append(f"{pad}{result} = !{inner};")
            return result
        if isinstance(formula, And):
            left = self.emit(formula.left, index_expr, out, depth)
            right = self.emit(formula.right, index_expr, out, depth)
            out.append(f"{pad}{result} = {left} && {right};")
            return result
        if isinstance(formula, Next):
            # exists y. succ(x, y) & phi(y)  —  y is x+1 if in range.
            out.append(f"{pad}{result} = false;")
            out.append(f"{pad}if ({index_expr} + 1 < length(T)) {{")
            inner = self.emit(formula.operand, f"{index_expr} + 1",
                              out, depth + 1)
            out.append(f"{pad}  {result} = {inner};")
            out.append(f"{pad}}}")
            return result
        if isinstance(formula, Until):
            # exists y >= x: phi2(y) & forall z in [x, y): phi1(z)
            y = self.fresh_loop_var()
            out.append(f"{pad}{result} = false;")
            out.append(f"{pad}for ({y} in T) {{")
            inner_pad = pad + "  "
            out.append(f"{inner_pad}if ({y} >= {index_expr}) {{")
            right = self.emit(formula.right, y, out, depth + 2)
            all_before = self.fresh_bool()
            out.append(f"{inner_pad}  {all_before} = true;")
            z = self.fresh_loop_var()
            out.append(f"{inner_pad}  for ({z} in T) {{")
            out.append(f"{inner_pad}    if ({z} >= {index_expr} && "
                       f"{z} < {y}) {{")
            left = self.emit(formula.left, z, out, depth + 4)
            out.append(f"{inner_pad}      {all_before} = "
                       f"{all_before} && {left};")
            out.append(f"{inner_pad}    }}")
            out.append(f"{inner_pad}  }}")
            out.append(f"{inner_pad}  {result} = {result} || "
                       f"({right} && {all_before});")
            out.append(f"{inner_pad}}}")
            out.append(f"{pad}}}")
            return result
        raise TypeError(f"unknown formula {type(formula).__name__}")

    # -- program assembly --------------------------------------------------------

    def program_source(self) -> str:
        check_body: List[str] = []
        result = self.emit(self.formula, "0", check_body, 1)
        lines: List[str] = [
            "/* Generated from LTLf formula via the Theorem 3.1 "
            "construction */",
            f"tele bit<32>[{self.max_trace}] T;",
        ]
        for atom in self.atoms:
            lines.append(f"tele bool[{self.max_trace}] A_{atom};")
            lines.append(f"header bool atom_{atom} @ meta.atom_{atom};")
        for name in self.locals:
            lines.append(f"local bool {name} = false;")
        lines.append("{ }")
        lines.append("{")
        lines.append("  T.push(length(T));")
        for atom in self.atoms:
            lines.append(f"  A_{atom}.push(atom_{atom});")
        lines.append("}")
        lines.append("{")
        lines.extend(check_body)
        lines.append(f"  if (!{result}) {{")
        lines.append("    reject;")
        lines.append("  }")
        lines.append("}")
        return "\n".join(lines) + "\n"


def ltl_to_indus_source(formula: Formula,
                        max_trace: int = DEFAULT_MAX_TRACE) -> str:
    """Indus source text of the monitor for ``formula``."""
    return _IndusEmitter(formula, max_trace).program_source()


def ltl_to_indus(formula: Formula,
                 max_trace: int = DEFAULT_MAX_TRACE) -> CheckedProgram:
    """Parse + type-check the generated monitor."""
    return check(parse(ltl_to_indus_source(formula, max_trace)))


def monitor_accepts(formula: Formula, trace: Sequence[Set[str]],
                    max_trace: int = DEFAULT_MAX_TRACE) -> bool:
    """Theorem 3.1, leg three: run the generated Indus monitor over the
    trace (via the reference interpreter) and return its verdict.

    The packet is *accepted* (not rejected) iff the formula holds.
    """
    if not trace:
        raise ValueError("traces must be non-empty")
    if len(trace) > max_trace:
        raise ValueError(f"trace longer than the monitor's capacity "
                         f"({len(trace)} > {max_trace})")
    checked = ltl_to_indus(formula, max_trace)
    monitor = Monitor(checked)
    atoms = atoms_of(formula)
    state = monitor.new_state()
    for i, event in enumerate(trace):
        ctx = HopContext(
            headers={f"atom_{a}": (a in event) for a in atoms},
            first_hop=(i == 0),
            last_hop=(i == len(trace) - 1),
            hop_count=i,
        )
        monitor.run_hop(state, ctx)
    return not state.rejected
