"""Finite-trace semantics for LTLf.

A trace is a non-empty sequence of events; each event is the set of
atoms true at that instant (any mapping/set-like works).  ``holds``
implements De Giacomo & Vardi's semantics: *strong* next is false at the
final event; ``until`` requires the right operand to occur within the
trace.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set, Union

from .ast import And, Atom, FalseF, Formula, Next, Not, TrueF, Until

Event = Union[Set[str], Iterable[str]]


def normalize_trace(trace: Sequence[Event]) -> List[Set[str]]:
    return [set(event) for event in trace]


def holds(formula: Formula, trace: Sequence[Event],
          index: int = 0) -> bool:
    """Does ``formula`` hold on ``trace`` at ``index`` (default: start)?"""
    events = normalize_trace(trace)
    if not events:
        raise ValueError("LTLf semantics are defined over non-empty traces")
    if not 0 <= index < len(events):
        raise ValueError(f"index {index} outside trace of length {len(events)}")
    return _holds(formula, events, index)


def _holds(formula: Formula, events: List[Set[str]], i: int) -> bool:
    if isinstance(formula, TrueF):
        return True
    if isinstance(formula, FalseF):
        return False
    if isinstance(formula, Atom):
        return formula.name in events[i]
    if isinstance(formula, Not):
        return not _holds(formula.operand, events, i)
    if isinstance(formula, And):
        return (_holds(formula.left, events, i)
                and _holds(formula.right, events, i))
    if isinstance(formula, Next):
        if i + 1 >= len(events):
            return False
        return _holds(formula.operand, events, i + 1)
    if isinstance(formula, Until):
        for j in range(i, len(events)):
            if _holds(formula.right, events, j):
                return all(_holds(formula.left, events, k)
                           for k in range(i, j))
        return False
    raise TypeError(f"unknown formula {type(formula).__name__}")
