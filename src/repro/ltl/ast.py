"""LTLf (linear temporal logic over finite traces) — syntax and parser.

Core connectives follow Figure 5 of the paper: atoms, negation,
conjunction, next (``X``), and until (``U``).  The usual derived forms
are provided as constructors that expand into the core (disjunction,
implication, eventually ``F``, always ``G``, weak next, release).

Concrete syntax accepted by :func:`parse_formula`::

    G !(a & X (F a))        # no topological loop through a
    a U (b & X c)
    true, false             # constants
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Union


class Formula:
    """Base class for LTLf formulas (immutable)."""

    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)


@dataclass(frozen=True)
class Atom(Formula):
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class TrueF(Formula):
    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalseF(Formula):
    def __str__(self) -> str:
        return "false"


@dataclass(frozen=True)
class Not(Formula):
    operand: Formula

    def __str__(self) -> str:
        return f"!({self.operand})"


@dataclass(frozen=True)
class And(Formula):
    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} & {self.right})"


@dataclass(frozen=True)
class Next(Formula):
    """Strong next: requires a successor event."""

    operand: Formula

    def __str__(self) -> str:
        return f"X({self.operand})"


@dataclass(frozen=True)
class Until(Formula):
    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} U {self.right})"


# --------------------------------------------------------------------------
# Derived forms (expanded into the core)
# --------------------------------------------------------------------------

def Or(left: Formula, right: Formula) -> Formula:  # noqa: N802
    return Not(And(Not(left), Not(right)))


def Implies(left: Formula, right: Formula) -> Formula:  # noqa: N802
    return Or(Not(left), right)


def Eventually(operand: Formula) -> Formula:  # noqa: N802
    """F φ  ≡  true U φ"""
    return Until(TrueF(), operand)


def Always(operand: Formula) -> Formula:  # noqa: N802
    """G φ  ≡  ¬F¬φ"""
    return Not(Eventually(Not(operand)))


def WeakNext(operand: Formula) -> Formula:  # noqa: N802
    """Weak next: holds at the last event (no successor required)."""
    return Not(Next(Not(operand)))


def atoms_of(formula: Formula) -> List[str]:
    """Atom names appearing in a formula, in first-occurrence order."""
    out: List[str] = []

    def walk(f: Formula) -> None:
        if isinstance(f, Atom):
            if f.name not in out:
                out.append(f.name)
        elif isinstance(f, Not):
            walk(f.operand)
        elif isinstance(f, Next):
            walk(f.operand)
        elif isinstance(f, (And, Until)):
            walk(f.left)
            walk(f.right)

    walk(formula)
    return out


# --------------------------------------------------------------------------
# Parser
# --------------------------------------------------------------------------

class LtlParseError(ValueError):
    pass


class _FormulaParser:
    """Precedence: unary (! X F G) > U > & > | > ->  (U right-assoc)."""

    def __init__(self, text: str):
        self.tokens = self._tokenize(text)
        self.pos = 0

    @staticmethod
    def _tokenize(text: str) -> List[str]:
        tokens: List[str] = []
        i = 0
        while i < len(text):
            ch = text[i]
            if ch.isspace():
                i += 1
            elif text.startswith("->", i):
                tokens.append("->")
                i += 2
            elif ch in "!&|()":
                tokens.append(ch)
                i += 1
            elif ch.isalpha() or ch == "_":
                j = i
                while j < len(text) and (text[j].isalnum() or text[j] == "_"):
                    j += 1
                tokens.append(text[i:j])
                i = j
            else:
                raise LtlParseError(f"unexpected character {ch!r}")
        tokens.append("<eof>")
        return tokens

    def _peek(self) -> str:
        return self.tokens[self.pos]

    def _next(self) -> str:
        token = self.tokens[self.pos]
        if token != "<eof>":
            self.pos += 1
        return token

    def parse(self) -> Formula:
        formula = self._implies()
        if self._peek() != "<eof>":
            raise LtlParseError(f"unexpected token {self._peek()!r}")
        return formula

    def _implies(self) -> Formula:
        left = self._or()
        if self._peek() == "->":
            self._next()
            return Implies(left, self._implies())
        return left

    def _or(self) -> Formula:
        left = self._and()
        while self._peek() == "|":
            self._next()
            left = Or(left, self._and())
        return left

    def _and(self) -> Formula:
        left = self._until()
        while self._peek() == "&":
            self._next()
            left = And(left, self._until())
        return left

    def _until(self) -> Formula:
        left = self._unary()
        if self._peek() == "U":
            self._next()
            return Until(left, self._until())
        return left

    def _unary(self) -> Formula:
        token = self._peek()
        if token == "!":
            self._next()
            return Not(self._unary())
        if token == "X":
            self._next()
            return Next(self._unary())
        if token == "F":
            self._next()
            return Eventually(self._unary())
        if token == "G":
            self._next()
            return Always(self._unary())
        if token == "WX":
            self._next()
            return WeakNext(self._unary())
        if token == "(":
            self._next()
            inner = self._implies()
            if self._next() != ")":
                raise LtlParseError("missing ')'")
            return inner
        if token == "true":
            self._next()
            return TrueF()
        if token == "false":
            self._next()
            return FalseF()
        if token not in ("<eof>", ")", "&", "|", "U", "->"):
            self._next()
            return Atom(token)
        raise LtlParseError(f"expected a formula, found {token!r}")


def parse_formula(text: str) -> Formula:
    """Parse an LTLf formula from text."""
    return _FormulaParser(text).parse()
