"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``check <file.indus>``       — parse + type-check a program
* ``compile <name-or-file>``   — compile to P4 and print the code
* ``lint <target>``            — dataflow diagnostics over a checker
* ``properties``               — list the bundled property library
* ``table1``                   — reproduce Table 1
* ``fig12``                    — run the Figure 12 RTT experiment
* ``bench``                    — benchmark the interp/fast/codegen engines
  (``--net``: paper-rate traffic-plane replay; ``--aether``: bench-scale
  Aether soak)
* ``aether``                   — million-subscriber Aether soak (bulk
  attach/churn + traffic with live checkers)
* ``difftest``                 — three-level differential oracle
* ``dump-src <target>``        — print the codegen engine's generated
  Python source for a pipeline, with line numbers
* ``metrics``                  — run a metered deployment, dump metrics
* ``trace``                    — record + print a packet-lifecycle trace
* ``ltl "<formula>"``          — compile an LTLf formula to Indus
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .indus import IndusError, check, parse


def _load_program_text(target: str) -> tuple:
    """Resolve a CLI target to (name, source text): either a bundled
    property name or a path to an .indus file."""
    from .properties import PROPERTIES, load_source

    if target in PROPERTIES:
        return target, load_source(target)
    if os.path.exists(target):
        with open(target) as handle:
            return os.path.splitext(os.path.basename(target))[0], \
                handle.read()
    raise SystemExit(
        f"error: {target!r} is neither a bundled property nor a file; "
        f"bundled: {', '.join(sorted(PROPERTIES))}"
    )


def cmd_check(args: argparse.Namespace) -> int:
    name, source = _load_program_text(args.target)
    try:
        checked = check(parse(source))
    except IndusError as exc:
        print(f"{name}: error: {exc}", file=sys.stderr)
        return 1
    program = checked.program
    print(f"{name}: OK")
    for decl in program.decls:
        print(f"  {decl.kind.value:8s} {decl.ty}  {decl.name}")
    if checked.used_builtins:
        print(f"  builtins: {', '.join(sorted(checked.used_builtins))}")
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    from .compiler import compile_program, standalone_program
    from .p4 import count_loc, render

    name, source = _load_program_text(args.target)
    try:
        compiled = compile_program(source, name=name)
    except IndusError as exc:
        print(f"{name}: error: {exc}", file=sys.stderr)
        return 1
    if args.summary:
        header = compiled.hydra_header
        print(f"checker:          {name}")
        print(f"telemetry header: {header.width_bits} bits "
              f"({header.width_bytes} bytes), {len(header.fields)} fields")
        print(f"metadata fields:  {len(compiled.metadata)}")
        print(f"registers:        {len(compiled.registers)}")
        print(f"tables:           {len(compiled.tables)} "
              f"({', '.join(compiled.tables)})")
        text = render(standalone_program(compiled))
        print(f"generated P4:     {count_loc(text)} lines")
    else:
        print(render(standalone_program(compiled)))
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import (lint_compiled, max_severity, render_json,
                           Severity)
    from .compiler import compile_program

    threshold = Severity.parse(args.fail_on)
    if args.all:
        from .properties import PROPERTIES, load_source

        targets = [(name, load_source(name)) for name in sorted(PROPERTIES)]
    elif args.target is None:
        raise SystemExit("error: give a target (property name, .indus "
                         "file, or difftest seed) or --all")
    elif args.target.lstrip("-").isdigit():
        from .difftest.scenario import gen_scenario

        seed = int(args.target)
        targets = [(f"dt{seed}", gen_scenario(seed).source())]
    else:
        targets = [_load_program_text(args.target)]
    only = [r.strip() for r in args.only.split(",")] if args.only else None
    failed = False
    json_blobs = []
    for name, source in targets:
        try:
            compiled = compile_program(source, name=name)
        except IndusError as exc:
            print(f"{name}: error: {exc}", file=sys.stderr)
            return 1
        diags = lint_compiled(compiled, only=only)
        worst = max_severity(diags)
        if worst is not None and worst >= threshold:
            failed = True
        if args.json:
            json_blobs.append(render_json(diags, name=name))
        else:
            for diag in diags:
                print(diag.format(name=name))
            label = ("clean" if not diags else
                     f"{len(diags)} finding(s), worst {worst.label}")
            print(f"{name}: {label}")
    if args.json:
        print(json_blobs[0] if len(json_blobs) == 1
              else "[\n" + ",\n".join(json_blobs) + "\n]")
    return 1 if failed else 0


def cmd_properties(_args: argparse.Namespace) -> int:
    from .properties import PROPERTIES, indus_loc

    width = max(len(name) for name in PROPERTIES)
    for name, info in sorted(PROPERTIES.items()):
        table1 = "Table 1" if info.in_table1 else "extra  "
        print(f"{name:{width}s}  {table1}  {indus_loc(name):3d} LoC  "
              f"{info.description}")
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    from .experiments import compute_table, format_table

    print(format_table(compute_table(optimize=args.optimize)))
    return 0


def cmd_fig12(args: argparse.Namespace) -> int:
    from .experiments import Fig12Config, run_fig12

    config = Fig12Config(duration_s=args.duration,
                         load_bps_per_pair=args.load * 1e6,
                         engine=args.engine, optimize=args.optimize)
    checkers = args.checkers.split(",") if args.checkers else None
    print(f"running Figure 12 (duration {args.duration}s, "
          f"{args.load} Mb/s per pair, "
          f"checkers: {', '.join(checkers) if checkers else 'all'}"
          + (f", {args.workers} workers" if args.workers > 1 else "")
          + "; this takes a little while)...")
    result = run_fig12(config, checkers=checkers, workers=args.workers)
    for run in (result.baseline, result.with_checkers):
        print(f"{run.label:14s} n={len(run.rtts_ms):4d} "
              f"mean RTT={run.mean_ms:.4f} ms")
    t = result.t_test
    verdict = ("statistically significant difference"
               if t.significant() else "no significant difference")
    print(f"Welch t-test: t={t.statistic:.3f}, p={t.p_value:.3f} "
          f"-> {verdict}")
    return 0


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _parse_engines(text: str) -> Optional[List[str]]:
    """A comma-separated engine list, validated; empty/blank -> None."""
    if not text:
        return None
    engines = [e.strip() for e in text.split(",") if e.strip()]
    valid = ("interp", "fast", "codegen")
    for engine in engines:
        if engine not in valid:
            raise SystemExit(f"error: unknown engine {engine!r}; "
                             f"valid: {', '.join(valid)}")
    return engines or None


def cmd_bench(args: argparse.Namespace) -> int:
    from .api import bench
    from .experiments import (format_aether_bench, format_bench,
                              format_net_bench)

    engines = _parse_engines(args.engine)
    if args.net and args.aether:
        raise SystemExit("error: give at most one of --net / --aether")
    if args.aether:
        out = args.out if args.out != "BENCH_throughput.json" \
            else "BENCH_aether.json"
        engine = engines[0] if engines else "codegen"
        print(f"aether soak benchmark ({args.sessions:,} sessions, "
              f"engine {engine}"
              + (f", {args.workers} workers" if args.workers > 1 else "")
              + ")...")
        result = bench(kind="aether", sessions=args.sessions,
                       workers=args.workers, out=out, engines=engines)
        print(format_aether_bench(result))
        if out:
            print(f"wrote {out}")
        flat = result.get("flatness", {}).get("flat")
        if args.workers > 1:
            flat = None  # advisory under sharding: cores are contended
        return 0 if result.reports == 0 and flat is not False else 1
    if args.net:
        out = args.out if args.out != "BENCH_throughput.json" \
            else "BENCH_net.json"
        engine = engines[0] if engines else "codegen"
        print(f"net-plane replay benchmark (engine {engine}, "
              f"{args.rate:,.0f} pps offered for {args.duration}s "
              "simulated)...")
        result = bench(kind="net", rate_pps=args.rate,
                       duration_s=args.duration, out=out,
                       engines=engines)
        print(format_net_bench(result))
        if out:
            print(f"wrote {out}")
        return 0 if result["sustained"] and result["equivalence"]["ok"] \
            else 1
    label = ", ".join(engines) if engines else "interp, fast, codegen"
    print(f"benchmarking {label} engines "
          f"({args.packets} packets per run"
          + (f", {args.workers} workers for side tasks"
             if args.workers > 1 else "") + ")...")
    result = bench(packets=args.packets, replay=not args.no_replay,
                   out=args.out, workers=args.workers,
                   optimize=args.optimize, engines=engines)
    print(format_bench(result))
    if args.out:
        print(f"wrote {args.out}")
    return 0


def cmd_aether(args: argparse.Namespace) -> int:
    from .api import aether
    from .experiments import format_aether_bench

    print(f"aether soak: {args.sessions:,} sessions, engine "
          f"{args.engine}, churn 1/{args.churn_every}, "
          f"{args.replay_ues} replay UEs"
          + (f", {args.workers} workers" if args.workers > 1 else "")
          + (" (flatness probe off)" if args.no_flatness else "")
          + "...")
    result = aether(sessions=args.sessions, engine=args.engine,
                    batched=not args.event, workers=args.workers,
                    batch_size=args.batch, churn_every=args.churn_every,
                    replay_ues=args.replay_ues,
                    replay_repeats=args.replay_repeats,
                    flatness=not args.no_flatness,
                    out=args.out or None)
    print(format_aether_bench(result))
    if args.out:
        print(f"wrote {args.out}")
    if result.reports:
        print(f"error: checker raised {result.reports} report(s) on "
              "allowed traffic", file=sys.stderr)
        return 1
    if result.flat is False:
        if args.workers > 1:
            # Sharded probes contend for cores, so the wall-clock
            # ratio is advisory; only serial runs gate the exit code.
            print("note: flatness probe is advisory with workers > 1 "
                  "(shards contend for cores); rerun with --workers 1 "
                  "to gate on it", file=sys.stderr)
        else:
            print("error: per-packet cost not flat across session "
                  "scale", file=sys.stderr)
            return 1
    return 0


def cmd_difftest(args: argparse.Namespace) -> int:
    from .api import difftest
    from .difftest import Minimizer, dump_reproducer

    engines = _parse_engines(args.engine)
    if engines is not None and len(engines) < 2:
        raise SystemExit("error: the oracle cross-checks engines; give "
                         "at least two (e.g. --engine interp,codegen)")
    mode = "injected-bug validation" if args.inject_bug else "oracle"
    print(f"difftest ({mode}): seed {args.seed}, {args.iters} iteration(s)"
          + (f", engines {','.join(engines)}" if engines else "")
          + (f", {args.workers} workers" if args.workers > 1 else ""))
    summary = difftest(seed=args.seed, iters=args.iters,
                       inject_bug=args.inject_bug, progress=print,
                       workers=args.workers, timeout_s=args.timeout,
                       quarantine_dir=args.out, optimize=args.optimize,
                       engines=engines)
    if summary.workers > 1:
        if summary.respawns:
            print(f"worker respawns: {summary.respawns}")
        for record in summary.quarantined:
            print(f"quarantined seed {record['seed']} "
                  f"({record['reason']}): {record['bundle']}",
                  file=sys.stderr)
        if summary.interrupted:
            print("interrupted: partial results "
                  f"({summary.iterations} of {args.iters} scenarios)",
                  file=sys.stderr)
    if args.inject_bug:
        print(f"mutations injected: {summary.mutations_injected}, "
              f"caught: {summary.mutations_caught}")
        if summary.mutations_injected == 0:
            print("error: no iteration offered a mutation point",
                  file=sys.stderr)
            return 1
        return 0 if summary.mutations_caught else 1
    print(f"{summary.iterations} scenario(s): {summary.packets_run} packets, "
          f"{summary.hops_checked} wire-telemetry hops, "
          f"{summary.reports_checked} reports checked")
    if summary.ok:
        print("all three levels agree")
        return 0
    if not summary.failures:
        # Quarantines only (crash/hang seeds) — the reproducer bundles
        # are already on disk; nothing to minimize here.
        print(f"{len(summary.quarantined)} seed(s) quarantined",
              file=sys.stderr)
        return 1
    failure = summary.failures[0]
    print(f"DISAGREEMENT: {failure}", file=sys.stderr)
    print("minimizing...", file=sys.stderr)
    minimizer = Minimizer()
    try:
        shrunk, shrunk_failure = minimizer.minimize(failure.scenario)
    except ValueError:
        shrunk, shrunk_failure = failure.scenario, failure
    json_path, indus_path = dump_reproducer(shrunk, shrunk_failure, args.out)
    print(f"minimal reproducer ({minimizer.evaluations} evaluations): "
          f"{indus_path} + {json_path}", file=sys.stderr)
    return 1


def cmd_run(args: argparse.Namespace) -> int:
    from .runtime.tracecheck import TraceFormatError, run_trace_file

    name, source = _load_program_text(args.target)
    try:
        checked = check(parse(source))
        result = run_trace_file(checked, args.trace)
    except (IndusError, TraceFormatError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    verdict = "ACCEPTED" if result.accepted else "REJECTED"
    print(f"{name}: {verdict} after {result.hop_count} hop(s)")
    for tele_name, value in result.tele_values().items():
        print(f"  tele {tele_name} = {value}")
    for report in result.reports:
        payload = "" if report.payload is None else f" {report.payload}"
        print(f"  report from {report.block} block at switch "
              f"{report.switch_id}{payload}")
    return 0 if result.accepted else 2


def cmd_codegen(args: argparse.Namespace) -> int:
    from .compiler import compile_program
    from .compiler.driver import write_deployment
    from .net.topofile import TopologyFormatError, load_topology

    name, source = _load_program_text(args.target)
    try:
        topology = load_topology(args.topology)
    except (OSError, TopologyFormatError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        compiled = compile_program(source, name=name)
        written = write_deployment(
            compiled, topology, args.out, forwarding=args.forwarding,
            check_mode="per_hop" if args.per_hop else "last_hop")
    except (IndusError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    manifest = written.pop("__manifest__")
    for switch, path in sorted(written.items()):
        role = topology.switches[switch].role
        print(f"  {switch:12s} ({role:4s}) -> {path}")
    print(f"  manifest            -> {manifest}")
    return 0


def _traced_run(args: argparse.Namespace):
    """Run the scenario named by ``args.scenario`` under a fully live
    Observability handle and return it (registry + tracer populated)."""
    from .obs import Observability

    obs = Observability.enabled()
    if args.scenario == "fig12":
        from .experiments import Fig12Config, run_rtt_experiment
        from .experiments.fig12 import ALL_CHECKERS

        config = Fig12Config(duration_s=args.duration, engine=args.engine)
        run_rtt_experiment(ALL_CHECKERS, "traced", config, obs=obs)
        return obs
    if args.scenario == "aether":
        # A miniature soak with the live registry: surfaces
        # phase_seconds{phase="attach"|"churn"|"replay"} and the rest
        # of the control-plane metrics.
        from .experiments.aetherbench import run_soak

        run_soak(sessions=2_000, engine=args.engine, batched=False,
                 workers=1, batch_size=500, replay_ues=100,
                 replay_repeats=3, flatness=False,
                 registry=obs.registry)
        return obs
    try:
        seed = int(args.scenario)
    except ValueError:
        raise SystemExit(
            f"error: scenario must be 'fig12', 'aether', or a difftest "
            f"seed (an integer), got {args.scenario!r}")
    from .api import compile_indus, deploy
    from .difftest.harness import build_packet
    from .difftest.scenario import gen_scenario

    scenario = gen_scenario(seed)
    compiled = compile_indus(scenario.source(), name=f"dt{seed}")
    dep = deploy(compiled, scenario=scenario, engine=args.engine, obs=obs)
    for spec in scenario.packets:
        packet = build_packet(spec, dep.topology, scenario.src_host,
                              scenario.dst_host)
        dep.network.host(scenario.src_host).send(packet)
        dep.network.run()
    return obs


def cmd_metrics(args: argparse.Namespace) -> int:
    obs = _traced_run(args)
    if args.json:
        print(obs.registry.render_json())
    else:
        print(obs.registry.render_prometheus(), end="")
    return 0


def _format_event(event) -> str:
    ts = f"{event.ts * 1e6:10.2f}us" if event.ts is not None else " " * 12
    port = "" if event.port is None else f" port={event.port}"
    detail = " ".join(f"{k}={v}" for k, v in sorted(event.detail.items())
                      if k not in ("state",))
    return (f"  {ts} {event.kind:12s} {event.node:10s}{port}"
            + (f"  {detail}" if detail else ""))


def cmd_trace(args: argparse.Namespace) -> int:
    obs = _traced_run(args)
    tracer = obs.tracer
    if args.out:
        tracer.export_jsonl(args.out)
        print(f"wrote {tracer.total - tracer.dropped} events "
              f"({tracer.dropped} dropped by the ring) to {args.out}",
              file=sys.stderr)
    if args.follow:
        for pid in tracer.packet_ids():
            events = tracer.events(packet_id=pid)
            print(f"packet {pid} ({len(events)} events):")
            for event in events:
                print(_format_event(event))
    elif not args.out:
        for line in tracer.to_jsonl_lines():
            print(line)
    return 0


def cmd_dump_src(args: argparse.Namespace) -> int:
    from .api import generated_source

    target = args.target
    if target.lstrip("-").isdigit():
        program: object = int(target)
        name = f"dt{target}"
    else:
        name, _source = _load_program_text(target)
        program = target
    try:
        source = generated_source(program, name=name,
                                  optimize=args.optimize)
    except IndusError as exc:
        print(f"{name}: error: {exc}", file=sys.stderr)
        return 1
    lines = source.splitlines()
    width = len(str(len(lines)))
    for i, line in enumerate(lines, 1):
        print(f"{i:{width}d}  {line}")
    return 0


def cmd_ltl(args: argparse.Namespace) -> int:
    from .ltl import ltl_to_indus_source, parse_formula

    try:
        formula = parse_formula(args.formula)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(ltl_to_indus_source(formula, max_trace=args.max_trace))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hydra runtime network verification (SIGCOMM 2023 "
                    "reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("check", help="parse + type-check an Indus program")
    p.add_argument("target", help="bundled property name or .indus file")
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser("compile", help="compile an Indus program to P4")
    p.add_argument("target", help="bundled property name or .indus file")
    p.add_argument("--summary", action="store_true",
                   help="print a resource summary instead of the P4 code")
    p.set_defaults(fn=cmd_compile)

    p = sub.add_parser(
        "lint",
        help="dataflow diagnostics over a compiled checker "
             "(uninitialized reads, dead registers/tables, width "
             "truncation, ...)")
    p.add_argument("target", nargs="?", default=None,
                   help="bundled property name, .indus file, or a "
                        "difftest scenario seed (integer)")
    p.add_argument("--all", action="store_true",
                   help="lint every bundled property")
    p.add_argument("--json", action="store_true",
                   help="machine-readable JSON instead of text")
    p.add_argument("--only", default="",
                   help="comma-separated rule ids to run (e.g. "
                        "IH001,IH006); default all")
    p.add_argument("--fail-on", default="error",
                   choices=["info", "warn", "warning", "error"],
                   help="exit nonzero when a finding at or above this "
                        "severity exists (default error)")
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser("properties", help="list the property library")
    p.set_defaults(fn=cmd_properties)

    p = sub.add_parser("table1", help="reproduce Table 1")
    p.add_argument("--optimize", action="store_true",
                   help="add dataflow-optimizer stage/PHV delta columns")
    p.set_defaults(fn=cmd_table1)

    p = sub.add_parser("fig12", help="run the Figure 12 RTT experiment")
    p.add_argument("--duration", type=float, default=0.1,
                   help="simulated seconds per arm (default 0.1)")
    p.add_argument("--load", type=float, default=40.0,
                   help="background load per host pair, Mb/s (default 40)")
    p.add_argument("--checkers", default="",
                   help="comma-separated checker subset "
                        "(default: all eleven Table-1 checkers)")
    p.add_argument("--engine", default="fast",
                   choices=["fast", "interp", "codegen"],
                   help="switch execution engine (default fast)")
    p.add_argument("--workers", type=_positive_int, default=1,
                   help="run the two arms in a process pool "
                        "(default 1 = serial; results are identical)")
    p.add_argument("--optimize", action="store_true",
                   help="run the dataflow optimizer on every checker")
    p.set_defaults(fn=cmd_fig12)

    p = sub.add_parser(
        "bench",
        help="benchmark the behavioral model: interp/fast/codegen "
             "packets/sec (plus codegen batch mode)")
    p.add_argument("--packets", type=_positive_int, default=5000,
                   help="packets per timing run (default 5000)")
    p.add_argument("--engine", default="",
                   help="comma-separated engines to time (default "
                        "interp,fast,codegen)")
    p.add_argument("--no-replay", action="store_true",
                   help="skip the campus-replay goodput parity check")
    p.add_argument("-o", "--out", default="BENCH_throughput.json",
                   help="output JSON path (default BENCH_throughput.json)")
    p.add_argument("--workers", type=_positive_int, default=1,
                   help="offload replay/snapshot side tasks to a "
                        "process pool; the timed pps loop stays serial "
                        "(default 1)")
    p.add_argument("--optimize", action="store_true",
                   help="benchmark the dataflow-optimized checker")
    p.add_argument("--net", action="store_true",
                   help="run the traffic-plane benchmark instead: "
                        "fig12-style campus replay through the full "
                        "fabric, batched vs event mode, against the "
                        "paper's 350K pps mirror rate (writes "
                        "BENCH_net.json unless -o is given)")
    p.add_argument("--rate", type=float, default=400_000.0,
                   help="[--net] offered replay rate in packets/sec "
                        "(default 400000)")
    p.add_argument("--duration", type=float, default=1.0,
                   help="[--net] simulated seconds of trace to replay "
                        "(default 1.0)")
    p.add_argument("--aether", action="store_true",
                   help="run the Aether soak benchmark instead at "
                        "bench scale: bulk attach, churn, and traffic "
                        "with checkers live (writes BENCH_aether.json "
                        "unless -o is given; `repro aether` runs the "
                        "full-scale campaign)")
    p.add_argument("--sessions", type=_positive_int, default=50_000,
                   help="[--aether] concurrent sessions (default 50000)")
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "aether",
        help="million-subscriber Aether soak: bulk PFCP-style attach, "
             "churn, uplink/downlink traffic through the UPF with the "
             "application-filtering checker live, and a per-packet "
             "cost flatness probe")
    p.add_argument("--sessions", type=_positive_int, default=1_000_000,
                   help="concurrent sessions to sustain "
                        "(default 1000000)")
    p.add_argument("--engine", default="codegen",
                   choices=["fast", "interp", "codegen"],
                   help="switch execution engine (default codegen)")
    p.add_argument("--workers", type=_positive_int, default=1,
                   help="shard the UE range over N worker processes "
                        "(default 1; deterministic counters are "
                        "identical for any worker count)")
    p.add_argument("--batch", type=_positive_int, default=10_000,
                   help="attach/detach batch size (default 10000)")
    p.add_argument("--churn-every", type=_positive_int, default=10,
                   help="detach+reattach every Nth UE (default 10)")
    p.add_argument("--replay-ues", type=_positive_int, default=2_000,
                   help="UEs sampled for the traffic phase "
                        "(default 2000)")
    p.add_argument("--replay-repeats", type=_positive_int, default=25,
                   help="packets per sampled UE (default 25)")
    p.add_argument("--event", action="store_true",
                   help="event-per-packet network mode instead of the "
                        "batched hot loop")
    p.add_argument("--no-flatness", action="store_true",
                   help="skip the per-packet cost flatness probe")
    p.add_argument("-o", "--out", default="BENCH_aether.json",
                   help="output JSON path (default BENCH_aether.json; "
                        "empty string disables the write)")
    p.set_defaults(fn=cmd_aether)

    p = sub.add_parser(
        "difftest",
        help="three-level differential oracle: Indus interpreter vs "
             "compiled P4 interp vs fastpath, over random scenarios")
    p.add_argument("--seed", type=int, default=0,
                   help="first scenario seed (default 0)")
    p.add_argument("--iters", type=_positive_int, default=100,
                   help="number of scenarios (default 100)")
    p.add_argument("-o", "--out", default="difftest_failures",
                   help="directory for minimized reproducers and "
                        "quarantine bundles (default difftest_failures)")
    p.add_argument("--engine", default="",
                   help="comma-separated engine set the oracle "
                        "cross-checks (default interp,fast; e.g. "
                        "--engine interp,fast,codegen)")
    p.add_argument("--inject-bug", action="store_true",
                   help="mutate the compiled checker each iteration and "
                        "verify the oracle catches it")
    p.add_argument("--workers", type=_positive_int, default=1,
                   help="shard the seed range across N worker processes "
                        "(default 1 = serial; the verdict set is "
                        "identical for any worker count)")
    p.add_argument("--timeout", type=float, default=60.0,
                   help="per-scenario wall-clock budget in seconds for "
                        "parallel runs; a hung worker is killed and the "
                        "seed quarantined (default 60)")
    p.add_argument("--optimize", action="store_true",
                   help="run each scenario's checker through the "
                        "dataflow optimizer first (the oracle then "
                        "validates the optimizer itself)")
    p.set_defaults(fn=cmd_difftest)

    p = sub.add_parser(
        "run",
        help="run a property over a JSON hop trace (property debugger)")
    p.add_argument("target", help="bundled property name or .indus file")
    p.add_argument("--trace", required=True,
                   help="trace JSON (see repro.runtime.tracecheck)")
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser(
        "codegen",
        help="generate per-switch P4 for a topology (the paper's "
             "compiler interface: Indus program + topology file)")
    p.add_argument("target", help="bundled property name or .indus file")
    p.add_argument("--topology", required=True,
                   help="topology JSON file (see repro.net.topofile)")
    p.add_argument("-o", "--out", required=True, help="output directory")
    p.add_argument("--forwarding", default="l2",
                   help="forwarding profile: l2, ipv4, srcroute, fabric, "
                        "vlan, upf (default l2)")
    p.add_argument("--per-hop", action="store_true",
                   help="per-hop checking (Section 4.3) instead of "
                        "last-hop")
    p.set_defaults(fn=cmd_codegen)

    def add_scenario_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("scenario", nargs="?", default="fig12",
                       help="'fig12' (default), 'aether' (miniature "
                            "soak), or a difftest scenario seed "
                            "(integer)")
        p.add_argument("--duration", type=float, default=0.02,
                       help="simulated seconds for the fig12 scenario "
                            "(default 0.02)")
        p.add_argument("--engine", default="fast",
                       choices=["fast", "interp", "codegen"],
                       help="switch execution engine (default fast)")

    p = sub.add_parser(
        "metrics",
        help="run a scenario with live metrics and print the registry "
             "(Prometheus text format)")
    add_scenario_args(p)
    p.add_argument("--json", action="store_true",
                   help="JSON dump instead of Prometheus text")
    p.set_defaults(fn=cmd_metrics)

    p = sub.add_parser(
        "trace",
        help="record the packet-lifecycle trace of a scenario "
             "(JSON-lines, or pretty-printed with --follow)")
    add_scenario_args(p)
    p.add_argument("--follow", action="store_true",
                   help="pretty-print each packet's lifecycle instead "
                        "of emitting JSON lines")
    p.add_argument("-o", "--out", default="",
                   help="write JSON-lines to this file instead of stdout")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser(
        "dump-src",
        help="print the codegen engine's generated Python source for a "
             "pipeline (line-numbered, for oracle-divergence diagnosis)")
    p.add_argument("target",
                   help="bundled property name, .indus file, or a "
                        "difftest scenario seed (integer)")
    p.add_argument("--optimize", action="store_true",
                   help="run the dataflow optimizer first")
    p.set_defaults(fn=cmd_dump_src)

    p = sub.add_parser("ltl", help="compile an LTLf formula to Indus")
    p.add_argument("formula", help='e.g. "G !(a & X (F a))"')
    p.add_argument("--max-trace", type=int, default=8,
                   help="monitor trace capacity (default 8)")
    p.set_defaults(fn=cmd_ltl)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
