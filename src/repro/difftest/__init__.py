"""End-to-end differential oracle: Indus semantics vs compiled P4.

The subsystem generates randomized property programs and network
scenarios (:mod:`.genprog`, :mod:`.scenario`), runs them through full
:class:`~repro.runtime.deployment.HydraDeployment` instances under both
P4 engines, replays the observed hop-by-hop trace through the reference
Indus :class:`~repro.indus.interp.Monitor`, and asserts that verdicts,
reports, and wire telemetry agree (:mod:`.harness`).  Failing cases
shrink to minimal reproducers (:mod:`.minimize`).

Campaigns run serially in-process or sharded across worker processes
(:mod:`repro.parallel`) — ``run_difftest(..., workers=N)`` dispatches;
for a fixed seed the *set* of scenario verdicts is identical for any
worker count.

Entry points: ``python -m repro difftest --seed N --iters K
[--workers W]``, :func:`repro.api.difftest`, and the pytest suite
``tests/test_difftest.py`` (marker ``difftest``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from .genprog import GenProgram, gen_oracle_program
from .harness import (DiffFailure, ScenarioResult, build_packet,
                      build_scenario_deployment, deploy_scenario,
                      inject_mutation, kill_register_write, orphan_table,
                      run_scenario)
from .minimize import Minimizer, dump_reproducer
from .scenario import PacketSpec, Scenario, gen_scenario

__all__ = [
    "DiffFailure", "DifftestSummary", "GenProgram", "Minimizer",
    "PacketSpec", "Scenario", "ScenarioResult", "SeedOutcome",
    "build_packet", "build_scenario_deployment", "deploy_scenario",
    "dump_reproducer", "gen_oracle_program", "gen_scenario",
    "inject_mutation", "kill_register_write", "orphan_table",
    "run_difftest", "run_scenario", "run_seed",
]


@dataclass
class SeedOutcome:
    """The oracle's verdict on one seed — the unit of work the sharded
    fleet runner ships across process boundaries (pickle-safe: the
    embedded :class:`DiffFailure` carries a serializable scenario and a
    JSON-safe trace)."""

    seed: int
    failure: Optional[DiffFailure] = None
    packets_run: int = 0
    hops_checked: int = 0
    reports_checked: int = 0
    mutated: bool = False           # inject_bug mode: a mutation applied
    caught: bool = False            # ...and the oracle noticed it
    mutation_note: str = ""

    @property
    def ok(self) -> bool:
        return self.failure is None

    @property
    def verdict(self) -> str:
        """A short stable label for determinism comparisons: ``"ok"`` or
        the failure kind."""
        return "ok" if self.failure is None else self.failure.kind


def run_seed(seed: int, inject_bug: bool = False,
             registry: Any = None, optimize: bool = False,
             engines: Any = None) -> SeedOutcome:
    """Run the oracle on one seed — the shared per-iteration step of the
    serial loop and every fleet worker, so both paths compute literally
    the same thing for a given seed.  ``engines`` widens the engine set
    the oracle cross-checks (default interp vs fast)."""
    scenario = gen_scenario(seed)
    outcome = SeedOutcome(seed=seed)
    if inject_bug:
        rng = random.Random(seed)
        notes: List[str] = []

        def mutate(compiled):
            note = inject_mutation(compiled, rng)
            if note is not None:
                notes.append(note)

        result = run_scenario(scenario, mutate=mutate, registry=registry,
                              optimize=optimize, engines=engines)
        if notes:
            outcome.mutated = True
            outcome.mutation_note = notes[0]
            outcome.caught = result.failure is not None
        return outcome
    result = run_scenario(scenario, registry=registry, optimize=optimize,
                          engines=engines)
    outcome.failure = result.failure
    outcome.packets_run = result.packets_run
    outcome.hops_checked = result.hops_checked
    outcome.reports_checked = result.reports_checked
    return outcome


@dataclass
class DifftestSummary:
    """Aggregate outcome of one difftest campaign (serial or fleet)."""

    iterations: int = 0
    packets_run: int = 0
    hops_checked: int = 0
    reports_checked: int = 0
    failures: List[DiffFailure] = field(default_factory=list)
    mutations_injected: int = 0
    mutations_caught: int = 0
    #: Per-seed verdict labels ("ok" or the failure kind) — the content
    #: the determinism requirement quantifies over: for a fixed seed
    #: range this mapping is identical for any worker count.
    verdicts: Dict[int, str] = field(default_factory=dict)
    # -- fleet-only accounting (empty/zero on the serial path) ---------
    workers: int = 1
    #: Seeds pulled out of the run: [{"seed", "reason", "bundle"}] with
    #: reason "worker_crash" | "timeout" and the reproducer-bundle dir.
    quarantined: List[Dict[str, Any]] = field(default_factory=list)
    respawns: int = 0
    interrupted: bool = False

    @property
    def ok(self) -> bool:
        return not self.failures and not self.quarantined

    def absorb(self, outcome: SeedOutcome) -> None:
        """Fold one seed's outcome into the aggregate."""
        self.iterations += 1
        self.verdicts[outcome.seed] = outcome.verdict
        self.packets_run += outcome.packets_run
        self.hops_checked += outcome.hops_checked
        self.reports_checked += outcome.reports_checked
        if outcome.mutated:
            self.mutations_injected += 1
            if outcome.caught:
                self.mutations_caught += 1
        if outcome.failure is not None:
            self.failures.append(outcome.failure)


def run_difftest(seed: int = 0, iters: int = 100,
                 inject_bug: bool = False,
                 stop_on_failure: bool = True,
                 progress: Optional[Callable[[str], None]] = None,
                 obs: Any = None,
                 workers: int = 1,
                 timeout_s: float = 60.0,
                 quarantine_dir: str = "difftest_failures",
                 optimize: bool = False,
                 engines: Any = None,
                 ) -> DifftestSummary:
    """Run ``iters`` oracle iterations starting at ``seed``.

    Without ``inject_bug``, any failure is a real compiler/engine
    disagreement (collected in ``failures``).  With ``inject_bug``, each
    iteration mutates the compiled checker first and counts how many
    mutations the oracle catches; a *caught* mutation is the expected
    outcome and is not recorded as a failure.

    ``obs``, when given and live, accumulates fleet-wide metrics: the
    serial path threads its registry through every scenario, the
    parallel path merges per-worker registries into it
    (:meth:`~repro.obs.metrics.MetricsRegistry.merge`).

    ``engines`` widens the engine set each scenario cross-checks
    (default ``("interp", "fast")``; add ``"codegen"`` to validate the
    generated-source engine under the same oracle).

    ``workers > 1`` shards the seed range across that many processes
    (:func:`repro.parallel.run_fleet`): same per-seed computation,
    plus per-scenario timeouts, crashed-worker respawn, and quarantine
    of seeds that kill or hang their worker.  A parallel campaign never
    stops early — the verdict *set* for a fixed seed range is identical
    for any worker count (ordering aside), which ``stop_on_failure``
    would break.
    """
    if workers > 1:
        from ..parallel import FleetOptions, run_fleet

        options = FleetOptions(workers=workers, inject_bug=inject_bug,
                               timeout_s=timeout_s,
                               quarantine_dir=quarantine_dir,
                               optimize=optimize,
                               engines=tuple(engines) if engines else None)
        return run_fleet(seed, iters, options=options, obs=obs,
                         progress=progress)
    registry = None
    if obs is not None and obs.registry.live:
        registry = obs.registry
    summary = DifftestSummary()
    for i in range(iters):
        outcome = run_seed(seed + i, inject_bug=inject_bug,
                           registry=registry, optimize=optimize,
                           engines=engines)
        summary.absorb(outcome)
        if progress and outcome.mutated and outcome.caught:
            progress(f"seed {seed + i}: mutation caught "
                     f"({outcome.mutation_note})")
        if outcome.failure is not None:
            if progress:
                progress(f"seed {seed + i}: FAIL {outcome.failure}")
            if stop_on_failure:
                break
        elif progress and not inject_bug and (i + 1) % 25 == 0:
            progress(f"{i + 1}/{iters} scenarios clean")
    return summary
