"""End-to-end differential oracle: Indus semantics vs compiled P4.

The subsystem generates randomized property programs and network
scenarios (:mod:`.genprog`, :mod:`.scenario`), runs them through full
:class:`~repro.runtime.deployment.HydraDeployment` instances under both
P4 engines, replays the observed hop-by-hop trace through the reference
Indus :class:`~repro.indus.interp.Monitor`, and asserts that verdicts,
reports, and wire telemetry agree (:mod:`.harness`).  Failing cases
shrink to minimal reproducers (:mod:`.minimize`).

Entry points: ``python -m repro difftest --seed N --iters K`` and the
pytest suite ``tests/test_difftest.py`` (marker ``difftest``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from .genprog import GenProgram, gen_oracle_program
from .harness import (DiffFailure, ScenarioResult, inject_mutation,
                      run_scenario)
from .minimize import Minimizer, dump_reproducer
from .scenario import PacketSpec, Scenario, gen_scenario

__all__ = [
    "DiffFailure", "DifftestSummary", "GenProgram", "Minimizer",
    "PacketSpec", "Scenario", "ScenarioResult", "dump_reproducer",
    "gen_oracle_program", "gen_scenario", "inject_mutation",
    "run_difftest", "run_scenario",
]


@dataclass
class DifftestSummary:
    """Aggregate outcome of one difftest campaign."""

    iterations: int = 0
    packets_run: int = 0
    hops_checked: int = 0
    reports_checked: int = 0
    failures: List[DiffFailure] = field(default_factory=list)
    mutations_injected: int = 0
    mutations_caught: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures


def run_difftest(seed: int = 0, iters: int = 100,
                 inject_bug: bool = False,
                 stop_on_failure: bool = True,
                 progress: Optional[Callable[[str], None]] = None,
                 ) -> DifftestSummary:
    """Run ``iters`` oracle iterations starting at ``seed``.

    Without ``inject_bug``, any failure is a real compiler/engine
    disagreement (collected in ``failures``).  With ``inject_bug``, each
    iteration mutates the compiled checker first and counts how many
    mutations the oracle catches; a *caught* mutation is the expected
    outcome and is not recorded as a failure.
    """
    summary = DifftestSummary()
    for i in range(iters):
        scenario = gen_scenario(seed + i)
        summary.iterations += 1
        if inject_bug:
            rng = random.Random(seed + i)
            description: List[str] = []

            def mutate(compiled):
                note = inject_mutation(compiled, rng)
                if note is not None:
                    description.append(note)

            result = run_scenario(scenario, mutate=mutate)
            if description:
                summary.mutations_injected += 1
                if result.failure is not None:
                    summary.mutations_caught += 1
                    if progress:
                        progress(f"seed {seed + i}: mutation caught "
                                 f"({description[0]})")
            continue
        result = run_scenario(scenario)
        summary.packets_run += result.packets_run
        summary.hops_checked += result.hops_checked
        summary.reports_checked += result.reports_checked
        if result.failure is not None:
            summary.failures.append(result.failure)
            if progress:
                progress(f"seed {seed + i}: FAIL {result.failure}")
            if stop_on_failure:
                break
        elif progress and (i + 1) % 25 == 0:
            progress(f"{i + 1}/{iters} scenarios clean")
    return summary
