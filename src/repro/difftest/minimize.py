"""Delta-debugging minimizer for failing oracle scenarios.

Given a scenario on which :func:`repro.difftest.harness.run_scenario`
disagrees, shrink it while preserving *some* disagreement (classic
ddmin relaxation: any failure counts, not necessarily the original
kind — a smaller scenario exposing a related symptom is still the
better reproducer).  Reduction passes, run to a fixpoint:

1. drop packets (keep the earliest still-failing subset),
2. shrink the topology (fewer switches means fewer hops),
3. drop program statements block by block,
4. shrink integer literals inside statements (toward 0 / 1 / half).

The result is dumped as a JSON bundle: the minimized scenario, the
reconstructed hop trace of the failing packet, and the Indus source —
exactly what ``python -m repro run --trace`` needs to replay the
monitor side by hand.
"""

from __future__ import annotations

import json
import os
import re
from typing import Callable, List, Optional, Tuple

from .harness import DiffFailure, run_scenario
from .scenario import Scenario

_INT_RE = re.compile(r"\b\d+\b")


def _stmt_count(scenario: Scenario) -> int:
    p = scenario.program
    return len(p.init) + len(p.tele) + len(p.checker)


def _size(scenario: Scenario) -> Tuple[int, int, int, int]:
    """Lexicographic size for "is this candidate smaller" decisions."""
    topo = scenario.topo_params
    switches = {"single": 1,
                "linear": topo.get("num_switches", 1),
                "leaf_spine": (topo.get("num_leaves", 2)
                               + topo.get("num_spines", 1)),
                }[scenario.topo_kind]
    literals = sum(int(m) for block in (scenario.program.init,
                                        scenario.program.tele,
                                        scenario.program.checker)
                   for line in block for m in _INT_RE.findall(line))
    return (len(scenario.packets), switches, _stmt_count(scenario), literals)


class Minimizer:
    """Shrinks a failing scenario to a fixpoint."""

    def __init__(self,
                 check: Optional[Callable[[Scenario],
                                          Optional[DiffFailure]]] = None,
                 max_rounds: int = 8):
        # check(scenario) -> the failure it still exhibits, or None.
        self.check = check or (lambda s: run_scenario(s).failure)
        self.max_rounds = max_rounds
        self.evaluations = 0

    def _fails(self, candidate: Scenario) -> Optional[DiffFailure]:
        self.evaluations += 1
        try:
            return self.check(candidate)
        except Exception:
            return None       # a crashing candidate is not a reproducer

    def minimize(self, scenario: Scenario) -> Tuple[Scenario, DiffFailure]:
        failure = self._fails(scenario)
        if failure is None:
            raise ValueError("scenario does not fail; nothing to minimize")
        current = scenario
        for _ in range(self.max_rounds):
            before = _size(current)
            current, failure = self._round(current, failure)
            if _size(current) >= before:
                break
        return current, failure

    def _round(self, scenario: Scenario,
               failure: DiffFailure) -> Tuple[Scenario, DiffFailure]:
        for pass_fn in (self._drop_packets, self._shrink_topology,
                        self._drop_statements, self._shrink_constants):
            scenario, failure = pass_fn(scenario, failure)
        return scenario, failure

    def _try(self, candidate: Scenario,
             state: Tuple[Scenario, DiffFailure],
             ) -> Tuple[Tuple[Scenario, DiffFailure], bool]:
        failure = self._fails(candidate)
        if failure is not None:
            return (candidate, failure), True
        return state, False

    # -- passes ----------------------------------------------------------

    def _drop_packets(self, scenario, failure):
        state = (scenario, failure)
        while len(state[0].packets) > 1:
            shrunk = False
            for i in range(len(state[0].packets)):
                candidate = state[0].copy()
                del candidate.packets[i]
                state, ok = self._try(candidate, state)
                if ok:
                    shrunk = True
                    break
            if not shrunk:
                break
        return state

    def _shrink_topology(self, scenario, failure):
        state = (scenario, failure)
        current_size = _size(state[0])[1]
        candidates: List[Tuple[str, dict]] = [
            ("single", {"num_hosts": 2}),
            ("linear", {"num_switches": 2, "hosts_per_end": 1}),
            ("linear", {"num_switches": 3, "hosts_per_end": 1}),
        ]
        for kind, params in candidates:
            switches = params.get("num_switches", 1)
            if switches >= current_size:
                continue
            candidate = state[0].copy()
            candidate.topo_kind = kind
            candidate.topo_params = dict(params)
            # The builders name end hosts h1/h2 in both shapes.
            candidate.src_host = "h1"
            candidate.dst_host = "h2"
            state, ok = self._try(candidate, state)
            if ok:
                break
        return state

    def _drop_statements(self, scenario, failure):
        state = (scenario, failure)
        for block in ("init", "tele", "checker"):
            i = 0
            while i < len(getattr(state[0].program, block)):
                candidate = state[0].copy()
                del getattr(candidate.program, block)[i]
                state, ok = self._try(candidate, state)
                if not ok:
                    i += 1
        return state

    def _shrink_constants(self, scenario, failure):
        state = (scenario, failure)
        for block in ("init", "tele", "checker"):
            lines = getattr(state[0].program, block)
            for i in range(len(lines)):
                for replacement in ("0", "1", None):   # None = halve
                    changed = True
                    while changed:
                        changed = False
                        line = getattr(state[0].program, block)[i]
                        for match in _INT_RE.finditer(line):
                            value = int(match.group())
                            new = (value // 2 if replacement is None
                                   else int(replacement))
                            if new >= value:
                                continue
                            candidate = state[0].copy()
                            new_line = (line[:match.start()] + str(new)
                                        + line[match.end():])
                            getattr(candidate.program, block)[i] = new_line
                            state, ok = self._try(candidate, state)
                            if ok:
                                changed = True
                                break
        return state


def dump_reproducer(scenario: Scenario, failure: DiffFailure,
                    out_dir: str, name: str = "repro") -> Tuple[str, str]:
    """Write the minimal reproducer: ``<name>.indus`` (the property) and
    ``<name>.json`` (scenario + hop trace + failure description).

    Returns (json_path, indus_path).
    """
    os.makedirs(out_dir, exist_ok=True)
    indus_path = os.path.join(out_dir, f"{name}.indus")
    with open(indus_path, "w") as handle:
        handle.write(scenario.source() + "\n")
    bundle = {
        "failure": {
            "kind": failure.kind,
            "message": failure.message,
            "packet_index": failure.packet_index,
        },
        "scenario": scenario.to_json(),
        "trace": failure.trace,
        "replay": (f"python -m repro run {name}.indus "
                   f"--trace {name}.trace.json"),
    }
    json_path = os.path.join(out_dir, f"{name}.json")
    with open(json_path, "w") as handle:
        json.dump(bundle, handle, indent=2)
    if failure.trace is not None:
        with open(os.path.join(out_dir, f"{name}.trace.json"), "w") as handle:
            json.dump(failure.trace, handle, indent=2)
    return json_path, indus_path
