"""The three-level differential oracle.

One scenario runs through two full :class:`HydraDeployment` instances on
the simulator — one per P4 engine (``interp`` and ``fast``) — with a
live :class:`~repro.obs.trace.Tracer` attached; the canonical ``parse``
events of the observability plane record the hop-by-hop context each
packet actually experienced.  The recorded trace replays through the
reference :class:`~repro.indus.interp.Monitor` via
:func:`repro.runtime.tracecheck.run_trace` (whose ``monitor_hop``
events feed the telemetry comparison), and the oracle asserts that
all three levels agree on:

* the **verdict** (packet delivered vs. rejected at the last hop),
* the **reports** (block, switch id, payload — in emission order),
* the **telemetry** each hop put on the wire (the decoded Hydra header
  arriving at hop *i+1* must equal the monitor's state after hop *i*),
* plus engine-vs-engine byte equality of delivered packets, register
  state, and digest counts.

Any disagreement is a compiler or engine bug by construction: the
monitor executes the *specification* semantics on the same inputs the
deployment saw.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..compiler import compile_program
from ..compiler.codegen import CompiledChecker
from ..indus import ast
from ..net.packet import Packet, ip, make_tcp, make_udp
from ..obs import Observability, Tracer
from ..p4 import ir
from ..p4.programs import l2_port_forwarding
from ..runtime.deployment import HydraDeployment
from ..runtime.tracecheck import run_trace
from .scenario import Scenario, compute_path, forwarding_entries

#: Default engine pair the oracle cross-checks; campaigns can widen it
#: (e.g. ``("interp", "fast", "codegen")``) via the ``engines=`` knob on
#: :func:`run_scenario` / :func:`repro.difftest.run_difftest`.
ENGINES = ("interp", "fast")


@dataclass
class DiffFailure:
    """One observed disagreement between oracle levels."""

    kind: str                  # "verdict" | "reports" | "telemetry" | "engine"
    message: str
    scenario: Scenario
    packet_index: int = -1
    trace: Optional[Dict[str, Any]] = None

    def __str__(self) -> str:
        return (f"[{self.kind}] packet {self.packet_index}: {self.message}\n"
                f"  scenario: {self.scenario.describe()}")


@dataclass
class ScenarioResult:
    """Outcome of one oracle iteration."""

    scenario: Scenario
    failure: Optional[DiffFailure] = None
    packets_run: int = 0
    hops_checked: int = 0
    reports_checked: int = 0

    @property
    def ok(self) -> bool:
        return self.failure is None


@dataclass
class _HopRecord:
    """What a ``parse`` trace event saw when a packet entered a switch."""

    switch: str
    ingress_port: int
    packet_length: int
    header_values: Dict[str, int]
    hydra: Optional[Dict[str, Any]]     # None before injection (first hop)


# ---------------------------------------------------------------------------
# Packet construction and header-variable resolution
# ---------------------------------------------------------------------------

def build_packet(spec, topology, src_host: str, dst_host: str) -> Packet:
    src = topology.hosts[src_host].ipv4 or ip(10, 0, 0, 1)
    dst = topology.hosts[dst_host].ipv4 or ip(10, 0, 0, 2)
    maker = make_udp if spec.proto == "udp" else make_tcp
    return maker(src, dst, spec.sport, spec.dport,
                 payload_len=spec.payload_len, ttl=spec.ttl)


#: Backwards-compatible private alias (pre-``repro.api`` name).
_build_packet = build_packet


def _header_bindings(compiled: CompiledChecker) -> Dict[str, str]:
    """Indus header-var name -> resolved field path (annotation or the
    compiler's default binding table)."""
    from ..compiler.codegen import DEFAULT_BINDINGS

    out: Dict[str, str] = {}
    for decl in compiled.checked.program.decls_of_kind(ast.VarKind.HEADER):
        binding = decl.annotation or DEFAULT_BINDINGS.get(decl.name)
        if binding is None:
            raise ValueError(
                f"header variable {decl.name!r} has no binding")
        out[decl.name] = binding
    return out


def _resolve_header(binding: str, packet: Packet, ingress_port: int) -> int:
    """The value a compiled read of ``binding`` sees at hop entry."""
    if binding.startswith("standard_metadata."):
        field_name = binding.split(".", 1)[1]
        if field_name == "ingress_port":
            return ingress_port
        raise ValueError(f"cannot resolve {binding!r} at hop entry")
    path = binding[4:] if binding.startswith("hdr.") else binding
    hname, _, fname = path.partition(".")
    header = packet.find(hname)
    if header is None or not header.valid:
        return 0        # invalid header reads yield 0, as in the engines
    return header.get(fname)


def _decode_hydra(compiled: CompiledChecker,
                  packet: Packet) -> Optional[Dict[str, Any]]:
    """Decode the telemetry header into {tele name: value} (arrays as
    lists of their first ``count`` slots), or None if not present."""
    layout = compiled.layout
    header = packet.find(layout.header.name)
    if header is None or not header.valid:
        return None
    out: Dict[str, Any] = {}
    for name, scalar in layout.scalars.items():
        out[name] = header.get(scalar.field)
    for name, arr in layout.arrays.items():
        count = min(header.get(arr.count_field), arr.capacity)
        out[name] = [header.get(arr.slot_fields[i]) for i in range(count)]
    return out


def _flatten_payload(payload: Any) -> Optional[Tuple[int, ...]]:
    """Normalize a monitor report payload to the wire view: a flat tuple
    of ints (bools as 0/1), or None for payload-less reports."""
    if payload is None:
        return None
    if isinstance(payload, tuple):
        out: List[int] = []
        for item in payload:
            flat = _flatten_payload(item)
            out.extend(flat or ())
        return tuple(out)
    if isinstance(payload, bool):
        return (1 if payload else 0,)
    return (int(payload),)


def _tele_snapshot(state) -> Dict[str, Any]:
    """A plain-data copy of a monitor state's tele values."""
    out: Dict[str, Any] = {}
    for name, value in state.tele.items():
        if hasattr(value, "valid_items"):
            out[name] = [int(v) for v in value.valid_items()]
        elif isinstance(value, bool):
            out[name] = int(value)
        else:
            out[name] = int(value)
    return out


# ---------------------------------------------------------------------------
# Deployment-side execution, observed through the canonical trace stream
# ---------------------------------------------------------------------------

@dataclass
class _EngineRun:
    """Everything one engine's deployment observed for one scenario."""

    verdicts: List[bool] = field(default_factory=list)
    hop_records: List[List[_HopRecord]] = field(default_factory=list)
    reports: List[List[Tuple[str, int, Optional[Tuple[int, ...]]]]] = \
        field(default_factory=list)
    delivered: List[Optional[list]] = field(default_factory=list)
    registers: Dict[str, Dict[str, List[int]]] = field(default_factory=dict)
    digest_totals: Dict[str, int] = field(default_factory=dict)


def _serialize_headers(packet: Packet) -> list:
    return [(h.htype.name, h.to_bits()) for h in packet.headers if h.valid]


def build_scenario_deployment(scenario: Scenario,
                              compiled: CompiledChecker,
                              engine: str = "fast",
                              obs: Optional[Observability] = None,
                              ) -> HydraDeployment:
    """Build the deployment a scenario describes: topology, forwarding
    entries along the computed path, and control values.  Shared by the
    oracle (one deployment per engine) and the CLI trace surface.
    Library callers should go through :func:`repro.api.deploy`."""
    topology = scenario.build_topology()
    rng = random.Random(scenario.seed)
    path = compute_path(topology, scenario.src_host, scenario.dst_host, rng)
    forwarding = {name: l2_port_forwarding(f"l2_{name}")
                  for name in topology.switches}
    dep = HydraDeployment(topology, compiled, forwarding, engine=engine,
                          obs=obs)
    for sw, entries in forwarding_entries(
            topology, scenario.src_host, scenario.dst_host, path).items():
        for in_port, out_port in entries:
            dep.switches[sw].insert_entry(
                "fwd_table", [in_port], "fwd_set_egress", [out_port])
    for name, value in scenario.controls.items():
        dep.set_control(name, value)
    return dep


def deploy_scenario(scenario: Scenario, compiled: CompiledChecker,
                    engine: str = "fast",
                    obs: Optional[Observability] = None) -> HydraDeployment:
    """Deprecated alias of :func:`build_scenario_deployment`.

    Use :func:`repro.api.deploy` (``deploy(compiled,
    scenario=scenario)``) — the stable facade — instead.
    """
    warnings.warn(
        "repro.difftest.harness.deploy_scenario is deprecated; use "
        "repro.api.deploy(compiled, scenario=scenario) instead",
        DeprecationWarning, stacklevel=2)
    return build_scenario_deployment(scenario, compiled, engine=engine,
                                     obs=obs)


def _run_engine(scenario: Scenario, compiled: CompiledChecker,
                engine: str, registry=None) -> _EngineRun:
    # Every engine run gets its own tracer: its canonical `parse` events
    # (one per switch-entry, carrying the live pre-pipeline packet) are
    # the oracle's record of what each hop saw.
    tracer = Tracer()
    obs = Observability(registry=registry, tracer=tracer)
    dep = build_scenario_deployment(scenario, compiled, engine=engine,
                                    obs=obs)
    topology = dep.topology

    bindings = _header_bindings(compiled)
    records: List[_HopRecord] = []

    def on_event(event) -> None:
        if event.kind != "parse":
            return
        packet = event.packet
        records.append(_HopRecord(
            switch=event.node,
            ingress_port=event.port,
            packet_length=event.detail["packet_length"],
            header_values={
                var: _resolve_header(binding, packet, event.port)
                for var, binding in bindings.items()
            },
            hydra=_decode_hydra(compiled, packet),
        ))

    tracer.subscribe(on_event)

    run = _EngineRun()
    dst = dep.network.host(scenario.dst_host)
    for spec in scenario.packets:
        records.clear()
        dep.clear_reports()
        before_rx = dst.rx_count
        received_at = len(dst.received)
        packet = build_packet(spec, topology, scenario.src_host,
                              scenario.dst_host)
        dep.network.host(scenario.src_host).send(packet)
        dep.network.run()
        run.verdicts.append(dst.rx_count > before_rx)
        run.hop_records.append(list(records))
        run.reports.append([
            (r.block, topology.switches[r.switch_name].switch_id, r.payload)
            for r in dep.reports
        ])
        if dst.rx_count > before_rx:
            run.delivered.append(
                _serialize_headers(dst.received[received_at][1]))
        else:
            run.delivered.append(None)
    run.registers = {name: {reg: list(vals)
                            for reg, vals in sw.registers.items()}
                     for name, sw in dep.switches.items()}
    run.digest_totals = {name: sw.digests.total
                         for name, sw in dep.switches.items()}
    return run


# ---------------------------------------------------------------------------
# The oracle
# ---------------------------------------------------------------------------

def _build_trace(scenario: Scenario, topology,
                 hops: List[_HopRecord]) -> Dict[str, Any]:
    """The tracecheck document reconstructing what the deployment saw.

    ``hop_count`` is set to ``i + 1`` because the compiled telemetry
    block pre-increments the counter: during hop *i* (0-based) both the
    telemetry and checker code observe the value ``i + 1``.
    """
    return {
        "controls": dict(scenario.controls),
        "hops": [
            {
                "headers": dict(rec.header_values),
                "switch_id": topology.switches[rec.switch].switch_id,
                "packet_length": rec.packet_length,
                "hop_count": i + 1,
            }
            for i, rec in enumerate(hops)
        ],
    }


def run_scenario(scenario: Scenario,
                 mutate: Optional[Callable[[CompiledChecker], Any]] = None,
                 registry=None, optimize: bool = False,
                 engines: Optional[Tuple[str, ...]] = None) -> ScenarioResult:
    """Run one scenario through all three levels and compare.

    ``mutate``, when given, is applied to the compiled checker before
    deployment — the injected-bug hook used to validate that the oracle
    actually catches compiler defects.  ``registry``, when given, is a
    live metrics registry shared by both engine deployments (the
    verdicts must be identical with or without it).  ``optimize`` runs
    the dataflow optimizer on the compiled checker before deployment —
    the campaign knob used to validate that optimization changes
    nothing observable.  ``engines`` widens (or narrows) the engine set
    the oracle cross-checks; the first engine is the comparison anchor
    and every other engine must agree with it byte-for-byte.
    """
    engines = tuple(engines) if engines else ENGINES
    if len(engines) < 2:
        raise ValueError("the oracle needs at least two engines to "
                         f"cross-check, got {engines!r}")
    result = ScenarioResult(scenario=scenario)

    def fail(kind: str, message: str, packet_index: int = -1,
             trace: Optional[Dict[str, Any]] = None) -> ScenarioResult:
        result.failure = DiffFailure(kind=kind, message=message,
                                     scenario=scenario,
                                     packet_index=packet_index, trace=trace)
        return result

    source = scenario.source()
    try:
        compiled = compile_program(source, name=f"dt{scenario.seed}",
                                   optimize=optimize)
    except Exception as exc:
        return fail("compile", f"compiler rejected generated program: {exc}")
    if mutate is not None:
        mutate(compiled)

    runs: Dict[str, _EngineRun] = {}
    for engine in engines:
        try:
            runs[engine] = _run_engine(scenario, compiled, engine,
                                       registry=registry)
        except Exception as exc:
            return fail("engine", f"{engine} deployment crashed: {exc!r}")

    # Level 1: every P4 engine must agree byte-for-byte with the first.
    anchor = engines[0]
    a = runs[anchor]
    for other in engines[1:]:
        b = runs[other]
        for i in range(len(scenario.packets)):
            if a.verdicts[i] != b.verdicts[i]:
                return fail("engine", f"verdict {anchor}={a.verdicts[i]} "
                            f"{other}={b.verdicts[i]}", i)
            if a.delivered[i] != b.delivered[i]:
                return fail("engine", f"delivered packet bytes differ "
                            f"({anchor} vs {other})", i)
            if a.reports[i] != b.reports[i]:
                return fail("engine",
                            f"reports differ: {anchor}={a.reports[i]} "
                            f"{other}={b.reports[i]}", i)
        if a.registers != b.registers:
            return fail("engine", f"final register state differs "
                        f"({anchor} vs {other})")
        if a.digest_totals != b.digest_totals:
            return fail("engine", f"digest totals differ: "
                        f"{a.digest_totals} vs {b.digest_totals} "
                        f"({anchor} vs {other})")

    # Level 2+3: deployment behavior vs the reference monitor, replaying
    # the observed per-hop context through tracecheck.
    from ..indus import check, parse
    checked = check(parse(source))
    topology = scenario.build_topology()
    run = runs[anchor]
    for i in range(len(scenario.packets)):
        hops = run.hop_records[i]
        if not hops:
            return fail("verdict", "packet never reached a switch", i)
        trace = _build_trace(scenario, topology, hops)
        snapshots: List[Dict[str, Any]] = []
        mon_tracer = Tracer()
        mon_tracer.subscribe(
            lambda ev: snapshots.append(_tele_snapshot(ev.detail["state"]))
            if ev.kind == "monitor_hop" else None)
        trace_result = run_trace(checked, trace,
                                 obs=Observability(tracer=mon_tracer),
                                 packet_id=i)
        result.packets_run += 1

        # Verdict: delivered iff the monitor accepted.
        if trace_result.accepted != run.verdicts[i]:
            return fail(
                "verdict",
                f"monitor {'accepted' if trace_result.accepted else 'rejected'}"
                f" but deployment "
                f"{'delivered' if run.verdicts[i] else 'dropped'}",
                i, trace)

        # Reports: same (block, switch_id, payload) sequence.
        monitor_reports = [
            (rep.block, rep.switch_id, _flatten_payload(rep.payload))
            for rep in trace_result.reports
        ]
        if monitor_reports != run.reports[i]:
            return fail(
                "reports",
                f"monitor={monitor_reports} deployment={run.reports[i]}",
                i, trace)
        result.reports_checked += len(monitor_reports)

        # Telemetry on the wire: the Hydra header arriving at hop k+1
        # equals the monitor state after hop k.
        for k in range(len(hops) - 1):
            wire = hops[k + 1].hydra
            if wire is None:
                return fail("telemetry",
                            f"no telemetry header arriving at hop {k + 1}",
                            i, trace)
            expect = snapshots[k]
            for name, value in expect.items():
                if name not in wire:
                    return fail("telemetry",
                                f"tele {name!r} missing from wire header",
                                i, trace)
                if wire[name] != value:
                    return fail(
                        "telemetry",
                        f"hop {k}: tele {name!r} monitor={value} "
                        f"wire={wire[name]}", i, trace)
            result.hops_checked += 1
    return result


# ---------------------------------------------------------------------------
# Mutation injection: prove the oracle catches compiler defects
# ---------------------------------------------------------------------------

_OP_SWAP = {"+": "-", "-": "+", "*": "+", "&": "|", "|": "&", "^": "&",
            "/": "%", "%": "/", "<<": ">>", ">>": "<<",
            "==": "!=", "!=": "==", "<": "<=", "<=": "<",
            ">": ">=", ">=": ">", "&&": "||", "||": "&&"}


def _collect_mutable(stmts: List[ir.P4Stmt]) -> List[Tuple[Any, str]]:
    """(node, kind) pairs of mutation points in a compiled block."""
    out: List[Tuple[Any, str]] = []

    def walk_expr(expr) -> None:
        if isinstance(expr, ir.BinExpr):
            if expr.op in _OP_SWAP:
                out.append((expr, "op"))
            walk_expr(expr.left)
            walk_expr(expr.right)
        elif isinstance(expr, ir.UnExpr):
            walk_expr(expr.operand)
        elif isinstance(expr, ir.Const) and expr.width == 16:
            out.append((expr, "const"))

    def walk_stmt(stmt) -> None:
        if isinstance(stmt, ir.AssignStmt):
            walk_expr(stmt.value)
        elif isinstance(stmt, ir.IfStmt):
            walk_expr(stmt.cond)
            for inner in stmt.then_body:
                walk_stmt(inner)
            for inner in stmt.else_body:
                walk_stmt(inner)
        elif isinstance(stmt, ir.Digest):
            for fexpr in stmt.fields[1:]:   # skip the site-id constant
                walk_expr(fexpr)
        elif isinstance(stmt, ir.ApplyTable):
            for inner in stmt.hit_body:
                walk_stmt(inner)
            for inner in stmt.miss_body:
                walk_stmt(inner)

    for stmt in stmts:
        walk_stmt(stmt)
    return out


def _find_stmt_site(stmts: List[ir.P4Stmt], pred
                    ) -> Optional[Tuple[List[ir.P4Stmt], int]]:
    """The (body list, index) of the first statement matching ``pred``,
    recursing into branches."""
    for i, stmt in enumerate(stmts):
        if pred(stmt):
            return stmts, i
        bodies: List[List[ir.P4Stmt]] = []
        if isinstance(stmt, ir.IfStmt):
            bodies = [stmt.then_body, stmt.else_body]
        elif isinstance(stmt, ir.ApplyTable):
            bodies = [stmt.hit_body, stmt.miss_body]
        for body in bodies:
            found = _find_stmt_site(body, pred)
            if found is not None:
                return found
    return None


def kill_register_write(compiled: CompiledChecker) -> Optional[str]:
    """Delete the first register write of the telemetry/checker blocks —
    a lint-visible codegen bug: the register's remaining reads only ever
    see the initial value (``IH002``).  Returns a description, or None
    if the program writes no register."""
    for label, stmts in (("telemetry", compiled.tele_stmts),
                         ("checker", compiled.check_stmts)):
        site = _find_stmt_site(
            stmts, lambda s: isinstance(s, ir.RegisterWrite))
        if site is not None:
            body, index = site
            stmt = body[index]
            del body[index]
            return f"{label}: killed write to register {stmt.register!r}"
    return None


def orphan_table(compiled: CompiledChecker) -> Optional[str]:
    """Delete the first non-ABI table apply from the compiled fragments,
    leaving the table declared but unreachable — a lint-visible codegen
    bug (``IH007`` dead table).  Returns a description, or None if there
    is no such apply."""
    abi = {compiled.inject_table, compiled.strip_table,
           compiled.switch_id_table}
    for label, stmts in (("ingress_prologue", compiled.ingress_prologue),
                         ("init", compiled.init_stmts),
                         ("egress_prologue", compiled.egress_prologue),
                         ("telemetry", compiled.tele_stmts),
                         ("checker", compiled.check_stmts)):
        site = _find_stmt_site(
            stmts, lambda s: (isinstance(s, ir.ApplyTable)
                              and s.table not in abi))
        if site is not None:
            body, index = site
            stmt = body[index]
            del body[index]
            return f"{label}: orphaned table {stmt.table!r}"
    return None


def inject_mutation(compiled: CompiledChecker, rng: random.Random,
                    kinds: Tuple[str, ...] = ("op", "const"),
                    ) -> Optional[str]:
    """Mutate the compiled checker in place, simulating a codegen bug.
    Returns a description, or None if the program offers no mutation
    point.

    The default kinds mutate one expression of the init/tele/checker
    blocks (swap a binary operator or perturb a 16-bit constant).  Two
    further kinds are opt-in because they are *structural* and visible
    to ``repro lint`` as well as to the oracle: ``"kill_write"``
    (delete a register write — IH002) and ``"orphan"`` (delete a table
    apply, leaving the table dead — IH007)."""
    points: List[Tuple[str, Any, str]] = []
    for label, stmts in (("init", compiled.init_stmts),
                         ("telemetry", compiled.tele_stmts),
                         ("checker", compiled.check_stmts)):
        points.extend((label, node, kind)
                      for node, kind in _collect_mutable(stmts)
                      if kind in kinds)
    if "kill_write" in kinds:
        points.append(("*", None, "kill_write"))
    if "orphan" in kinds:
        points.append(("*", None, "orphan"))
    if not points:
        return None
    label, node, kind = rng.choice(points)
    if kind == "kill_write":
        return kill_register_write(compiled)
    if kind == "orphan":
        return orphan_table(compiled)
    # IR nodes are frozen dataclasses; the mutation deliberately reaches
    # around that to simulate the compiler having emitted the wrong node.
    if kind == "op":
        old = node.op
        object.__setattr__(node, "op", _OP_SWAP[old])
        return f"{label}: swapped operator {old!r} -> {node.op!r}"
    old_value = node.value
    object.__setattr__(node, "value", (node.value + 1) & 0xFFFF)
    return f"{label}: constant {old_value} -> {node.value}"
