"""Grammar-directed Indus program generators for differential testing.

Two tiers live here:

* The original fuzz grammar (``gen_program`` / ``gen_multihop_program``),
  relocated from ``tests/genprog.py`` (which re-exports it) so the
  difftest subsystem and the test suite share one generator.  These
  functions are seed-stable: the same seed must keep producing the same
  program, because test parametrizations pin seeds.
* The oracle grammar (:func:`gen_oracle_program`): a richer,
  *structured* generator for the three-level differential oracle
  (:mod:`repro.difftest.harness`).  It returns a :class:`GenProgram`
  whose blocks are lists of statement strings, so the minimizer can
  drop statements and shrink constants without re-parsing source text.

The oracle grammar deliberately stays inside the semantics the three
levels agree on by construction: uniform ``bit<16>`` arithmetic
(including ``/ % << >>`` with the shared div-by-zero-is-zero and
shift-mod-width rules), dense ``push``-only telemetry arrays, and no
``sensor`` variables (the reference monitor replays one packet at a
time against fresh state, while sensors persist across packets).
Every generated checker ends by *exporting* the final telemetry
through ``report`` statements — that is how final telemetry becomes
observable at all three levels through one channel.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Union

VARS = ["v0", "v1", "v2"]
HDRS = ["sport", "dport"]


# ---------------------------------------------------------------------------
# Original shared fuzz grammar (seed-stable; re-exported by tests/genprog.py)
# ---------------------------------------------------------------------------

def gen_expr(rng, depth=0):
    """A bit<16> expression over tele vars, header vars, literals."""
    if depth >= 3 or rng.random() < 0.4:
        choice = rng.randrange(3)
        if choice == 0:
            return str(rng.randrange(0, 1 << 16))
        if choice == 1:
            return rng.choice(VARS)
        return rng.choice(HDRS)
    op = rng.choice(["+", "-", "*", "&", "|", "^"])
    return (f"({gen_expr(rng, depth + 1)} {op} "
            f"{gen_expr(rng, depth + 1)})")


def gen_cond(rng, depth=0):
    if depth < 2 and rng.random() < 0.3:
        joiner = rng.choice(["&&", "||"])
        return (f"({gen_cond(rng, depth + 1)} {joiner} "
                f"{gen_cond(rng, depth + 1)})")
    cmp_op = rng.choice(["==", "!=", "<", "<=", ">", ">="])
    return f"{gen_expr(rng, 2)} {cmp_op} {gen_expr(rng, 2)}"


def gen_stmts(rng, count, depth=0):
    lines = []
    for _ in range(count):
        if depth < 2 and rng.random() < 0.25:
            inner = gen_stmts(rng, rng.randint(1, 2), depth + 1)
            lines.append(f"if ({gen_cond(rng)}) {{ {' '.join(inner)} }}")
        else:
            lines.append(f"{rng.choice(VARS)} = {gen_expr(rng)};")
    return lines


def gen_program(seed):
    rng = random.Random(seed)
    decls = [f"tele bit<16> {v} = {rng.randrange(0, 1 << 16)};"
             for v in VARS]
    decls.append("header bit<16> sport @ udp.src_port;")
    decls.append("header bit<16> dport @ udp.dst_port;")
    init = gen_stmts(rng, rng.randint(0, 3))
    tele = gen_stmts(rng, rng.randint(0, 3))
    checker = gen_stmts(rng, rng.randint(0, 2))
    checker.append(f"if ({gen_cond(rng)}) {{ reject; }}")
    return "\n".join(
        decls
        + ["{", *init, "}"]
        + ["{", *tele, "}"]
        + ["{", *checker, "}"]
    )


def gen_multihop_program(seed):
    """A program that accumulates telemetry across hops: pushes an
    expression per hop and checks the collected trace at the edge."""
    rng = random.Random(seed)
    decls = [f"tele bit<16> {v} = {rng.randrange(0, 1 << 16)};"
             for v in VARS]
    decls.append("tele bit<16>[4] trace;")
    decls.append("header bit<16> sport @ udp.src_port;")
    decls.append("header bit<16> dport @ udp.dst_port;")
    init = gen_stmts(rng, rng.randint(0, 2))
    tele = gen_stmts(rng, rng.randint(0, 2))
    tele.append(f"trace.push({gen_expr(rng)});")
    checker = [
        f"if ({gen_expr(rng, 2)} in trace) {{ {VARS[0]} = 1; }}",
        "for (t in trace) { " + f"{VARS[1]} = {VARS[1]} + t;" + " }",
        f"if ({gen_cond(rng)}) {{ reject; }}",
    ]
    return "\n".join(
        decls
        + ["{", *init, "}"]
        + ["{", *tele, "}"]
        + ["{", *checker, "}"]
    )


# ---------------------------------------------------------------------------
# Oracle grammar: structured programs for the three-level harness
# ---------------------------------------------------------------------------

ARRAY_NAME = "trace"
ARRAY_CAPACITY = 4
CONTROL_NAME = "c0"


@dataclass
class GenProgram:
    """A generated program as structured blocks (minimizer-friendly)."""

    decls: List[str] = field(default_factory=list)
    init: List[str] = field(default_factory=list)
    tele: List[str] = field(default_factory=list)
    checker: List[str] = field(default_factory=list)
    has_array: bool = False
    has_control: bool = False

    def render(self) -> str:
        return "\n".join(
            self.decls
            + ["{", *self.init, "}"]
            + ["{", *self.tele, "}"]
            + ["{", *self.checker, "}"]
        )

    def copy(self) -> "GenProgram":
        return GenProgram(decls=list(self.decls), init=list(self.init),
                          tele=list(self.tele), checker=list(self.checker),
                          has_array=self.has_array,
                          has_control=self.has_control)

    def to_json(self) -> dict:
        return {
            "decls": self.decls, "init": self.init, "tele": self.tele,
            "checker": self.checker, "has_array": self.has_array,
            "has_control": self.has_control,
        }

    @classmethod
    def from_json(cls, data: dict) -> "GenProgram":
        return cls(decls=list(data["decls"]), init=list(data["init"]),
                   tele=list(data["tele"]), checker=list(data["checker"]),
                   has_array=bool(data["has_array"]),
                   has_control=bool(data["has_control"]))


class _OracleGrammar:
    """One sampling of the oracle grammar (holds the feature flags)."""

    def __init__(self, rng: random.Random):
        self.rng = rng
        self.use_array = rng.random() < 0.5
        self.use_control = rng.random() < 0.4
        self.use_inport = rng.random() < 0.35

    # -- expressions (everything is bit<16>) ----------------------------

    def expr(self, depth=0) -> str:
        rng = self.rng
        if depth >= 3 or rng.random() < 0.4:
            atoms = [lambda: str(rng.randrange(0, 1 << 16)),
                     lambda: rng.choice(VARS),
                     lambda: rng.choice(HDRS)]
            if self.use_control:
                atoms.append(lambda: CONTROL_NAME)
            return rng.choice(atoms)()
        roll = rng.random()
        if roll < 0.12:
            fn = rng.choice(["min", "max"])
            return f"{fn}({self.expr(depth + 1)}, {self.expr(depth + 1)})"
        op = rng.choice(["+", "-", "*", "&", "|", "^",
                         "/", "%", "<<", ">>"])
        return f"({self.expr(depth + 1)} {op} {self.expr(depth + 1)})"

    def cond(self, depth=0, in_checker=False, in_init=False) -> str:
        rng = self.rng
        if depth < 2 and rng.random() < 0.3:
            joiner = rng.choice(["&&", "||"])
            return (f"({self.cond(depth + 1, in_checker, in_init)} {joiner} "
                    f"{self.cond(depth + 1, in_checker, in_init)})")
        roll = rng.random()
        if roll < 0.08:
            # last_hop is a typechecker error inside the init block (it
            # is resolved at egress, after init has already run).
            hops = ["first_hop"] if in_init else ["first_hop", "last_hop"]
            return rng.choice(hops)
        if roll < 0.14:
            return f"switch_id == {rng.randrange(1, 6)}"
        if roll < 0.18 and self.use_inport:
            return f"iport == {rng.randrange(1, 12)}"
        if roll < 0.26 and self.use_array and in_checker:
            return f"{self.expr(2)} in {ARRAY_NAME}"
        cmp_op = rng.choice(["==", "!=", "<", "<=", ">", ">="])
        return f"{self.expr(2)} {cmp_op} {self.expr(2)}"

    # -- statements -----------------------------------------------------

    def stmts(self, count, depth=0, in_checker=False,
              in_init=False) -> List[str]:
        rng = self.rng
        lines = []
        for _ in range(count):
            roll = rng.random()
            if depth < 2 and roll < 0.22:
                inner = self.stmts(rng.randint(1, 2), depth + 1, in_checker,
                                   in_init)
                lines.append(f"if ({self.cond(0, in_checker, in_init)}) "
                             f"{{ {' '.join(inner)} }}")
            elif roll < 0.34:
                op = rng.choice(["+=", "-="])
                lines.append(f"{rng.choice(VARS)} {op} {self.expr()};")
            else:
                lines.append(f"{rng.choice(VARS)} = {self.expr()};")
        return lines


def gen_oracle_program(seed_or_rng: Union[int, random.Random]) -> GenProgram:
    """Generate one structured program for the three-level oracle."""
    rng = (seed_or_rng if isinstance(seed_or_rng, random.Random)
           else random.Random(seed_or_rng))
    g = _OracleGrammar(rng)
    out = GenProgram(has_array=g.use_array, has_control=g.use_control)
    out.decls = [f"tele bit<16> {v} = {rng.randrange(0, 1 << 16)};"
                 for v in VARS]
    if g.use_array:
        out.decls.append(f"tele bit<16>[{ARRAY_CAPACITY}] {ARRAY_NAME};")
    out.decls.append("header bit<16> sport @ udp.src_port;")
    out.decls.append("header bit<16> dport @ udp.dst_port;")
    if g.use_inport:
        out.decls.append(
            "header bit<9> iport @ standard_metadata.ingress_port;")
    if g.use_control:
        out.decls.append(f"control bit<16> {CONTROL_NAME};")

    out.init = g.stmts(rng.randint(0, 3), in_init=True)
    out.tele = g.stmts(rng.randint(0, 3))
    if g.use_array:
        out.tele.append(f"{ARRAY_NAME}.push({g.expr()});")
    if rng.random() < 0.3:
        out.tele.append(f"if ({g.cond()}) {{ report({rng.choice(VARS)}); }}")

    out.checker = g.stmts(rng.randint(0, 2), in_checker=True)
    if g.use_array:
        out.checker.append(
            f"if ({g.expr(2)} in {ARRAY_NAME}) {{ {VARS[0]} = 1; }}")
        out.checker.append(
            "for (t in " + ARRAY_NAME + ") { "
            f"{VARS[1]} = {VARS[1]} + t;" + " }")
    if rng.random() < 0.8:
        out.checker.append(f"if ({g.cond(0, True)}) {{ reject; }}")
    # Export the final telemetry: these reports are the channel through
    # which the oracle compares final state across all three levels.
    out.checker.append(f"report(({VARS[0]}, {VARS[1]}, {VARS[2]}));")
    if g.use_array:
        out.checker.append(f"for (t in {ARRAY_NAME}) {{ report(t); }}")
    return out
