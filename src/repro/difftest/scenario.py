"""Randomized end-to-end scenarios for the differential oracle.

A :class:`Scenario` is everything one oracle iteration needs, in a
JSON-serializable form the minimizer can shrink: a generated Indus
program (structured, see :mod:`repro.difftest.genprog`), a topology
recipe, one traffic flow (source host, destination host, a handful of
packets), and control-variable values.

Topology recipes rather than Topology objects keep scenarios
serializable; :meth:`Scenario.build_topology` re-materializes the graph
and :func:`compute_path` derives the deterministic switch path the flow
takes, from which the harness installs ingress-port-keyed forwarding
entries (``l2_port_forwarding`` forwards by ingress port, so one flow
per scenario keeps routing unambiguous).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..net.topology import (Endpoint, Topology, leaf_spine, linear,
                            single_switch)
from .genprog import ARRAY_CAPACITY, CONTROL_NAME, GenProgram, \
    gen_oracle_program


@dataclass
class PacketSpec:
    """One packet of the scenario's flow."""

    sport: int
    dport: int
    payload_len: int
    ttl: int
    proto: str = "udp"          # "udp" or "tcp"

    def to_json(self) -> dict:
        return {"sport": self.sport, "dport": self.dport,
                "payload_len": self.payload_len, "ttl": self.ttl,
                "proto": self.proto}

    @classmethod
    def from_json(cls, data: dict) -> "PacketSpec":
        return cls(sport=int(data["sport"]), dport=int(data["dport"]),
                   payload_len=int(data["payload_len"]),
                   ttl=int(data["ttl"]), proto=str(data["proto"]))


@dataclass
class Scenario:
    """One differential-oracle iteration, fully serializable."""

    seed: int
    program: GenProgram
    topo_kind: str                       # "single" | "linear" | "leaf_spine"
    topo_params: Dict[str, int]
    src_host: str
    dst_host: str
    packets: List[PacketSpec] = field(default_factory=list)
    controls: Dict[str, int] = field(default_factory=dict)

    # -- materialization -------------------------------------------------

    def build_topology(self) -> Topology:
        if self.topo_kind == "single":
            return single_switch(**self.topo_params)
        if self.topo_kind == "linear":
            return linear(**self.topo_params)
        if self.topo_kind == "leaf_spine":
            return leaf_spine(**self.topo_params)
        raise ValueError(f"unknown topology kind {self.topo_kind!r}")

    def source(self) -> str:
        return self.program.render()

    # -- serialization ---------------------------------------------------

    def to_json(self) -> dict:
        return {
            "seed": self.seed,
            "program": self.program.to_json(),
            "topo_kind": self.topo_kind,
            "topo_params": dict(self.topo_params),
            "src_host": self.src_host,
            "dst_host": self.dst_host,
            "packets": [p.to_json() for p in self.packets],
            "controls": dict(self.controls),
        }

    @classmethod
    def from_json(cls, data: dict) -> "Scenario":
        return cls(
            seed=int(data["seed"]),
            program=GenProgram.from_json(data["program"]),
            topo_kind=str(data["topo_kind"]),
            topo_params={k: int(v) for k, v in data["topo_params"].items()},
            src_host=str(data["src_host"]),
            dst_host=str(data["dst_host"]),
            packets=[PacketSpec.from_json(p) for p in data["packets"]],
            controls={str(k): int(v) for k, v in data["controls"].items()},
        )

    def copy(self) -> "Scenario":
        return Scenario.from_json(self.to_json())

    def describe(self) -> str:
        stmts = (len(self.program.init) + len(self.program.tele)
                 + len(self.program.checker))
        return (f"seed={self.seed} topo={self.topo_kind}{self.topo_params} "
                f"{self.src_host}->{self.dst_host} "
                f"packets={len(self.packets)} stmts={stmts}")


def compute_path(topology: Topology, src_host: str,
                 dst_host: str, rng=None) -> List[str]:
    """The switch path the flow takes from ``src_host`` to ``dst_host``.

    Deterministic shortest-path over the builders this module uses:
    same-switch hosts take the one attachment switch; linear chains walk
    the chain; leaf-spine pairs transit one spine (the lowest-numbered,
    or a seeded choice when ``rng`` is given).
    """
    src_sw = topology.host_attachment(src_host).node
    dst_sw = topology.host_attachment(dst_host).node
    if src_sw == dst_sw:
        return [src_sw]
    # BFS over switch-to-switch links, deterministic by sorted neighbor
    # order; works for every builder topology.
    frontier = [[src_sw]]
    seen = {src_sw}
    while frontier:
        next_frontier = []
        candidates = []
        for path in frontier:
            node = path[-1]
            neighbors = sorted({
                link.other(Endpoint(node, port)).node
                for port in topology.ports_of(node)
                for link in [topology.link_at(node, port)]
                if link is not None
                and link.other(Endpoint(node, port)).node
                in topology.switches
            })
            for nb in neighbors:
                if nb == dst_sw:
                    candidates.append(path + [nb])
                elif nb not in seen:
                    seen.add(nb)
                    next_frontier.append(path + [nb])
        if candidates:
            if rng is not None and len(candidates) > 1:
                return rng.choice(candidates)
            return candidates[0]
        frontier = next_frontier
    raise ValueError(f"no switch path {src_host} -> {dst_host}")


def gen_scenario(seed: int) -> Scenario:
    """Generate one randomized scenario from a seed."""
    rng = random.Random(seed)
    program = gen_oracle_program(rng)

    topo_kind = rng.choice(["single", "linear", "leaf_spine"])
    if topo_kind == "single":
        params = {"num_hosts": rng.randrange(2, 5)}
        topo = single_switch(**params)
    elif topo_kind == "linear":
        # Path length stays within the telemetry array capacity so dense
        # pushes never saturate (one push per hop, capacity slots).
        params = {"num_switches": rng.randrange(2, ARRAY_CAPACITY + 1),
                  "hosts_per_end": rng.randrange(1, 3)}
        topo = linear(**params)
    else:
        params = {"num_leaves": 2, "num_spines": rng.randrange(1, 3),
                  "hosts_per_leaf": 2}
        topo = leaf_spine(**params)

    hosts = sorted(topo.hosts)
    src_host = rng.choice(hosts)
    dst_host = rng.choice([h for h in hosts if h != src_host])

    packets = [
        PacketSpec(
            sport=rng.randrange(1, 1 << 16),
            dport=rng.randrange(1, 1 << 16),
            payload_len=rng.randrange(0, 1200),
            ttl=rng.randrange(2, 255),
            proto="udp" if rng.random() < 0.8 else "tcp",
        )
        for _ in range(rng.randrange(1, 5))
    ]

    controls: Dict[str, int] = {}
    if program.has_control:
        controls[CONTROL_NAME] = rng.randrange(0, 1 << 16)

    return Scenario(seed=seed, program=program, topo_kind=topo_kind,
                    topo_params=params, src_host=src_host, dst_host=dst_host,
                    packets=packets, controls=controls)


def forwarding_entries(topology: Topology, src_host: str,
                       dst_host: str, path: List[str],
                       ) -> Dict[str, List[Tuple[int, int]]]:
    """Per-switch (ingress_port, egress_port) forwarding entries along
    the flow's path, for ``l2_port_forwarding``'s ingress-port key."""
    nodes = [src_host] + path + [dst_host]
    out: Dict[str, List[Tuple[int, int]]] = {}
    for i, sw in enumerate(path):
        prev_node = nodes[i]
        next_node = nodes[i + 2]
        in_port = topology.port_toward(sw, prev_node)
        out_port = topology.port_toward(sw, next_node)
        out.setdefault(sw, []).append((in_port, out_port))
    return out
