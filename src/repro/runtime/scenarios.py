"""Reusable deployment scenarios for examples, tests, and benchmarks.

:class:`SourceRoutingTestbed` reproduces the paper's first case study
(Section 5.1): a leaf-spine fabric running the P4-tutorial source
routing program, linked with the Figure 7 valley-free checker.  It
includes the paper's *injected sender bug* — a sender script that adds
extra invalid hops to the source route — and path enumeration helpers
used to verify that all valley-free paths pass and all errant paths are
dropped.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..net.packet import Packet, make_source_routed, make_udp
from ..net.topology import Topology, leaf_spine
from ..p4.programs import source_routing
from ..properties import compile_property
from ..runtime.deployment import HydraDeployment
from ..runtime.reports import HydraReport


@dataclass
class SendResult:
    delivered: bool
    new_reports: List[HydraReport]


class SourceRoutingTestbed:
    """Figure 8's leaf-spine network with source routing + valley-free
    path validation."""

    def __init__(self, num_leaves: int = 2, num_spines: int = 2,
                 hosts_per_leaf: int = 2, checker: str = "valley_free",
                 check_mode: str = "last_hop"):
        self.topology: Topology = leaf_spine(num_leaves, num_spines,
                                             hosts_per_leaf)
        self.compiled = compile_property(checker)
        forwarding = {name: source_routing(f"srcroute_{name}")
                      for name in self.topology.switches}
        self.deployment = HydraDeployment(self.topology, self.compiled,
                                          forwarding,
                                          check_mode=check_mode)
        self.network = self.deployment.network
        self._configure_controls(checker)

    def _configure_controls(self, checker: str) -> None:
        program = self.compiled.checked.program
        names = {d.name for d in program.decls}
        for name, spec in self.topology.switches.items():
            if "is_spine_switch" in names:
                self.deployment.set_control("is_spine_switch", spec.is_spine,
                                            switch=name)
            if "is_spine" in names:
                self.deployment.set_control("is_spine", spec.is_spine,
                                            switch=name)
            if "is_leaf" in names:
                self.deployment.set_control("is_leaf", spec.is_leaf,
                                            switch=name)

    # -- path construction ---------------------------------------------------

    def leaf_of(self, host: str) -> str:
        return self.topology.host_attachment(host).node

    def valley_free_node_paths(self, src_host: str,
                               dst_host: str) -> List[List[str]]:
        """All valley-free switch paths between two hosts.

        Same leaf: the single-switch path.  Different leaves: one path
        per spine (up once, down once).
        """
        src_leaf = self.leaf_of(src_host)
        dst_leaf = self.leaf_of(dst_host)
        if src_leaf == dst_leaf:
            return [[src_leaf]]
        spines = sorted(n for n, s in self.topology.switches.items()
                        if s.is_spine)
        return [[src_leaf, spine, dst_leaf] for spine in spines]

    def valley_node_paths(self, src_host: str,
                          dst_host: str) -> List[List[str]]:
        """A sample of *errant* paths that traverse a spine twice
        (up-down-up-down), which valley-free routing forbids."""
        src_leaf = self.leaf_of(src_host)
        dst_leaf = self.leaf_of(dst_host)
        spines = sorted(n for n, s in self.topology.switches.items()
                        if s.is_spine)
        leaves = sorted(n for n, s in self.topology.switches.items()
                        if s.is_leaf)
        paths = []
        for s1, s2 in itertools.product(spines, spines):
            for mid in leaves:
                path = [src_leaf, s1, mid, s2, dst_leaf]
                # A genuine valley must come back up: skip degenerate
                # repeats of the same link.
                if mid == src_leaf and s1 == s2:
                    continue
                paths.append(path)
        return paths

    def route_for(self, node_path: List[str], dst_host: str) -> List[int]:
        """Egress-port stack for a switch path ending at ``dst_host``."""
        return self.topology.ports_path(list(node_path) + [dst_host])

    def buggy_sender_route(self, node_path: List[str], dst_host: str,
                           extra_spine: Optional[str] = None) -> List[int]:
        """The Section 5.1 injected bug: the sender script appends extra
        invalid hops that bounce through a spine again before delivery."""
        src_leaf = node_path[0]
        spines = sorted(n for n, s in self.topology.switches.items()
                        if s.is_spine)
        bounce = extra_spine or spines[-1]
        last_leaf = node_path[-1]
        detour = list(node_path) + [bounce, last_leaf]
        return self.topology.ports_path(detour + [dst_host])

    # -- traffic ---------------------------------------------------------------

    def send(self, src_host: str, dst_host: str,
             ports: List[int], payload_len: int = 64) -> SendResult:
        src_ip = self.topology.hosts[src_host].ipv4
        dst_ip = self.topology.hosts[dst_host].ipv4
        inner = make_udp(src_ip, dst_ip, 5000, 6000,
                         payload_len=payload_len)
        packet = make_source_routed(ports, inner)
        before = len(self.deployment.reports)
        dest = self.network.host(dst_host)
        rx_before = dest.rx_count
        self.network.host(src_host).send(packet)
        self.network.run()
        return SendResult(
            delivered=dest.rx_count > rx_before,
            new_reports=self.deployment.reports[before:],
        )

    @property
    def reports(self) -> List[HydraReport]:
        return self.deployment.reports
