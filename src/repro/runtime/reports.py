"""Decoding of data-plane reports (digests) back into structured form."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..compiler.codegen import CompiledChecker
from ..p4.bmv2 import DigestMessage


@dataclass
class HydraReport:
    """A decoded report delivered to the control plane."""

    site_id: int
    block: str
    payload: Optional[Tuple[int, ...]]
    switch_name: str = ""
    checker: str = ""

    def __str__(self) -> str:
        payload = "" if self.payload is None else f" payload={self.payload}"
        return (f"report(checker={self.checker}, site={self.site_id}, "
                f"block={self.block}, switch={self.switch_name}{payload})")


def decode_report(compiled: CompiledChecker,
                  message: DigestMessage) -> HydraReport:
    """Decode one digest emitted by a compiled checker."""
    if message.name != compiled.report_digest:
        raise ValueError(f"not a report digest of checker "
                         f"{compiled.name!r}: {message.name!r}")
    if not message.values:
        raise ValueError("malformed report digest (no site id)")
    site_id = message.values[0]
    site = compiled.report_sites.get(site_id)
    block = site.block if site is not None else "unknown"
    payload: Optional[Tuple[int, ...]] = None
    if site is not None and site.has_payload:
        payload = tuple(message.values[1:1 + len(site.field_widths)])
    return HydraReport(site_id=site_id, block=block, payload=payload,
                       switch_name=message.switch_name,
                       checker=compiled.name)


class ReportCollector:
    """Accumulates decoded reports from every switch in a deployment and
    fans them out to subscribed control-plane apps."""

    def __init__(self, compileds: Union[CompiledChecker,
                                        Sequence[CompiledChecker]]):
        if isinstance(compileds, CompiledChecker):
            compileds = [compileds]
        self._by_digest: Dict[str, CompiledChecker] = {
            c.report_digest: c for c in compileds
        }
        self.reports: List[HydraReport] = []
        self._subscribers: List = []

    def subscribe(self, callback) -> None:
        """Register a callback invoked with each decoded HydraReport."""
        self._subscribers.append(callback)

    def on_digest(self, message: DigestMessage) -> None:
        compiled = self._by_digest.get(message.name)
        if compiled is not None:
            report = decode_report(compiled, message)
            self.reports.append(report)
            for callback in self._subscribers:
                callback(report)

    def payloads(self) -> List[Tuple[int, ...]]:
        return [r.payload for r in self.reports if r.payload is not None]

    def clear(self) -> None:
        self.reports.clear()

    def __len__(self) -> int:
        return len(self.reports)
