"""Hydra runtime: deployment of compiled checkers across a topology,
report collection, control-plane apps, and reusable scenarios."""

from .apps import (ControlApp, LoadImbalanceAlarm, StatefulFirewallApp,
                   ViolationLogger)
from .deployment import HydraDeployment
from .reports import HydraReport, ReportCollector, decode_report
from .tracecheck import TraceFormatError, TraceResult, run_trace, run_trace_file

__all__ = ["ControlApp", "HydraDeployment", "HydraReport",
           "LoadImbalanceAlarm", "ReportCollector", "StatefulFirewallApp",
           "TraceFormatError", "TraceResult", "ViolationLogger",
           "decode_report", "run_trace", "run_trace_file"]
