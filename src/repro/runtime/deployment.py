"""Deployment of compiled Hydra checkers onto a network.

:class:`HydraDeployment` takes a topology, one forwarding program per
switch, and one or more compiled checkers; it links the checkers into
each program according to the switch's role (edge switches run
init/telemetry/checker, core switches run telemetry only), instantiates
behavioral switches, installs the inject/strip edge-port entries the
compiler-generated tables expect, and exposes the control-plane API for
Indus ``control`` variables (scalars, dicts, sets).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..compiler.codegen import CompiledChecker
from ..compiler.linker import link
from ..indus import ast
from ..indus.types import DictType, SetType
from ..net.simulator import Network
from ..net.topology import EDGE, Topology
from ..obs import NULL_OBS, Observability, profiled
from ..p4 import ir
from ..p4.bmv2 import Bmv2Switch
from .reports import HydraReport, ReportCollector

# Exact dictionary entries outrank any wildcard/range entry the control
# plane installs, unless the caller asks otherwise.
EXACT_PRIORITY = 1 << 20


def _flatten_key(key: Any) -> List[int]:
    """Flatten a (possibly nested tuple) key into scalar ints."""
    if isinstance(key, tuple):
        out: List[int] = []
        for item in key:
            out.extend(_flatten_key(item))
        return out
    if isinstance(key, bool):
        return [1 if key else 0]
    return [int(key)]


def _exact_ranges(key: Any) -> List[Tuple[int, int]]:
    """An exact key expressed as degenerate [v, v] range matches."""
    return [(v, v) for v in _flatten_key(key)]


def _as_int(value: Any) -> int:
    if isinstance(value, bool):
        return 1 if value else 0
    return int(value)


class HydraDeployment:
    """Compiled checker(s) deployed across every switch of a topology."""

    def __init__(self, topology: Topology,
                 compiled: Union[CompiledChecker, Sequence[CompiledChecker]],
                 forwarding: Dict[str, ir.P4Program],
                 stage_counts: Optional[Dict[str, int]] = None,
                 check_mode: str = "last_hop",
                 serialize_on_wire: bool = False,
                 engine: str = "fast",
                 obs: Optional[Observability] = None,
                 max_queue_delay_s: Optional[float] = None,
                 batched: bool = False):
        self.topology = topology
        self.check_mode = check_mode
        self.obs = obs if obs is not None else NULL_OBS
        self.compileds: List[CompiledChecker] = (
            [compiled] if isinstance(compiled, CompiledChecker)
            else list(compiled)
        )
        self.collector = ReportCollector(self.compileds)
        if self.obs.registry.live:
            violations = self.obs.registry.counter(
                "checker_violations_total",
                "violation reports raised by deployed checkers",
                labels=("checker", "switch"))
            self.collector.subscribe(
                lambda r: violations.labels(r.checker, r.switch_name).inc())
        self.switches: Dict[str, Bmv2Switch] = {}
        self.linked: Dict[str, ir.P4Program] = {}
        with profiled(self.obs.registry, "link"):
            for name, spec in topology.switches.items():
                if name not in forwarding:
                    raise ValueError(
                        f"no forwarding program for switch {name!r}")
                program = link(forwarding[name], self.compileds,
                               role=spec.role, check_mode=check_mode)
                self.linked[name] = program
        with profiled(self.obs.registry, "deploy"):
            for name, spec in topology.switches.items():
                bmv2 = Bmv2Switch(self.linked[name], name=name,
                                  switch_id=spec.switch_id, engine=engine,
                                  obs=self.obs)
                bmv2.on_digest(self.collector.on_digest)
                self.switches[name] = bmv2
            self._install_edge_entries()
            self._install_switch_ids()
            self.network = Network(topology, self.switches,
                                   stage_counts=stage_counts,
                                   serialize_on_wire=serialize_on_wire,
                                   obs=self.obs,
                                   max_queue_delay_s=max_queue_delay_s,
                                   batched=batched)

    @property
    def compiled(self) -> CompiledChecker:
        """The first (or only) deployed checker."""
        return self.compileds[0]

    # -- wiring helpers ------------------------------------------------------

    def _install_edge_entries(self) -> None:
        for name, spec in self.topology.switches.items():
            if spec.role != EDGE:
                continue
            bmv2 = self.switches[name]
            for c in self.compileds:
                for port in spec.edge_ports:
                    bmv2.insert_entry(c.inject_table, [port],
                                      c.mark_first_action)
                    bmv2.insert_entry(c.strip_table, [port],
                                      c.mark_last_action)

    def _install_switch_ids(self) -> None:
        for c in self.compileds:
            if c.switch_id_table not in c.tables:
                continue
            for name, spec in self.topology.switches.items():
                self.switches[name].set_default_action(
                    c.switch_id_table, c.set_switch_id_action,
                    [spec.switch_id]
                )

    # -- control-variable resolution ---------------------------------------------

    def _resolve_control(self, name: str) -> Tuple[CompiledChecker, ast.Decl]:
        """Find which deployed checker owns control variable ``name``.

        With several checkers, an ambiguous name can be qualified as
        ``"checker_name:var_name"``.
        """
        checker_name: Optional[str] = None
        if ":" in name:
            checker_name, name = name.split(":", 1)
        owners: List[Tuple[CompiledChecker, ast.Decl]] = []
        for c in self.compileds:
            if checker_name is not None and c.name != checker_name:
                continue
            decl = c.checked.program.decl(name)
            if decl is not None and decl.kind is ast.VarKind.CONTROL:
                owners.append((c, decl))
        if not owners:
            raise ValueError(f"unknown control variable {name!r}")
        if len(owners) > 1:
            raise ValueError(
                f"control variable {name!r} exists in several checkers; "
                f"qualify it as '<checker>:{name}'"
            )
        return owners[0]

    def _target_switches(self,
                         switch: Optional[str]) -> Iterable[Bmv2Switch]:
        if switch is not None:
            return [self.switches[switch]]
        return self.switches.values()

    # -- control-plane API ----------------------------------------------------

    def set_control(self, name: str, value: Any,
                    switch: Optional[str] = None) -> None:
        """Set a scalar control variable (on one switch or everywhere).

        Implemented by rewriting the default action of the generated
        loader tables, so the value can change on the fly without
        recompiling — the property the paper highlights for Figure 2.
        """
        compiled, decl = self._resolve_control(name)
        if isinstance(decl.ty, (DictType, SetType)):
            raise ValueError(
                f"control {name!r} is a {decl.ty}; use dict_put/set_add"
            )
        for bmv2 in self._target_switches(switch):
            for table in compiled.control_tables[decl.name]:
                bmv2.set_default_action(
                    table, compiled.scalar_load_action(decl.name, table),
                    [_as_int(value)]
                )

    def dict_put(self, name: str, key: Any, value: Any,
                 switch: Optional[str] = None) -> None:
        """Insert (or update) one exact entry of a control dictionary."""
        compiled, decl = self._resolve_control(name)
        if not isinstance(decl.ty, DictType):
            raise ValueError(f"control {name!r} is not a dict")
        match = _exact_ranges(key)
        for bmv2 in self._target_switches(switch):
            for table in compiled.control_tables[decl.name]:
                self._remove_matching(bmv2, table, match)
                bmv2.insert_entry(table, match,
                                  compiled.dict_hit_action(decl.name, table),
                                  [_as_int(value)], priority=EXACT_PRIORITY)

    def dict_put_ranges(self, name: str, ranges: List[Tuple[int, int]],
                        value: Any, priority: int = 0,
                        switch: Optional[str] = None) -> None:
        """Insert a range/wildcard dictionary entry.

        ``ranges`` gives one inclusive [lo, hi] interval per flattened
        key component (use ``(0, 2**w - 1)`` for "any").  The Aether
        control app uses this to mirror slice filtering rules, whose
        application patterns contain prefixes and port ranges.
        """
        compiled, decl = self._resolve_control(name)
        if not isinstance(decl.ty, DictType):
            raise ValueError(f"control {name!r} is not a dict")
        match: List[Tuple[int, int]] = [(int(lo), int(hi))
                                        for lo, hi in ranges]
        for bmv2 in self._target_switches(switch):
            for table in compiled.control_tables[decl.name]:
                self._remove_matching(bmv2, table, match)
                bmv2.insert_entry(table, match,
                                  compiled.dict_hit_action(decl.name, table),
                                  [_as_int(value)], priority=priority)

    def dict_remove(self, name: str, key: Any,
                    switch: Optional[str] = None) -> None:
        compiled, decl = self._resolve_control(name)
        if not isinstance(decl.ty, DictType):
            raise ValueError(f"control {name!r} is not a dict")
        match = _exact_ranges(key)
        for bmv2 in self._target_switches(switch):
            for table in compiled.control_tables[decl.name]:
                self._remove_matching(bmv2, table, match)

    def dict_clear(self, name: str, switch: Optional[str] = None) -> None:
        """Remove every entry of a control dictionary."""
        compiled, decl = self._resolve_control(name)
        if not isinstance(decl.ty, DictType):
            raise ValueError(f"control {name!r} is not a dict")
        for bmv2 in self._target_switches(switch):
            for table in compiled.control_tables[decl.name]:
                bmv2.clear_table(table)

    def set_add(self, name: str, item: Any,
                switch: Optional[str] = None) -> None:
        """Add an element to a control set."""
        compiled, decl = self._resolve_control(name)
        if not isinstance(decl.ty, SetType):
            raise ValueError(f"control {name!r} is not a set")
        match = _exact_ranges(item)
        for bmv2 in self._target_switches(switch):
            for table in compiled.control_tables[decl.name]:
                self._remove_matching(bmv2, table, match)
                bmv2.insert_entry(table, match,
                                  compiled.set_hit_action(decl.name, table),
                                  priority=EXACT_PRIORITY)

    def set_remove(self, name: str, item: Any,
                   switch: Optional[str] = None) -> None:
        compiled, decl = self._resolve_control(name)
        if not isinstance(decl.ty, SetType):
            raise ValueError(f"control {name!r} is not a set")
        match = _exact_ranges(item)
        for bmv2 in self._target_switches(switch):
            for table in compiled.control_tables[decl.name]:
                self._remove_matching(bmv2, table, match)

    @staticmethod
    def _remove_matching(bmv2: Bmv2Switch, table: str, match) -> None:
        existing = [e for e in bmv2.entries[table] if e.match == match]
        for entry in existing:
            bmv2.delete_entry(table, entry)

    # -- reports ---------------------------------------------------------------

    @property
    def reports(self) -> List[HydraReport]:
        return self.collector.reports

    def clear_reports(self) -> None:
        self.collector.clear()

    # -- monitoring -------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Operational counters: per-switch processed/dropped packets
        and per-checker report counts — what an operator dashboard for
        this deployment would show."""
        per_switch = {
            name: {
                "processed": bmv2.packets_processed,
                "dropped": bmv2.packets_dropped,
            }
            for name, bmv2 in self.switches.items()
        }
        reports_by_checker: Dict[str, int] = {}
        reports_by_switch: Dict[str, int] = {}
        for report in self.reports:
            reports_by_checker[report.checker] = \
                reports_by_checker.get(report.checker, 0) + 1
            reports_by_switch[report.switch_name] = \
                reports_by_switch.get(report.switch_name, 0) + 1
        out = {
            "switches": per_switch,
            "reports_total": len(self.reports),
            "reports_by_checker": reports_by_checker,
            "reports_by_switch": reports_by_switch,
            "checkers": [c.name for c in self.compileds],
            "check_mode": self.check_mode,
        }
        if self.obs.registry.live:
            out["metrics"] = self.obs.registry.to_dict()
        return out
