"""Control-plane applications reacting to Hydra reports.

The paper's checkers often close a loop through the control plane: the
stateful firewall's telemetry block *reports* missing reverse entries so
"the control plane could add firewall rules ... in response to a single
report" (Section 2).  This module provides that loop: a
:class:`ControlApp` subscribes to a deployment's decoded reports and may
write control variables back.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Optional, Tuple

from .deployment import HydraDeployment
from .reports import HydraReport


class ControlApp:
    """Base class: subscribe to a deployment and handle its reports."""

    def __init__(self, deployment: HydraDeployment,
                 checker: Optional[str] = None):
        self.deployment = deployment
        self.checker = checker
        self.handled = 0
        deployment.collector.subscribe(self._dispatch)

    def _dispatch(self, report: HydraReport) -> None:
        if self.checker is not None and report.checker != self.checker:
            return
        self.handled += 1
        self.on_report(report)

    def on_report(self, report: HydraReport) -> None:
        raise NotImplementedError


class StatefulFirewallApp(ControlApp):
    """Closes the Figure 3 loop: every report names a (dst, src) pair the
    inside initiated toward; the app installs the reverse ``allowed``
    entry so return traffic is admitted."""

    def __init__(self, deployment: HydraDeployment,
                 checker: str = "stateful_firewall"):
        super().__init__(deployment, checker=checker)
        self.installed: List[Tuple[int, int]] = []

    def on_report(self, report: HydraReport) -> None:
        if report.payload is None or len(report.payload) != 2:
            return
        dst, src = report.payload
        key = (dst, src)
        if key in self.installed:
            return
        self.deployment.dict_put("allowed", key, True)
        self.installed.append(key)


class LoadImbalanceAlarm(ControlApp):
    """Raises an alarm after N imbalance reports from any single switch
    within the monitoring session (the operator-facing side of the
    Figure 2 checker)."""

    def __init__(self, deployment: HydraDeployment,
                 threshold: int = 3, checker: str = "load_balance"):
        super().__init__(deployment, checker=checker)
        self.threshold = threshold
        self.counts: Counter = Counter()
        self.alarms: List[str] = []

    def on_report(self, report: HydraReport) -> None:
        self.counts[report.switch_name] += 1
        if self.counts[report.switch_name] == self.threshold:
            self.alarms.append(report.switch_name)

    @property
    def alarmed(self) -> bool:
        return bool(self.alarms)


class ViolationLogger(ControlApp):
    """Keeps a structured history of every violation report — the
    "report to the management plane" sink, grouped by switch."""

    def __init__(self, deployment: HydraDeployment,
                 checker: Optional[str] = None):
        super().__init__(deployment, checker=checker)
        self.by_switch: Dict[str, List[HydraReport]] = defaultdict(list)

    def on_report(self, report: HydraReport) -> None:
        self.by_switch[report.switch_name].append(report)

    def summary(self) -> Dict[str, int]:
        return {switch: len(reports)
                for switch, reports in self.by_switch.items()}
