"""Trace-driven property checking: run a monitor over a described path.

A *trace file* (JSON) describes the hop-by-hop context a packet would
experience, letting property authors debug an Indus program without
building a network::

    {
      "controls": {                      // global control state
        "thresh": 100,
        "tenants": {"dict": [[1, 10], [2, 10]]},
        "allowed_ports": {"set": [1, 2, 3]}
      },
      "hops": [
        {"headers": {"in_port": 1}, "switch_id": 1,
         "packet_length": 120},
        {"headers": {"eg_port": 2}, "switch_id": 2,
         "controls": {"is_spine": true}}   // per-hop overrides
      ]
    }

``first_hop``/``last_hop`` default to the trace's endpoints and can be
overridden per hop.  The result carries the verdict, all reports, and
the final telemetry values.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..indus import (ControlStore, HopContext, Monitor, MonitorState,
                     SensorStore)
from ..indus.typechecker import CheckedProgram
from ..obs import NULL_OBS, Observability


class TraceFormatError(ValueError):
    """Raised when a trace document is malformed."""


@dataclass
class TraceResult:
    """Outcome of running a monitor over a trace."""

    accepted: bool
    state: MonitorState
    hop_count: int

    @property
    def reports(self):
        return self.state.reports

    def tele_values(self) -> Dict[str, Any]:
        out = {}
        for name, value in self.state.tele.items():
            out[name] = (value.valid_items()
                         if hasattr(value, "valid_items") else value)
        return out


def _apply_controls(store: ControlStore, spec: Dict[str, Any]) -> None:
    for name, value in spec.items():
        if isinstance(value, dict) and "dict" in value:
            for key, entry_value in value["dict"]:
                key = tuple(key) if isinstance(key, list) else key
                store.dict_put(name, key, entry_value)
        elif isinstance(value, dict) and "set" in value:
            for item in value["set"]:
                store.set_add(name, item)
        elif isinstance(value, dict):
            raise TraceFormatError(
                f"control {name!r}: aggregate values use "
                '{"dict": [[k, v], ...]} or {"set": [items]}'
            )
        else:
            store.set_value(name, value)


def run_trace(checked: CheckedProgram, trace: Dict[str, Any],
              obs: Optional[Observability] = None,
              packet_id: int = 0) -> TraceResult:
    """Run the monitor for ``checked`` over a parsed trace document.

    With a live tracer on ``obs``, a ``monitor_hop`` event is emitted
    after each hop, carrying the live :class:`MonitorState` in
    ``detail["state"]`` — the differential oracle subscribes to this to
    snapshot intermediate telemetry and compare it against the values
    the compiled pipeline carried on the wire.  The state object is the
    live monitor state; subscribers must copy what they keep.
    """
    obs = obs if obs is not None else NULL_OBS
    trace_live = obs.tracer.live
    if not isinstance(trace, dict) or "hops" not in trace:
        raise TraceFormatError("trace documents need a 'hops' list")
    hops = trace["hops"]
    if not isinstance(hops, list) or not hops:
        raise TraceFormatError("'hops' must be a non-empty list")
    monitor = Monitor(checked)
    global_controls = trace.get("controls", {})
    sensors = SensorStore()
    state = monitor.new_state()
    for i, hop in enumerate(hops):
        if not isinstance(hop, dict):
            raise TraceFormatError(f"hop {i} must be an object")
        controls = monitor.new_controls()
        _apply_controls(controls, global_controls)
        _apply_controls(controls, hop.get("controls", {}))
        ctx = HopContext(
            headers=dict(hop.get("headers", {})),
            controls=controls,
            sensors=sensors,
            first_hop=bool(hop.get("first_hop", i == 0)),
            last_hop=bool(hop.get("last_hop", i == len(hops) - 1)),
            packet_length=int(hop.get("packet_length", 0)),
            hop_count=int(hop.get("hop_count", i)),
            switch_id=int(hop.get("switch_id", i + 1)),
        )
        monitor.run_hop(state, ctx)
        if trace_live:
            obs.tracer.emit("monitor_hop", "monitor", packet_id,
                            hop=i, switch_id=ctx.switch_id,
                            rejected=state.rejected, state=state)
    if state.rejected and obs.registry.live:
        obs.registry.counter(
            "monitor_rejections_total",
            "traces rejected by the reference monitor").labels().inc()
    return TraceResult(accepted=not state.rejected, state=state,
                       hop_count=len(hops))


def run_trace_file(checked: CheckedProgram, path: str) -> TraceResult:
    """Load a JSON trace file and run the monitor over it."""
    with open(path) as handle:
        try:
            trace = json.load(handle)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"{path}: invalid JSON: {exc}") from exc
    return run_trace(checked, trace)
