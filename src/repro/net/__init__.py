"""Network substrate: packets/headers, topologies, and the event-driven
packet-level simulator."""

from .packet import (ETH_TYPE_HYDRA, ETH_TYPE_IPV4, ETH_TYPE_SRCROUTE,
                     ETH_TYPE_VLAN, ETHERNET, GTPU, Header, HeaderType,
                     IP_PROTO_ICMP, IP_PROTO_TCP, IP_PROTO_UDP, IPV4, Packet,
                     SOURCE_ROUTE, TCP, UDP, UDP_PORT_GTPU, VLAN, format_ip,
                     ip, make_gtpu_encapsulated, make_source_routed, make_tcp,
                     make_udp)
from .simulator import (DEFAULT_STAGE_DELAY_S, DEFAULT_STAGES, Host, Network,
                        Simulator, SwitchDevice)
from .topofile import (TopologyFormatError, load_topology, save_topology,
                       topology_from_dict, topology_to_dict)
from .topology import (CORE, EDGE, Endpoint, HostSpec, Link, SwitchSpec,
                       Topology, fat_tree, leaf_spine, linear, single_switch)

__all__ = [
    "CORE", "DEFAULT_STAGES", "DEFAULT_STAGE_DELAY_S", "EDGE", "ETHERNET",
    "ETH_TYPE_HYDRA", "ETH_TYPE_IPV4", "ETH_TYPE_SRCROUTE", "ETH_TYPE_VLAN",
    "Endpoint", "GTPU", "Header", "HeaderType", "Host", "HostSpec",
    "IP_PROTO_ICMP", "IP_PROTO_TCP", "IP_PROTO_UDP", "IPV4", "Link",
    "Network", "Packet", "SOURCE_ROUTE", "Simulator", "SwitchDevice",
    "SwitchSpec", "TCP", "Topology", "TopologyFormatError", "UDP", "UDP_PORT_GTPU", "VLAN",
    "fat_tree", "format_ip", "ip", "leaf_spine", "linear",
    "load_topology", "make_gtpu_encapsulated", "make_source_routed",
    "make_tcp", "make_udp", "save_topology", "single_switch",
    "topology_from_dict", "topology_to_dict",
]
