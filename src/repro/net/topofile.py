"""Topology files: the compiler's second input (Section 4.1).

"The compiler takes as inputs an Indus program and a topology file in
which each switch is classified as an edge or non-edge switch."  This
module defines that file format (JSON) with loading, saving, and
validation, so deployments can be described declaratively::

    {
      "name": "leafspine-2x2",
      "switches": [
        {"name": "leaf1", "role": "edge", "is_leaf": true},
        {"name": "spine1", "role": "core", "is_spine": true}
      ],
      "hosts": [
        {"name": "h1", "ipv4": "10.0.1.1"}
      ],
      "links": [
        {"a": ["leaf1", 1], "b": ["h1", 0],
         "latency_us": 1, "bandwidth_gbps": 10}
      ]
    }
"""

from __future__ import annotations

import json
from typing import Any, Dict, Union

from .packet import format_ip, ip
from .topology import CORE, EDGE, Topology


class TopologyFormatError(ValueError):
    """Raised when a topology file is malformed."""


def _parse_ipv4(value: Union[str, int]) -> int:
    if isinstance(value, int):
        return value
    parts = value.split(".")
    if len(parts) != 4:
        raise TopologyFormatError(f"bad IPv4 address {value!r}")
    try:
        octets = [int(p) for p in parts]
    except ValueError as exc:
        raise TopologyFormatError(f"bad IPv4 address {value!r}") from exc
    if any(not 0 <= o <= 255 for o in octets):
        raise TopologyFormatError(f"bad IPv4 address {value!r}")
    return ip(*octets)


def topology_from_dict(data: Dict[str, Any]) -> Topology:
    """Build a :class:`Topology` from a parsed topology document."""
    if not isinstance(data, dict):
        raise TopologyFormatError("topology document must be an object")
    topo = Topology(name=data.get("name", "topology"))
    for entry in data.get("switches", []):
        name = entry.get("name")
        if not name:
            raise TopologyFormatError("switch entries need a 'name'")
        role = entry.get("role", CORE)
        if role not in (EDGE, CORE):
            raise TopologyFormatError(
                f"switch {name!r}: role must be 'edge' or 'core', "
                f"got {role!r}"
            )
        topo.add_switch(name, role=role,
                        is_spine=bool(entry.get("is_spine", False)),
                        is_leaf=bool(entry.get("is_leaf", False)))
    for entry in data.get("hosts", []):
        name = entry.get("name")
        if not name:
            raise TopologyFormatError("host entries need a 'name'")
        ipv4 = _parse_ipv4(entry.get("ipv4", 0))
        mac = entry.get("mac")
        topo.add_host(name, ipv4=ipv4, mac=mac)
    for entry in data.get("links", []):
        try:
            (node_a, port_a), (node_b, port_b) = entry["a"], entry["b"]
        except (KeyError, TypeError, ValueError) as exc:
            raise TopologyFormatError(
                f"link entries need 'a': [node, port] and 'b': "
                f"[node, port]; got {entry!r}"
            ) from exc
        topo.add_link(
            node_a, int(port_a), node_b, int(port_b),
            latency_s=float(entry.get("latency_us", 1)) * 1e-6,
            bandwidth_bps=float(entry.get("bandwidth_gbps", 10)) * 1e9,
        )
    return topo


def topology_to_dict(topo: Topology) -> Dict[str, Any]:
    """Serialize a :class:`Topology` to a topology document."""
    return {
        "name": topo.name,
        "switches": [
            {
                "name": spec.name,
                "role": spec.role,
                "is_spine": spec.is_spine,
                "is_leaf": spec.is_leaf,
            }
            for spec in topo.switches.values()
        ],
        "hosts": [
            {
                "name": spec.name,
                "ipv4": format_ip(spec.ipv4),
                "mac": spec.mac,
            }
            for spec in topo.hosts.values()
        ],
        "links": [
            {
                "a": [link.a.node, link.a.port],
                "b": [link.b.node, link.b.port],
                "latency_us": link.latency_s * 1e6,
                "bandwidth_gbps": link.bandwidth_bps / 1e9,
            }
            for link in topo.links
        ],
    }


def load_topology(path: str) -> Topology:
    """Load a topology from a JSON file."""
    with open(path) as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise TopologyFormatError(f"{path}: invalid JSON: {exc}") from exc
    return topology_from_dict(data)


def save_topology(topo: Topology, path: str) -> None:
    """Write a topology to a JSON file."""
    with open(path, "w") as handle:
        json.dump(topology_to_dict(topo), handle, indent=2)
        handle.write("\n")
