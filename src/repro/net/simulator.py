"""Event-driven packet-level network simulator.

The simulator stands in for the paper's Mininet and hardware testbeds.
It moves packets between hosts and switches over links with propagation
latency, serialization delay, and FIFO output queues; switches run P4 IR
pipelines via :class:`~repro.p4.bmv2.Bmv2Switch`.

The latency model mirrors how a hardware pipeline behaves: per-switch
processing delay is ``stages * stage_delay`` — *independent of which
program runs as long as the stage count is unchanged* — plus store-and-
forward serialization of the actual packet bytes.  Hydra's telemetry
header therefore costs only its extra serialization bytes, which is why
Figure 12 finds no significant RTT difference.

Two execution modes share one timing model:

* **event mode** (default) — one scheduler event per enqueue / arrival /
  forward, exactly the historical behaviour;
* **batched mode** (``Network(batched=True)``) — the hot loop for
  paper-rate replay.  Packets walk their whole path eagerly inside one
  event under the *horizon invariant* (every eagerly executed step must
  predate the next pending scheduler event, else the walk parks itself
  as a continuation event), stateless fabrics fast-forward repeat
  template emissions through cached per-flow transit records, and
  stateful fabrics drain bursts through ``Bmv2Switch.process_batch``
  one switch at a time.  See ``docs/INTERNALS.md`` for the invariants.

The scheduler itself is a slotted timing wheel (per-slot min-heaps keep
the exact ``(time, seq)`` FIFO order of the old global heap) with a
plain heap fallback for events beyond the wheel window — far-future
pre-scheduled load lands there and migrates into the wheel as the
window advances.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Iterable, Iterator, List, Optional,
                    Tuple)

from ..obs import NULL_OBS, Observability
from ..p4.bmv2 import (DEFAULT_LOG_CAPACITY, Bmv2Switch, BoundedLog,
                       DigestMessage)
from .fastforward import FLOW_CACHE_MAX, stateless_program
from .packet import Packet
from .topology import Endpoint, Link, Topology

DEFAULT_STAGE_DELAY_S = 40e-9     # per-pipeline-stage latency
DEFAULT_STAGES = 12               # the Aether fabric-upf baseline

#: Largest number of due emissions a batched source drains per wakeup.
BURST_LIMIT = 512


def _noop() -> None:
    """Sentinel event body: marks a virtual time the batched drain
    already executed work at, so the clock ends where event mode's."""


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)


class Simulator:
    """A discrete-event scheduler: slotted timing wheel + far heap.

    Events inside the wheel window (``wheel_slots * slot_width_s``
    ahead of the high-water mark of ``now``) live in small per-slot
    heaps; everything farther out lives in one overflow heap and
    migrates into the wheel as the window advances.  Execution order is
    identical to a single global heap: ascending ``(time, seq)``, so
    simultaneous events run in scheduling order.
    """

    def __init__(self, slot_width_s: float = 1e-6, wheel_slots: int = 4096):
        self.now = 0.0
        #: The ``until`` bound of the innermost :meth:`run` call — the
        #: batched network consults it so eager walks never execute
        #: simulated work past the caller's stop time.
        self.run_until: Optional[float] = None
        self._slot_w = slot_width_s
        self._nslots = wheel_slots
        self._wheel: List[List[Tuple[float, int, Callable[[], None]]]] = [
            [] for _ in range(wheel_slots)]
        self._wheel_len = 0
        self._far: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        # Window anchor: the high-water mark of now, in slots.  Batched
        # walks may transiently step ``now`` backwards (a new walk
        # starts earlier than the previous walk finished); anchoring
        # the window at the high-water mark keeps every wheel entry
        # inside [base, base + nslots) regardless.
        self._base_slot = 0
        # First wheel slot that may hold the next event; lowered on
        # insert, advanced by scans.  Makes repeated peeks O(1).
        self._scan_slot = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        self.schedule_at(self.now + delay, callback)

    def schedule_at(self, time: float,
                    callback: Callable[[], None]) -> None:
        """Schedule at an absolute simulated time.

        Times at or before ``now`` are legal and fire next, ordered by
        ``(time, seq)`` like every other event — the batched network
        uses this for continuation events anchored to virtual times.
        """
        entry = (time, next(self._seq), callback)
        slot = int(time / self._slot_w)
        base = int(self.now / self._slot_w)
        if base > self._base_slot:
            self._base_slot = base
        if slot < self._base_slot + self._nslots:
            heapq.heappush(self._wheel[slot % self._nslots], entry)
            self._wheel_len += 1
            if slot < self._scan_slot:
                self._scan_slot = slot
        else:
            heapq.heappush(self._far, entry)

    def _next(self, pop: bool) -> Optional[Tuple[float, int, Callable]]:
        if not self._wheel_len and not self._far:
            return None
        slot_w = self._slot_w
        base = int(self.now / slot_w)
        if base > self._base_slot:
            self._base_slot = base
        limit = self._base_slot + self._nslots
        far = self._far
        wheel = self._wheel
        nslots = self._nslots
        # Migrate far-future events whose slot entered the window.
        while far and far[0][0] < limit * slot_w:
            entry = heapq.heappop(far)
            slot = int(entry[0] / slot_w)
            heapq.heappush(wheel[slot % nslots], entry)
            self._wheel_len += 1
            if slot < self._scan_slot:
                self._scan_slot = slot
        if self._wheel_len:
            # Any in-window event precedes every far event, so the
            # first occupied slot from the scan cursor holds the min.
            # A physical slot counts as occupied at this index only if
            # its earliest entry actually belongs here: when the cursor
            # lags more than ``nslots`` behind the window's top (legal —
            # overdue continuations may sit below the base), a high
            # absolute slot aliases onto a low physical index, and
            # accepting its entry early would reorder events.  The top
            # entry decides exactly: the in-slot heap is time-ordered
            # and time -> slot is monotonic, so an aliased top means
            # every entry in the slot belongs to a later index.
            slot_index = self._scan_slot
            while slot_index < limit:
                slot = wheel[slot_index % nslots]
                if slot and int(slot[0][0] / slot_w) == slot_index:
                    self._scan_slot = slot_index
                    if pop:
                        self._wheel_len -= 1
                        return heapq.heappop(slot)
                    return slot[0]
                slot_index += 1
            self._scan_slot = slot_index
        if far:
            return heapq.heappop(far) if pop else far[0]
        return None

    def peek_next_time(self) -> Optional[float]:
        """Earliest pending event time, or None — the batched network's
        *horizon*: eager work strictly before it cannot be observed by,
        or observe, anything still in the queue."""
        entry = self._next(pop=False)
        return entry[0] if entry is not None else None

    def run(self, until: Optional[float] = None) -> None:
        prev_until = self.run_until
        self.run_until = until
        try:
            while True:
                entry = self._next(pop=False)
                if entry is None:
                    break
                if until is not None and entry[0] > until:
                    self.now = until
                    return
                entry = self._next(pop=True)
                self.now = entry[0]
                entry[2]()
            if until is not None:
                self.now = until
        finally:
            self.run_until = prev_until

    @property
    def pending(self) -> int:
        return self._wheel_len + len(self._far)


class Host:
    """A host endpoint: sends packets, delivers receptions to callbacks.

    When no callback is registered, receptions accumulate in
    ``received``; with callbacks registered, each gets every packet
    (callbacks filter for the traffic they care about).

    ``tx_count`` counts packets that actually started serializing onto
    the wire; sends still queued (``send`` with a future delay) or
    dropped at the NIC FIFO (``nic_drops``) are not transmissions.
    """

    def __init__(self, name: str, network: "Network"):
        self.name = name
        self.network = network
        self.received: List[Tuple[float, Packet]] = []
        self.rx_callbacks: List[Callable[[float, Packet], None]] = []
        self.tx_count = 0
        self.rx_count = 0
        self.rx_bytes = 0
        #: Simulated time of the most recent delivery to this host —
        #: survives rx callbacks consuming the packet, unlike
        #: ``received`` (which callbacks bypass).
        self.last_rx_time: Optional[float] = None
        #: Packets dropped at this host's NIC FIFO (queue_full).
        self.nic_drops = 0
        # NIC serialization queue: time at which the host's (single)
        # uplink finishes its current transmission — hosts get the same
        # FIFO treatment as switch output ports, so injecting above link
        # bandwidth queues instead of overlapping on the wire.
        self.nic_busy_until = 0.0

    def add_rx_callback(self,
                        callback: Callable[[float, Packet], None]) -> None:
        self.rx_callbacks.append(callback)

    def send(self, packet: Packet, delay: float = 0.0) -> None:
        """Transmit toward the attached switch after ``delay`` seconds."""
        self.network.sim.schedule(
            delay, lambda: self.network.transmit_from_host(self.name, packet)
        )

    def deliver(self, packet: Packet, length: Optional[int] = None) -> None:
        self.rx_count += 1
        self.rx_bytes += packet.length if length is None else length
        now = self.network.sim.now
        self.last_rx_time = now
        if self.rx_callbacks:
            for callback in self.rx_callbacks:
                callback(now, packet)
        else:
            self.received.append((now, packet))


class SwitchDevice:
    """A switch in the simulation: a Bmv2 pipeline plus timing state."""

    def __init__(self, name: str, bmv2: Bmv2Switch, stages: int = DEFAULT_STAGES,
                 stage_delay_s: float = DEFAULT_STAGE_DELAY_S):
        self.name = name
        self.bmv2 = bmv2
        self.stages = stages
        self.stage_delay_s = stage_delay_s
        # Per output port: time at which the port finishes its current
        # transmission (FIFO serialization queue).
        self.port_busy_until: Dict[int, float] = {}
        self.bytes_forwarded = 0

    @property
    def processing_delay_s(self) -> float:
        return self.stages * self.stage_delay_s


class _LazySource:
    """A lazily-consumed ``(time, packet)`` emission stream for a host.

    Emission times must be non-decreasing.  The network pulls one
    emission at a time, so paper-rate traces are never materialized.
    """

    __slots__ = ("host", "_iter", "head")

    def __init__(self, host: str, emissions: Iterable[Tuple[float, Packet]]):
        self.host = host
        self._iter: Iterator[Tuple[float, Packet]] = iter(emissions)
        self.head: Optional[Tuple[float, Packet]] = next(self._iter, None)

    def pop(self) -> Tuple[float, Packet]:
        head = self.head
        self.head = next(self._iter, None)
        return head


class Network:
    """Hosts + switches wired per a :class:`Topology`, with a scheduler.

    With ``serialize_on_wire=True`` every packet is serialized to bits
    and re-parsed at each link traversal, proving that the header codecs
    carry the complete state — no information rides along in Python
    object identity.  (Host-side ``meta`` annotations survive: they
    stand in for payload contents, which this substrate models only as
    lengths.)

    With ``batched=True`` the network runs the batch hot loop (eager
    path walks + flow fast-forwarding + burst pipeline draining) with
    timing identical to event mode; a live tracer disables the eager
    machinery (trace consumers want one event per hop) and falls back
    to event mode transparently.
    """

    def __init__(self, topology: Topology,
                 switch_programs: Dict[str, Bmv2Switch],
                 stage_counts: Optional[Dict[str, int]] = None,
                 serialize_on_wire: bool = False,
                 report_capacity: int = DEFAULT_LOG_CAPACITY,
                 obs: Optional[Observability] = None,
                 max_queue_delay_s: Optional[float] = None,
                 batched: bool = False):
        self.topology = topology
        self.serialize_on_wire = serialize_on_wire
        self.sim = Simulator()
        self.obs = obs if obs is not None else NULL_OBS
        # A port/NIC whose FIFO backlog exceeds this wait is "full" and
        # drops the packet (reason=queue_full).  None = unbounded FIFO,
        # the historical behaviour.
        self.max_queue_delay_s = max_queue_delay_s
        self.batched = batched
        self._trace = self.obs.tracer.live
        self._metrics = self.obs.registry.live
        if self._trace and self.obs.tracer.clock is None:
            # Trace events carry simulator time, not wall-clock time.
            self.obs.tracer.clock = lambda: self.sim.now
        if self._metrics:
            reg = self.obs.registry
            self._m_qdrops = reg.counter(
                "queue_drops_total",
                "packets dropped by the network layer",
                labels=("node", "reason"))
            self._m_delivered = reg.counter(
                "packets_delivered_total", "packets delivered to hosts",
                labels=("host",))
            self._g_simtime = reg.gauge(
                "sim_time_seconds", "current simulator time")
        self.hosts: Dict[str, Host] = {
            name: Host(name, self) for name in topology.hosts
        }
        self.switches: Dict[str, SwitchDevice] = {}
        stage_counts = stage_counts or {}
        for name in topology.switches:
            if name not in switch_programs:
                raise ValueError(f"no P4 program bound for switch {name!r}")
            self.switches[name] = SwitchDevice(
                name, switch_programs[name],
                stages=stage_counts.get(name, DEFAULT_STAGES),
            )
        # Bounded: long replays keep a ring of recent reports plus the
        # cumulative count (``reports.total``) instead of growing forever.
        self.reports: BoundedLog = BoundedLog(
            report_capacity, on_evict=self._on_report_evict)
        for device in self.switches.values():
            device.bmv2.on_digest(self.reports.append)
        self.packets_delivered = 0
        self.packets_lost = 0
        # -- batched-mode state --------------------------------------------
        self._sources: List[_LazySource] = []
        #: Flow transit cache: (host, payload_len, header ids) -> legs.
        self._flow_cache: Dict[tuple, list] = {}
        # Bumped on every control-plane change; in-flight recordings
        # and parked replays from an older generation are discarded.
        self._cache_gen = 0
        self._stateless: Optional[bool] = None  # computed lazily
        if batched:
            for device in self.switches.values():
                device.bmv2.on_config_change(self._on_switch_config)

    def _on_report_evict(self, count: int) -> None:
        if self._metrics:
            self.obs.registry.counter(
                "log_evictions_total",
                "entries evicted from bounded ring logs",
                labels=("log", "node")).labels("reports", "network").inc(count)

    # -- transmission ------------------------------------------------------------

    def transmit_from_host(self, host_name: str, packet: Packet) -> None:
        if self.batched and not self._trace:
            self._walk_from_host(host_name, packet, self.sim.now)
            return
        attach = self.topology.host_attachment(host_name)
        link = self.topology.link_at(attach.node, attach.port)
        assert link is not None
        self._send_over(link, Endpoint(host_name, 0), packet)

    def _send_over(self, link: Link, src: Endpoint, packet: Packet) -> None:
        """Serialize + propagate a packet from ``src`` over ``link``."""
        dst = link.other(src)
        tx_time = packet.length * 8 / link.bandwidth_bps
        # Serialization queueing at the sending side.
        if src.node in self.switches:
            device = self.switches[src.node]
            busy_until = device.port_busy_until.get(src.port, 0.0)
        else:
            # Hosts serialize through their NIC FIFO exactly like a
            # switch output port: back-to-back sends queue behind the
            # in-flight transmission rather than bypassing it.
            busy_until = self.hosts[src.node].nic_busy_until
        start = max(self.sim.now, busy_until)
        queue_wait = start - self.sim.now
        if (self.max_queue_delay_s is not None
                and queue_wait > self.max_queue_delay_s):
            if src.node in self.hosts:
                self.hosts[src.node].nic_drops += 1
            self._drop(src.node, packet, "queue_full", port=src.port,
                       queue_wait_s=queue_wait)
            return
        if src.node in self.switches:
            device = self.switches[src.node]
            device.port_busy_until[src.port] = start + tx_time
            device.bytes_forwarded += packet.length
        else:
            # The packet is actually going onto the wire: this — not
            # Host.send scheduling time — is when it counts as sent.
            host = self.hosts[src.node]
            host.nic_busy_until = start + tx_time
            host.tx_count += 1
        ready = start + tx_time
        if self._trace:
            self.obs.tracer.emit(
                "enqueue", src.node, packet.packet_id, port=src.port,
                packet=packet, queue_wait_s=queue_wait)
            self.obs.tracer.emit(
                "link", src.node, packet.packet_id, port=src.port,
                packet=packet, dst=dst.node, dst_port=dst.port,
                tx_time_s=tx_time, latency_s=link.latency_s)
        if self.serialize_on_wire:
            packet = self._wire_roundtrip(packet)
        arrival_delay = (ready - self.sim.now) + link.latency_s
        self.sim.schedule(arrival_delay,
                          lambda: self._arrive(dst, packet))

    def _drop(self, node: str, packet: Packet, reason: str,
              port: Optional[int] = None, **detail: float) -> None:
        """Account a network-layer drop (queue overflow, routing hole)."""
        self.packets_lost += 1
        if self._metrics:
            self._m_qdrops.labels(node, reason).inc()
        if self._trace:
            self.obs.tracer.emit("drop", node, packet.packet_id, port=port,
                                 packet=packet, reason=reason, **detail)

    @staticmethod
    def _wire_roundtrip(packet: Packet) -> Packet:
        """Serialize every header to bits and re-parse it — the packet
        that arrives is rebuilt purely from its wire representation.

        Invalid headers are preserved bit-for-bit with their validity
        flag intact: a header invalidated at one hop and re-validated
        downstream must behave identically whether or not the wire
        roundtrip runs, so the roundtrip may not discard its contents.
        """
        from .packet import Header

        rebuilt = []
        for header in packet.headers:
            bits, _ = header.to_bits()
            copy = Header.from_bits(header.htype, bits)
            copy.valid = header.valid
            rebuilt.append(copy)
        out = Packet(headers=rebuilt, payload_len=packet.payload_len,
                     meta=dict(packet.meta))
        out.packet_id = packet.packet_id
        return out

    def _arrive(self, end: Endpoint, packet: Packet,
                length: Optional[int] = None) -> None:
        if end.node in self.hosts:
            self.packets_delivered += 1
            if self._metrics:
                self._m_delivered.labels(end.node).inc()
            if self._trace:
                self.obs.tracer.emit("deliver", end.node, packet.packet_id,
                                     port=end.port, packet=packet)
            self.hosts[end.node].deliver(packet, length)
            return
        device = self.switches[end.node]
        self.sim.schedule(
            device.processing_delay_s,
            lambda: self._forward(device, packet, end.port),
        )

    def _forward(self, device: SwitchDevice, packet: Packet,
                 ingress_port: int) -> None:
        outputs = device.bmv2.process(packet, ingress_port)
        if not outputs:
            # The switch's own instrumentation emits the drop event
            # (reason=ttl|pipeline) — it knows the verdict; the network
            # only keeps the aggregate loss counter.
            self.packets_lost += 1
            return
        for egress_port, out_packet in outputs:
            link = self.topology.link_at(device.name, egress_port)
            if link is None:
                self._drop(device.name, out_packet, "no_route",
                           port=egress_port)
                continue
            self._send_over(link, Endpoint(device.name, egress_port),
                            out_packet)

    # ==================================================================
    # Batched mode: eager walks, flow fast-forwarding, burst draining
    # ==================================================================
    #
    # Exactness rests on the horizon invariant: simulated work at
    # virtual time t may run eagerly only while t strictly precedes
    # both the earliest pending scheduler event and the attached
    # source's next emission time (the "cap") — anything at or beyond
    # that horizon parks itself as a continuation event and the
    # scheduler takes over.  All timing arithmetic below replicates
    # ``_send_over``/``_arrive`` float-expression-for-float-expression,
    # so both modes produce bit-identical timestamps.

    def attach_source(self, host_name: str,
                      emissions: Iterable[Tuple[float, Packet]]) -> None:
        """Attach a lazy ``(time, packet)`` emission stream to a host.

        Works in both modes: event mode self-schedules one emission at
        a time (O(1) memory, unlike pre-materializing ``Host.send``
        calls); batched mode drains every due emission per wakeup.
        Emission times must be non-decreasing.
        """
        if host_name not in self.hosts:
            raise ValueError(f"unknown host {host_name!r}")
        source = _LazySource(host_name, emissions)
        if source.head is None:
            return
        self._sources.append(source)
        self.sim.schedule_at(source.head[0], lambda: self._pump(source))

    def _pump(self, source: _LazySource) -> None:
        if not (self.batched and not self._trace):
            # Event mode: transmit the head emission, reschedule for
            # the next — one event per emission, nothing materialized.
            when, packet = source.pop()
            self.transmit_from_host(source.host, packet)
            if source.head is not None:
                self.sim.schedule_at(source.head[0],
                                     lambda: self._pump(source))
            return
        if self._ff_ready():
            self._drain(source)
            return
        sim = self.sim
        until = sim.run_until
        while source.head is not None:
            when = source.head[0]
            horizon = sim.peek_next_time()
            # Park only when the emission is strictly in the future: a
            # pump popped at its own head time owns this instant (every
            # pending same-time event has a larger seq and serializes
            # after it).  Re-parking at ties would ping-pong forever
            # against another same-instant continuation doing the same.
            if ((until is not None and when > until)
                    or (horizon is not None and when >= horizon
                        and when > sim.now)):
                sim.schedule_at(when, lambda: self._pump(source))
                return
            # Stateful fabric: drain every due emission into one burst
            # and push it through the switches a whole stage at a time.
            burst: List[Tuple[float, Packet]] = [source.pop()]
            while (source.head is not None and len(burst) < BURST_LIMIT):
                when = source.head[0]
                if ((horizon is not None and when >= horizon)
                        or (until is not None and when > until)):
                    break
                burst.append(source.pop())
            cap = source.head[0] if source.head is not None else None
            self._walk_burst(source.host, burst, cap)

    def _ff_ready(self) -> bool:
        """Flow fast-forwarding admission: every switch stateless, no
        wire serialization, no live tracer (checked by callers)."""
        if self.serialize_on_wire:
            return False
        if self._stateless is None:
            self._stateless = all(
                stateless_program(device.bmv2.program)
                for device in self.switches.values())
        return self._stateless

    def _on_switch_config(self, *_args: Any) -> None:
        """Any control-plane change invalidates cached transit records
        (routes may differ); program structure is immutable, so the
        statelessness verdict stands.  The generation bump also voids
        in-flight recordings and parked replay continuations."""
        self._cache_gen += 1
        if self._flow_cache:
            self._flow_cache.clear()

    def _host_uplink(self, host_name: str) -> Tuple[Link, Endpoint]:
        attach = self.topology.host_attachment(host_name)
        link = self.topology.link_at(attach.node, attach.port)
        assert link is not None
        return link, Endpoint(host_name, 0)

    def _horizon(self, cap: Optional[float]) -> Optional[float]:
        """The eager-execution bound: min(next pending event, cap)."""
        horizon = self.sim.peek_next_time()
        if cap is not None and (horizon is None or cap < horizon):
            return cap
        return horizon

    def _walk_from_host(self, host_name: str, packet: Packet, t: float,
                        cap: Optional[float] = None) -> None:
        if self._ff_ready() and packet.headers:
            gen = self._cache_gen
            # Template emissions memoize their own record (validated by
            # generation); the keyed cache is the fallback for distinct
            # packet objects sharing Header instances.
            ff = getattr(packet, "_ff", None)
            if ff is not None and ff[0] == gen and ff[2] == host_name:
                self._replay_record(ff[1], packet, t, cap, 0, gen)
                return
            key = (host_name, packet.payload_len) + tuple(
                map(id, packet.headers))
            legs = self._flow_cache.get(key)
            if legs is not None:
                packet._ff = self._ff_memo(gen, legs, host_name)
                self._replay_record(legs, packet, t, cap, 0, gen)
                return
            self._walk("wire", host_name, 0, packet, t, cap,
                       [("gen", gen)], key)
            return
        self._walk("wire", host_name, 0, packet, t, cap, None, None)

    def _defer_walk(self, phase: str, node: str, port: int, packet: Packet,
                    t: float, rec: Optional[list] = None,
                    key: Optional[tuple] = None) -> None:
        """Park a walk as a continuation event at its virtual time.

        An in-flight recording survives the park (the continuation
        keeps appending to ``rec``); :meth:`_store_record` discards it
        at store time if the cache generation moved meanwhile.
        """
        self.sim.schedule_at(
            t,
            lambda: self._walk(phase, node, port, packet, t, None,
                               rec, key))

    def _walk(self, phase: str, node: str, port: int, packet: Packet,
              t: float, cap: Optional[float], rec: Optional[list],
              key: Optional[tuple]) -> None:
        """Eagerly execute one packet's path starting at virtual time
        ``t``.

        ``phase`` is ``"wire"`` (about to serialize from ``node`` out
        of ``port``; hosts always use port 0) or ``"fw"`` (pipeline
        about to run at switch ``node``, ingress ``port``).  ``rec``
        accumulates a cacheable transit record; it survives deferrals
        (the continuation keeps recording) and is abandoned on
        multicast or routing anomalies — only clean single-path walks
        are worth replaying.
        """
        sim = self.sim
        topology = self.topology
        switches = self.switches
        hosts = self.hosts
        maxq = self.max_queue_delay_s
        horizon = self._horizon(cap)
        until = sim.run_until
        while True:
            # A step at the current instant never parks: when this walk
            # is the continuation the scheduler just popped, every
            # pending event at the same time has a larger seq and
            # serializes after it — deferring again would re-park
            # behind that event and livelock if it, too, is a parked
            # continuation at this instant.  Steps that advance past
            # ``sim.now`` re-check the horizon as usual.
            if ((until is not None and t > until)
                    or (horizon is not None and t >= horizon
                        and t > sim.now)):
                self._defer_walk(phase, node, port, packet, t, rec, key)
                return
            sim.now = t
            if phase == "wire":
                from_host = node in hosts
                if from_host:
                    link, src = self._host_uplink(node)
                else:
                    link = topology.link_at(node, port)
                    if link is None:
                        self._drop(node, packet, "no_route", port=port)
                        return
                    src = Endpoint(node, port)
                plen = packet.length
                tx_time = plen * 8 / link.bandwidth_bps
                if from_host:
                    host = hosts[node]
                    busy_until = host.nic_busy_until
                else:
                    device = switches[node]
                    busy_until = device.port_busy_until.get(port, 0.0)
                start = max(t, busy_until)
                queue_wait = start - t
                if maxq is not None and queue_wait > maxq:
                    if from_host:
                        hosts[node].nic_drops += 1
                    self._drop(node, packet, "queue_full", port=port,
                               queue_wait_s=queue_wait)
                    return
                if from_host:
                    host.nic_busy_until = start + tx_time
                    host.tx_count += 1
                else:
                    device.port_busy_until[port] = start + tx_time
                    device.bytes_forwarded += plen
                ready = start + tx_time
                if rec is not None:
                    if from_host:
                        rec.append(("hw", node, port, tx_time,
                                    link.latency_s, plen, packet, host))
                    else:
                        rec.append(("sw", node, port, tx_time,
                                    link.latency_s, plen, packet, device))
                if self.serialize_on_wire:
                    packet = self._wire_roundtrip(packet)
                arrival = (ready - t) + link.latency_s + t
                dst = link.other(src)
                if dst.node in hosts:
                    if rec is not None:
                        rec.append(("dv", dst.node, dst.port, packet, plen,
                                    Endpoint(dst.node, dst.port),
                                    hosts[dst.node]))
                        self._store_record(key, rec)
                    self._deliver_walk(dst.node, dst.port, packet, arrival,
                                       horizon, until, plen)
                    return
                device = switches[dst.node]
                t = arrival + device.processing_delay_s
                phase = "fw"
                node = dst.node
                port = dst.port
                if rec is not None:
                    rec.append(("fw", node, port,
                                device.processing_delay_s, packet))
                continue
            # phase == "fw": the pipeline runs at forward time t.
            device = switches[node]
            outputs = device.bmv2.process(packet, port)
            if not outputs:
                self.packets_lost += 1
                if rec is not None:
                    rec.append(("dr",))
                    self._store_record(key, rec)
                return
            if len(outputs) > 1:
                # Multicast: hand every copy to the scheduler at this
                # virtual time — events preserve the event path's
                # output order exactly.
                for egress_port, out_packet in outputs:
                    self._defer_walk("wire", node, egress_port,
                                     out_packet, t)
                return
            egress_port, packet = outputs[0]
            phase = "wire"
            port = egress_port

    def _store_record(self, key: Optional[tuple], legs: list) -> None:
        if key is None:
            return
        # legs[0] is the ("gen", g) sentinel stamped when recording
        # began; a control-plane change mid-flight voids the record
        # (its early legs reflect the old routes).
        if legs[0][1] != self._cache_gen:
            return
        if len(self._flow_cache) >= FLOW_CACHE_MAX:
            self._flow_cache.clear()
        stored = legs[1:]
        self._flow_cache[key] = stored
        # Memoize the record on the source template itself (the packet
        # recorded at the NIC leg) so repeat emissions of the same
        # object skip the keyed lookup entirely.
        first = stored[0]
        if first[0] == "hw":
            first[6]._ff = self._ff_memo(self._cache_gen, stored,
                                         first[1])

    @staticmethod
    def _ff_memo(gen: int, legs: list, host_name: str) -> tuple:
        """Build a template's replay memo (checked in ``_drain`` and
        :meth:`_walk_from_host`).

        The memo carries the emitting host: the same template sent from
        a different host takes a different path, so a host mismatch
        falls through to the keyed cache.  Records with the canonical
        one-switch shape additionally carry their legs pre-unpacked so
        the drain's straight-line path pays no per-emission shape test:

          ``(gen, legs, host, hw, fw_delay, sw, dv, dv_host)``

        Any other shape stores ``(gen, legs, host, None)``.
        """
        if (len(legs) == 4 and legs[1][0] == "fw" and legs[2][0] == "sw"
                and legs[3][0] == "dv"):
            return (gen, legs, host_name, legs[0], legs[1][3], legs[2],
                    legs[3], legs[3][6])
        return (gen, legs, host_name, None)

    def _deliver_walk(self, host_name: str, port: int, packet: Packet,
                      arrival: float, horizon: Optional[float],
                      until: Optional[float],
                      length: Optional[int] = None) -> None:
        """Deliver at virtual time ``arrival``: inline when the host is
        inert (no rx callbacks — nothing it does can be observed before
        the walk returns) and the horizon allows it, else as a
        scheduler event so callbacks fire at their true simulated time
        with the queue in charge."""
        host = self.hosts[host_name]
        if (host.rx_callbacks
                or (horizon is not None and arrival >= horizon)
                or (until is not None and arrival > until)):
            end = Endpoint(host_name, port)
            self.sim.schedule_at(arrival,
                                 lambda: self._arrive(end, packet, length))
            return
        self.sim.now = arrival
        self._arrive(Endpoint(host_name, port), packet, length)

    def _replay_record(self, legs: list, emission: Packet, t: float,
                       cap: Optional[float], start: int,
                       gen: int) -> None:
        """Fast-forward one emission through a cached transit record.

        Pure float arithmetic per leg — no pipeline execution, no
        per-hop events.  A leg that would cross the horizon parks the
        replay as a continuation event at its exact virtual time and
        resumes from that leg; if the cache generation moved while
        parked (control-plane change — the remaining legs may reflect
        stale routes), the continuation falls back to a plain walk
        using the leg's recorded in-flight packet template, which is
        value-identical for template emissions since pipelines are
        deterministic functions of the packet.
        """
        sim = self.sim
        maxq = self.max_queue_delay_s
        horizon = self._horizon(cap)
        until = sim.run_until
        index = start
        while True:
            leg = legs[index]
            code = leg[0]
            if code == "dv":
                self._deliver_walk(leg[1], leg[2],
                                   self._replay_out(legs, leg, emission),
                                   t, horizon, until, leg[4])
                return
            if code == "dr":
                self.packets_lost += 1
                return
            # Same tie rule as _walk: a leg at the current instant
            # belongs to the continuation that was just popped —
            # re-parking at an equal-time horizon would livelock
            # against another parked continuation at this instant.
            if ((until is not None and t > until)
                    or (horizon is not None and t >= horizon
                        and t > sim.now)):
                self.sim.schedule_at(
                    t,
                    lambda i=index, tt=t:
                    self._replay_resume(legs, emission, tt, i, gen))
                return
            if code == "hw":
                host = leg[7]
                tx_time = leg[3]
                start = max(t, host.nic_busy_until)
                queue_wait = start - t
                if maxq is not None and queue_wait > maxq:
                    host.nic_drops += 1
                    self._drop(leg[1], leg[6], "queue_full", port=0,
                               queue_wait_s=queue_wait)
                    return
                host.nic_busy_until = start + tx_time
                host.tx_count += 1
                t = (start + tx_time - t) + leg[4] + t
                index += 1
            elif code == "sw":
                device = leg[7]
                port = leg[2]
                tx_time = leg[3]
                start = max(t, device.port_busy_until.get(port, 0.0))
                queue_wait = start - t
                if maxq is not None and queue_wait > maxq:
                    self._drop(leg[1], leg[6], "queue_full", port=port,
                               queue_wait_s=queue_wait)
                    return
                device.port_busy_until[port] = start + tx_time
                device.bytes_forwarded += leg[5]
                t = (start + tx_time - t) + leg[4] + t
                index += 1
            else:  # "fw": the pipeline is skipped; only its delay counts.
                t = t + leg[3]
                index += 1

    @staticmethod
    def _replay_out(legs: list, leg: tuple, emission: Packet) -> Packet:
        """The packet a replayed delivery hands the host.

        When the emission *is* the recorded source template (the normal
        case — sources reuse template packets), the recorded output
        packet is delivered as-is: it is exactly what the event path
        delivered when the record was made, and repeat traversals of a
        stateless fabric reproduce it bit-for-bit.  A different
        emission object gets a fresh shell carrying its own id/meta.
        """
        out = leg[3]
        first = legs[0]
        if first[0] == "hw" and emission is first[6]:
            return out
        return Packet.shell(list(out.headers), out.payload_len,
                            emission.packet_id, dict(emission.meta))

    def _replay_resume(self, legs: list, emission: Packet, t: float,
                       index: int, gen: int) -> None:
        """Continuation of a parked replay (see :meth:`_replay_record`)."""
        if gen == self._cache_gen:
            self._replay_record(legs, emission, t, None, index, gen)
            return
        self._replay_stale(legs, t, index, None)

    def _replay_stale(self, legs: list, t: float, index: int,
                      cap: Optional[float]) -> None:
        """The cache generation moved under a parked replay: finish the
        remainder as a plain walk from the leg's recorded in-flight
        template (value-identical for template emissions, since
        stateless pipelines are deterministic functions of the
        packet)."""
        leg = legs[index]
        if leg[0] == "fw":
            self._walk("fw", leg[1], leg[2], leg[4], t, cap, None, None)
        else:
            self._walk("wire", leg[1], leg[2], leg[6], t, cap, None, None)

    def _drain(self, source: _LazySource) -> None:
        """The batch hot loop: drain a source through the fabric with a
        local run queue instead of global scheduler events.

        A tiny event loop over a local heap merges three item streams
        in exact virtual-time order — source emissions, parked replay
        continuations, and pending deliveries — and runs them inline
        for as long as the next item precedes every *global* scheduler
        event (the horizon) and the ``run(until)`` bound.  Heap entries
        are plain tuples, so a park/resume cycle costs two heap ops
        instead of a closure plus a scheduler round-trip.  The moment
        the global queue intrudes, every local item is flushed back to
        the scheduler as ordinary continuation events and the global
        loop takes over — so the slow path remains the single source of
        truth for anything the local loop cannot prove safe.

        The loop is two-tiered.  With the local heap empty, emissions
        whose memoized record has the canonical one-switch shape
        (``hw``/``fw``/``sw``/``dv`` — see :meth:`_ff_memo`) replay on
        a straight-line fast path; everything else (longer records,
        parked continuations, rx callbacks) runs through the generic
        leg loop.  The fast path keeps mutable endpoint state — the
        source NIC's FIFO clock and tx count, the last-used switch
        output port, the last delivery host's rx counters, the global
        delivered counter, and the simulator clock high-water mark —
        in locals, written back ("flushed") whenever control can reach
        code that observes the real attributes: before any walk,
        delivery callback, stale-replay fallback, the generic leg
        loop, or any return.

        Unlike the generic loop, the fast path does not park against
        the source's own next emission time.  That is exact: every
        emission of this source serializes through the same NIC FIFO
        first, so a later emission reaches any switch this record
        crosses no earlier than this packet did — and the one-switch
        shape is the *shortest* route from that NIC to its output port
        (a single pipeline delay), so no later packet can undercut its
        claim by another route either.  Per-resource claims therefore
        stay in arrival order without parking.  Anything that could
        break the argument — a packet parked mid-path (non-empty local
        heap), a global event (horizon), rx callbacks — falls back to
        the generic loop or parks exactly as before.  Because fused
        deliveries may thus run ahead of later (earlier-timed)
        emissions, ``sim.now`` is not written per delivery; the
        high-water mark is restored at every exit (as a sentinel event
        when earlier global work is still queued) so the clock ends
        where event mode would leave it.

        Exactness elsewhere is unchanged: items execute in ascending
        ``(time, local seq)`` order, generic replay legs yield to any
        earlier item before claiming a port, and the strict
        ``t < horizon`` bound means no local work runs at or past a
        global event's time.

        Local heap items (fixed arity, compared on ``(t, seq)``):
          ``(t, seq, 0, legs, index, emission, gen)``  replay continuation
          ``(t, seq, 1, None, endpoint, packet, length)``  delivery
        """
        sim = self.sim
        inf = float("inf")
        until = sim.run_until
        stop = until if until is not None else inf
        maxq = self.max_queue_delay_s
        maxq_b = maxq if maxq is not None else inf
        metrics = self._metrics
        m_children: dict = {}
        heap: list = []
        hpush = heapq.heappush
        hpop = heapq.heappop
        nxt = next
        seq = 0
        # The horizon is hoisted out of the loop: mid-drain, global
        # events are only *added* (by walks, deliveries with callbacks,
        # and stale-replay fallbacks — all of which re-peek below) and
        # never consumed, so between those points the cached value is
        # exact, and the common replay iteration touches no scheduler
        # state at all.  ``gen`` follows the same discipline (config
        # changes only happen inside delivery callbacks).
        peek = sim.peek_next_time
        g = peek()
        g_h = g if g is not None else inf
        gen = self._cache_gen
        now_hi = sim.now
        src_name = source.host
        src_host = self.hosts[src_name]
        src_iter = source._iter
        # -- fast-path write-back caches (flush discipline above) -----
        nic_cached = True
        nic_busy = src_host.nic_busy_until
        ntx = 0                  # src_host.tx_count delta
        cdev: Optional[SwitchDevice] = None   # cached output port ...
        cport = -1
        pbusy = 0.0
        dbytes = 0               # cdev.bytes_forwarded delta
        cdvh: Optional[Host] = None           # cached delivery host ...
        crxc = 0                 # rx_count / rx_bytes deltas
        crxb = 0
        clast: Optional[float] = None
        cappend = None
        cmet = None
        ndeliv = 0               # self.packets_delivered delta
        while True:
            head = source.head
            if not heap:
                # ======== fast tier: nothing parked locally ========
                if head is None:
                    # Source exhausted.  Event mode's last event would
                    # be the latest delivery; restore that time (as a
                    # sentinel event if the global queue still holds
                    # earlier work).
                    break
                t = head[0]
                if t >= g_h or t > stop:
                    break
                emission = head[1]
                source.head = nxt(src_iter, None)
                try:
                    ff = emission._ff
                except AttributeError:
                    ff = None
                if ff is not None and ff[0] == gen and ff[2] == src_name:
                    hw = ff[3]
                    if hw is not None:
                        dvhost = ff[7]
                        if dvhost is not cdvh:
                            # Switch the delivery cache (callbacks are
                            # re-checked here; they cannot appear
                            # between flushes).
                            if cdvh is not None:
                                if crxc:
                                    cdvh.rx_count += crxc
                                    cdvh.rx_bytes += crxb
                                    crxc = 0
                                    crxb = 0
                                cdvh.last_rx_time = clast
                                cdvh = None
                            if not dvhost.rx_callbacks:
                                cdvh = dvhost
                                clast = dvhost.last_rx_time
                                cappend = dvhost.received.append
                                cmet = (self._m_delivered.labels(
                                    dvhost.name) if metrics else None)
                        if dvhost is cdvh:
                            # ---- straight-line one-switch replay ----
                            if not nic_cached:
                                nic_cached = True
                                nic_busy = src_host.nic_busy_until
                            start = t if t > nic_busy else nic_busy
                            if start - t > maxq_b:
                                src_host.nic_drops += 1
                                self._drop(hw[1], hw[6], "queue_full",
                                           port=0,
                                           queue_wait_s=start - t)
                                continue
                            tx_time = hw[3]
                            nic_busy = start + tx_time
                            ntx += 1
                            t = (start + tx_time - t) + hw[4] + t
                            t = t + ff[4]
                            if t >= g_h or t > stop:
                                hpush(heap, (t, seq, 0, ff[1], 2,
                                             emission, gen))
                                seq += 1
                                continue
                            swleg = ff[5]
                            device = swleg[7]
                            port = swleg[2]
                            if device is not cdev or port != cport:
                                if cdev is not None:
                                    cdev.port_busy_until[cport] = pbusy
                                    if dbytes:
                                        cdev.bytes_forwarded += dbytes
                                        dbytes = 0
                                cdev = device
                                cport = port
                                pbusy = device.port_busy_until.get(
                                    port, 0.0)
                            start = t if t > pbusy else pbusy
                            if start - t > maxq_b:
                                self._drop(swleg[1], swleg[6],
                                           "queue_full", port=port,
                                           queue_wait_s=start - t)
                                continue
                            tx_time = swleg[3]
                            pbusy = start + tx_time
                            dbytes += swleg[5]
                            t = (start + tx_time - t) + swleg[4] + t
                            dvleg = ff[6]
                            if t >= g_h or t > stop:
                                hpush(heap, (t, seq, 1, None, dvleg[5],
                                             self._replay_out(
                                                 ff[1], dvleg, emission),
                                             dvleg[4]))
                                seq += 1
                                continue
                            if t > now_hi:
                                now_hi = t
                            ndeliv += 1
                            if metrics:
                                cmet.inc()
                            crxc += 1
                            crxb += dvleg[4]
                            clast = t
                            out = dvleg[3]
                            cappend(
                                (t, out if emission is hw[6]
                                 else Packet.shell(list(out.headers),
                                                   out.payload_len,
                                                   emission.packet_id,
                                                   dict(emission.meta))))
                            continue
                    # Valid record, but not fast-path eligible: flush
                    # the caches and run the generic leg loop below.
                    legs = ff[1]
                    index = 0
                    wgen = gen
                else:
                    # No (valid) record: flush, then run the recording
                    # walk, capped by whatever is due next here or
                    # globally.
                    if nic_cached:
                        nic_cached = False
                        src_host.nic_busy_until = nic_busy
                        if ntx:
                            src_host.tx_count += ntx
                            ntx = 0
                    if cdev is not None:
                        cdev.port_busy_until[cport] = pbusy
                        if dbytes:
                            cdev.bytes_forwarded += dbytes
                            dbytes = 0
                        cdev = None
                    if cdvh is not None:
                        if crxc:
                            cdvh.rx_count += crxc
                            cdvh.rx_bytes += crxb
                            crxc = 0
                            crxb = 0
                        cdvh.last_rx_time = clast
                        cdvh = None
                    if ndeliv:
                        self.packets_delivered += ndeliv
                        ndeliv = 0
                    bound = source.head[0] if source.head is not None \
                        else inf
                    if g_h < bound:
                        bound = g_h
                    self._walk_from_host(src_name, emission, t,
                                         bound if bound < inf else None)
                    g = peek()   # the walk may have scheduled events
                    g_h = g if g is not None else inf
                    gen = self._cache_gen
                    continue
            else:
                # ======== slow tier: parked items in play ========
                # Flush the fast-path caches first — every branch here
                # can observe or mutate the real attributes.  (All
                # no-ops when already flushed.)
                if nic_cached:
                    nic_cached = False
                    src_host.nic_busy_until = nic_busy
                    if ntx:
                        src_host.tx_count += ntx
                        ntx = 0
                if cdev is not None:
                    cdev.port_busy_until[cport] = pbusy
                    if dbytes:
                        cdev.bytes_forwarded += dbytes
                        dbytes = 0
                    cdev = None
                if cdvh is not None:
                    if crxc:
                        cdvh.rx_count += crxc
                        cdvh.rx_bytes += crxb
                        crxc = 0
                        crxb = 0
                    cdvh.last_rx_time = clast
                    cdvh = None
                if ndeliv:
                    self.packets_delivered += ndeliv
                    ndeliv = 0
                head_t = head[0] if head is not None else inf
                local_t = heap[0][0]
                if head_t <= local_t:
                    t = head_t
                    from_source = True
                else:
                    t = local_t
                    from_source = False
                if t >= g_h or t > stop:
                    break
                if from_source:
                    emission = head[1]
                    source.head = nxt(src_iter, None)
                    try:
                        ff = emission._ff
                    except AttributeError:
                        ff = None
                    if (ff is None or ff[0] != gen
                            or ff[2] != src_name):
                        bound = source.head[0] \
                            if source.head is not None else inf
                        if heap[0][0] < bound:
                            bound = heap[0][0]
                        if g_h < bound:
                            bound = g_h
                        self._walk_from_host(
                            src_name, emission, t,
                            bound if bound < inf else None)
                        g = peek()
                        g_h = g if g is not None else inf
                        gen = self._cache_gen
                        continue
                    legs = ff[1]
                    index = 0
                    wgen = gen
                else:
                    item = hpop(heap)
                    if item[2] == 1:
                        sim.now = t
                        self._arrive(item[4], item[5], item[6])
                        g = peek()   # callbacks may schedule events
                        g_h = g if g is not None else inf
                        gen = self._cache_gen
                        continue
                    legs, index, emission, wgen = item[3], item[4], \
                        item[5], item[6]
                    if wgen != gen:
                        bound = source.head[0] \
                            if source.head is not None else inf
                        if heap and heap[0][0] < bound:
                            bound = heap[0][0]
                        if g_h < bound:
                            bound = g_h
                        self._replay_stale(legs, t, index,
                                           bound if bound < inf
                                           else None)
                        g = peek()
                        g_h = g if g is not None else inf
                        gen = self._cache_gen
                        continue
            # ---- generic leg loop: replay inline, yielding to any
            # earlier item (fast tier jumps here only after flushing
            # its caches via the walk/slow branches above) ----
            if nic_cached:
                nic_cached = False
                src_host.nic_busy_until = nic_busy
                if ntx:
                    src_host.tx_count += ntx
                    ntx = 0
            if cdev is not None:
                cdev.port_busy_until[cport] = pbusy
                if dbytes:
                    cdev.bytes_forwarded += dbytes
                    dbytes = 0
                cdev = None
            if cdvh is not None:
                if crxc:
                    cdvh.rx_count += crxc
                    cdvh.rx_bytes += crxb
                    crxc = 0
                    crxb = 0
                cdvh.last_rx_time = clast
                cdvh = None
            if ndeliv:
                self.packets_delivered += ndeliv
                ndeliv = 0
            bound = source.head[0] if source.head is not None else inf
            if heap and heap[0][0] < bound:
                bound = heap[0][0]
            if g_h < bound:
                bound = g_h
            while True:
                leg = legs[index]
                code = leg[0]
                if code == "dv":
                    host = leg[6]
                    if host.rx_callbacks or t >= bound or t > stop:
                        hpush(heap, (t, seq, 1, None, leg[5],
                                     self._replay_out(legs, leg, emission),
                                     leg[4]))
                        seq += 1
                        break
                    sim.now = t
                    if t > now_hi:
                        now_hi = t
                    self.packets_delivered += 1
                    if metrics:
                        child = m_children.get(leg[1])
                        if child is None:
                            child = self._m_delivered.labels(leg[1])
                            m_children[leg[1]] = child
                        child.inc()
                    host.rx_count += 1
                    host.rx_bytes += leg[4]
                    host.last_rx_time = t
                    first = legs[0]
                    out = leg[3]
                    host.received.append(
                        (t, out if emission is first[6]
                            and first[0] == "hw"
                         else Packet.shell(list(out.headers),
                                           out.payload_len,
                                           emission.packet_id,
                                           dict(emission.meta))))
                    break
                if code == "dr":
                    self.packets_lost += 1
                    break
                if t >= bound or t > stop:
                    hpush(heap, (t, seq, 0, legs, index, emission, wgen))
                    seq += 1
                    break
                if code == "hw":
                    host = leg[7]
                    tx_time = leg[3]
                    busy = host.nic_busy_until
                    start = t if t > busy else busy
                    queue_wait = start - t
                    if queue_wait > maxq_b:
                        host.nic_drops += 1
                        self._drop(leg[1], leg[6], "queue_full", port=0,
                                   queue_wait_s=queue_wait)
                        break
                    host.nic_busy_until = start + tx_time
                    host.tx_count += 1
                    t = (start + tx_time - t) + leg[4] + t
                    index += 1
                elif code == "sw":
                    device = leg[7]
                    port = leg[2]
                    tx_time = leg[3]
                    busy = device.port_busy_until.get(port, 0.0)
                    start = t if t > busy else busy
                    queue_wait = start - t
                    if queue_wait > maxq_b:
                        self._drop(leg[1], leg[6], "queue_full", port=port,
                                   queue_wait_s=queue_wait)
                        break
                    device.port_busy_until[port] = start + tx_time
                    device.bytes_forwarded += leg[5]
                    t = (start + tx_time - t) + leg[4] + t
                    index += 1
                else:  # "fw"
                    t = t + leg[3]
                    index += 1
        # ---- drain exit: flush caches, hand leftovers back ----------
        if nic_cached:
            src_host.nic_busy_until = nic_busy
            if ntx:
                src_host.tx_count += ntx
        if cdev is not None:
            cdev.port_busy_until[cport] = pbusy
            if dbytes:
                cdev.bytes_forwarded += dbytes
        if cdvh is not None:
            if crxc:
                cdvh.rx_count += crxc
                cdvh.rx_bytes += crxb
            cdvh.last_rx_time = clast
        if ndeliv:
            self.packets_delivered += ndeliv
        schedule_at = sim.schedule_at
        while heap:
            # The global queue intrudes: hand everything back as
            # ordinary continuation events (heap order preserves the
            # (time, seq) execution order) and bow out.
            item = hpop(heap)
            it = item[0]
            if item[2] == 0:
                schedule_at(
                    it,
                    lambda i=item, tt=it: self._replay_resume(
                        i[3], i[5], tt, i[4], i[6]))
            else:
                schedule_at(
                    it,
                    lambda i=item: self._arrive(i[4], i[5], i[6]))
        head = source.head
        if head is not None:
            schedule_at(head[0], lambda: self._pump(source))
        if now_hi > sim.now:
            if sim.pending:
                schedule_at(now_hi, _noop)
            else:
                sim.now = now_hi

    def _walk_burst(self, host_name: str,
                    burst: List[Tuple[float, Packet]],
                    cap: Optional[float]) -> None:
        """Push a burst of same-host emissions through the fabric one
        stage at a time (struct-of-arrays transit state), invoking each
        switch's ``process_batch`` once per stage.

        Used when the fabric is stateful (no flow cache).  The burst
        stays lockstep only while every member takes the same switch
        sequence with no revisits — per-switch pipeline order then
        equals arrival order, exactly as in event mode, because FIFO
        ports never reorder a shared path.  Members that would split
        off (ECMP spread, loops) or cross the horizon leave the burst
        as ordinary scheduler events.
        """
        sim = self.sim
        maxq = self.max_queue_delay_s
        until = sim.run_until
        link, src = self._host_uplink(host_name)
        host = self.hosts[host_name]
        bandwidth = link.bandwidth_bps
        latency = link.latency_s
        entry = link.other(src)
        # Stage state (struct-of-arrays): parallel arrival times,
        # packets, and ingress ports, plus the switch they share.
        times: List[float] = []
        packets: List[Packet] = []
        ports: List[int] = []
        for t, packet in burst:
            # Host NIC leg; burst emissions are horizon-checked by the
            # pump, so every member is admissible here.
            sim.now = t
            tx_time = packet.length * 8 / bandwidth
            start = max(t, host.nic_busy_until)
            queue_wait = start - t
            if maxq is not None and queue_wait > maxq:
                host.nic_drops += 1
                self._drop(host_name, packet, "queue_full", port=0,
                           queue_wait_s=queue_wait)
                continue
            host.nic_busy_until = start + tx_time
            host.tx_count += 1
            if self.serialize_on_wire:
                packet = self._wire_roundtrip(packet)
            arrival = (start + tx_time - t) + latency + t
            times.append(arrival)
            packets.append(packet)
            ports.append(entry.port)
        node = entry.node
        visited = {node}
        while times:
            horizon = self._horizon(cap)
            device = self.switches[node]
            proc = device.processing_delay_s
            items: List[Tuple[Packet, int]] = []
            fwd_times: List[float] = []
            for i, arrival in enumerate(times):
                t_fwd = arrival + proc
                if ((horizon is not None and t_fwd >= horizon)
                        or (until is not None and t_fwd > until)):
                    self._defer_walk("fw", node, ports[i], packets[i],
                                     t_fwd)
                    continue
                items.append((packets[i], ports[i]))
                fwd_times.append(t_fwd)
            if not items:
                return
            results = device.bmv2.process_batch(items)
            onward: List[Tuple[float, Packet, int, str]] = []
            for t_fwd, outputs in zip(fwd_times, results):
                sim.now = t_fwd
                horizon = self._horizon(cap)
                if not outputs:
                    self.packets_lost += 1
                    continue
                if len(outputs) > 1:
                    for egress_port, out_packet in outputs:
                        self._defer_walk("wire", node, egress_port,
                                         out_packet, t_fwd)
                    continue
                egress_port, out_packet = outputs[0]
                out_link = self.topology.link_at(node, egress_port)
                if out_link is None:
                    self._drop(node, out_packet, "no_route",
                               port=egress_port)
                    continue
                if ((horizon is not None and t_fwd >= horizon)
                        or (until is not None and t_fwd > until)):
                    self._defer_walk("wire", node, egress_port, out_packet,
                                     t_fwd)
                    continue
                tx_time = out_packet.length * 8 / out_link.bandwidth_bps
                start = max(t_fwd,
                            device.port_busy_until.get(egress_port, 0.0))
                queue_wait = start - t_fwd
                if maxq is not None and queue_wait > maxq:
                    self._drop(node, out_packet, "queue_full",
                               port=egress_port, queue_wait_s=queue_wait)
                    continue
                device.port_busy_until[egress_port] = start + tx_time
                device.bytes_forwarded += out_packet.length
                if self.serialize_on_wire:
                    out_packet = self._wire_roundtrip(out_packet)
                arrival = ((start + tx_time - t_fwd)
                           + out_link.latency_s + t_fwd)
                dst = out_link.other(Endpoint(node, egress_port))
                if dst.node in self.hosts:
                    # Deliveries go through the queue so arrival-time
                    # order is preserved across burst members whose
                    # transit times inverted their emission order.
                    end = dst
                    pkt = out_packet
                    sim.schedule_at(arrival,
                                    lambda e=end, p=pkt: self._arrive(e, p))
                    continue
                onward.append((arrival, out_packet, dst.port, dst.node))
            if not onward:
                return
            onward.sort(key=lambda item: item[0])
            head = onward[0][3]
            if head in visited or any(item[3] != head for item in onward):
                # Split paths or a forwarding loop: lockstep order is no
                # longer provably the event order — hand every member to
                # the scheduler at its arrival time.
                for arrival, out_packet, port, nxt in onward:
                    end = Endpoint(nxt, port)
                    sim.schedule_at(
                        arrival,
                        lambda e=end, p=out_packet: self._arrive(e, p))
                return
            visited.add(head)
            times = [item[0] for item in onward]
            packets = [item[1] for item in onward]
            ports = [item[2] for item in onward]
            node = head

    # -- conveniences -----------------------------------------------------------------

    def host(self, name: str) -> Host:
        return self.hosts[name]

    def switch(self, name: str) -> SwitchDevice:
        return self.switches[name]

    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until)
        if self._metrics:
            self._g_simtime.labels(
            ).set(self.sim.now)
