"""Event-driven packet-level network simulator.

The simulator stands in for the paper's Mininet and hardware testbeds.
It moves packets between hosts and switches over links with propagation
latency, serialization delay, and FIFO output queues; switches run P4 IR
pipelines via :class:`~repro.p4.bmv2.Bmv2Switch`.

The latency model mirrors how a hardware pipeline behaves: per-switch
processing delay is ``stages * stage_delay`` — *independent of which
program runs as long as the stage count is unchanged* — plus store-and-
forward serialization of the actual packet bytes.  Hydra's telemetry
header therefore costs only its extra serialization bytes, which is why
Figure 12 finds no significant RTT difference.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..p4.bmv2 import (DEFAULT_LOG_CAPACITY, Bmv2Switch, BoundedLog,
                       DigestMessage)
from .packet import Packet
from .topology import Endpoint, Link, Topology

DEFAULT_STAGE_DELAY_S = 40e-9     # per-pipeline-stage latency
DEFAULT_STAGES = 12               # the Aether fabric-upf baseline


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)


class Simulator:
    """A minimal discrete-event scheduler."""

    def __init__(self):
        self._events: List[_Event] = []
        self._seq = itertools.count()
        self.now = 0.0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(
            self._events, _Event(self.now + delay, next(self._seq), callback)
        )

    def run(self, until: Optional[float] = None) -> None:
        while self._events:
            if until is not None and self._events[0].time > until:
                self.now = until
                return
            event = heapq.heappop(self._events)
            self.now = event.time
            event.callback()
        if until is not None:
            self.now = until

    @property
    def pending(self) -> int:
        return len(self._events)


class Host:
    """A host endpoint: sends packets, delivers receptions to callbacks.

    When no callback is registered, receptions accumulate in
    ``received``; with callbacks registered, each gets every packet
    (callbacks filter for the traffic they care about).
    """

    def __init__(self, name: str, network: "Network"):
        self.name = name
        self.network = network
        self.received: List[Tuple[float, Packet]] = []
        self.rx_callbacks: List[Callable[[float, Packet], None]] = []
        self.tx_count = 0
        self.rx_count = 0
        # NIC serialization queue: time at which the host's (single)
        # uplink finishes its current transmission — hosts get the same
        # FIFO treatment as switch output ports, so injecting above link
        # bandwidth queues instead of overlapping on the wire.
        self.nic_busy_until = 0.0

    def add_rx_callback(self,
                        callback: Callable[[float, Packet], None]) -> None:
        self.rx_callbacks.append(callback)

    def send(self, packet: Packet, delay: float = 0.0) -> None:
        """Transmit toward the attached switch after ``delay`` seconds."""
        self.tx_count += 1
        self.network.sim.schedule(
            delay, lambda: self.network.transmit_from_host(self.name, packet)
        )

    def deliver(self, packet: Packet) -> None:
        self.rx_count += 1
        now = self.network.sim.now
        if self.rx_callbacks:
            for callback in self.rx_callbacks:
                callback(now, packet)
        else:
            self.received.append((now, packet))


class SwitchDevice:
    """A switch in the simulation: a Bmv2 pipeline plus timing state."""

    def __init__(self, name: str, bmv2: Bmv2Switch, stages: int = DEFAULT_STAGES,
                 stage_delay_s: float = DEFAULT_STAGE_DELAY_S):
        self.name = name
        self.bmv2 = bmv2
        self.stages = stages
        self.stage_delay_s = stage_delay_s
        # Per output port: time at which the port finishes its current
        # transmission (FIFO serialization queue).
        self.port_busy_until: Dict[int, float] = {}
        self.bytes_forwarded = 0

    @property
    def processing_delay_s(self) -> float:
        return self.stages * self.stage_delay_s


class Network:
    """Hosts + switches wired per a :class:`Topology`, with a scheduler.

    With ``serialize_on_wire=True`` every packet is serialized to bits
    and re-parsed at each link traversal, proving that the header codecs
    carry the complete state — no information rides along in Python
    object identity.  (Host-side ``meta`` annotations survive: they
    stand in for payload contents, which this substrate models only as
    lengths.)
    """

    def __init__(self, topology: Topology,
                 switch_programs: Dict[str, Bmv2Switch],
                 stage_counts: Optional[Dict[str, int]] = None,
                 serialize_on_wire: bool = False,
                 report_capacity: int = DEFAULT_LOG_CAPACITY):
        self.topology = topology
        self.serialize_on_wire = serialize_on_wire
        self.sim = Simulator()
        self.hosts: Dict[str, Host] = {
            name: Host(name, self) for name in topology.hosts
        }
        self.switches: Dict[str, SwitchDevice] = {}
        stage_counts = stage_counts or {}
        for name in topology.switches:
            if name not in switch_programs:
                raise ValueError(f"no P4 program bound for switch {name!r}")
            self.switches[name] = SwitchDevice(
                name, switch_programs[name],
                stages=stage_counts.get(name, DEFAULT_STAGES),
            )
        # Bounded: long replays keep a ring of recent reports plus the
        # cumulative count (``reports.total``) instead of growing forever.
        self.reports: BoundedLog = BoundedLog(report_capacity)
        for device in self.switches.values():
            device.bmv2.on_digest(self.reports.append)
        self.packets_delivered = 0
        self.packets_lost = 0

    # -- transmission ------------------------------------------------------------

    def transmit_from_host(self, host_name: str, packet: Packet) -> None:
        attach = self.topology.host_attachment(host_name)
        link = self.topology.link_at(attach.node, attach.port)
        assert link is not None
        self._send_over(link, Endpoint(host_name, 0), packet)

    def _send_over(self, link: Link, src: Endpoint, packet: Packet) -> None:
        """Serialize + propagate a packet from ``src`` over ``link``."""
        dst = link.other(src)
        tx_time = packet.length * 8 / link.bandwidth_bps
        # Serialization queueing at the sending side.
        if src.node in self.switches:
            device = self.switches[src.node]
            start = max(self.sim.now, device.port_busy_until.get(src.port, 0.0))
            device.port_busy_until[src.port] = start + tx_time
            device.bytes_forwarded += packet.length
            ready = start + tx_time
        else:
            # Hosts serialize through their NIC FIFO exactly like a
            # switch output port: back-to-back sends queue behind the
            # in-flight transmission rather than bypassing it.
            host = self.hosts[src.node]
            start = max(self.sim.now, host.nic_busy_until)
            host.nic_busy_until = start + tx_time
            ready = start + tx_time
        if self.serialize_on_wire:
            packet = self._wire_roundtrip(packet)
        arrival_delay = (ready - self.sim.now) + link.latency_s
        self.sim.schedule(arrival_delay,
                          lambda: self._arrive(dst, packet))

    @staticmethod
    def _wire_roundtrip(packet: Packet) -> Packet:
        """Serialize every header to bits and re-parse it — the packet
        that arrives is rebuilt purely from its wire representation."""
        from .packet import Header

        rebuilt = []
        for header in packet.headers:
            if not header.valid:
                continue
            bits, _ = header.to_bits()
            rebuilt.append(Header.from_bits(header.htype, bits))
        out = Packet(headers=rebuilt, payload_len=packet.payload_len,
                     meta=dict(packet.meta))
        out.packet_id = packet.packet_id
        return out

    def _arrive(self, end: Endpoint, packet: Packet) -> None:
        if end.node in self.hosts:
            self.packets_delivered += 1
            self.hosts[end.node].deliver(packet)
            return
        device = self.switches[end.node]
        self.sim.schedule(
            device.processing_delay_s,
            lambda: self._forward(device, packet, end.port),
        )

    def _forward(self, device: SwitchDevice, packet: Packet,
                 ingress_port: int) -> None:
        outputs = device.bmv2.process(packet, ingress_port)
        if not outputs:
            self.packets_lost += 1
            return
        for egress_port, out_packet in outputs:
            link = self.topology.link_at(device.name, egress_port)
            if link is None:
                self.packets_lost += 1
                continue
            self._send_over(link, Endpoint(device.name, egress_port),
                            out_packet)

    # -- conveniences -----------------------------------------------------------------

    def host(self, name: str) -> Host:
        return self.hosts[name]

    def switch(self, name: str) -> SwitchDevice:
        return self.switches[name]

    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until)
