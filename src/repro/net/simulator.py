"""Event-driven packet-level network simulator.

The simulator stands in for the paper's Mininet and hardware testbeds.
It moves packets between hosts and switches over links with propagation
latency, serialization delay, and FIFO output queues; switches run P4 IR
pipelines via :class:`~repro.p4.bmv2.Bmv2Switch`.

The latency model mirrors how a hardware pipeline behaves: per-switch
processing delay is ``stages * stage_delay`` — *independent of which
program runs as long as the stage count is unchanged* — plus store-and-
forward serialization of the actual packet bytes.  Hydra's telemetry
header therefore costs only its extra serialization bytes, which is why
Figure 12 finds no significant RTT difference.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..obs import NULL_OBS, Observability
from ..p4.bmv2 import (DEFAULT_LOG_CAPACITY, Bmv2Switch, BoundedLog,
                       DigestMessage)
from .packet import Packet
from .topology import Endpoint, Link, Topology

DEFAULT_STAGE_DELAY_S = 40e-9     # per-pipeline-stage latency
DEFAULT_STAGES = 12               # the Aether fabric-upf baseline


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)


class Simulator:
    """A minimal discrete-event scheduler."""

    def __init__(self):
        self._events: List[_Event] = []
        self._seq = itertools.count()
        self.now = 0.0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(
            self._events, _Event(self.now + delay, next(self._seq), callback)
        )

    def run(self, until: Optional[float] = None) -> None:
        while self._events:
            if until is not None and self._events[0].time > until:
                self.now = until
                return
            event = heapq.heappop(self._events)
            self.now = event.time
            event.callback()
        if until is not None:
            self.now = until

    @property
    def pending(self) -> int:
        return len(self._events)


class Host:
    """A host endpoint: sends packets, delivers receptions to callbacks.

    When no callback is registered, receptions accumulate in
    ``received``; with callbacks registered, each gets every packet
    (callbacks filter for the traffic they care about).
    """

    def __init__(self, name: str, network: "Network"):
        self.name = name
        self.network = network
        self.received: List[Tuple[float, Packet]] = []
        self.rx_callbacks: List[Callable[[float, Packet], None]] = []
        self.tx_count = 0
        self.rx_count = 0
        # NIC serialization queue: time at which the host's (single)
        # uplink finishes its current transmission — hosts get the same
        # FIFO treatment as switch output ports, so injecting above link
        # bandwidth queues instead of overlapping on the wire.
        self.nic_busy_until = 0.0

    def add_rx_callback(self,
                        callback: Callable[[float, Packet], None]) -> None:
        self.rx_callbacks.append(callback)

    def send(self, packet: Packet, delay: float = 0.0) -> None:
        """Transmit toward the attached switch after ``delay`` seconds."""
        self.tx_count += 1
        self.network.sim.schedule(
            delay, lambda: self.network.transmit_from_host(self.name, packet)
        )

    def deliver(self, packet: Packet) -> None:
        self.rx_count += 1
        now = self.network.sim.now
        if self.rx_callbacks:
            for callback in self.rx_callbacks:
                callback(now, packet)
        else:
            self.received.append((now, packet))


class SwitchDevice:
    """A switch in the simulation: a Bmv2 pipeline plus timing state."""

    def __init__(self, name: str, bmv2: Bmv2Switch, stages: int = DEFAULT_STAGES,
                 stage_delay_s: float = DEFAULT_STAGE_DELAY_S):
        self.name = name
        self.bmv2 = bmv2
        self.stages = stages
        self.stage_delay_s = stage_delay_s
        # Per output port: time at which the port finishes its current
        # transmission (FIFO serialization queue).
        self.port_busy_until: Dict[int, float] = {}
        self.bytes_forwarded = 0

    @property
    def processing_delay_s(self) -> float:
        return self.stages * self.stage_delay_s


class Network:
    """Hosts + switches wired per a :class:`Topology`, with a scheduler.

    With ``serialize_on_wire=True`` every packet is serialized to bits
    and re-parsed at each link traversal, proving that the header codecs
    carry the complete state — no information rides along in Python
    object identity.  (Host-side ``meta`` annotations survive: they
    stand in for payload contents, which this substrate models only as
    lengths.)
    """

    def __init__(self, topology: Topology,
                 switch_programs: Dict[str, Bmv2Switch],
                 stage_counts: Optional[Dict[str, int]] = None,
                 serialize_on_wire: bool = False,
                 report_capacity: int = DEFAULT_LOG_CAPACITY,
                 obs: Optional[Observability] = None,
                 max_queue_delay_s: Optional[float] = None):
        self.topology = topology
        self.serialize_on_wire = serialize_on_wire
        self.sim = Simulator()
        self.obs = obs if obs is not None else NULL_OBS
        # A port/NIC whose FIFO backlog exceeds this wait is "full" and
        # drops the packet (reason=queue_full).  None = unbounded FIFO,
        # the historical behaviour.
        self.max_queue_delay_s = max_queue_delay_s
        self._trace = self.obs.tracer.live
        self._metrics = self.obs.registry.live
        if self._trace and self.obs.tracer.clock is None:
            # Trace events carry simulator time, not wall-clock time.
            self.obs.tracer.clock = lambda: self.sim.now
        if self._metrics:
            reg = self.obs.registry
            self._m_qdrops = reg.counter(
                "queue_drops_total",
                "packets dropped by the network layer",
                labels=("node", "reason"))
            self._m_delivered = reg.counter(
                "packets_delivered_total", "packets delivered to hosts",
                labels=("host",))
            self._g_simtime = reg.gauge(
                "sim_time_seconds", "current simulator time")
        self.hosts: Dict[str, Host] = {
            name: Host(name, self) for name in topology.hosts
        }
        self.switches: Dict[str, SwitchDevice] = {}
        stage_counts = stage_counts or {}
        for name in topology.switches:
            if name not in switch_programs:
                raise ValueError(f"no P4 program bound for switch {name!r}")
            self.switches[name] = SwitchDevice(
                name, switch_programs[name],
                stages=stage_counts.get(name, DEFAULT_STAGES),
            )
        # Bounded: long replays keep a ring of recent reports plus the
        # cumulative count (``reports.total``) instead of growing forever.
        self.reports: BoundedLog = BoundedLog(
            report_capacity, on_evict=self._on_report_evict)
        for device in self.switches.values():
            device.bmv2.on_digest(self.reports.append)
        self.packets_delivered = 0
        self.packets_lost = 0

    def _on_report_evict(self, count: int) -> None:
        if self._metrics:
            self.obs.registry.counter(
                "log_evictions_total",
                "entries evicted from bounded ring logs",
                labels=("log", "node")).labels("reports", "network").inc(count)

    # -- transmission ------------------------------------------------------------

    def transmit_from_host(self, host_name: str, packet: Packet) -> None:
        attach = self.topology.host_attachment(host_name)
        link = self.topology.link_at(attach.node, attach.port)
        assert link is not None
        self._send_over(link, Endpoint(host_name, 0), packet)

    def _send_over(self, link: Link, src: Endpoint, packet: Packet) -> None:
        """Serialize + propagate a packet from ``src`` over ``link``."""
        dst = link.other(src)
        tx_time = packet.length * 8 / link.bandwidth_bps
        # Serialization queueing at the sending side.
        if src.node in self.switches:
            device = self.switches[src.node]
            busy_until = device.port_busy_until.get(src.port, 0.0)
        else:
            # Hosts serialize through their NIC FIFO exactly like a
            # switch output port: back-to-back sends queue behind the
            # in-flight transmission rather than bypassing it.
            busy_until = self.hosts[src.node].nic_busy_until
        start = max(self.sim.now, busy_until)
        queue_wait = start - self.sim.now
        if (self.max_queue_delay_s is not None
                and queue_wait > self.max_queue_delay_s):
            self._drop(src.node, packet, "queue_full", port=src.port,
                       queue_wait_s=queue_wait)
            return
        if src.node in self.switches:
            device = self.switches[src.node]
            device.port_busy_until[src.port] = start + tx_time
            device.bytes_forwarded += packet.length
        else:
            self.hosts[src.node].nic_busy_until = start + tx_time
        ready = start + tx_time
        if self._trace:
            self.obs.tracer.emit(
                "enqueue", src.node, packet.packet_id, port=src.port,
                packet=packet, queue_wait_s=queue_wait)
            self.obs.tracer.emit(
                "link", src.node, packet.packet_id, port=src.port,
                packet=packet, dst=dst.node, dst_port=dst.port,
                tx_time_s=tx_time, latency_s=link.latency_s)
        if self.serialize_on_wire:
            packet = self._wire_roundtrip(packet)
        arrival_delay = (ready - self.sim.now) + link.latency_s
        self.sim.schedule(arrival_delay,
                          lambda: self._arrive(dst, packet))

    def _drop(self, node: str, packet: Packet, reason: str,
              port: Optional[int] = None, **detail: float) -> None:
        """Account a network-layer drop (queue overflow, routing hole)."""
        self.packets_lost += 1
        if self._metrics:
            self._m_qdrops.labels(node, reason).inc()
        if self._trace:
            self.obs.tracer.emit("drop", node, packet.packet_id, port=port,
                                 packet=packet, reason=reason, **detail)

    @staticmethod
    def _wire_roundtrip(packet: Packet) -> Packet:
        """Serialize every header to bits and re-parse it — the packet
        that arrives is rebuilt purely from its wire representation."""
        from .packet import Header

        rebuilt = []
        for header in packet.headers:
            if not header.valid:
                continue
            bits, _ = header.to_bits()
            rebuilt.append(Header.from_bits(header.htype, bits))
        out = Packet(headers=rebuilt, payload_len=packet.payload_len,
                     meta=dict(packet.meta))
        out.packet_id = packet.packet_id
        return out

    def _arrive(self, end: Endpoint, packet: Packet) -> None:
        if end.node in self.hosts:
            self.packets_delivered += 1
            if self._metrics:
                self._m_delivered.labels(end.node).inc()
            if self._trace:
                self.obs.tracer.emit("deliver", end.node, packet.packet_id,
                                     port=end.port, packet=packet)
            self.hosts[end.node].deliver(packet)
            return
        device = self.switches[end.node]
        self.sim.schedule(
            device.processing_delay_s,
            lambda: self._forward(device, packet, end.port),
        )

    def _forward(self, device: SwitchDevice, packet: Packet,
                 ingress_port: int) -> None:
        outputs = device.bmv2.process(packet, ingress_port)
        if not outputs:
            # The switch's own instrumentation emits the drop event
            # (reason=ttl|pipeline) — it knows the verdict; the network
            # only keeps the aggregate loss counter.
            self.packets_lost += 1
            return
        for egress_port, out_packet in outputs:
            link = self.topology.link_at(device.name, egress_port)
            if link is None:
                self._drop(device.name, out_packet, "no_route",
                           port=egress_port)
                continue
            self._send_over(link, Endpoint(device.name, egress_port),
                            out_packet)

    # -- conveniences -----------------------------------------------------------------

    def host(self, name: str) -> Host:
        return self.hosts[name]

    def switch(self, name: str) -> SwitchDevice:
        return self.switches[name]

    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until)
        if self._metrics:
            self._g_simtime.labels().set(self.sim.now)
