"""Network topologies: nodes, links, and standard fabric builders.

A :class:`Topology` is a port-level graph.  Switches carry a *role*
(``edge`` or ``core``), which is exactly the classification the Indus
compiler's topology file input provides (Section 4.1 of the paper);
additional per-switch attributes (``is_spine``, ``is_leaf``) feed the
control variables of the Table-1 checkers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

EDGE = "edge"
CORE = "core"


@dataclass(frozen=True)
class Endpoint:
    """One end of a link: a node name plus a port number."""

    node: str
    port: int


@dataclass
class Link:
    """A bidirectional link with symmetric latency and bandwidth."""

    a: Endpoint
    b: Endpoint
    latency_s: float = 1e-6          # propagation delay
    bandwidth_bps: float = 10e9      # serialization rate

    def other(self, end: Endpoint) -> Endpoint:
        if end == self.a:
            return self.b
        if end == self.b:
            return self.a
        raise ValueError(f"{end} is not on this link")


@dataclass
class SwitchSpec:
    """Static description of a switch in the topology."""

    name: str
    role: str = CORE          # 'edge' or 'core'
    is_spine: bool = False
    is_leaf: bool = False
    switch_id: int = 0
    # Ports that face hosts / the outside world (edge ports): where the
    # compiler-generated strip/inject tables act.
    edge_ports: List[int] = field(default_factory=list)


@dataclass
class HostSpec:
    """Static description of a host."""

    name: str
    ipv4: int = 0
    mac: int = 0


class Topology:
    """A port-level network graph with switch roles."""

    def __init__(self, name: str = "topology"):
        self.name = name
        self.switches: Dict[str, SwitchSpec] = {}
        self.hosts: Dict[str, HostSpec] = {}
        self.links: List[Link] = []
        self._port_map: Dict[Endpoint, Link] = {}
        self._next_switch_id = 1

    # -- construction ---------------------------------------------------------

    def add_switch(self, name: str, role: str = CORE, is_spine: bool = False,
                   is_leaf: bool = False) -> SwitchSpec:
        if name in self.switches or name in self.hosts:
            raise ValueError(f"duplicate node name {name!r}")
        spec = SwitchSpec(name=name, role=role, is_spine=is_spine,
                          is_leaf=is_leaf, switch_id=self._next_switch_id)
        self._next_switch_id += 1
        self.switches[name] = spec
        return spec

    def add_host(self, name: str, ipv4: int = 0,
                 mac: Optional[int] = None) -> HostSpec:
        if name in self.switches or name in self.hosts:
            raise ValueError(f"duplicate node name {name!r}")
        if mac is None:
            mac = 0x020000000000 + len(self.hosts) + 1
        spec = HostSpec(name=name, ipv4=ipv4, mac=mac)
        self.hosts[name] = spec
        return spec

    def add_link(self, node_a: str, port_a: int, node_b: str, port_b: int,
                 latency_s: float = 1e-6,
                 bandwidth_bps: float = 10e9) -> Link:
        end_a = Endpoint(node_a, port_a)
        end_b = Endpoint(node_b, port_b)
        for end in (end_a, end_b):
            if end.node not in self.switches and end.node not in self.hosts:
                raise ValueError(f"unknown node {end.node!r}")
            if end in self._port_map:
                raise ValueError(f"port already wired: {end}")
        link = Link(end_a, end_b, latency_s, bandwidth_bps)
        self.links.append(link)
        self._port_map[end_a] = link
        self._port_map[end_b] = link
        # Track edge ports: a switch port facing a host is an edge port.
        for near, far in ((end_a, end_b), (end_b, end_a)):
            if near.node in self.switches and far.node in self.hosts:
                spec = self.switches[near.node]
                if near.port not in spec.edge_ports:
                    spec.edge_ports.append(near.port)
        return link

    # -- queries ---------------------------------------------------------------------

    def peer(self, node: str, port: int) -> Optional[Endpoint]:
        """The endpoint wired to (node, port), or None if unwired."""
        link = self._port_map.get(Endpoint(node, port))
        if link is None:
            return None
        return link.other(Endpoint(node, port))

    def link_at(self, node: str, port: int) -> Optional[Link]:
        return self._port_map.get(Endpoint(node, port))

    def ports_of(self, node: str) -> List[int]:
        return sorted(end.port for end in self._port_map if end.node == node)

    def port_toward(self, node: str, neighbor: str) -> int:
        """The port on ``node`` wired toward ``neighbor``.

        Raises if the nodes are not directly linked.
        """
        for end, link in self._port_map.items():
            if end.node == node and link.other(end).node == neighbor:
                return end.port
        raise ValueError(f"{node!r} has no link toward {neighbor!r}")

    def ports_path(self, nodes: List[str]) -> List[int]:
        """Egress ports for a hop-by-hop node path.

        ``nodes`` is [first_switch, ..., last_switch, dest_host]; the
        result names, for each switch, the port toward the next node —
        exactly what a source-routing sender puts on the stack.
        """
        if len(nodes) < 2:
            raise ValueError("a path needs at least a switch and a target")
        return [self.port_toward(nodes[i], nodes[i + 1])
                for i in range(len(nodes) - 1)]

    def host_attachment(self, host: str) -> Endpoint:
        """The switch endpoint a host is attached to."""
        for end, link in self._port_map.items():
            if end.node == host:
                return link.other(end)
        raise ValueError(f"host {host!r} is not attached")

    def edge_switches(self) -> List[str]:
        return [n for n, s in self.switches.items() if s.role == EDGE]

    def core_switches(self) -> List[str]:
        return [n for n, s in self.switches.items() if s.role == CORE]

    def switch_id(self, name: str) -> int:
        return self.switches[name].switch_id


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------

def leaf_spine(num_leaves: int = 2, num_spines: int = 2,
               hosts_per_leaf: int = 2, link_latency_s: float = 1e-6,
               bandwidth_bps: float = 10e9) -> Topology:
    """The paper's leaf-spine fabric (Figure 8: 2 leaves x 2 spines).

    Port convention on each leaf: ports 1..H face hosts, ports
    H+1..H+num_spines face spines (spine j on port H+1+j).  On each
    spine, port i faces leaf i (1-based).
    """
    topo = Topology(name=f"leafspine-{num_leaves}x{num_spines}")
    leaves = []
    spines = []
    for i in range(num_leaves):
        leaves.append(topo.add_switch(f"leaf{i + 1}", role=EDGE, is_leaf=True))
    for j in range(num_spines):
        spines.append(topo.add_switch(f"spine{j + 1}", role=CORE,
                                      is_spine=True))
    host_index = 0
    for i, leaf in enumerate(leaves):
        for h in range(hosts_per_leaf):
            host_index += 1
            # 10.0.<leaf>.<host> addressing, mirroring Figure 8.
            ipv4 = (10 << 24) | ((i + 1) << 8) | (host_index & 0xFF)
            host = topo.add_host(f"h{host_index}", ipv4=ipv4)
            topo.add_link(leaf.name, h + 1, host.name, 0,
                          latency_s=link_latency_s,
                          bandwidth_bps=bandwidth_bps)
    for i, leaf in enumerate(leaves):
        for j, spine in enumerate(spines):
            topo.add_link(leaf.name, hosts_per_leaf + 1 + j,
                          spine.name, i + 1,
                          latency_s=link_latency_s,
                          bandwidth_bps=bandwidth_bps)
    return topo


def single_switch(num_hosts: int = 2) -> Topology:
    """One edge switch with N hosts — the smallest useful testbed."""
    topo = Topology(name="single")
    topo.add_switch("s1", role=EDGE, is_leaf=True)
    for h in range(num_hosts):
        ipv4 = (10 << 24) | (1 << 8) | (h + 1)
        topo.add_host(f"h{h + 1}", ipv4=ipv4)
        topo.add_link("s1", h + 1, f"h{h + 1}", 0)
    return topo


def linear(num_switches: int = 3, hosts_per_end: int = 1) -> Topology:
    """A chain s1 - s2 - ... - sN with hosts on both ends.

    Useful for waypointing / service-chain checkers: every interior
    switch is a core switch.
    """
    topo = Topology(name=f"linear-{num_switches}")
    for i in range(num_switches):
        role = EDGE if i in (0, num_switches - 1) else CORE
        topo.add_switch(f"s{i + 1}", role=role, is_leaf=(role == EDGE))
    host_index = 0
    for end_switch in ("s1", f"s{num_switches}"):
        for h in range(hosts_per_end):
            host_index += 1
            side = 1 if end_switch == "s1" else 2
            ipv4 = (10 << 24) | (side << 8) | host_index
            topo.add_host(f"h{host_index}", ipv4=ipv4)
            topo.add_link(end_switch, h + 1, f"h{host_index}", 0)
    # Inter-switch links on high ports: port 10 toward next, 11 toward prev.
    for i in range(num_switches - 1):
        topo.add_link(f"s{i + 1}", 10, f"s{i + 2}", 11)
    return topo


def fat_tree(k: int = 4) -> Topology:
    """A k-ary fat tree (k pods; k^2/4 core switches; 2 hosts per edge sw
    scaled down: we attach k/2 hosts per edge switch).

    Used by the valley-free generalization tests.
    """
    if k % 2:
        raise ValueError("fat tree arity must be even")
    topo = Topology(name=f"fattree-{k}")
    half = k // 2
    core = [topo.add_switch(f"core{i + 1}", role=CORE, is_spine=True)
            for i in range(half * half)]
    host_index = 0
    for pod in range(k):
        aggs = [topo.add_switch(f"agg{pod + 1}_{j + 1}", role=CORE)
                for j in range(half)]
        edges = [topo.add_switch(f"edge{pod + 1}_{j + 1}", role=EDGE,
                                 is_leaf=True) for j in range(half)]
        for j, edge in enumerate(edges):
            for h in range(half):
                host_index += 1
                ipv4 = (10 << 24) | ((pod + 1) << 16) | ((j + 1) << 8) | (h + 2)
                topo.add_host(f"h{host_index}", ipv4=ipv4)
                topo.add_link(edge.name, h + 1, f"h{host_index}", 0)
            for a, agg in enumerate(aggs):
                topo.add_link(edge.name, half + 1 + a, agg.name, j + 1)
        for a, agg in enumerate(aggs):
            for c in range(half):
                core_sw = core[a * half + c]
                topo.add_link(agg.name, half + 1 + c, core_sw.name, pod + 1)
    return topo
