"""Flow-level fast-forwarding support for the batched network mode.

The batched :class:`~repro.net.simulator.Network` skips per-hop events
for uncontended traffic by walking a packet's whole path eagerly (see
``Network._walk``) and, when the fabric is *stateless*, by caching the
resulting transit record per source template packet so repeat emissions
replay with pure float arithmetic — no pipeline execution at all.

This module holds the admission rule: a switch program may be skipped
on cache hits only when re-running it could not observe or produce
anything a skipped run would miss.  That means no register reads or
writes, no digests, and no extern calls — except externs explicitly
marked pure (``fn.pure = True``), which declares that the extern is a
deterministic function of the packet context with no side effects
(e.g. the fabric-upf ECMP flow hash).

The check is structural over the IR: it walks the ingress/egress
bodies and every action body (tables dispatch only into actions, so
that covers all reachable statements regardless of which entries are
installed).  Control-plane *table* changes do not affect the verdict —
they change which cached routes are valid, which the network handles
by flushing its flow cache on any config change — but they never make
a stateless program stateful.
"""

from __future__ import annotations

from typing import Iterable, List

from ..p4 import ir

#: Flow caches are bounded: traffic that never reuses template packets
#: (one-off pings, echo replies) would otherwise grow the cache without
#: bound.  Crossing the ceiling clears the cache — it is a cache.  The
#: ceiling is sized for paper-rate campus replay, where heavy-tailed
#: flow churn creates tens of thousands of (flow, size) templates per
#: simulated second.
FLOW_CACHE_MAX = 131_072


def extern_is_pure(stmt: ir.ExternCall) -> bool:
    """An extern may be fast-forwarded iff its fn self-declares purity."""
    return bool(getattr(stmt.fn, "pure", False))


def _stmts_stateless(stmts: Iterable[ir.P4Stmt]) -> bool:
    for stmt in stmts:
        if isinstance(stmt, (ir.RegisterRead, ir.RegisterWrite, ir.Digest)):
            return False
        if isinstance(stmt, ir.ExternCall) and not extern_is_pure(stmt):
            return False
        if isinstance(stmt, ir.IfStmt):
            if not _stmts_stateless(stmt.then_body):
                return False
            if not _stmts_stateless(stmt.else_body):
                return False
        elif isinstance(stmt, ir.ApplyTable):
            if not _stmts_stateless(stmt.hit_body):
                return False
            if not _stmts_stateless(stmt.miss_body):
                return False
    return True


def stateless_program(program: ir.P4Program) -> bool:
    """True iff every statement reachable in ``program`` is stateless.

    Walks ingress, egress, and *all* action bodies — actions are the
    only other statement containers, and which ones run depends on
    runtime table entries, so all of them must qualify.
    """
    bodies: List[List[ir.P4Stmt]] = [program.ingress, program.egress]
    bodies.extend(action.body for action in program.actions.values())
    return all(_stmts_stateless(body) for body in bodies)
