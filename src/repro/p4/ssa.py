"""SSA form over P4 IR statement bodies.

The optimizer and the generated-source engine both want facts the
PR-5 set-based dataflow cannot cheaply express: *which* definition a
read observes, whether two computations produce the same value, and
whether a branch condition is decided at compile time.  This module
lifts a statement body onto the :func:`repro.analysis.cfg.build_cfg`
graph (structured IR bodies are DAGs — branch arms rejoin, no loops)
and renames every tracked location into versioned :class:`SSAValue`
instances: one per definition, phi nodes where branch arms rejoin with
different versions, and def-use chains recorded as the renaming walks.

Tracked locations are the per-packet scalar state: ``meta.*`` fields
(widths from the program declaration) and the five standard-metadata
fields.  Header fields and validity bits stay opaque — their values
alias wire-observable state — so expressions touching them are never
value-numbered, though metadata reads *inside* such expressions still
substitute.

Three SSA-strength passes produce :class:`Proposals` — descriptions of
rewrites, not rewrites — so a caller responsible for several
linearizations of the same statement objects (the optimizer's
role × check-mode placements) can intersect proposals with
:func:`merge_proposals` and only apply what is sound in *every*
pipeline containing the statement:

* **copy propagation** (and the constant propagation it subsumes):
  a read whose reaching definition is a copy chain is retargeted at
  the deepest source whose version still reaches the read; a read
  whose reaching value is a known constant becomes that constant.
* **common-subexpression elimination**: pure expressions (constants and
  tracked reads only) are value-numbered over operand *versions*; a
  recomputation whose prior result is still addressable rewrites to a
  copy from it.
* **dead-branch pruning under known table defaults**: branch conditions
  are evaluated over the constant lattice.  Table applies transfer
  constants precisely: a default action with known immediate arguments
  is evaluated (its final writes become constants on the miss path)
  and merged against every action the table may run on a hit — so a
  variable every possible action leaves alone flows through an apply
  untouched, keeping copy/const facts alive across it.

Following :mod:`repro.analysis.dataflow`, the set of actions a table
"may run" is its declared ``actions`` list (plus the default); a table
declaring no actions may run anything in the program.  The codegen
engine re-specializes when the control plane violates that contract
(installing an undeclared action or swapping the default), so the
facts baked into generated source are invalidated with it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..analysis.cfg import CFG, build_cfg
from . import ir

#: Standard-metadata fields tracked as SSA variables, with their known
#: pipeline-entry constants (``None`` = unknown at entry: the harness
#: supplies the ingress port and packet length).
STD_ENTRY: Dict[str, Optional[int]] = {
    "standard_metadata.ingress_port": None,
    "standard_metadata.egress_spec": 0,
    "standard_metadata.egress_port": 0,
    "standard_metadata.packet_length": None,
    "standard_metadata.drop": 0,
}

#: Entry map for lifts that start mid-pipeline (a core placement's
#: egress runs after forwarding already wrote standard metadata).
UNKNOWN_STD: Dict[str, Optional[int]] = {var: None for var in STD_ENTRY}

#: Sentinel distinguishing "not written by this branch" from "written
#: to an unknown value" in action write summaries.
_FLOWS = object()


class StdBarrier:
    """Synthetic placement statement: code this lift cannot see runs
    here and may write any standard-metadata field (the forwarding
    pipeline between a checker's ingress and egress fragments).
    Checker metadata flows through — the linker namespaces it, so the
    forwarding program cannot touch it."""

    __slots__ = ()
    span = None

    def __repr__(self) -> str:
        return "StdBarrier()"


def synthetic_egress_entry() -> ir.AssignStmt:
    """The harness's between-pipelines effect (``egress_port =
    egress_spec``) as a statement, so ingress facts flow into egress
    when the two bodies are lifted as one."""
    return ir.AssignStmt("standard_metadata.egress_port",
                         ir.FieldRef("standard_metadata.egress_spec"))


@dataclass
class SSAInfo:
    """Static context for a lift: variable universe and table contracts."""

    meta_width: Dict[str, int]                    # "meta.x" -> width
    tables: Dict[str, ir.Table] = field(default_factory=dict)
    actions: Dict[str, ir.Action] = field(default_factory=dict)
    # Known default actions per table: (action, immediate args) or None.
    defaults: Dict[str, Optional[Tuple[str, Sequence[int]]]] = \
        field(default_factory=dict)

    def __post_init__(self) -> None:
        self._summaries: Dict[Tuple[int, Optional[Tuple[int, ...]]],
                              Dict[str, object]] = {}
        self._reads: Dict[int, Set[str]] = {}
        self._reads_stack: Set[int] = set()

    @classmethod
    def for_program(cls, program: ir.P4Program,
                    defaults: Optional[Dict[str, Optional[Tuple[str,
                                       Sequence[int]]]]] = None) -> "SSAInfo":
        return cls(
            meta_width={f"meta.{name}": width
                        for name, width in program.metadata},
            tables=dict(program.tables),
            actions=dict(program.actions),
            defaults=(dict(defaults) if defaults is not None else {
                name: table.default_action
                for name, table in program.tables.items()
            }),
        )

    @classmethod
    def for_compiled(cls, compiled) -> "SSAInfo":
        return cls(
            meta_width={f"meta.{name}": width
                        for name, width in compiled.metadata},
            tables=dict(compiled.tables),
            actions=dict(compiled.actions),
            defaults={name: table.default_action
                      for name, table in compiled.tables.items()},
        )

    # -- variable universe ---------------------------------------------------

    def tracked(self, path: str) -> bool:
        return path in self.meta_width or path in STD_ENTRY

    def entry_const(self, var: str) -> Optional[int]:
        if var in self.meta_width:
            return 0
        return STD_ENTRY[var]

    def write_mask(self, var: str) -> Optional[int]:
        """Mask applied when writing ``var`` (None: stored unmasked)."""
        width = self.meta_width.get(var)
        return None if width is None else (1 << width) - 1

    def universe(self) -> List[str]:
        return list(self.meta_width) + list(STD_ENTRY)

    # -- table contracts -----------------------------------------------------

    def hit_actions(self, table: ir.Table) -> List[str]:
        if table.actions:
            return [a for a in table.actions if a in self.actions]
        return list(self.actions)

    def action_summary(self, name: str,
                       args: Optional[Sequence[int]]) -> Dict[str, object]:
        """Final tracked writes of one action run.

        Maps each possibly-written variable to its final constant value
        when determinable, else ``None``.  Variables absent from the map
        flow through the action unchanged.  ``args`` binds ``param.*``
        reads when the immediates are known (the default-action case);
        ``None`` leaves them unknown (hit entries vary).
        """
        action = self.actions.get(name)
        if action is None:
            return {var: None for var in self.universe()}
        key = (id(action), tuple(args) if args is not None else None)
        cached = self._summaries.get(key)
        if cached is not None:
            return cached
        summary = self._action_summary(action, args)
        self._summaries[key] = summary
        return summary

    def _action_summary(self, action: ir.Action,
                        args: Optional[Sequence[int]]) -> Dict[str, object]:
        branchy = any(isinstance(s, (ir.IfStmt, ir.ApplyTable))
                      for s in action.body)
        if branchy:
            # May-writes only: every touched variable becomes unknown.
            out: Dict[str, object] = {}
            for stmt in ir.walk_stmts(action.body):
                for var in self._stmt_writes(stmt):
                    out[var] = None
            return out
        params: Dict[str, int] = {}
        if args is not None:
            params = {pname: value
                      for (pname, _), value in zip(action.params, args)}

        writes: Dict[str, object] = {}

        def lookup(path: str) -> Optional[int]:
            root, _, rest = path.partition(".")
            if root == "param" and args is not None:
                return params.get(rest)
            # Caller state and headers: unknown inside the summary.
            return None

        for stmt in action.body:
            if isinstance(stmt, ir.ExternCall):
                for var in self.universe():
                    writes[var] = None
                continue
            for var in self._stmt_writes(stmt):
                value: Optional[int] = None
                if isinstance(stmt, ir.AssignStmt):
                    value = eval_const(stmt.value, lookup)
                    mask = self.write_mask(var)
                    if value is not None and mask is not None:
                        value &= mask
                elif isinstance(stmt, ir.MarkToDrop):
                    value = 1
                writes[var] = value
        return writes

    def action_reads(self, name: str) -> Set[str]:
        """Tracked variables an action body may read (caller scope)."""
        action = self.actions.get(name)
        if action is None:
            return set(self.universe())
        cached = self._reads.get(id(action))
        if cached is not None:
            return cached
        if id(action) in self._reads_stack:
            return set(self.universe())  # action/table cycle: give up
        self._reads_stack.add(id(action))
        reads: Set[str] = set()
        for stmt in ir.walk_stmts(action.body):
            if isinstance(stmt, ir.ExternCall):
                reads.update(self.universe())
            for expr in _stmt_exprs(stmt):
                for node in ir.walk_exprs(expr):
                    if isinstance(node, ir.FieldRef) and \
                            self.tracked(node.path):
                        reads.add(node.path)
            if isinstance(stmt, ir.ApplyTable):
                table = self.tables.get(stmt.table)
                if table is None:
                    reads.update(self.universe())
                    continue
                for key in table.keys:
                    if self.tracked(key.path):
                        reads.add(key.path)
                for inner in self.hit_actions(table):
                    if inner != name:
                        reads.update(self.action_reads(inner))
                default = self.defaults.get(stmt.table)
                if default is not None and default[0] != name:
                    reads.update(self.action_reads(default[0]))
        self._reads_stack.discard(id(action))
        self._reads[id(action)] = reads
        return reads

    def _stmt_writes(self, stmt: ir.P4Stmt) -> List[str]:
        if isinstance(stmt, ir.AssignStmt) and self.tracked(stmt.dest):
            return [stmt.dest]
        if isinstance(stmt, ir.RegisterRead) and self.tracked(stmt.dest):
            return [stmt.dest]
        if isinstance(stmt, ir.MarkToDrop):
            return ["standard_metadata.drop"]
        if isinstance(stmt, ir.ExternCall):
            return self.universe()
        return []


def _stmt_exprs(stmt: ir.P4Stmt) -> List[ir.P4Expr]:
    """The expressions a statement evaluates (shallow; nested bodies of
    structured statements are separate CFG nodes)."""
    if isinstance(stmt, ir.AssignStmt):
        return [stmt.value]
    if isinstance(stmt, ir.IfStmt):
        return [stmt.cond]
    if isinstance(stmt, ir.RegisterRead):
        return [stmt.index]
    if isinstance(stmt, ir.RegisterWrite):
        return [stmt.index, stmt.value]
    if isinstance(stmt, ir.Digest):
        return list(stmt.fields)
    return []


# ---------------------------------------------------------------------------
# Constant evaluation (reference semantics, partial)
# ---------------------------------------------------------------------------

def eval_const(expr: ir.P4Expr, lookup) -> Optional[int]:
    """Evaluate ``expr`` under partial knowledge.

    ``lookup(path)`` supplies known values for field reads (None =
    unknown).  Returns the value the reference engine would compute, or
    None when any needed input is unknown.  Mirrors
    :meth:`Bmv2Switch._eval_bin` exactly, including short-circuit
    evaluation — ``0 && unknown`` is still 0.
    """
    if isinstance(expr, ir.Const):
        return expr.value & ((1 << expr.width) - 1)
    if isinstance(expr, ir.FieldRef):
        return lookup(expr.path)
    if isinstance(expr, ir.ValidRef):
        return None
    if isinstance(expr, ir.UnExpr):
        value = eval_const(expr.operand, lookup)
        if value is None:
            return None
        if expr.op == "!":
            return 0 if value else 1
        mask = (1 << ir.unexpr_width(expr)) - 1
        if expr.op == "~":
            return ~value & mask
        if expr.op == "-":
            return -value & mask
        return None
    if isinstance(expr, ir.BinExpr):
        op = expr.op
        left = eval_const(expr.left, lookup)
        right = eval_const(expr.right, lookup)
        if op == "&&":
            if left == 0 or right == 0:
                return 0
            if left is None or right is None:
                return None
            return 1
        if op == "||":
            if left is not None and left != 0:
                return 1
            if right is not None and right != 0 and left == 0:
                return 1
            if left is None or right is None:
                return None
            return 1 if (left or right) else 0
        if left is None or right is None:
            return None
        mask = (1 << expr.width) - 1
        if op == "+":
            return (left + right) & mask
        if op == "-":
            return (left - right) & mask
        if op == "*":
            return (left * right) & mask
        if op == "/":
            return (left // right) & mask if right else 0
        if op == "%":
            return (left % right) & mask if right else 0
        if op == "&":
            return (left & right) & mask
        if op == "|":
            return (left | right) & mask
        if op == "^":
            return (left ^ right) & mask
        if op == "<<":
            return (left << (right % expr.width)) & mask
        if op == ">>":
            return (left >> (right % expr.width)) & mask
        if op == "==":
            return 1 if left == right else 0
        if op == "!=":
            return 1 if left != right else 0
        if op == "<":
            return 1 if left < right else 0
        if op == "<=":
            return 1 if left <= right else 0
        if op == ">":
            return 1 if left > right else 0
        if op == ">=":
            return 1 if left >= right else 0
        if op == "absdiff":
            diff = (left - right) & mask
            return min(diff, (-diff) & mask)
        if op == "min":
            return min(left, right)
        if op == "max":
            return max(left, right)
        return None
    return None


# ---------------------------------------------------------------------------
# SSA values and per-op classes
# ---------------------------------------------------------------------------

class SSAOp:
    """Base class for SSA definition operations."""

    __slots__ = ()


class EntryOp(SSAOp):
    """The pipeline-entry value of a variable (zero for metadata)."""

    __slots__ = ("var",)

    def __init__(self, var: str):
        self.var = var

    def __repr__(self) -> str:
        return f"entry({self.var})"


class ExprOp(SSAOp):
    """Definition by an :class:`~repro.p4.ir.AssignStmt` expression."""

    __slots__ = ("stmt", "expr")

    def __init__(self, stmt: ir.P4Stmt, expr: ir.P4Expr):
        self.stmt = stmt
        self.expr = expr

    def __repr__(self) -> str:
        return f"expr({self.expr})"


class CopyOp(SSAOp):
    """Definition by a width-preserving copy of another SSA value."""

    __slots__ = ("stmt", "source")

    def __init__(self, stmt: ir.P4Stmt, source: "SSAValue"):
        self.stmt = stmt
        self.source = source

    def __repr__(self) -> str:
        return f"copy({self.source})"


class PhiOp(SSAOp):
    """A rejoin merge: one incoming value per predecessor edge."""

    __slots__ = ("var", "node", "incoming")

    def __init__(self, var: str, node: int,
                 incoming: List[Tuple[int, "SSAValue"]]):
        self.var = var
        self.node = node
        self.incoming = incoming

    def __repr__(self) -> str:
        srcs = ", ".join(str(v) for _, v in self.incoming)
        return f"phi({srcs})"


class TableOp(SSAOp):
    """Definition by a table apply (some action may write the variable)."""

    __slots__ = ("stmt", "table")

    def __init__(self, stmt: ir.P4Stmt, table: str):
        self.stmt = stmt
        self.table = table

    def __repr__(self) -> str:
        return f"table({self.table})"


class RegReadOp(SSAOp):
    """Definition by a data-plane register read."""

    __slots__ = ("stmt",)

    def __init__(self, stmt: ir.P4Stmt):
        self.stmt = stmt

    def __repr__(self) -> str:
        return "regread"


class ExternOp(SSAOp):
    """Clobber by an extern call (raw context access)."""

    __slots__ = ("stmt",)

    def __init__(self, stmt: ir.P4Stmt):
        self.stmt = stmt

    def __repr__(self) -> str:
        return "extern"


class SSAValue:
    """One version of one tracked variable.

    ``uses`` records every consumer: ``(consumer, node_index)`` where
    the consumer is the reading statement or a :class:`PhiOp` merging
    this value.  ``const`` is the constant-lattice evaluation (None =
    unknown).  ``def_stmt`` is the defining statement when removing it
    would remove the definition (None for entry values and phis).
    """

    __slots__ = ("var", "version", "op", "const", "uses", "def_stmt",
                 "def_node")

    def __init__(self, var: str, version: int, op: SSAOp,
                 const: Optional[int] = None,
                 def_stmt: Optional[ir.P4Stmt] = None,
                 def_node: int = -1):
        self.var = var
        self.version = version
        self.op = op
        self.const = const
        self.uses: List[Tuple[object, int]] = []
        self.def_stmt = def_stmt
        self.def_node = def_node

    def __repr__(self) -> str:
        return f"{self.var}#{self.version}"


# ---------------------------------------------------------------------------
# Lifting
# ---------------------------------------------------------------------------

class SSAFunction:
    """SSA form of one linearized statement body.

    ``envs[n]`` maps each tracked variable to the version reaching the
    *entry* of CFG node ``n``; ``phis[n]`` holds the phi values created
    at node ``n``; ``values`` lists every SSA value in creation order.
    """

    def __init__(self, cfg: CFG, info: SSAInfo,
                 std_entry: Optional[Dict[str, Optional[int]]] = None):
        self.cfg = cfg
        self.info = info
        self.std_entry = STD_ENTRY if std_entry is None else std_entry
        self.values: List[SSAValue] = []
        self.envs: Dict[int, Dict[str, SSAValue]] = {}
        self.phis: Dict[int, Dict[str, SSAValue]] = {}
        self._versions: Dict[str, int] = {}

    # -- construction --------------------------------------------------------

    @classmethod
    def lift(cls, stmts: Sequence[ir.P4Stmt], info: SSAInfo,
             std_entry: Optional[Dict[str, Optional[int]]] = None
             ) -> "SSAFunction":
        fn = cls(build_cfg(stmts), info, std_entry)
        fn._rename()
        return fn

    def _entry_const(self, var: str) -> Optional[int]:
        if var in self.info.meta_width:
            return self.info.entry_const(var)
        return self.std_entry.get(var)

    def _new_value(self, var: str, op: SSAOp, const: Optional[int],
                   def_stmt: Optional[ir.P4Stmt], node: int) -> SSAValue:
        version = self._versions.get(var, 0)
        self._versions[var] = version + 1
        value = SSAValue(var, version, op, const, def_stmt, node)
        self.values.append(value)
        return value

    def _topo_order(self) -> List[int]:
        cfg = self.cfg
        indegree = {n.index: len(n.preds) for n in cfg.nodes}
        order: List[int] = []
        ready = [cfg.entry]
        while ready:
            idx = ready.pop()
            order.append(idx)
            for succ in cfg.nodes[idx].succs:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        return order

    def _rename(self) -> None:
        info = self.info
        cfg = self.cfg
        out_envs: Dict[int, Dict[str, SSAValue]] = {}
        for idx in self._topo_order():
            node = cfg.nodes[idx]
            if idx == cfg.entry:
                env = {var: self._new_value(var, EntryOp(var),
                                            self._entry_const(var), None, idx)
                       for var in info.universe()}
                self.envs[idx] = env
                out_envs[idx] = env
                continue
            env = self._merge(idx, [out_envs[p] for p in node.preds])
            self.envs[idx] = env
            out_envs[idx] = (self._transfer(node, env)
                             if node.stmt is not None else env)

    def _merge(self, idx: int,
               pred_envs: List[Dict[str, SSAValue]]) -> Dict[str, SSAValue]:
        if len(pred_envs) == 1:
            return pred_envs[0]
        env: Dict[str, SSAValue] = {}
        node_phis: Dict[str, SSAValue] = {}
        preds = self.cfg.nodes[idx].preds
        for var in self.info.universe():
            incoming = [penv[var] for penv in pred_envs]
            first = incoming[0]
            if all(v is first for v in incoming[1:]):
                env[var] = first
                continue
            op = PhiOp(var, idx, list(zip(preds, incoming)))
            consts = {v.const for v in incoming}
            const = consts.pop() if (len(consts) == 1
                                     and None not in consts) else None
            phi = self._new_value(var, op, const, None, idx)
            for value in dict.fromkeys(incoming):
                value.uses.append((op, idx))
            env[var] = phi
            node_phis[var] = phi
        if node_phis:
            self.phis[idx] = node_phis
        return env

    # -- per-statement transfer ----------------------------------------------

    def _record_uses(self, exprs: Sequence[ir.P4Expr],
                     env: Dict[str, SSAValue], stmt: ir.P4Stmt,
                     idx: int) -> None:
        seen: Set[str] = set()
        for expr in exprs:
            for node in ir.walk_exprs(expr):
                if isinstance(node, ir.FieldRef) and \
                        self.info.tracked(node.path) and \
                        node.path not in seen:
                    seen.add(node.path)
                    env[node.path].uses.append((stmt, idx))

    def _lookup(self, env: Dict[str, SSAValue]):
        def lookup(path: str) -> Optional[int]:
            value = env.get(path)
            return value.const if value is not None else None
        return lookup

    def _transfer(self, node, env: Dict[str, SSAValue]
                  ) -> Dict[str, SSAValue]:
        stmt = node.stmt
        idx = node.index
        info = self.info
        if isinstance(stmt, ir.AssignStmt):
            self._record_uses([stmt.value], env, stmt, idx)
            if not info.tracked(stmt.dest):
                return env
            out = dict(env)
            const = eval_const(stmt.value, self._lookup(env))
            mask = info.write_mask(stmt.dest)
            if const is not None and mask is not None:
                const &= mask
            op: SSAOp
            if self._is_copy(stmt.dest, stmt.value):
                op = CopyOp(stmt, env[stmt.value.path])
            else:
                op = ExprOp(stmt, stmt.value)
            out[stmt.dest] = self._new_value(stmt.dest, op, const, stmt, idx)
            return out
        if isinstance(stmt, ir.IfStmt):
            self._record_uses([stmt.cond], env, stmt, idx)
            return env
        if isinstance(stmt, ir.ApplyTable):
            return self._transfer_apply(stmt, env, idx)
        if isinstance(stmt, ir.RegisterRead):
            self._record_uses([stmt.index], env, stmt, idx)
            if not info.tracked(stmt.dest):
                return env
            out = dict(env)
            out[stmt.dest] = self._new_value(
                stmt.dest, RegReadOp(stmt), None, stmt, idx)
            return out
        if isinstance(stmt, ir.RegisterWrite):
            self._record_uses([stmt.index, stmt.value], env, stmt, idx)
            return env
        if isinstance(stmt, ir.Digest):
            self._record_uses(stmt.fields, env, stmt, idx)
            return env
        if isinstance(stmt, ir.MarkToDrop):
            out = dict(env)
            var = "standard_metadata.drop"
            out[var] = self._new_value(var, ExprOp(stmt, ir.Const(1, 1)),
                                       1, stmt, idx)
            return out
        if isinstance(stmt, ir.ExternCall):
            # Raw context access: reads and may write everything tracked.
            for var in info.universe():
                env[var].uses.append((stmt, idx))
            out = {}
            op = ExternOp(stmt)
            for var in info.universe():
                out[var] = self._new_value(var, op, None, None, idx)
            return out
        if isinstance(stmt, StdBarrier):
            out = dict(env)
            op = ExternOp(stmt)
            for var in STD_ENTRY:
                env[var].uses.append((stmt, idx))
                out[var] = self._new_value(var, op, None, None, idx)
            return out
        # SetValid / SetInvalid / PopSourceRoute: header-only effects.
        return env

    def _is_copy(self, dest: str, value: ir.P4Expr) -> bool:
        """A copy must preserve the stored value bit-for-bit: the write
        mask of ``dest`` may not truncate anything the source can hold."""
        if not isinstance(value, ir.FieldRef) or \
                not self.info.tracked(value.path):
            return False
        dest_width = self.info.meta_width.get(dest)
        if dest_width is None:
            return True  # standard metadata stores unmasked
        src_width = self.info.meta_width.get(value.path)
        if src_width is None:
            return False  # std -> meta: source is unbounded
        return src_width <= dest_width

    def _transfer_apply(self, stmt: ir.ApplyTable,
                        env: Dict[str, SSAValue], idx: int
                        ) -> Dict[str, SSAValue]:
        info = self.info
        table = info.tables.get(stmt.table)
        if table is None:
            # Unknown table: reference semantics raise at runtime; stay
            # maximally conservative here.
            out = {}
            op = TableOp(stmt, stmt.table)
            for var in info.universe():
                out[var] = self._new_value(var, op, None, None, idx)
            return out
        default = info.defaults.get(stmt.table)
        reads: Set[str] = {key.path for key in table.keys
                           if info.tracked(key.path)}
        for name in info.hit_actions(table):
            reads |= info.action_reads(name)
        if default is not None:
            reads |= info.action_reads(default[0])
        for var in reads:
            env[var].uses.append((stmt, idx))
        summaries = [info.action_summary(name, None)
                     for name in info.hit_actions(table)]
        summaries.append({} if default is None
                         else info.action_summary(default[0], default[1]))
        touched: Set[str] = set()
        for summary in summaries:
            touched.update(summary)
        if not touched:
            return env
        out = dict(env)
        for var in touched & set(info.universe()):
            incoming = env[var]
            results = [summary.get(var, _FLOWS) for summary in summaries]
            if all(r is _FLOWS for r in results):
                continue
            consts = {incoming.const if r is _FLOWS else r for r in results}
            const = consts.pop() if (len(consts) == 1
                                     and None not in consts) else None
            out[var] = self._new_value(var, TableOp(stmt, stmt.table),
                                       const, None, idx)
        return out


# ---------------------------------------------------------------------------
# Proposals: rewrites described, not applied
# ---------------------------------------------------------------------------

#: A proposed replacement for one variable's reads in one statement.
Replacement = Tuple[str, Union[int, str]]  # ("const", v) | ("field", path)


@dataclass
class Proposals:
    """Rewrites one lift considers sound, keyed by statement identity.

    ``visited`` lists every statement the lift saw; a caller holding
    several linearizations applies a proposal only when every
    linearization containing the statement proposed the same thing
    (:func:`merge_proposals`).
    """

    subst: Dict[Tuple[int, str], Replacement] = field(default_factory=dict)
    cse: Dict[int, str] = field(default_factory=dict)
    branches: Dict[int, bool] = field(default_factory=dict)
    dead: Set[int] = field(default_factory=set)
    visited: Set[int] = field(default_factory=set)

    def count(self) -> int:
        return (len(self.subst) + len(self.cse) + len(self.branches)
                + len(self.dead))


def _vn(expr: ir.P4Expr, env: Dict[str, SSAValue],
        info: SSAInfo) -> Optional[Tuple]:
    """Value-number a pure expression; None when impure."""
    if isinstance(expr, ir.Const):
        return ("c", expr.value & ((1 << expr.width) - 1))
    if isinstance(expr, ir.FieldRef):
        if not info.tracked(expr.path):
            return None
        return ("v", id(env[expr.path]))
    if isinstance(expr, ir.UnExpr):
        operand = _vn(expr.operand, env, info)
        if operand is None:
            return None
        width = 1 if expr.op == "!" else ir.unexpr_width(expr)
        return ("u", expr.op, width, operand)
    if isinstance(expr, ir.BinExpr):
        left = _vn(expr.left, env, info)
        right = _vn(expr.right, env, info)
        if left is None or right is None:
            return None
        return ("b", expr.op, expr.width, left, right)
    return None


def propose(fn: SSAFunction) -> Proposals:
    """Run the SSA passes over one lift and describe the rewrites."""
    info = fn.info
    props = Proposals()
    protected: Set[int] = set()
    cse_table: Dict[Tuple, Tuple[SSAValue, str]] = {}

    def source_width(var: str) -> int:
        width = info.meta_width.get(var)
        return width if width is not None else 1 << 30

    for node in fn.cfg.nodes:
        stmt = node.stmt
        if stmt is None:
            continue
        props.visited.add(id(stmt))
        env = fn.envs[node.index]

        # -- copy / constant propagation into this statement's reads --
        if not isinstance(stmt, ir.ApplyTable):  # table keys are decls
            for var in _stmt_read_vars(stmt, info):
                value = env[var]
                if value.const is not None:
                    props.subst[(id(stmt), var)] = ("const", value.const)
                    continue
                best: Optional[SSAValue] = None
                cursor = value
                while isinstance(cursor.op, CopyOp):
                    source = cursor.op.source
                    if env.get(source.var) is source:
                        best = source
                    cursor = source
                if best is not None and best.var != var:
                    props.subst[(id(stmt), var)] = ("field", best.var)
                    if best.def_stmt is not None:
                        protected.add(id(best.def_stmt))

        # -- dead-branch pruning --
        if isinstance(stmt, ir.IfStmt):
            verdict = eval_const(stmt.cond, fn._lookup(env))
            if verdict is not None:
                props.branches[id(stmt)] = bool(verdict)

        # -- CSE over pure recomputations --
        if isinstance(stmt, ir.AssignStmt) and info.tracked(stmt.dest) \
                and not isinstance(stmt.value, (ir.Const, ir.FieldRef)):
            key = _vn(stmt.value, env, info)
            if key is not None:
                prior = cse_table.get(key)
                if prior is None:
                    defined = _def_of(fn, node.index, stmt.dest)
                    if defined is not None:
                        cse_table[key] = (defined, stmt.dest)
                else:
                    value, var = prior
                    if env.get(var) is value and \
                            _cse_width_ok(info, var, stmt.dest):
                        props.cse[id(stmt)] = var
                        if value.def_stmt is not None:
                            protected.add(id(value.def_stmt))

    # -- dead definitions (meta only; std state is harness-observable) --
    for value in fn.values:
        if value.def_stmt is None or value.uses:
            continue
        if value.var not in info.meta_width:
            continue
        if isinstance(value.op, (ExprOp, CopyOp, RegReadOp)):
            props.dead.add(id(value.def_stmt))
    props.dead -= protected
    # A CSE rewrite reads a value the dead pass may have just condemned
    # in the same round; never remove a definition something rewrote to.
    for sid in props.cse:
        props.dead.discard(sid)
    return props


def _def_of(fn: SSAFunction, idx: int, var: str) -> Optional[SSAValue]:
    """The value ``var`` holds immediately *after* node ``idx``."""
    for value in fn.values:
        if value.def_node == idx and value.var == var:
            return value
    return None


def _cse_width_ok(info: SSAInfo, source_var: str, dest_var: str) -> bool:
    """``dest = source`` must reproduce ``dest = E`` exactly: the source
    either holds the unmasked value (std) or was masked at least as
    wide as the destination will mask again."""
    src_width = info.meta_width.get(source_var)
    if src_width is None:
        return True  # std source stores the raw evaluation
    dest_width = info.meta_width.get(dest_var)
    if dest_width is None:
        return False  # std dest needs the raw value; source was masked
    return src_width >= dest_width


def _stmt_read_vars(stmt: ir.P4Stmt, info: SSAInfo) -> List[str]:
    exprs = _stmt_exprs(stmt)
    out: List[str] = []
    seen: Set[str] = set()
    for expr in exprs:
        for node in ir.walk_exprs(expr):
            if isinstance(node, ir.FieldRef) and info.tracked(node.path) \
                    and node.path not in seen:
                seen.add(node.path)
                out.append(node.path)
    return out


# ---------------------------------------------------------------------------
# Merging across linearizations and applying
# ---------------------------------------------------------------------------

def merge_proposals(all_props: Sequence[Proposals]) -> Proposals:
    """Keep only proposals every containing linearization agrees on."""
    if len(all_props) == 1:
        return all_props[0]
    merged = Proposals()
    for props in all_props:
        merged.visited |= props.visited

    def containing(sid: int) -> List[Proposals]:
        return [p for p in all_props if sid in p.visited]

    keys = set()
    for props in all_props:
        keys.update(props.subst)
    for key in keys:
        holders = containing(key[0])
        values = [p.subst.get(key) for p in holders]
        if values and all(v is not None and v == values[0] for v in values):
            merged.subst[key] = values[0]

    sids = set()
    for props in all_props:
        sids.update(props.cse)
    for sid in sids:
        holders = containing(sid)
        values = [p.cse.get(sid) for p in holders]
        if values and all(v is not None and v == values[0] for v in values):
            merged.cse[sid] = values[0]

    sids = set()
    for props in all_props:
        sids.update(props.branches)
    for sid in sids:
        holders = containing(sid)
        values = [p.branches.get(sid) for p in holders]
        if values and all(v is not None and v == values[0] for v in values):
            merged.branches[sid] = values[0]

    dead = set()
    for props in all_props:
        dead.update(props.dead)
    for sid in dead:
        if all(sid in p.dead for p in containing(sid)):
            merged.dead.add(sid)
    return merged


def _replacement_expr(repl: Replacement) -> ir.P4Expr:
    kind, payload = repl
    if kind == "const":
        value = int(payload)  # type: ignore[arg-type]
        return ir.Const(value, max(value.bit_length(), 1))
    return ir.FieldRef(str(payload))


def _rewrite_expr(expr: ir.P4Expr,
                  mapping: Dict[str, ir.P4Expr]) -> ir.P4Expr:
    if isinstance(expr, ir.FieldRef):
        return mapping.get(expr.path, expr)
    if isinstance(expr, ir.UnExpr):
        operand = _rewrite_expr(expr.operand, mapping)
        if operand is expr.operand:
            return expr
        return ir.UnExpr(expr.op, operand, expr.width, span=expr.span)
    if isinstance(expr, ir.BinExpr):
        left = _rewrite_expr(expr.left, mapping)
        right = _rewrite_expr(expr.right, mapping)
        if left is expr.left and right is expr.right:
            return expr
        return ir.BinExpr(expr.op, left, right, expr.width, span=expr.span)
    return expr


def apply_proposals(bodies: Sequence[List[ir.P4Stmt]],
                    props: Proposals) -> Dict[str, int]:
    """Rewrite statement bodies in place per ``props``.

    Returns counts per pass (``copyprop``/``cse``/``branch``/``dce``).
    Bodies are mutated via slice assignment so every other list or
    wrapper referencing the same statement objects observes the change.
    """
    counts = {"copyprop": 0, "cse": 0, "branch": 0, "dce": 0}
    by_stmt: Dict[int, Dict[str, ir.P4Expr]] = {}
    for (sid, var), repl in props.subst.items():
        by_stmt.setdefault(sid, {})[var] = _replacement_expr(repl)

    def rewrite(body: List[ir.P4Stmt]) -> None:
        out: List[ir.P4Stmt] = []
        for stmt in body:
            sid = id(stmt)
            if isinstance(stmt, ir.IfStmt):
                verdict = props.branches.get(sid)
                if verdict is not None:
                    arm = stmt.then_body if verdict else stmt.else_body
                    rewrite(arm)
                    out.extend(arm)
                    counts["branch"] += 1
                    continue
                rewrite(stmt.then_body)
                rewrite(stmt.else_body)
            elif isinstance(stmt, ir.ApplyTable):
                rewrite(stmt.hit_body)
                rewrite(stmt.miss_body)
            if sid in props.dead:
                counts["dce"] += 1
                continue
            if sid in props.cse and isinstance(stmt, ir.AssignStmt):
                stmt.value = ir.FieldRef(props.cse[sid])
                counts["cse"] += 1
            else:
                mapping = by_stmt.get(sid)
                if mapping:
                    _rewrite_stmt(stmt, mapping, counts)
            out.append(stmt)
        body[:] = out

    for body in bodies:
        rewrite(body)
    return counts


def _rewrite_stmt(stmt: ir.P4Stmt, mapping: Dict[str, ir.P4Expr],
                  counts: Dict[str, int]) -> None:
    changed = False
    if isinstance(stmt, ir.AssignStmt):
        new = _rewrite_expr(stmt.value, mapping)
        changed = new is not stmt.value
        stmt.value = new
    elif isinstance(stmt, ir.IfStmt):
        new = _rewrite_expr(stmt.cond, mapping)
        changed = new is not stmt.cond
        stmt.cond = new
    elif isinstance(stmt, ir.RegisterRead):
        new = _rewrite_expr(stmt.index, mapping)
        changed = new is not stmt.index
        stmt.index = new
    elif isinstance(stmt, ir.RegisterWrite):
        index = _rewrite_expr(stmt.index, mapping)
        value = _rewrite_expr(stmt.value, mapping)
        changed = index is not stmt.index or value is not stmt.value
        stmt.index = index
        stmt.value = value
    elif isinstance(stmt, ir.Digest):
        fields = [_rewrite_expr(e, mapping) for e in stmt.fields]
        changed = any(n is not o for n, o in zip(fields, stmt.fields))
        stmt.fields = fields
    if changed:
        counts["copyprop"] += 1


# ---------------------------------------------------------------------------
# Convenience: whole-pipeline optimization for the codegen engine
# ---------------------------------------------------------------------------

def optimize_pipeline(program: ir.P4Program,
                      defaults: Optional[Dict[str, Optional[Tuple[str,
                                         Sequence[int]]]]] = None,
                      rounds: int = 8) -> Dict[str, int]:
    """SSA-optimize a linked program's ingress+egress bodies in place.

    The two bodies are lifted as one linearization with the harness's
    inter-pipeline effect (``egress_port = egress_spec``) spliced
    between them, so ingress facts carry into egress.  ``defaults``
    overrides the per-table known default actions (the codegen engine
    passes the switch's live runtime defaults).  Iterates to a
    fixpoint, bounded by ``rounds``.
    """
    info = SSAInfo.for_program(program, defaults)
    totals = {"copyprop": 0, "cse": 0, "branch": 0, "dce": 0}
    for _ in range(rounds):
        view = (list(program.ingress) + [synthetic_egress_entry()]
                + list(program.egress))
        fn = SSAFunction.lift(view, info)
        counts = apply_proposals([program.ingress, program.egress],
                                 propose(fn))
        for key, value in counts.items():
            totals[key] += value
        if not any(counts.values()):
            break
    return totals


__all__ = [
    "CopyOp", "EntryOp", "ExprOp", "ExternOp", "PhiOp", "Proposals",
    "RegReadOp", "SSAFunction", "SSAInfo", "SSAOp", "SSAValue",
    "StdBarrier", "TableOp", "UNKNOWN_STD", "apply_proposals", "eval_const",
    "merge_proposals", "optimize_pipeline", "propose",
    "synthetic_egress_entry",
]
