"""Render the P4 IR to P4-16 (v1model-style) source text.

The rendered text is what Table 1's "P4 Output" lines-of-code column
counts.  Rendering is faithful to the IR the behavioral model executes:
same headers, same tables, same statement structure.
"""

from __future__ import annotations

from typing import List

from . import ir


class _Writer:
    def __init__(self):
        self.lines: List[str] = []
        self.depth = 0

    def line(self, text: str = "") -> None:
        if text:
            self.lines.append("    " * self.depth + text)
        else:
            self.lines.append("")

    def open(self, text: str) -> None:
        self.line(text + " {")
        self.depth += 1

    def close(self, suffix: str = "") -> None:
        self.depth -= 1
        self.line("}" + suffix)

    def render(self) -> str:
        return "\n".join(self.lines) + "\n"


def _type_name(width: int) -> str:
    return "bool" if width == 1 else f"bit<{width}>"


def format_expr(expr: ir.P4Expr) -> str:
    if isinstance(expr, ir.Const):
        return str(expr.value) if expr.width >= 32 else f"{expr.width}w{expr.value}"
    if isinstance(expr, ir.FieldRef):
        return expr.path
    if isinstance(expr, ir.ValidRef):
        return f"hdr.{expr.header}.isValid()"
    if isinstance(expr, ir.UnExpr):
        return f"{expr.op}({format_expr(expr.operand)})"
    if isinstance(expr, ir.BinExpr):
        left, right = format_expr(expr.left), format_expr(expr.right)
        if expr.op == "absdiff":
            return f"abs_diff({left}, {right})"
        if expr.op in ("min", "max"):
            return f"{expr.op}({left}, {right})"
        return f"({left} {expr.op} {right})"
    raise ValueError(f"cannot format {expr!r}")


def _format_stmts(w: _Writer, stmts: List[ir.P4Stmt]) -> None:
    for stmt in stmts:
        _format_stmt(w, stmt)


def _format_stmt(w: _Writer, stmt: ir.P4Stmt) -> None:
    if isinstance(stmt, ir.AssignStmt):
        w.line(f"{stmt.dest} = {format_expr(stmt.value)};")
    elif isinstance(stmt, ir.IfStmt):
        w.open(f"if ({format_expr(stmt.cond)})")
        _format_stmts(w, stmt.then_body)
        if stmt.else_body:
            w.close(" else {")
            w.depth += 1
            _format_stmts(w, stmt.else_body)
            w.close()
        else:
            w.close()
    elif isinstance(stmt, ir.ApplyTable):
        if stmt.hit_body or stmt.miss_body:
            w.open(f"if ({stmt.table}.apply().hit)")
            _format_stmts(w, stmt.hit_body)
            if stmt.miss_body:
                w.close(" else {")
                w.depth += 1
                _format_stmts(w, stmt.miss_body)
                w.close()
            else:
                w.close()
        else:
            w.line(f"{stmt.table}.apply();")
    elif isinstance(stmt, ir.RegisterRead):
        w.line(f"{stmt.register}.read({stmt.dest}, "
               f"{format_expr(stmt.index)});")
    elif isinstance(stmt, ir.RegisterWrite):
        w.line(f"{stmt.register}.write({format_expr(stmt.index)}, "
               f"{format_expr(stmt.value)});")
    elif isinstance(stmt, ir.Digest):
        fields = ", ".join(format_expr(e) for e in stmt.fields)
        w.line(f"digest<{stmt.name}_t>(1, {{ {fields} }});")
    elif isinstance(stmt, ir.SetValid):
        w.line(f"hdr.{stmt.header}.setValid();")
    elif isinstance(stmt, ir.SetInvalid):
        w.line(f"hdr.{stmt.header}.setInvalid();")
    elif isinstance(stmt, ir.MarkToDrop):
        w.line("mark_to_drop(standard_metadata);")
    elif isinstance(stmt, ir.PopSourceRoute):
        w.line("pop_source_route();")
    elif isinstance(stmt, ir.ExternCall):
        w.line(f"{stmt.name}();")
    else:
        raise ValueError(f"cannot format {stmt!r}")


def render(program: ir.P4Program) -> str:
    """Render ``program`` to P4-16 source text."""
    w = _Writer()
    w.line(f"// Program: {program.name} (generated)")
    w.line("#include <core.p4>")
    w.line("#include <v1model.p4>")
    w.line()

    # Header type definitions.
    for htype in program.header_types():
        w.open(f"header {htype.name}_t")
        for fdef in htype.fields:
            w.line(f"bit<{fdef.width}> {fdef.name};")
        w.close()
        w.line()

    # The headers struct, following deparse order.
    binds = program.bind_types()
    w.open("struct headers_t")
    order = program.emit_order or list(binds)
    for bind in order:
        htype = binds.get(bind)
        if htype is not None:
            w.line(f"{htype.name}_t {bind};")
    w.close()
    w.line()

    # User metadata.
    w.open("struct metadata_t")
    for name, width in program.metadata:
        w.line(f"{_type_name(width)} {name};")
    w.close()
    w.line()

    _render_parser(w, program)
    _render_pipeline(w, program, "Ingress", program.ingress)
    _render_pipeline(w, program, "Egress", program.egress)
    _render_deparser(w, program)
    return w.render()


def _render_parser(w: _Writer, program: ir.P4Program) -> None:
    w.open(f"parser {program.name}Parser(packet_in pkt, out headers_t hdr, "
           "inout metadata_t meta, inout standard_metadata_t standard_metadata)")
    for state in program.parser.states:
        w.open(f"state {state.name}" if state.name != program.parser.start
               else "state start")
        for ex in state.extracts:
            if isinstance(ex, ir.Extract):
                w.line(f"pkt.extract(hdr.{ex.bind});")
            else:
                w.line(f"pkt.extract(hdr.{ex.bind}.next);  "
                       f"// stack, max depth {ex.max_depth}")
        keyed = [t for t in state.transitions if t.field_path is not None]
        default = next((t for t in state.transitions if t.field_path is None),
                       None)
        if keyed:
            w.open(f"transition select({keyed[0].field_path})")
            for tr in keyed:
                w.line(f"{tr.value}: {tr.next_state};")
            w.line(f"default: {default.next_state if default else 'accept'};")
            w.close()
        else:
            w.line(f"transition {default.next_state if default else 'accept'};")
        w.close()
    w.close()
    w.line()


def _render_pipeline(w: _Writer, program: ir.P4Program, stage: str,
                     body: List[ir.P4Stmt]) -> None:
    w.open(f"control {program.name}{stage}(inout headers_t hdr, "
           "inout metadata_t meta, "
           "inout standard_metadata_t standard_metadata)")
    # Registers are instantiated in the control that uses them; we declare
    # all of them in ingress for simplicity of the rendered text.
    if stage == "Ingress":
        for reg in program.registers:
            w.line(f"register<bit<{reg.width}>>({reg.size}) {reg.name};")
        if program.registers:
            w.line()
    used_tables = {
        s.table for s in ir.walk_stmts(body) if isinstance(s, ir.ApplyTable)
    }
    used_actions = set()
    for tname in sorted(used_tables):
        used_actions.update(program.tables[tname].actions)
        default = program.tables[tname].default_action
        if default:
            used_actions.add(default[0])
    for aname in sorted(used_actions):
        action = program.actions[aname]
        params = ", ".join(f"bit<{width}> {pname}"
                           for pname, width in action.params)
        w.open(f"action {aname}({params})")
        _format_stmts(w, _strip_param_prefix(action.body))
        w.close()
        w.line()
    for tname in sorted(used_tables):
        table = program.tables[tname]
        w.open(f"table {tname}")
        w.open("key =")
        for key in table.keys:
            w.line(f"{key.path}: {key.kind.value};")
        w.close()
        w.open("actions =")
        for aname in table.actions:
            w.line(f"{aname};")
        w.close()
        if table.default_action:
            dname, dargs = table.default_action
            rendered = ", ".join(str(a) for a in dargs)
            w.line(f"default_action = {dname}({rendered});")
        w.line(f"size = {table.size};")
        w.close()
        w.line()
    w.open("apply")
    _format_stmts(w, body)
    w.close()
    w.close()
    w.line()


def _strip_param_prefix(stmts: List[ir.P4Stmt]) -> List[ir.P4Stmt]:
    """Render ``param.x`` as plain ``x`` inside action bodies."""

    def fix_expr(expr: ir.P4Expr) -> ir.P4Expr:
        if isinstance(expr, ir.FieldRef) and expr.path.startswith("param."):
            return ir.FieldRef(expr.path[len("param."):])
        if isinstance(expr, ir.UnExpr):
            return ir.UnExpr(expr.op, fix_expr(expr.operand), expr.width)
        if isinstance(expr, ir.BinExpr):
            return ir.BinExpr(expr.op, fix_expr(expr.left),
                              fix_expr(expr.right), expr.width)
        return expr

    def fix_stmt(stmt: ir.P4Stmt) -> ir.P4Stmt:
        if isinstance(stmt, ir.AssignStmt):
            return ir.AssignStmt(stmt.dest, fix_expr(stmt.value))
        if isinstance(stmt, ir.IfStmt):
            return ir.IfStmt(fix_expr(stmt.cond),
                             [fix_stmt(s) for s in stmt.then_body],
                             [fix_stmt(s) for s in stmt.else_body])
        return stmt

    return [fix_stmt(s) for s in stmts]


def _render_deparser(w: _Writer, program: ir.P4Program) -> None:
    w.open(f"control {program.name}Deparser(packet_out pkt, in headers_t hdr)")
    w.open("apply")
    for bind in (program.emit_order or list(program.bind_types())):
        w.line(f"pkt.emit(hdr.{bind});")
    w.close()
    w.close()


def count_loc(text: str) -> int:
    """Count non-blank, non-comment-only lines (the paper's LoC metric)."""
    count = 0
    for line in text.splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("//"):
            count += 1
    return count
