"""Fast-path execution engine: a P4 program compiled to Python closures.

The reference engine in :mod:`repro.p4.bmv2` walks the IR tree for every
packet: ``isinstance`` dispatch per statement, string ``partition`` per
field access, and a linear scan over installed entries per table apply.
This module performs all of that work *once*, when a switch is built:

* **Expressions and statements** lower to nested closures.  Field paths
  are resolved at compile time to direct dict accessors (``ctx.hdr``,
  ``ctx.meta``) with width masks precomputed; operators specialize to
  one closure each.
* **The parser** becomes a precomputed state table: per-state extract
  closures plus a compiled transition function, with blank header
  instances stamped out from per-type value templates instead of being
  rebuilt field-by-field for every packet.
* **Actions** compile once per program; installed entries bind the
  compiled body to a prepared parameter dict ("bound closures with
  parameter slots"), so applying a hit costs one dict swap.
* **Tables** are indexed at entry-install time (:class:`_TableIndex`):
  exact-match tables become hash lookups keyed on the value tuple, LPM
  tables become per-prefix-length buckets probed longest-first, and
  ternary/range/priority tables stay a small list pre-sorted in win
  order.  Entry insert/delete invalidates only that table's index,
  which is rebuilt lazily on the next apply.

The engine is selected per switch: ``Bmv2Switch(program, engine="fast")``
(the default) or ``engine="interp"`` for the reference tree-walker.  The
two must be observationally identical — byte-identical output packets,
digests, and register state; ``tests/test_engine_differential.py`` holds
that line over the full properties corpus and fuzz-generated programs.

Control-plane state must be mutated through the ``Bmv2Switch`` API
(``insert_entry`` / ``delete_entry`` / ``clear_table``); mutating
``switch.entries`` lists directly bypasses index invalidation.
"""

from __future__ import annotations

import bisect
import operator
import time
from collections import deque

_CMP_OPS = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..net.packet import Header, Packet
from . import ir
from .bmv2 import (DROP_PORT, DigestMessage, P4RuntimeError, PacketContext,
                   StandardMetadata, _pop_source_route, drop_reason)

# Compiled callables: expressions return ints, statements return None,
# writers take (ctx, value).
ExprFn = Callable[[Any], int]
StmtFn = Callable[[Any], None]
WriteFn = Callable[[Any, int], None]

_EMPTY_ARGS: Dict[str, int] = {}

_LPM_WIDTH = 32  # the reference engine's fixed LPM key width

# Range/ternary tables normally fall back to a priority-ordered scan.
# When at least this many entries are installed and one key column is
# "bucketable" for most of them (an EXACT component, or a degenerate
# ``[v, v]`` range), the index hashes entries on that column instead:
# lookups then cost O(entries sharing the column value), not O(all
# entries) — the property that keeps per-packet checker work flat as
# an Aether-style control dict grows to millions of subscriber rows.
_RBUCKET_MIN = 64


class _FastContext(PacketContext):
    """Per-packet state for the fast engine.

    Subclasses :class:`PacketContext` so extern functions keep the full
    duck-typed API (``read``/``write``/``is_valid``/``meta``), but skips
    the parent's per-packet template construction — the engine hands in
    a pre-copied metadata dict and the shared width map.
    """

    def __init__(self, program: ir.P4Program, packet: Packet,
                 standard: StandardMetadata, meta: Dict[str, int],
                 meta_width: Dict[str, int]):
        self.program = program
        self.packet = packet
        self.standard = standard
        self.hdr = {}
        self.tail = []
        self.meta = meta
        self._meta_width = meta_width
        self.action_args = _EMPTY_ARGS


def _noop(ctx) -> None:
    return None


def _chain(fns: Sequence[StmtFn]) -> StmtFn:
    """Fuse a statement sequence into one callable (hot-path dispatch)."""
    if not fns:
        return _noop
    if len(fns) == 1:
        return fns[0]
    if len(fns) == 2:
        first, second = fns

        def chain2(ctx, _a=first, _b=second):
            _a(ctx)
            _b(ctx)

        return chain2
    fns = tuple(fns)

    def chain_n(ctx, _fns=fns):
        for fn in _fns:
            fn(ctx)

    return chain_n


def _writable_binds(program: ir.P4Program, binds: Dict[str, Any]) -> set:
    """Bind names whose Header instance the program may mutate.

    Anything else can be pre-bound to a single shared invalid blank
    instead of a fresh one per packet: reads of an invalid header yield
    0 without touching values, and deparse skips invalid headers, so an
    unwritten blank never escapes or changes.
    """
    out: set = set()
    bodies = [program.ingress, program.egress]
    bodies.extend(action.body for action in program.actions.values())
    for body in bodies:
        for stmt in ir.walk_stmts(body):
            if isinstance(stmt, (ir.AssignStmt, ir.RegisterRead)):
                if stmt.dest.startswith("hdr."):
                    out.add(stmt.dest.split(".")[1])
            elif isinstance(stmt, (ir.SetValid, ir.SetInvalid)):
                out.add(stmt.header)
            elif isinstance(stmt, ir.PopSourceRoute):
                out.update(b for b in binds if b.startswith("srcRoute"))
            elif isinstance(stmt, ir.ExternCall):
                return set(binds)  # raw context access; assume the worst
    return out


def _raiser(exc: BaseException) -> Callable:
    """A callable that raises ``exc`` when invoked (any call shape).

    Used for constructs whose reference semantics fail at *execution*
    time (unknown paths, unknown tables, bad ops): compiling them must
    not fail early, or dead code would change program acceptance.
    """

    def raise_(*_args, **_kwargs):
        raise exc

    return raise_


class _TableIndex:
    """Indexed lookup over one table's installed entries.

    Win order matches the reference scan exactly: longest LPM prefix
    first (when the table has an LPM key), then higher numeric priority,
    then earliest insertion.
    """

    def __init__(self, engine: "FastPath", name: str, table: ir.Table):
        self.engine = engine
        self.name = name
        self.table = table
        kinds = [k.kind for k in table.keys]
        self._kinds = kinds
        lpm_indexes = [i for i, k in enumerate(kinds)
                       if k is ir.MatchKind.LPM]
        self._lpm_index: Optional[int] = (
            lpm_indexes[0] if lpm_indexes else None)
        if all(k is ir.MatchKind.EXACT for k in kinds):
            self._mode = "exact"
        elif len(lpm_indexes) == 1 and all(
                k is ir.MatchKind.EXACT for i, k in enumerate(kinds)
                if i != lpm_indexes[0]):
            self._mode = "lpm"
        else:
            self._mode = "scan"
        self._dirty = True
        self._exact_map: Dict[Tuple, Callable] = {}
        self._exact_dups = False
        self._buckets: Dict[int, Dict[Tuple, Callable]] = {}
        self._plens: List[int] = []
        self._masks: Dict[int, int] = {}
        self._lpm_dups = False
        # Scan layouts carry (rank, entry, bound) triples; rank is the
        # reference sort key, so merged iteration preserves win order.
        self._scan: List[Tuple[Tuple, ir.TableEntry, Callable]] = []
        self._rb_col: Optional[int] = None
        self._rb_buckets: Dict[Any,
                               List[Tuple[Tuple, ir.TableEntry,
                                          Callable]]] = {}
        self._rb_residual: List[Tuple[Tuple, ir.TableEntry, Callable]] = []
        # Monotonic insertion counter: folded entries get rank indexes
        # strictly above every rank already in the index, so ties keep
        # resolving to the earliest insertion even across deletions.
        self._rank_counter = 0
        # Default action: bound lazily and re-bound whenever this
        # switch's default-action tuple changes identity (the control
        # plane may swap it at any time via set_default_action).
        self._default_src: Any = _raiser  # sentinel, never a valid value
        self._default_bound: Optional[Callable] = None

    def invalidate(self) -> None:
        self._dirty = True

    def _sort_key(self, index: int, entry: ir.TableEntry) -> Tuple:
        if self._lpm_index is not None:
            plen = entry.match[self._lpm_index][1]  # type: ignore[index]
        else:
            plen = 0
        return (-plen, -entry.priority, index)

    def _bucket_key(self, col: int, spec: Any) -> Optional[Any]:
        """The hash key a spec contributes on a bucketable column, or
        None when the spec needs the residual scan (wide range)."""
        kind = self._kinds[col]
        if kind is ir.MatchKind.EXACT:
            return spec
        lo, hi = spec  # RANGE
        return lo if lo == hi else None

    def _pick_bucket_column(self, triples: List[Tuple]) -> Optional[int]:
        """The key column to hash scan entries on, if one qualifies:
        most entries degenerate on it, with enough distinct values that
        buckets stay small.  Ties favor the leftmost column."""
        n = len(triples)
        if n < _RBUCKET_MIN:
            return None
        best: Optional[Tuple[int, int]] = None
        for col, kind in enumerate(self._kinds):
            if kind not in (ir.MatchKind.EXACT, ir.MatchKind.RANGE):
                continue
            keys = set()
            bucketable = 0
            for _, entry, _bound in triples:
                key = self._bucket_key(col, entry.match[col])
                if key is not None:
                    bucketable += 1
                    keys.add(key)
            if bucketable * 2 < n or len(keys) < 8:
                continue
            if best is None or len(keys) > best[0]:
                best = (len(keys), col)
        return None if best is None else best[1]

    def _rebuild(self) -> None:
        entries = self.engine.switch.entries[self.name]
        ranked = sorted(
            ((self._sort_key(i, e), e) for i, e in enumerate(entries)),
            key=operator.itemgetter(0),
        )
        bind = self.engine._bind_action
        if self._mode == "exact":
            table_map: Dict[Tuple, Callable] = {}
            dups = False
            for _, entry in ranked:
                key = tuple(entry.match)
                if key in table_map:
                    dups = True
                else:
                    table_map[key] = bind(entry.action, entry.args)
            self._exact_map = table_map
            self._exact_dups = dups
        elif self._mode == "lpm":
            lpm_i = self._lpm_index
            buckets: Dict[int, Dict[Tuple, Callable]] = {}
            masks: Dict[int, int] = {}
            dups = False
            for _, entry in ranked:
                prefix, plen = entry.match[lpm_i]  # type: ignore[index,misc]
                mask = ((((1 << plen) - 1) << (_LPM_WIDTH - plen))
                        if plen else 0)
                masks[plen] = mask
                probe = list(entry.match)
                probe[lpm_i] = prefix & mask
                probe_t = tuple(probe)
                bucket = buckets.setdefault(plen, {})
                if probe_t in bucket:
                    dups = True
                else:
                    bucket[probe_t] = bind(entry.action, entry.args)
            self._buckets = buckets
            self._masks = masks
            self._plens = sorted(buckets, reverse=True)
            self._lpm_dups = dups
        else:
            triples = [(rank, entry, bind(entry.action, entry.args))
                       for rank, entry in ranked]
            self._rb_col = self._pick_bucket_column(triples)
            if self._rb_col is None:
                self._scan = triples
                self._rb_buckets = {}
                self._rb_residual = []
            else:
                col = self._rb_col
                rb_buckets: Dict[Any, List[Tuple]] = {}
                residual: List[Tuple] = []
                for triple in triples:
                    key = self._bucket_key(col, triple[1].match[col])
                    if key is None:
                        residual.append(triple)
                    else:
                        rb_buckets.setdefault(key, []).append(triple)
                self._rb_buckets = rb_buckets
                self._rb_residual = residual
                self._scan = []
        self._rank_counter = len(entries)
        self._dirty = False

    def lookup(self, key_values: Tuple[int, ...]) -> Optional[Callable]:
        """The bound action runner of the winning entry, or None."""
        if self._dirty:
            self._rebuild()
        if self._mode == "exact":
            return self._exact_map.get(key_values)
        if self._mode == "lpm":
            lpm_i = self._lpm_index
            value = key_values[lpm_i]
            for plen in self._plens:
                probe = list(key_values)
                probe[lpm_i] = value & self._masks[plen]
                bound = self._buckets[plen].get(tuple(probe))
                if bound is not None:
                    return bound
            return None
        table = self.table
        if self._rb_col is not None:
            best_rank: Optional[Tuple] = None
            best_bound: Optional[Callable] = None
            bucket = self._rb_buckets.get(key_values[self._rb_col])
            if bucket is not None:
                for rank, entry, bound in bucket:
                    if entry.matches(table, key_values):
                        best_rank = rank
                        best_bound = bound
                        break
            # Residual entries (wide ranges on the bucket column) are
            # rank-sorted: the first match below the bucket winner's
            # rank outranks it; past that rank the bucket winner holds.
            for rank, entry, bound in self._rb_residual:
                if best_rank is not None and rank > best_rank:
                    break
                if entry.matches(table, key_values):
                    return bound
            return best_bound
        for _rank, entry, bound in self._scan:
            if entry.matches(table, key_values):
                return bound
        return None

    # -- incremental maintenance (bulk control-plane path) -----------------

    def fold_inserts(self, new_entries: Sequence[ir.TableEntry]) -> bool:
        """Fold entries just appended to the switch's entry list into a
        built index without a rebuild.

        Returns False when the fold cannot preserve the reference win
        order (the caller must invalidate); a dirty index absorbs the
        entries at its next rebuild and reports success.  A partially
        applied fold that bails is safe — the caller's invalidate
        discards the folded state.
        """
        if self._dirty:
            return True
        bind = self.engine._bind_action
        if self._mode == "exact":
            table_map = self._exact_map
            for entry in new_entries:
                key = tuple(entry.match)
                if key in table_map:
                    return False  # duplicate key: rank decides, rebuild
                table_map[key] = bind(entry.action, entry.args)
            return True
        if self._mode == "lpm":
            lpm_i = self._lpm_index
            for entry in new_entries:
                prefix, plen = entry.match[lpm_i]  # type: ignore[index,misc]
                mask = ((((1 << plen) - 1) << (_LPM_WIDTH - plen))
                        if plen else 0)
                probe = list(entry.match)
                probe[lpm_i] = prefix & mask
                probe_t = tuple(probe)
                bucket = self._buckets.get(plen)
                if bucket is None:
                    bucket = self._buckets[plen] = {}
                    self._masks[plen] = mask
                    self._plens = sorted(self._buckets, reverse=True)
                if probe_t in bucket:
                    return False
                bucket[probe_t] = bind(entry.action, entry.args)
            return True
        for entry in new_entries:
            rank = self._sort_key(self._rank_counter, entry)
            self._rank_counter += 1
            triple = (rank, entry, bind(entry.action, entry.args))
            if self._rb_col is not None:
                key = self._bucket_key(self._rb_col,
                                       entry.match[self._rb_col])
                target = (self._rb_residual if key is None
                          else self._rb_buckets.setdefault(key, []))
            else:
                target = self._scan
            bisect.insort(target, triple)  # unique ranks: entries never
            #                                reach the tuple comparison
        if self._rb_col is None and len(self._scan) >= _RBUCKET_MIN * 4:
            # A plain scan this large may now qualify for range
            # buckets; re-choose the layout at the next lookup.
            self._dirty = True
        return True

    def fold_deletes(self, removed: Sequence[ir.TableEntry]) -> bool:
        """Drop entries just removed from the switch's entry list from a
        built index.  Same contract as :meth:`fold_inserts`."""
        if self._dirty:
            return True
        if self._mode == "exact":
            if self._exact_dups:
                return False  # a shadowed duplicate may resurface
            for entry in removed:
                self._exact_map.pop(tuple(entry.match), None)
            return True
        if self._mode == "lpm":
            if self._lpm_dups:
                return False
            lpm_i = self._lpm_index
            for entry in removed:
                prefix, plen = entry.match[lpm_i]  # type: ignore[index,misc]
                mask = self._masks.get(plen, 0)
                probe = list(entry.match)
                probe[lpm_i] = prefix & mask
                bucket = self._buckets.get(plen)
                if bucket is not None:
                    bucket.pop(tuple(probe), None)
                    if not bucket:
                        del self._buckets[plen]
                        self._masks.pop(plen, None)
                        self._plens = sorted(self._buckets, reverse=True)
            return True
        if self._rb_col is not None:
            col = self._rb_col
            residual_ids = set()
            for entry in removed:
                key = self._bucket_key(col, entry.match[col])
                if key is None:
                    residual_ids.add(id(entry))
                    continue
                bucket = self._rb_buckets.get(key)
                if bucket is not None:
                    bucket[:] = [t for t in bucket if t[1] is not entry]
                    if not bucket:
                        del self._rb_buckets[key]
            if residual_ids:
                self._rb_residual = [t for t in self._rb_residual
                                     if id(t[1]) not in residual_ids]
        else:
            ids = {id(e) for e in removed}
            self._scan = [t for t in self._scan if id(t[1]) not in ids]
        return True

    def default_bound(self) -> Optional[Callable]:
        current = self.engine.switch.default_actions[self.name]
        if current is None:
            return None
        if current is not self._default_src:
            self._default_src = current
            action, args = current
            self._default_bound = self.engine._bind_action(action, args)
        return self._default_bound


class FastPath:
    """One program compiled to closures, executing for one switch.

    Observability is specialized at compile time: when the switch's
    ``obs`` handle is live the compiler emits instrumented apply/digest
    closures and swaps :meth:`process` for the metered variant; when it
    is the null handle (the default) the generated closures are exactly
    the uninstrumented ones — the hot path carries zero residue.
    """

    def __init__(self, program: ir.P4Program, switch):
        self.program = program
        self.switch = switch
        self._obs = switch.obs
        self._instrumented = self._obs.live
        if self._instrumented:
            # Shadow the plain method with the metered one (instance
            # attribute wins over the class method at lookup time).
            self.process = self._process_obs
        self._meta_template: Dict[str, int] = {
            name: 0 for name, _ in program.metadata
        }
        self._meta_width: Dict[str, int] = dict(program.metadata)
        self._bind_types = program.bind_types()
        # Blank-header pre-binding: the reference engine binds every name
        # to an invalid blank before parsing.  Binds the program provably
        # never writes get ONE shared blank (created here, reused for
        # every packet); writable binds get a (htype, template) recipe
        # for stamping out a fresh blank per packet.
        writable = _writable_binds(program, self._bind_types)
        self._bind_templates: List[Tuple[str, Optional[Header], Any,
                                         Dict[str, int]]] = []
        for bind, htype in self._bind_types.items():
            template = {f.name: 0 for f in htype.fields}
            shared: Optional[Header] = None
            if bind not in writable:
                shared = Header.__new__(Header)
                object.__setattr__(shared, "htype", htype)
                object.__setattr__(shared, "values", dict(template))
                object.__setattr__(shared, "valid", False)
            self._bind_templates.append((bind, shared, htype, template))
        self._emit_order: List[str] = list(program.emit_order)
        self.tables: Dict[str, _TableIndex] = {
            name: _TableIndex(self, name, table)
            for name, table in program.tables.items()
        }
        # Compiled action bodies (per program, shared by all entries).
        self._action_bodies: Dict[str, StmtFn] = {}
        self._action_params: Dict[str, List[str]] = {}
        for name, action in program.actions.items():
            self._action_bodies[name] = self._compile_body(action.body)
            self._action_params[name] = [p for p, _ in action.params]
        self._states = {
            state.name: self._compile_state(state)
            for state in program.parser.states
        }
        self._start = program.parser.start
        self._ingress = self._compile_body(program.ingress)
        self._egress = self._compile_body(program.egress)

    # -- control-plane hooks -------------------------------------------------

    def invalidate_table(self, name: str) -> None:
        index = self.tables.get(name)
        if index is not None:
            index.invalidate()

    def entries_inserted(self, name: str, new_entries) -> None:
        """Bulk-insert hook: fold appended entries into the live index
        instead of discarding it (falls back to invalidation when the
        fold cannot preserve win order)."""
        index = self.tables.get(name)
        if index is not None and not index.fold_inserts(new_entries):
            index.invalidate()

    def entries_removed(self, name: str, removed) -> None:
        """Bulk-delete hook: drop removed entries from the live index."""
        index = self.tables.get(name)
        if index is not None and not index.fold_deletes(removed):
            index.invalidate()

    # -- field access compilation --------------------------------------------

    def _compile_read(self, path: str) -> ExprFn:
        root, _, rest = path.partition(".")
        if root == "hdr":
            bind, _, fname = rest.partition(".")

            def read_hdr(ctx, _bind=bind, _fname=fname):
                header = ctx.hdr.get(_bind)
                if header is None or not header.valid:
                    return 0  # reading an invalid header yields 0
                return header.values[_fname]

            return read_hdr
        if root == "meta":
            if rest not in self._meta_template:
                return _raiser(
                    P4RuntimeError(f"unknown metadata field {rest!r}"))

            def read_meta(ctx, _name=rest):
                return ctx.meta[_name]

            return read_meta
        if root == "standard_metadata":
            getter = operator.attrgetter(rest)

            def read_std(ctx, _get=getter):
                return int(_get(ctx.standard))

            return read_std
        if root == "param":

            def read_param(ctx, _name=rest):
                try:
                    return ctx.action_args[_name]
                except KeyError:
                    raise P4RuntimeError(
                        f"unbound action parameter {_name!r}") from None

            return read_param
        return _raiser(P4RuntimeError(f"bad field path {path!r}"))

    def _compile_write(self, path: str) -> WriteFn:
        root, _, rest = path.partition(".")
        if root == "hdr":
            bind, _, fname = rest.partition(".")
            htype = self._bind_types.get(bind)
            if htype is None:
                return _raiser(
                    P4RuntimeError(f"write to unbound header {bind!r}"))
            if not htype.has_field(fname):
                return _raiser(KeyError(fname))
            mask = (1 << htype.field(fname).width) - 1

            def write_hdr(ctx, value, _bind=bind, _fname=fname, _mask=mask):
                header = ctx.hdr.get(_bind)
                if header is None:
                    raise P4RuntimeError(
                        f"write to unbound header {_bind!r}")
                header.values[_fname] = value & _mask

            return write_hdr
        if root == "meta":
            if rest not in self._meta_template:
                return _raiser(
                    P4RuntimeError(f"unknown metadata field {rest!r}"))
            mask = (1 << self._meta_width[rest]) - 1

            def write_meta(ctx, value, _name=rest, _mask=mask):
                ctx.meta[_name] = value & _mask

            return write_meta
        if root == "standard_metadata":

            def write_std(ctx, value, _name=rest):
                setattr(ctx.standard, _name, int(value))

            return write_std
        return _raiser(P4RuntimeError(f"cannot write to {path!r}"))

    # -- expression compilation ----------------------------------------------

    def _compile_expr(self, expr: ir.P4Expr) -> ExprFn:
        if isinstance(expr, ir.Const):
            value = expr.value & ((1 << expr.width) - 1)
            return lambda ctx, _v=value: _v
        if isinstance(expr, ir.FieldRef):
            return self._compile_read(expr.path)
        if isinstance(expr, ir.ValidRef):

            def valid(ctx, _bind=expr.header):
                header = ctx.hdr.get(_bind)
                return 1 if (header is not None and header.valid) else 0

            return valid
        if isinstance(expr, ir.UnExpr):
            operand = self._compile_expr(expr.operand)
            if expr.op == "!":
                return lambda ctx, _f=operand: 0 if _f(ctx) else 1
            mask = (1 << ir.unexpr_width(expr)) - 1
            if expr.op == "~":
                return lambda ctx, _f=operand, _m=mask: ~_f(ctx) & _m
            if expr.op == "-":
                return lambda ctx, _f=operand, _m=mask: -_f(ctx) & _m
            return _raiser(P4RuntimeError(f"unknown unary op {expr.op!r}"))
        if isinstance(expr, ir.BinExpr):
            return self._compile_bin(expr)
        return _raiser(
            P4RuntimeError(f"unknown expression {type(expr).__name__}"))

    def _compile_bin(self, expr: ir.BinExpr) -> ExprFn:
        op = expr.op
        left = self._compile_expr(expr.left)
        right = self._compile_expr(expr.right)
        if op == "&&":
            return lambda ctx, _l=left, _r=right: \
                1 if (_l(ctx) and _r(ctx)) else 0
        if op == "||":
            return lambda ctx, _l=left, _r=right: \
                1 if (_l(ctx) or _r(ctx)) else 0
        mask = (1 << expr.width) - 1
        width = expr.width
        if op == "+":
            return lambda ctx, _l=left, _r=right, _m=mask: \
                (_l(ctx) + _r(ctx)) & _m
        if op == "-":
            return lambda ctx, _l=left, _r=right, _m=mask: \
                (_l(ctx) - _r(ctx)) & _m
        if op == "*":
            return lambda ctx, _l=left, _r=right, _m=mask: \
                (_l(ctx) * _r(ctx)) & _m
        if op == "/":
            def div(ctx, _l=left, _r=right, _m=mask):
                r = _r(ctx)
                return (_l(ctx) // r) & _m if r else 0
            return div
        if op == "%":
            def mod(ctx, _l=left, _r=right, _m=mask):
                r = _r(ctx)
                return (_l(ctx) % r) & _m if r else 0
            return mod
        if op == "&":
            return lambda ctx, _l=left, _r=right, _m=mask: \
                (_l(ctx) & _r(ctx)) & _m
        if op == "|":
            return lambda ctx, _l=left, _r=right, _m=mask: \
                (_l(ctx) | _r(ctx)) & _m
        if op == "^":
            return lambda ctx, _l=left, _r=right, _m=mask: \
                (_l(ctx) ^ _r(ctx)) & _m
        if op == "<<":
            return lambda ctx, _l=left, _r=right, _m=mask, _w=width: \
                (_l(ctx) << (_r(ctx) % _w)) & _m
        if op == ">>":
            return lambda ctx, _l=left, _r=right, _m=mask, _w=width: \
                (_l(ctx) >> (_r(ctx) % _w)) & _m
        if op == "==":
            return lambda ctx, _l=left, _r=right: \
                1 if _l(ctx) == _r(ctx) else 0
        if op == "!=":
            return lambda ctx, _l=left, _r=right: \
                1 if _l(ctx) != _r(ctx) else 0
        if op == "<":
            return lambda ctx, _l=left, _r=right: \
                1 if _l(ctx) < _r(ctx) else 0
        if op == "<=":
            return lambda ctx, _l=left, _r=right: \
                1 if _l(ctx) <= _r(ctx) else 0
        if op == ">":
            return lambda ctx, _l=left, _r=right: \
                1 if _l(ctx) > _r(ctx) else 0
        if op == ">=":
            return lambda ctx, _l=left, _r=right: \
                1 if _l(ctx) >= _r(ctx) else 0
        if op == "absdiff":
            def absdiff(ctx, _l=left, _r=right, _m=mask):
                diff = (_l(ctx) - _r(ctx)) & _m
                return min(diff, (-diff) & _m)
            return absdiff
        if op == "min":
            return lambda ctx, _l=left, _r=right: min(_l(ctx), _r(ctx))
        if op == "max":
            return lambda ctx, _l=left, _r=right: max(_l(ctx), _r(ctx))
        return _raiser(P4RuntimeError(f"unknown binary op {op!r}"))

    def _compile_cond(self, cond: ir.P4Expr) -> ExprFn:
        """Compile an expression used only for its truthiness.

        Comparisons skip the 1/0 boxing closure and evaluate via the C
        operator directly; ``&&``/``||`` short-circuit over recursively
        condition-compiled operands (truthiness is preserved).  Anything
        else falls back to the full value compiler.
        """
        if isinstance(cond, ir.UnExpr) and cond.op == "!":
            inner = self._compile_cond(cond.operand)
            return lambda ctx, _f=inner: not _f(ctx)
        if isinstance(cond, ir.BinExpr):
            cmp_op = _CMP_OPS.get(cond.op)
            if cmp_op is not None:
                left = self._compile_expr(cond.left)
                if isinstance(cond.right, ir.Const):
                    rvalue = cond.right.value & ((1 << cond.right.width) - 1)
                    return lambda ctx, _l=left, _op=cmp_op, _r=rvalue: \
                        _op(_l(ctx), _r)
                right = self._compile_expr(cond.right)
                return lambda ctx, _l=left, _op=cmp_op, _r=right: \
                    _op(_l(ctx), _r(ctx))
            if cond.op == "&&":
                left = self._compile_cond(cond.left)
                right = self._compile_cond(cond.right)
                return lambda ctx, _l=left, _r=right: _l(ctx) and _r(ctx)
            if cond.op == "||":
                left = self._compile_cond(cond.left)
                right = self._compile_cond(cond.right)
                return lambda ctx, _l=left, _r=right: _l(ctx) or _r(ctx)
        return self._compile_expr(cond)

    # -- statement compilation -----------------------------------------------

    def _compile_body(self, stmts: Sequence[ir.P4Stmt]) -> StmtFn:
        return _chain([self._compile_stmt(stmt) for stmt in stmts])

    def _compile_stmt(self, stmt: ir.P4Stmt) -> StmtFn:
        if isinstance(stmt, ir.AssignStmt):
            write = self._compile_write(stmt.dest)
            value = self._compile_expr(stmt.value)
            return lambda ctx, _w=write, _v=value: _w(ctx, _v(ctx))
        if isinstance(stmt, ir.IfStmt):
            cond = self._compile_cond(stmt.cond)
            then_body = self._compile_body(stmt.then_body)
            else_body = self._compile_body(stmt.else_body)

            def run_if(ctx, _c=cond, _t=then_body, _e=else_body):
                if _c(ctx):
                    _t(ctx)
                else:
                    _e(ctx)

            return run_if
        if isinstance(stmt, ir.ApplyTable):
            return self._compile_apply(stmt)
        if isinstance(stmt, ir.RegisterRead):
            write = self._compile_write(stmt.dest)
            index_fn = self._compile_expr(stmt.index)
            values = self.switch.registers.get(stmt.register)
            if values is None:
                return _raiser(KeyError(stmt.register))
            size = len(values)

            def reg_read(ctx, _w=write, _i=index_fn, _v=values, _n=size):
                index = _i(ctx)
                _w(ctx, _v[index] if 0 <= index < _n else 0)

            return reg_read
        if isinstance(stmt, ir.RegisterWrite):
            index_fn = self._compile_expr(stmt.index)
            value_fn = self._compile_expr(stmt.value)
            values = self.switch.registers.get(stmt.register)
            if values is None:
                return _raiser(KeyError(stmt.register))
            size = len(values)
            mask = (1 << self.switch._register_width[stmt.register]) - 1

            def reg_write(ctx, _i=index_fn, _f=value_fn, _v=values,
                          _n=size, _m=mask):
                index = _i(ctx)
                if 0 <= index < _n:
                    _v[index] = _f(ctx) & _m

            return reg_write
        if isinstance(stmt, ir.Digest):
            fields = tuple(self._compile_expr(e) for e in stmt.fields)
            switch = self.switch
            if self._instrumented:
                tracer = self._obs.tracer

                def digest_obs(ctx, _name=stmt.name, _fields=fields,
                               _sw=switch, _tr=tracer):
                    message = DigestMessage(
                        name=_name,
                        values=[fn(ctx) for fn in _fields],
                        switch_name=_sw.name,
                    )
                    _sw.digests.append(message)
                    if _tr.live:
                        _tr.emit("digest", node=_sw.name,
                                 packet_id=ctx.packet.packet_id,
                                 digest=_name)
                    for listener in _sw.digest_listeners:
                        listener(message)

                return digest_obs

            def digest(ctx, _name=stmt.name, _fields=fields, _sw=switch):
                message = DigestMessage(
                    name=_name,
                    values=[fn(ctx) for fn in _fields],
                    switch_name=_sw.name,
                )
                _sw.digests.append(message)
                for listener in _sw.digest_listeners:
                    listener(message)

            return digest
        if isinstance(stmt, ir.SetValid):
            def set_valid(ctx, _bind=stmt.header):
                header = ctx.hdr.get(_bind)
                if header is None:
                    raise P4RuntimeError(
                        f"setValid on unknown header {_bind!r}")
                object.__setattr__(header, "valid", True)
            return set_valid
        if isinstance(stmt, ir.SetInvalid):
            def set_invalid(ctx, _bind=stmt.header):
                header = ctx.hdr.get(_bind)
                if header is None:
                    raise P4RuntimeError(
                        f"setInvalid on unknown header {_bind!r}")
                object.__setattr__(header, "valid", False)
            return set_invalid
        if isinstance(stmt, ir.MarkToDrop):
            def mark_drop(ctx):
                ctx.standard.drop = True
            return mark_drop
        if isinstance(stmt, ir.PopSourceRoute):
            return _pop_source_route
        if isinstance(stmt, ir.ExternCall):
            if stmt.fn is None:
                return lambda ctx: None
            return stmt.fn
        return _raiser(
            P4RuntimeError(f"unknown statement {type(stmt).__name__}"))

    def _compile_apply(self, stmt: ir.ApplyTable) -> StmtFn:
        index = self.tables.get(stmt.table)
        if index is None:
            return _raiser(P4RuntimeError(f"unknown table {stmt.table!r}"))
        readers = tuple(self._compile_read(key.path)
                        for key in index.table.keys)
        hit_body = self._compile_body(stmt.hit_body)
        miss_body = self._compile_body(stmt.miss_body)

        # Specialize key-tuple construction for the common arities so the
        # per-apply cost is a couple of direct calls, not a genexpr frame.
        if len(readers) == 1:
            read0 = readers[0]

            def make_key(ctx, _r0=read0):
                return (_r0(ctx),)
        elif len(readers) == 2:
            read0, read1 = readers

            def make_key(ctx, _r0=read0, _r1=read1):
                return (_r0(ctx), _r1(ctx))
        else:

            def make_key(ctx, _readers=readers):
                return tuple(read(ctx) for read in _readers)

        if self._instrumented:
            tracer = self._obs.tracer
            table_counter = self._obs.registry.counter(
                "table_lookups_total", "table applies by outcome",
                labels=("switch", "table", "result"))
            hit_c = table_counter.labels(self.switch.name, stmt.table, "hit")
            miss_c = table_counter.labels(self.switch.name, stmt.table,
                                          "miss")
            sw_name = self.switch.name
            tname = stmt.table

            def apply_table_obs(ctx, _idx=index, _key=make_key,
                                _hit=hit_body, _miss=miss_body,
                                _hc=hit_c, _mc=miss_c, _tr=tracer,
                                _sw=sw_name, _tn=tname):
                bound = _idx.lookup(_key(ctx))
                if bound is not None:
                    _hc.inc()
                    if _tr.live:
                        _tr.emit("apply", node=_sw,
                                 packet_id=ctx.packet.packet_id,
                                 table=_tn, result="hit")
                    bound(ctx)
                    _hit(ctx)
                else:
                    _mc.inc()
                    if _tr.live:
                        _tr.emit("apply", node=_sw,
                                 packet_id=ctx.packet.packet_id,
                                 table=_tn, result="miss")
                    default = _idx.default_bound()
                    if default is not None:
                        default(ctx)
                    _miss(ctx)

            return apply_table_obs

        def apply_table(ctx, _idx=index, _key=make_key,
                        _hit=hit_body, _miss=miss_body):
            bound = _idx.lookup(_key(ctx))
            if bound is not None:
                bound(ctx)
                _hit(ctx)
            else:
                default = _idx.default_bound()
                if default is not None:
                    default(ctx)
                _miss(ctx)

        return apply_table

    def _bind_action(self, name: str, args: Sequence[int]) -> Callable:
        """A runner executing action ``name`` with ``args`` pre-bound."""
        body = self._action_bodies.get(name)
        if body is None:
            return _raiser(P4RuntimeError(f"unknown action {name!r}"))
        params = dict(zip(self._action_params[name], args))

        def run_bound(ctx, _body=body, _params=params):
            saved = ctx.action_args
            ctx.action_args = _params
            try:
                _body(ctx)
            finally:
                ctx.action_args = saved

        return run_bound

    # -- parser compilation --------------------------------------------------

    def _compile_state(self, state: ir.ParserState):
        extracts = tuple(self._compile_extract(ex) for ex in state.extracts)
        cases: List[Tuple[ExprFn, Optional[int], str]] = []
        default = ir.ACCEPT
        for tr in state.transitions:
            if tr.field_path is None:
                default = tr.next_state
            else:
                cases.append((self._compile_read(tr.field_path),
                              tr.value, tr.next_state))

        def transition(ctx, _cases=tuple(cases), _default=default):
            for read, value, next_state in _cases:
                if read(ctx) == value:
                    return next_state
            return _default

        return extracts, transition

    def _compile_extract(self, ex):
        if isinstance(ex, ir.Extract):
            def extract_one(ctx, headers, cursor, _bind=ex.bind,
                            _htype=ex.htype):
                if cursor >= len(headers) or \
                        headers[cursor].htype is not _htype:
                    return None  # reject
                ctx.hdr[_bind] = headers[cursor]
                return cursor + 1
            return extract_one
        bind_names = tuple(f"{ex.bind}{i}" for i in range(ex.max_depth))

        def extract_stack(ctx, headers, cursor, _names=bind_names,
                          _htype=ex.htype, _loop=ex.loop_field,
                          _max=ex.max_depth):
            depth = 0
            count = len(headers)
            while depth < _max and cursor < count and \
                    headers[cursor].htype is _htype:
                ctx.hdr[_names[depth]] = headers[cursor]
                stop = headers[cursor].values[_loop] != 0
                cursor += 1
                depth += 1
                if stop:
                    break
            return cursor

        return extract_stack

    def _parse(self, ctx: _FastContext) -> None:
        headers = list(ctx.packet.headers)
        cursor = 0
        hdr = ctx.hdr
        for bind, shared, htype, template in self._bind_templates:
            if shared is not None:
                hdr[bind] = shared
            else:
                blank = Header.__new__(Header)
                object.__setattr__(blank, "htype", htype)
                object.__setattr__(blank, "values", dict(template))
                object.__setattr__(blank, "valid", False)
                hdr[bind] = blank
        states = self._states
        state_name = self._start
        guard = 0
        while state_name not in (ir.ACCEPT, ir.REJECT_STATE):
            guard += 1
            if guard > 64:
                raise P4RuntimeError("parser did not terminate")
            state = states.get(state_name)
            if state is None:
                raise KeyError(f"no parser state {state_name!r}")
            extracts, transition = state
            rejected = False
            for extract in extracts:
                advanced = extract(ctx, headers, cursor)
                if advanced is None:
                    rejected = True
                    break
                cursor = advanced
            if rejected:
                break
            state_name = transition(ctx)
        ctx.tail = headers[cursor:]

    def _deparse(self, ctx: _FastContext) -> Packet:
        emitted: List[Header] = []
        hdr = ctx.hdr
        order = self._emit_order or list(hdr)
        for bind in order:
            header = hdr.get(bind)
            if header is not None and header.valid:
                emitted.append(header)
        emitted.extend(ctx.tail)
        ctx.packet.headers = emitted
        return ctx.packet

    # -- packet processing ---------------------------------------------------

    def process(self, packet: Packet,
                ingress_port: int) -> List[Tuple[int, Packet]]:
        switch = self.switch
        switch.packets_processed += 1
        work = (packet.copy_shared() if switch._share_headers
                else packet.copy())
        standard = StandardMetadata(ingress_port=ingress_port,
                                    packet_length=work.length)
        ctx = _FastContext(self.program, work, standard,
                           dict(self._meta_template), self._meta_width)
        self._parse(ctx)

        self._ingress(ctx)
        if standard.drop or standard.egress_spec == DROP_PORT:
            switch.packets_dropped += 1
            return []
        standard.egress_port = standard.egress_spec

        self._egress(ctx)
        if standard.drop:
            switch.packets_dropped += 1
            return []

        return [(standard.egress_port, self._deparse(ctx))]

    def _process_obs(self, packet: Packet,
                     ingress_port: int) -> List[Tuple[int, Packet]]:
        """The metered process(): metrics + trace events around the same
        pipeline.  Installed as the instance's ``process`` only when the
        switch's observability handle is live."""
        switch = self.switch
        tracer = self._obs.tracer
        if tracer.live:
            tracer.emit("parse", node=switch.name,
                        packet_id=packet.packet_id, port=ingress_port,
                        packet=packet, packet_length=packet.length)
        switch._m_packets.labels(switch.name, ingress_port).inc()
        start = time.perf_counter_ns()
        outputs = FastPath.process(self, packet, ingress_port)
        switch._m_ns.observe(time.perf_counter_ns() - start)
        if not outputs:
            reason = drop_reason(packet)
            switch._m_dropped.labels(switch.name, reason).inc()
            if tracer.live:
                tracer.emit("drop", node=switch.name,
                            packet_id=packet.packet_id, reason=reason)
        elif tracer.live:
            for egress_port, out_packet in outputs:
                tracer.emit("deparse", node=switch.name,
                            packet_id=out_packet.packet_id,
                            port=egress_port, egress_port=egress_port)
        return outputs
