"""Route installation for the leaf-spine fabric (ECMP forwarding).

This plays the role of the SDN controller's routing app: given a
leaf-spine :class:`~repro.net.topology.Topology` built by
:func:`~repro.net.topology.leaf_spine` and the behavioral switches
running :func:`~repro.p4.programs.ecmp_fabric`, install host routes,
ECMP default routes on leaves, and per-leaf subnet routes on spines.
"""

from __future__ import annotations

from typing import Dict

from ..net.topology import Topology
from .bmv2 import Bmv2Switch


def leaf_subnet(leaf_index: int) -> int:
    """The /24 prefix for hosts under leaf ``leaf_index`` (1-based)."""
    return (10 << 24) | (leaf_index << 8)


def install_leaf_spine_routes(topology: Topology,
                              switches: Dict[str, Bmv2Switch]) -> None:
    """Install the fabric routing state on every switch."""
    leaves = sorted(n for n, s in topology.switches.items() if s.is_leaf)
    spines = sorted(n for n, s in topology.switches.items() if s.is_spine)
    if not leaves or not spines:
        raise ValueError("install_leaf_spine_routes needs a leaf-spine topology")

    hosts_per_leaf: Dict[str, list] = {leaf: [] for leaf in leaves}
    for host_name in topology.hosts:
        attach = topology.host_attachment(host_name)
        if attach.node in hosts_per_leaf:
            hosts_per_leaf[attach.node].append((host_name, attach.port))

    for li, leaf in enumerate(leaves, start=1):
        bmv2 = switches[leaf]
        # Host routes: /32 direct.
        for host_name, port in hosts_per_leaf[leaf]:
            host = topology.hosts[host_name]
            bmv2.insert_entry("routes", [(host.ipv4, 32)],
                              "route_set_port", [port])
        # Everything else: ECMP across the spines.
        n_up = len(spines)
        bmv2.insert_entry("routes", [(0, 0)], "route_ecmp", [n_up])
        first_uplink = max(p for _, p in hosts_per_leaf[leaf]) + 1 \
            if hosts_per_leaf[leaf] else 1
        for j in range(n_up):
            bmv2.insert_entry("ecmp_table", [j],
                              "ecmp_set_port", [first_uplink + j])

    for spine in spines:
        bmv2 = switches[spine]
        for li, leaf in enumerate(leaves, start=1):
            # Spine port i faces leaf i by the builder's convention.
            bmv2.insert_entry("routes", [(leaf_subnet(li), 24)],
                              "route_set_port", [li])
