"""Forwarding programs written against the P4 IR.

These are the programs Hydra checkers get *linked with*: plain L2 port
forwarding, IPv4 LPM routing, the P4-tutorial-style source routing of the
paper's first case study, an ECMP fabric router for the leaf-spine
testbed of Figure 12, and a VLAN-aware variant.  The Aether UPF program
lives in :mod:`repro.aether.upf`.
"""

from __future__ import annotations

import zlib
from typing import List, Optional

from ..net.packet import (ETH_TYPE_IPV4, ETH_TYPE_SRCROUTE, ETH_TYPE_VLAN,
                          ETHERNET, IP_PROTO_TCP, IP_PROTO_UDP, IPV4,
                          SOURCE_ROUTE, TCP, UDP, VLAN)
from . import ir

MAX_SOURCE_ROUTE_HOPS = 8


def _ipv4_parser(after_ethernet: Optional[List[ir.Transition]] = None,
                 with_vlan: bool = False) -> ir.ParserSpec:
    """A parser for Ethernet(/VLAN)/IPv4/{UDP,TCP}."""
    ether_transitions = list(after_ethernet or [])
    ether_transitions += [
        ir.Transition("parse_ipv4", "hdr.ethernet.eth_type", ETH_TYPE_IPV4),
    ]
    if with_vlan:
        ether_transitions.append(
            ir.Transition("parse_vlan", "hdr.ethernet.eth_type",
                          ETH_TYPE_VLAN))
    ether_transitions.append(ir.Transition(ir.ACCEPT))
    states = [
        ir.ParserState(
            name="start",
            extracts=[ir.Extract("ethernet", ETHERNET)],
            transitions=ether_transitions,
        ),
        ir.ParserState(
            name="parse_ipv4",
            extracts=[ir.Extract("ipv4", IPV4)],
            transitions=[
                ir.Transition("parse_udp", "hdr.ipv4.protocol", IP_PROTO_UDP),
                ir.Transition("parse_tcp", "hdr.ipv4.protocol", IP_PROTO_TCP),
                ir.Transition(ir.ACCEPT),
            ],
        ),
        ir.ParserState(
            name="parse_udp",
            extracts=[ir.Extract("udp", UDP)],
            transitions=[ir.Transition(ir.ACCEPT)],
        ),
        ir.ParserState(
            name="parse_tcp",
            extracts=[ir.Extract("tcp", TCP)],
            transitions=[ir.Transition(ir.ACCEPT)],
        ),
    ]
    if with_vlan:
        states.insert(1, ir.ParserState(
            name="parse_vlan",
            extracts=[ir.Extract("vlan", VLAN)],
            transitions=[
                ir.Transition("parse_ipv4", "hdr.vlan.eth_type",
                              ETH_TYPE_IPV4),
                ir.Transition(ir.ACCEPT),
            ],
        ))
    return ir.ParserSpec(states=states)


def l2_port_forwarding(name: str = "l2fwd") -> ir.P4Program:
    """Forward by ingress port: one exact-match table."""
    program = ir.P4Program(name=name, parser=_ipv4_parser())
    program.emit_order = ["ethernet", "ipv4", "udp", "tcp"]
    forward = ir.Action(
        name="fwd_set_egress", params=[("port", 9)],
        body=[ir.AssignStmt("standard_metadata.egress_spec",
                            ir.FieldRef("param.port"))],
    )
    drop = ir.Action(name="fwd_drop", params=[], body=[ir.MarkToDrop()])
    program.add_action(forward)
    program.add_action(drop)
    program.add_table(ir.Table(
        name="fwd_table",
        keys=[ir.TableKey("standard_metadata.ingress_port",
                          ir.MatchKind.EXACT)],
        actions=[forward.name],
        default_action=(drop.name, []),
        size=64,
    ))
    program.ingress = [ir.ApplyTable("fwd_table")]
    return program


def ipv4_lpm_forwarding(name: str = "ipv4fwd") -> ir.P4Program:
    """Classic LPM routing: set egress, rewrite MACs, decrement TTL."""
    program = ir.P4Program(name=name, parser=_ipv4_parser())
    program.emit_order = ["ethernet", "ipv4", "udp", "tcp"]
    forward = ir.Action(
        name="ipv4_forward", params=[("dst_mac", 48), ("port", 9)],
        body=[
            ir.AssignStmt("hdr.ethernet.src_addr",
                          ir.FieldRef("hdr.ethernet.dst_addr")),
            ir.AssignStmt("hdr.ethernet.dst_addr",
                          ir.FieldRef("param.dst_mac")),
            ir.AssignStmt("standard_metadata.egress_spec",
                          ir.FieldRef("param.port")),
            ir.AssignStmt("hdr.ipv4.ttl",
                          ir.BinExpr("-", ir.FieldRef("hdr.ipv4.ttl"),
                                     ir.Const(1, 8), 8)),
        ],
    )
    drop = ir.Action(name="ipv4_drop", params=[], body=[ir.MarkToDrop()])
    program.add_action(forward)
    program.add_action(drop)
    program.add_table(ir.Table(
        name="ipv4_lpm",
        keys=[ir.TableKey("hdr.ipv4.dst_addr", ir.MatchKind.LPM)],
        actions=[forward.name, drop.name],
        default_action=(drop.name, []),
        size=1024,
    ))
    program.ingress = [
        ir.IfStmt(
            cond=ir.ValidRef("ipv4"),
            then_body=[ir.ApplyTable("ipv4_lpm")],
            else_body=[ir.MarkToDrop()],
        ),
    ]
    return program


def source_routing(name: str = "srcroute",
                   max_hops: int = MAX_SOURCE_ROUTE_HOPS) -> ir.P4Program:
    """The P4-tutorial source routing scheme used by the paper's first
    case study: each switch pops the top stack entry and forwards out the
    port it names; the last pop restores the IPv4 EtherType."""
    after_ethernet = [
        ir.Transition("parse_srcRoute", "hdr.ethernet.eth_type",
                      ETH_TYPE_SRCROUTE),
    ]
    program = ir.P4Program(name=name,
                           parser=_ipv4_parser(after_ethernet=after_ethernet))
    program.parser.states.append(ir.ParserState(
        name="parse_srcRoute",
        extracts=[ir.ExtractStack("srcRoute", SOURCE_ROUTE, "bos",
                                  max_depth=max_hops)],
        transitions=[ir.Transition("parse_ipv4")],
    ))
    program.emit_order = (
        ["ethernet"]
        + [f"srcRoute{i}" for i in range(max_hops)]
        + ["ipv4", "udp", "tcp"]
    )
    program.ingress = [
        ir.IfStmt(
            cond=ir.ValidRef("srcRoute0"),
            then_body=[
                ir.AssignStmt("standard_metadata.egress_spec",
                              ir.FieldRef("hdr.srcRoute0.port")),
                ir.IfStmt(
                    cond=ir.BinExpr("==", ir.FieldRef("hdr.srcRoute0.bos"),
                                    ir.Const(1, 1)),
                    then_body=[ir.AssignStmt("hdr.ethernet.eth_type",
                                             ir.Const(ETH_TYPE_IPV4, 16))],
                ),
                ir.PopSourceRoute(),
            ],
            else_body=[ir.MarkToDrop()],
        ),
    ]
    return program


def _ecmp_hash(ctx) -> None:
    """5-tuple CRC32 hash extern for ECMP selection (deterministic)."""
    parts = (
        ctx.read("hdr.ipv4.src_addr"),
        ctx.read("hdr.ipv4.dst_addr"),
        ctx.read("hdr.ipv4.protocol"),
        ctx.read("hdr.udp.src_port") if ctx.is_valid("udp")
        else ctx.read("hdr.tcp.src_port"),
        ctx.read("hdr.udp.dst_port") if ctx.is_valid("udp")
        else ctx.read("hdr.tcp.dst_port"),
    )
    blob = ",".join(str(p) for p in parts).encode()
    width = ctx.meta.get("ecmp_width", 1) or 1
    ctx.write("meta.ecmp_select", zlib.crc32(blob) % width)


def ecmp_fabric(name: str = "fabric") -> ir.P4Program:
    """A leaf/spine fabric router.

    Tables:

    * ``routes`` (IPv4 LPM) — either forwards directly
      (``route_set_port``) or selects an ECMP group of N uplinks
      (``route_ecmp``);
    * ``ecmp_table`` (exact on the hash-selected index) — maps the ECMP
      index to an uplink port.

    Leaves install host routes as direct ports and the default route as
    an ECMP group over the spines; spines install one direct route per
    leaf subnet.  This is the forwarding substrate for Figure 12.
    """
    program = ir.P4Program(name=name, parser=_ipv4_parser())
    program.emit_order = ["ethernet", "ipv4", "udp", "tcp"]
    program.metadata = [("ecmp_width", 8), ("ecmp_select", 16)]
    set_port = ir.Action(
        name="route_set_port", params=[("port", 9)],
        body=[ir.AssignStmt("standard_metadata.egress_spec",
                            ir.FieldRef("param.port")),
              ir.AssignStmt("hdr.ipv4.ttl",
                            ir.BinExpr("-", ir.FieldRef("hdr.ipv4.ttl"),
                                       ir.Const(1, 8), 8))],
    )
    ecmp = ir.Action(
        name="route_ecmp", params=[("width", 8)],
        body=[ir.AssignStmt("meta.ecmp_width", ir.FieldRef("param.width"))],
    )
    ecmp_port = ir.Action(
        name="ecmp_set_port", params=[("port", 9)],
        body=[ir.AssignStmt("standard_metadata.egress_spec",
                            ir.FieldRef("param.port")),
              ir.AssignStmt("hdr.ipv4.ttl",
                            ir.BinExpr("-", ir.FieldRef("hdr.ipv4.ttl"),
                                       ir.Const(1, 8), 8))],
    )
    drop = ir.Action(name="route_drop", params=[], body=[ir.MarkToDrop()])
    for action in (set_port, ecmp, ecmp_port, drop):
        program.add_action(action)
    program.add_table(ir.Table(
        name="routes",
        keys=[ir.TableKey("hdr.ipv4.dst_addr", ir.MatchKind.LPM)],
        actions=[set_port.name, ecmp.name, drop.name],
        default_action=(drop.name, []),
        size=1024,
    ))
    program.add_table(ir.Table(
        name="ecmp_table",
        keys=[ir.TableKey("meta.ecmp_select", ir.MatchKind.EXACT)],
        actions=[ecmp_port.name],
        default_action=(drop.name, []),
        size=64,
    ))
    program.ingress = [
        ir.IfStmt(
            cond=ir.ValidRef("ipv4"),
            then_body=[
                ir.AssignStmt("meta.ecmp_width", ir.Const(0, 8)),
                ir.ApplyTable("routes"),
                ir.IfStmt(
                    cond=ir.BinExpr(">", ir.FieldRef("meta.ecmp_width"),
                                    ir.Const(0, 8)),
                    then_body=[
                        ir.ExternCall("ecmp_hash", _ecmp_hash),
                        ir.ApplyTable("ecmp_table"),
                    ],
                ),
            ],
            else_body=[ir.MarkToDrop()],
        ),
    ]
    return program


def vlan_l2_forwarding(name: str = "vlanfwd") -> ir.P4Program:
    """Port-based forwarding with VLAN parsing (for the VLAN isolation
    checker of Table 1)."""
    program = ir.P4Program(name=name, parser=_ipv4_parser(with_vlan=True))
    program.emit_order = ["ethernet", "vlan", "ipv4", "udp", "tcp"]
    forward = ir.Action(
        name="fwd_set_egress", params=[("port", 9)],
        body=[ir.AssignStmt("standard_metadata.egress_spec",
                            ir.FieldRef("param.port"))],
    )
    drop = ir.Action(name="fwd_drop", params=[], body=[ir.MarkToDrop()])
    program.add_action(forward)
    program.add_action(drop)
    program.add_table(ir.Table(
        name="fwd_table",
        keys=[ir.TableKey("standard_metadata.ingress_port",
                          ir.MatchKind.EXACT)],
        actions=[forward.name],
        default_action=(drop.name, []),
        size=64,
    ))
    program.ingress = [ir.ApplyTable("fwd_table")]
    return program
